// Layered design models (Fig. 1 of the paper): conceptual, logical, and
// physical representations of an ETL flow, annotated with QoX metadata.
//
// * The CONCEPTUAL model names coarse business operations with QoX
//   annotations ("this join needs high freshness").
// * The LOGICAL model is an ordered chain of LogicalOps: each carries the
//   structural metadata the optimizer needs (columns read/created/dropped,
//   blocking/per-row class, cost and selectivity estimates) plus the
//   factory producing the executable engine operator.
// * The PHYSICAL design adds execution choices: partitioning (degree,
//   scheme, extent), recovery-point placement, n-modular redundancy, CPU
//   budget, and load scheduling. A PhysicalDesign converts directly to an
//   engine ExecutionConfig.
//
// Translations between levels live in translate.h; rewrites over logical
// flows in rewrites.h; prediction over physical designs in cost_model.h.

#ifndef QOX_CORE_DESIGN_H_
#define QOX_CORE_DESIGN_H_

#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "engine/executor.h"
#include "engine/ops/delta_op.h"
#include "engine/ops/filter_op.h"
#include "engine/ops/function_op.h"
#include "engine/ops/group_op.h"
#include "engine/ops/lookup_op.h"
#include "engine/ops/sort_op.h"
#include "engine/ops/surrogate_key_op.h"
#include "graph/flow_graph.h"

namespace qox {

// ---------------------------------------------------------------------------
// Conceptual level.
// ---------------------------------------------------------------------------

/// A coarse business-level operation with QoX annotations. The annotation
/// value is the required level in the metric's canonical encoding (e.g.
/// {kFreshness: 60} = "data through this operation must reach the
/// warehouse within a minute").
struct ConceptualOperator {
  std::string name;
  /// Business kind: "extract", "detect_changes", "cleanse", "conform",
  /// "assign_keys", "aggregate", "load".
  std::string kind;
  std::map<QoxMetric, double> annotations;
};

struct ConceptualFlow {
  std::string id;
  std::vector<std::string> sources;
  std::string target;
  std::vector<ConceptualOperator> operators;
  /// Flow-level QoX annotations (apply to the whole flow).
  std::map<QoxMetric, double> annotations;
};

// ---------------------------------------------------------------------------
// Logical level.
// ---------------------------------------------------------------------------

/// Semantic class of a logical operator, driving rewrite legality:
/// per-row operators commute (subject to column dependencies), order-only
/// operators (sort) commute with per-row ones, multiset operators (group,
/// delta) act as rewrite barriers.
enum class OpClass {
  kPerRow,
  kOrderOnly,
  kMultiset,
};

/// One operator of a logical flow: structural metadata + executable factory.
struct LogicalOp {
  std::string name;
  std::string kind;  ///< engine kind: "filter", "lookup", ...
  OpClass op_class = OpClass::kPerRow;
  bool blocking = false;
  double cost_per_row = 1.0;
  double selectivity = 1.0;
  std::vector<std::string> reads;
  std::vector<std::string> creates;
  std::vector<std::string> drops;
  OperatorFactory factory;
};

/// Builders wrapping each engine operator into a LogicalOp with correct
/// metadata. These are the vocabulary the sales workflow and tests use.
LogicalOp MakeFilter(std::string name, std::vector<Predicate> conjuncts,
                     double estimated_selectivity = 0.9);
LogicalOp MakeFunction(std::string name,
                       std::vector<ColumnTransform> transforms);
LogicalOp MakeLookup(std::string name, DataStorePtr dimension,
                     std::string input_key, std::string dim_key,
                     std::vector<std::string> append_columns,
                     LookupMissPolicy miss_policy = LookupMissPolicy::kReject,
                     double estimated_hit_rate = 0.98);
LogicalOp MakeSurrogateKey(std::string name, SurrogateKeyRegistryPtr registry,
                           std::string natural_column,
                           std::string surrogate_column,
                           bool drop_natural = true);
/// `estimated_selectivity` is the planner's expected change rate of a
/// landing (1.0 for initial/full loads, lower for steady-state deltas).
LogicalOp MakeDelta(std::string name, SnapshotStorePtr snapshot,
                    std::string change_type_column = "",
                    double estimated_selectivity = 0.6);
LogicalOp MakeSort(std::string name, std::vector<SortKey> keys);
LogicalOp MakeGroup(std::string name, std::vector<std::string> group_columns,
                    std::vector<Aggregate> aggregates);

/// An ordered logical flow over concrete stores.
class LogicalFlow {
 public:
  LogicalFlow() = default;
  LogicalFlow(std::string id, DataStorePtr source, std::vector<LogicalOp> ops,
              DataStorePtr target)
      : id_(std::move(id)),
        source_(std::move(source)),
        ops_(std::move(ops)),
        target_(std::move(target)) {}

  const std::string& id() const { return id_; }
  const DataStorePtr& source() const { return source_; }
  const DataStorePtr& target() const { return target_; }
  const std::vector<LogicalOp>& ops() const { return ops_; }
  std::vector<LogicalOp>& mutable_ops() { return ops_; }
  size_t num_ops() const { return ops_.size(); }

  void set_post_success(std::function<Status()> hook) {
    post_success_ = std::move(hook);
  }
  const std::function<Status()>& post_success() const { return post_success_; }

  /// Converts to the engine's executable FlowSpec.
  FlowSpec ToFlowSpec() const;

  /// Binds the chain and returns the schema at every cut (0..n). Catches
  /// mis-wired flows and illegal rewrites.
  Result<std::vector<Schema>> BindSchemas() const;

  /// Workflow graph (source -> ops -> target) for maintainability metrics.
  Result<FlowGraph> ToGraph() const;

  /// Index range [begin, end) of the longest run of per-row operators —
  /// the natural "parallelize parts of the flow" segment.
  std::pair<size_t, size_t> PipelineableRange() const;

  /// "src -> op1 -> op2 -> ... -> tgt" for logs and reports.
  std::string Describe() const;

 private:
  std::string id_;
  DataStorePtr source_;
  std::vector<LogicalOp> ops_;
  DataStorePtr target_;
  std::function<Status()> post_success_;
};

/// Binds a chain of logical ops against an input schema (without a target
/// check). Returns schemas at every cut.
Result<std::vector<Schema>> BindLogicalChain(const Schema& input,
                                             const std::vector<LogicalOp>& ops);

// ---------------------------------------------------------------------------
// Physical level.
// ---------------------------------------------------------------------------

/// A fully specified executable design: logical flow + physical choices.
struct PhysicalDesign {
  LogicalFlow flow;
  size_t threads = 1;
  ParallelSpec parallel;
  std::vector<size_t> recovery_points;
  size_t redundancy = 1;
  /// Retry behavior on transient failures (attempt budget, backoff,
  /// per-attempt deadline) — a design knob like RP placement: more
  /// attempts and longer backoff trade time-window slack for reliability.
  RetryPolicy retry;
  /// Load scheduling: executions per day (drives freshness).
  size_t loads_per_day = 24;
  /// Optional quality features (affect traceability/auditability scores
  /// and add per-row cost when enabled).
  bool provenance_columns = false;
  bool audit_rejects = false;
  /// Streaming (pipelined) execution: stages overlap across bounded
  /// channels instead of running phase-by-phase. Changes the performance
  /// law (overlapped max-of-stages instead of sum, see cost_model.h) and
  /// maps to ExecutionConfig::streaming.
  bool streaming = false;
  /// Bounded capacity, in batches, of every streaming channel (maps to
  /// ExecutionConfig::channel_capacity and the plan's edge capacities).
  size_t channel_capacity = 8;
  /// Row-level containment policy per op (by index; empty or short =
  /// kFailFast, the seed behaviour). Maps to ExecutionConfig::error_policies
  /// and is priced by the cost model's data-quality term.
  std::vector<ErrorPolicy> error_policies;
  /// Flow-level ceiling on contained rows (kErrorBudgetExceeded beyond it).
  ErrorBudget error_budget;
  /// Crash safety: journal the flow's lifecycle (attempts, RP commits,
  /// budget, commit) to a durable FlowJournal so a supervised restart
  /// resumes from the durable prefix instead of from scratch. The journal
  /// itself is runtime state (ExecutionConfig::journal, opened by the
  /// supervisor or caller); this knob is the design-level intent the cost
  /// model prices: restart rework drops to the recoverability integral,
  /// and every fsync'd append adds journal_sync latency.
  bool journaled = false;
  /// Which journal appends pay an fsync (ignored unless journaled).
  JournalSync journal_sync = JournalSync::kAlways;
  /// Memory budget for blocking-operator state, bytes. 0 = unlimited (the
  /// seed behaviour). A finite budget makes sort/group/lookup spill to
  /// checksummed disk runs once their working set exceeds it; the cost
  /// model prices the extra spill I/O (see cost_model.h).
  size_t memory_budget_bytes = 0;
  /// How the flow degrades when a resource is exhausted (spill disk full,
  /// target ENOSPC): fail fast, pause-and-retry with backoff, or shed the
  /// unloadable remainder to the dead-letter ledger.
  ResourcePolicy resource_policy = ResourcePolicy::kFailFlow;
  /// Columnar batch fast path (ExecutionConfig::columnar): contiguous runs
  /// of columnar-capable per-row transforms execute vectorized on
  /// ColumnBatches. Output is byte-identical with the flag off (the
  /// default); the cost model prices it as a transform throughput
  /// multiplier (cost_model.h columnar_speedup).
  bool columnar = false;
  /// Freshness SLA expressed as an execution deadline, seconds (0 = none,
  /// the seed behaviour). Maps to ExecutionConfig::sla.deadline_micros: a
  /// solo run stamps the absolute deadline at start; the FlowService
  /// stamps it at admission, orders flows EDF against it, and can reject
  /// the design outright when its cost-model prediction makes the SLA
  /// infeasible under current load.
  double sla_deadline_s = 0.0;
  /// Sharded CDC ingestion (engine/cdc_coordinator.h): key-partition a
  /// continuous update stream across this many supervised shard workers,
  /// merging into one warehouse in slices of cdc_slice_events. 0 = not a
  /// CDC design (the seed behaviour; the other cdc_* knobs are ignored).
  /// Priced by the cost model's CDC freshness law (EstimateCdcFreshness).
  size_t cdc_shards = 0;
  /// Events per coordinator apply slice (the CDC micro-batch size; the
  /// batching-delay half of the freshness law).
  size_t cdc_slice_events = 64;
  /// Expected stream update rate, events/second, the design is sized for.
  /// A workload that sets its own rate overrides this.
  double cdc_update_rate_per_s = 0.0;

  /// Converts to the engine ExecutionConfig (runtime resources supplied by
  /// the caller).
  ExecutionConfig ToExecutionConfig(RecoveryPointStorePtr rp_store,
                                    FailureInjector* injector) const;

  /// Short configuration tag ("4PF-p", "TMR", "RP+", ...) mirroring the
  /// paper's figure legends.
  std::string ConfigTag() const;

  std::string Describe() const;
};

}  // namespace qox

#endif  // QOX_CORE_DESIGN_H_
