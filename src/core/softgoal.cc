#include "core/softgoal.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

namespace qox {

const char* ContributionSymbol(Contribution c) {
  switch (c) {
    case Contribution::kMake:
      return "++";
    case Contribution::kHelp:
      return "+";
    case Contribution::kHurt:
      return "-";
    case Contribution::kBreak:
      return "--";
  }
  return "?";
}

const char* GoalLabelName(GoalLabel label) {
  switch (label) {
    case GoalLabel::kDenied:
      return "denied";
    case GoalLabel::kWeaklyDenied:
      return "weakly_denied";
    case GoalLabel::kUndetermined:
      return "undetermined";
    case GoalLabel::kWeaklySatisfied:
      return "weakly_satisfied";
    case GoalLabel::kSatisfied:
      return "satisfied";
  }
  return "?";
}

std::string SoftGoalGraph::GoalId(const std::string& type,
                                  const std::string& topic) {
  return topic.empty() ? type : type + "[" + topic + "]";
}

Status SoftGoalGraph::AddNode(SoftGoalNode node) {
  if (node.id.empty()) return Status::Invalid("goal id must be non-empty");
  if (HasNode(node.id)) {
    return Status::AlreadyExists("goal '" + node.id + "' already exists");
  }
  index_.emplace(node.id, nodes_.size());
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status SoftGoalGraph::AddSoftGoal(const std::string& type,
                                  const std::string& topic) {
  SoftGoalNode node;
  node.id = GoalId(type, topic);
  node.kind = GoalKind::kSoftGoal;
  node.type = type;
  node.topic = topic;
  return AddNode(std::move(node));
}

Status SoftGoalGraph::AddOperationalization(std::string id) {
  SoftGoalNode node;
  node.id = std::move(id);
  node.kind = GoalKind::kOperationalization;
  node.type = node.id;
  return AddNode(std::move(node));
}

Status SoftGoalGraph::AddMeasure(std::string id) {
  SoftGoalNode node;
  node.id = std::move(id);
  node.kind = GoalKind::kMeasure;
  node.type = node.id;
  return AddNode(std::move(node));
}

Status SoftGoalGraph::AddContribution(const std::string& from,
                                      const std::string& to, Contribution c) {
  if (!HasNode(from)) return Status::NotFound("no goal '" + from + "'");
  if (!HasNode(to)) return Status::NotFound("no goal '" + to + "'");
  links_.push_back({from, to, c});
  return Status::OK();
}

Status SoftGoalGraph::AddDecomposition(const std::string& parent,
                                       std::vector<std::string> children,
                                       Decomposition::Kind kind) {
  if (!HasNode(parent)) return Status::NotFound("no goal '" + parent + "'");
  for (const std::string& child : children) {
    if (!HasNode(child)) return Status::NotFound("no goal '" + child + "'");
  }
  if (children.empty()) {
    return Status::Invalid("decomposition of '" + parent + "' has no children");
  }
  decompositions_.push_back({parent, std::move(children), kind});
  return Status::OK();
}

bool SoftGoalGraph::HasNode(const std::string& id) const {
  return index_.find(id) != index_.end();
}

Result<std::vector<std::string>> SoftGoalGraph::EvaluationOrder() const {
  std::map<std::string, size_t> in_degree;
  std::map<std::string, std::vector<std::string>> succ;
  for (const SoftGoalNode& node : nodes_) in_degree[node.id] = 0;
  const auto add_edge = [&](const std::string& from, const std::string& to) {
    succ[from].push_back(to);
    ++in_degree[to];
  };
  for (const ContributionLink& link : links_) add_edge(link.from, link.to);
  for (const Decomposition& d : decompositions_) {
    for (const std::string& child : d.children) add_edge(child, d.parent);
  }
  std::deque<std::string> ready;
  for (const SoftGoalNode& node : nodes_) {
    if (in_degree[node.id] == 0) ready.push_back(node.id);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& next : succ[id]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::Invalid("soft-goal graph contains a contribution cycle");
  }
  return order;
}

namespace {
double ContributionWeight(Contribution c) {
  switch (c) {
    case Contribution::kMake:
      return 1.0;
    case Contribution::kHelp:
      return 0.5;
    case Contribution::kHurt:
      return -0.5;
    case Contribution::kBreak:
      return -1.0;
  }
  return 0.0;
}

double Clamp2(double v) { return std::max(-2.0, std::min(2.0, v)); }
}  // namespace

Result<std::map<std::string, double>> SoftGoalGraph::PropagateScores(
    const std::map<std::string, double>& leaf_scores) const {
  QOX_ASSIGN_OR_RETURN(const std::vector<std::string> order,
                       EvaluationOrder());
  std::map<std::string, double> scores;
  for (const std::string& id : order) {
    const auto leaf_it = leaf_scores.find(id);
    if (leaf_it != leaf_scores.end()) {
      scores[id] = Clamp2(leaf_it->second);
      continue;
    }
    // Contribution sum.
    bool has_contrib = false;
    double contrib_sum = 0.0;
    for (const ContributionLink& link : links_) {
      if (link.to != id) continue;
      has_contrib = true;
      contrib_sum += ContributionWeight(link.contribution) * scores[link.from];
    }
    // Decomposition result.
    bool has_decomp = false;
    double decomp_value = 0.0;
    for (const Decomposition& d : decompositions_) {
      if (d.parent != id) continue;
      has_decomp = true;
      double value = d.kind == Decomposition::Kind::kAnd ? 2.0 : -2.0;
      for (const std::string& child : d.children) {
        value = d.kind == Decomposition::Kind::kAnd
                    ? std::min(value, scores[child])
                    : std::max(value, scores[child]);
      }
      decomp_value = value;
    }
    double result = 0.0;
    if (has_contrib && has_decomp) {
      result = std::min(Clamp2(contrib_sum), decomp_value);  // conservative
    } else if (has_contrib) {
      result = Clamp2(contrib_sum);
    } else if (has_decomp) {
      result = decomp_value;
    }
    scores[id] = result;
  }
  return scores;
}

Result<std::map<std::string, GoalLabel>> SoftGoalGraph::Propagate(
    const std::map<std::string, GoalLabel>& leaf_labels) const {
  std::map<std::string, double> leaf_scores;
  for (const auto& [id, label] : leaf_labels) {
    leaf_scores[id] = static_cast<double>(static_cast<int>(label));
  }
  QOX_ASSIGN_OR_RETURN(const auto scores, PropagateScores(leaf_scores));
  std::map<std::string, GoalLabel> labels;
  for (const auto& [id, score] : scores) {
    GoalLabel label = GoalLabel::kUndetermined;
    if (score >= 1.5) {
      label = GoalLabel::kSatisfied;
    } else if (score >= 0.5) {
      label = GoalLabel::kWeaklySatisfied;
    } else if (score <= -1.5) {
      label = GoalLabel::kDenied;
    } else if (score <= -0.5) {
      label = GoalLabel::kWeaklyDenied;
    }
    labels[id] = label;
  }
  return labels;
}

std::string SoftGoalGraph::ToDot() const {
  std::ostringstream oss;
  oss << "digraph softgoals {\n  rankdir=BT;\n";
  for (const SoftGoalNode& node : nodes_) {
    const char* shape = node.kind == GoalKind::kSoftGoal
                            ? "ellipse"
                            : node.kind == GoalKind::kOperationalization
                                  ? "hexagon"
                                  : "note";
    oss << "  \"" << node.id << "\" [shape=" << shape << "];\n";
  }
  for (const ContributionLink& link : links_) {
    oss << "  \"" << link.from << "\" -> \"" << link.to << "\" [label=\""
        << ContributionSymbol(link.contribution) << "\"];\n";
  }
  for (const Decomposition& d : decompositions_) {
    for (const std::string& child : d.children) {
      oss << "  \"" << child << "\" -> \"" << d.parent << "\" [style=dashed"
          << ", label=\""
          << (d.kind == Decomposition::Kind::kAnd ? "AND" : "OR") << "\"];\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

SoftGoalGraph BuildFigure2Graph() {
  SoftGoalGraph g;
  // Top-level soft-goals of the Fig. 2 scenario: "a design that should
  // balance requirements for reliability, maintainability, performance,
  // and freshness".
  (void)g.AddSoftGoal("reliability", "process");
  (void)g.AddSoftGoal("reliability", "software");
  (void)g.AddSoftGoal("reliability", "hardware");
  (void)g.AddSoftGoal("maintainability", "flow");
  (void)g.AddSoftGoal("performance", "flow");
  (void)g.AddSoftGoal("freshness", "data");
  (void)g.AddDecomposition(
      "reliability[process]",
      {"reliability[software]", "reliability[hardware]"},
      Decomposition::Kind::kAnd);

  // Operationalizations (design decisions).
  (void)g.AddOperationalization(Figure2Leaves::kParallelism);
  (void)g.AddOperationalization(Figure2Leaves::kRecoveryPoints);
  (void)g.AddOperationalization(Figure2Leaves::kRedundancy);
  (void)g.AddOperationalization(Figure2Leaves::kDocumentation);
  (void)g.AddOperationalization(Figure2Leaves::kPartitioning);

  // Quantitative measures refining reliability (Sec. 2.3's examples:
  // "MTBF should be greater than x", "uptime should be more than y").
  (void)g.AddMeasure("mtbf");
  (void)g.AddMeasure("uptime");
  (void)g.AddContribution("mtbf", "reliability[software]",
                          Contribution::kMake);
  (void)g.AddContribution("uptime", "reliability[hardware]",
                          Contribution::kHelp);

  // The contribution pattern spelled out in the paper: parallelism ++ on
  // reliability[software] (a form of redundancy), + on freshness and
  // performance, - on reliability[hardware] (more devices, more failures).
  (void)g.AddContribution(Figure2Leaves::kParallelism,
                          "reliability[software]", Contribution::kMake);
  (void)g.AddContribution(Figure2Leaves::kParallelism, "performance[flow]",
                          Contribution::kHelp);
  (void)g.AddContribution(Figure2Leaves::kParallelism, "freshness[data]",
                          Contribution::kHelp);
  (void)g.AddContribution(Figure2Leaves::kParallelism,
                          "reliability[hardware]", Contribution::kHurt);
  (void)g.AddContribution(Figure2Leaves::kParallelism,
                          "maintainability[flow]", Contribution::kHurt);

  // Recovery points: strong for recoverable reliability, costly for
  // performance and freshness (Figs. 5 and 8).
  (void)g.AddContribution(Figure2Leaves::kRecoveryPoints,
                          "reliability[process]", Contribution::kHelp);
  (void)g.AddContribution(Figure2Leaves::kRecoveryPoints,
                          "performance[flow]", Contribution::kHurt);
  (void)g.AddContribution(Figure2Leaves::kRecoveryPoints, "freshness[data]",
                          Contribution::kHurt);

  // NMR redundancy: strong software reliability, mild performance hit
  // (Fig. 7), hardware exposure like parallelism.
  (void)g.AddContribution(Figure2Leaves::kRedundancy,
                          "reliability[software]", Contribution::kMake);
  (void)g.AddContribution(Figure2Leaves::kRedundancy, "performance[flow]",
                          Contribution::kHurt);
  (void)g.AddContribution(Figure2Leaves::kRedundancy,
                          "reliability[hardware]", Contribution::kHurt);

  // Documentation helps maintainability, costs nothing at run time.
  (void)g.AddContribution(Figure2Leaves::kDocumentation,
                          "maintainability[flow]", Contribution::kMake);

  // Partitioning enables parallel speedup but complicates the flow.
  (void)g.AddContribution(Figure2Leaves::kPartitioning, "performance[flow]",
                          Contribution::kHelp);
  (void)g.AddContribution(Figure2Leaves::kPartitioning,
                          "maintainability[flow]", Contribution::kHurt);
  return g;
}

}  // namespace qox
