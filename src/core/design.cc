#include "core/design.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace qox {

LogicalOp MakeFilter(std::string name, std::vector<Predicate> conjuncts,
                     double estimated_selectivity) {
  LogicalOp op;
  op.name = name;
  op.kind = "filter";
  op.op_class = OpClass::kPerRow;
  op.blocking = false;
  op.selectivity = estimated_selectivity;
  const FilterOp prototype(name, conjuncts, estimated_selectivity);
  op.cost_per_row = prototype.CostPerRow();
  op.reads = prototype.InputColumns();
  op.factory = [name, conjuncts, estimated_selectivity]() -> OperatorPtr {
    return std::make_unique<FilterOp>(name, conjuncts, estimated_selectivity);
  };
  return op;
}

LogicalOp MakeFunction(std::string name,
                       std::vector<ColumnTransform> transforms) {
  LogicalOp op;
  op.name = name;
  op.kind = "function";
  op.op_class = OpClass::kPerRow;
  const FunctionOp prototype(name, transforms);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = 1.0;
  op.reads = prototype.InputColumns();
  op.creates = prototype.CreatedColumns();
  op.drops = prototype.DroppedColumns();
  op.factory = [name, transforms]() -> OperatorPtr {
    return std::make_unique<FunctionOp>(name, transforms);
  };
  return op;
}

LogicalOp MakeLookup(std::string name, DataStorePtr dimension,
                     std::string input_key, std::string dim_key,
                     std::vector<std::string> append_columns,
                     LookupMissPolicy miss_policy, double estimated_hit_rate) {
  LogicalOp op;
  op.name = name;
  op.kind = "lookup";
  op.op_class = OpClass::kPerRow;
  LookupOp prototype(name, dimension, input_key, dim_key, append_columns,
                     miss_policy, estimated_hit_rate);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = prototype.Selectivity();
  op.reads = {input_key};
  // The appended (possibly renamed) output columns need a bind to resolve;
  // use the raw dimension column names — collisions are rare and rebind
  // validation is authoritative for legality anyway.
  op.creates = append_columns;
  op.factory = [name, dimension, input_key, dim_key, append_columns,
                miss_policy, estimated_hit_rate]() -> OperatorPtr {
    return std::make_unique<LookupOp>(name, dimension, input_key, dim_key,
                                      append_columns, miss_policy,
                                      estimated_hit_rate);
  };
  return op;
}

LogicalOp MakeSurrogateKey(std::string name, SurrogateKeyRegistryPtr registry,
                           std::string natural_column,
                           std::string surrogate_column, bool drop_natural) {
  LogicalOp op;
  op.name = name;
  op.kind = "surrogate_key";
  op.op_class = OpClass::kPerRow;
  const SurrogateKeyOp prototype(name, registry, natural_column,
                                 surrogate_column, drop_natural);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = 1.0;
  op.reads = {natural_column};
  op.creates = {surrogate_column};
  if (drop_natural) op.drops = {natural_column};
  op.factory = [name, registry, natural_column, surrogate_column,
                drop_natural]() -> OperatorPtr {
    return std::make_unique<SurrogateKeyOp>(name, registry, natural_column,
                                            surrogate_column, drop_natural);
  };
  return op;
}

LogicalOp MakeDelta(std::string name, SnapshotStorePtr snapshot,
                    std::string change_type_column,
                    double estimated_selectivity) {
  LogicalOp op;
  op.name = name;
  op.kind = "delta";
  op.op_class = OpClass::kMultiset;
  op.blocking = true;
  const DeltaOp prototype(name, snapshot, change_type_column);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = estimated_selectivity;
  if (!change_type_column.empty()) op.creates = {change_type_column};
  op.factory = [name, snapshot, change_type_column]() -> OperatorPtr {
    return std::make_unique<DeltaOp>(name, snapshot, change_type_column);
  };
  return op;
}

LogicalOp MakeSort(std::string name, std::vector<SortKey> keys) {
  LogicalOp op;
  op.name = name;
  op.kind = "sort";
  op.op_class = OpClass::kOrderOnly;
  op.blocking = true;
  const SortOp prototype(name, keys);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = 1.0;
  op.reads = prototype.InputColumns();
  op.factory = [name, keys]() -> OperatorPtr {
    return std::make_unique<SortOp>(name, keys);
  };
  return op;
}

LogicalOp MakeGroup(std::string name, std::vector<std::string> group_columns,
                    std::vector<Aggregate> aggregates) {
  LogicalOp op;
  op.name = name;
  op.kind = "group";
  op.op_class = OpClass::kMultiset;
  op.blocking = true;
  const GroupOp prototype(name, group_columns, aggregates);
  op.cost_per_row = prototype.CostPerRow();
  op.selectivity = prototype.Selectivity();
  op.reads = prototype.InputColumns();
  op.factory = [name, group_columns, aggregates]() -> OperatorPtr {
    return std::make_unique<GroupOp>(name, group_columns, aggregates);
  };
  return op;
}

FlowSpec LogicalFlow::ToFlowSpec() const {
  FlowSpec spec;
  spec.id = id_;
  spec.source = source_;
  spec.target = target_;
  spec.transforms.reserve(ops_.size());
  for (const LogicalOp& op : ops_) spec.transforms.push_back(op.factory);
  spec.post_success = post_success_;
  return spec;
}

Result<std::vector<Schema>> BindLogicalChain(
    const Schema& input, const std::vector<LogicalOp>& ops) {
  std::vector<Schema> schemas;
  schemas.reserve(ops.size() + 1);
  schemas.push_back(input);
  for (const LogicalOp& op : ops) {
    if (!op.factory) {
      return Status::Invalid("logical op '" + op.name + "' has no factory");
    }
    OperatorPtr instance = op.factory();
    QOX_ASSIGN_OR_RETURN(Schema out, instance->Bind(schemas.back()));
    schemas.push_back(std::move(out));
  }
  return schemas;
}

Result<std::vector<Schema>> LogicalFlow::BindSchemas() const {
  if (source_ == nullptr) return Status::Invalid("flow has no source");
  QOX_ASSIGN_OR_RETURN(std::vector<Schema> schemas,
                       BindLogicalChain(source_->schema(), ops_));
  if (target_ != nullptr && schemas.back() != target_->schema()) {
    return Status::Invalid("flow '" + id_ + "' output schema [" +
                           schemas.back().ToString() +
                           "] does not match target schema [" +
                           target_->schema().ToString() + "]");
  }
  return schemas;
}

Result<FlowGraph> LogicalFlow::ToGraph() const {
  FlowGraph graph;
  QOX_RETURN_IF_ERROR(
      graph.AddDataStore(source_ != nullptr ? source_->name() : "source",
                         "source"));
  std::string prev = source_ != nullptr ? source_->name() : "source";
  for (const LogicalOp& op : ops_) {
    QOX_RETURN_IF_ERROR(graph.AddOperation(op.name, op.kind));
    QOX_RETURN_IF_ERROR(graph.AddEdge(prev, op.name));
    prev = op.name;
  }
  QOX_RETURN_IF_ERROR(
      graph.AddDataStore(target_ != nullptr ? target_->name() : "target",
                         "target"));
  QOX_RETURN_IF_ERROR(
      graph.AddEdge(prev, target_ != nullptr ? target_->name() : "target"));
  return graph;
}

std::pair<size_t, size_t> LogicalFlow::PipelineableRange() const {
  size_t best_begin = 0;
  size_t best_end = 0;
  size_t begin = 0;
  for (size_t i = 0; i <= ops_.size(); ++i) {
    const bool per_row = i < ops_.size() && ops_[i].op_class == OpClass::kPerRow;
    if (!per_row) {
      if (i - begin > best_end - best_begin) {
        best_begin = begin;
        best_end = i;
      }
      begin = i + 1;
    }
  }
  return {best_begin, best_end};
}

std::string LogicalFlow::Describe() const {
  std::ostringstream oss;
  oss << (source_ != nullptr ? source_->name() : "?");
  for (const LogicalOp& op : ops_) {
    oss << " -> " << op.name << ":" << op.kind;
  }
  oss << " -> " << (target_ != nullptr ? target_->name() : "?");
  return oss.str();
}

ExecutionConfig PhysicalDesign::ToExecutionConfig(
    RecoveryPointStorePtr rp_store, FailureInjector* injector) const {
  ExecutionConfig config;
  config.num_threads = threads;
  config.parallel = parallel;
  config.recovery_points = recovery_points;
  config.rp_store = std::move(rp_store);
  config.redundancy = redundancy;
  config.retry = retry;
  config.injector = injector;
  config.streaming = streaming;
  config.channel_capacity = channel_capacity;
  config.error_policies = error_policies;
  config.error_budget = error_budget;
  config.memory_budget_bytes = memory_budget_bytes;
  config.resource_policy = resource_policy;
  config.columnar = columnar;
  if (sla_deadline_s > 0.0) {
    config.sla.deadline_micros = static_cast<int64_t>(sla_deadline_s * 1e6);
  }
  return config;
}

std::string PhysicalDesign::ConfigTag() const {
  std::ostringstream oss;
  if (redundancy > 1) {
    if (redundancy == 3) {
      oss << "TMR";
    } else {
      oss << redundancy << "MR";
    }
  } else if (parallel.partitions > 1) {
    oss << parallel.partitions << "PF";
    const bool whole = parallel.range_begin == 0 &&
                       parallel.range_end >= flow.num_ops();
    oss << (whole ? "-f" : "-p");
  } else {
    oss << "1F";
  }
  if (!recovery_points.empty()) {
    oss << (recovery_points.size() >= 3 ? "+RP++" : "+RP");
  }
  if (streaming) oss << "+S";
  if (journaled) oss << "+J";
  // Containment shows up only when a non-default policy is set.
  bool any_skip = false;
  bool any_quarantine = false;
  for (const ErrorPolicy policy : error_policies) {
    any_skip |= policy == ErrorPolicy::kSkip;
    any_quarantine |= policy == ErrorPolicy::kQuarantine;
  }
  if (any_quarantine) {
    oss << "+DLQ";
  } else if (any_skip) {
    oss << "+SKIP";
  }
  if (!error_budget.unlimited()) oss << "+EB";
  if (memory_budget_bytes > 0) oss << "+M";
  if (columnar) oss << "+C";
  if (cdc_shards > 0) oss << "+CDC" << cdc_shards;
  return oss.str();
}

std::string PhysicalDesign::Describe() const {
  std::ostringstream oss;
  oss << ConfigTag() << " threads=" << threads
      << " partitions=" << parallel.partitions << " rp={";
  for (size_t i = 0; i < recovery_points.size(); ++i) {
    if (i > 0) oss << ",";
    oss << recovery_points[i];
  }
  oss << "} redundancy=" << redundancy << " loads/day=" << loads_per_day;
  if (journaled) {
    oss << " journal=" << JournalSyncName(journal_sync);
  }
  bool any_contained = false;
  for (const ErrorPolicy policy : error_policies) {
    any_contained |= policy != ErrorPolicy::kFailFast;
  }
  if (any_contained) {
    oss << " policies={";
    for (size_t i = 0; i < error_policies.size(); ++i) {
      if (i > 0) oss << ",";
      oss << ErrorPolicyName(error_policies[i]);
    }
    oss << "}";
  }
  if (!error_budget.unlimited()) {
    oss << " budget={rows=";
    if (error_budget.max_rows == std::numeric_limits<size_t>::max()) {
      oss << "inf";
    } else {
      oss << error_budget.max_rows;
    }
    oss << ",fraction=" << error_budget.max_fraction << "}";
  }
  if (memory_budget_bytes > 0) {
    oss << " mem_budget=" << memory_budget_bytes
        << " resource_policy=" << ResourcePolicyName(resource_policy);
  }
  if (cdc_shards > 0) {
    oss << " cdc={shards=" << cdc_shards
        << ",slice_events=" << cdc_slice_events
        << ",rate=" << cdc_update_rate_per_s << "/s}";
  }
  oss << " :: " << flow.Describe();
  return oss.str();
}

}  // namespace qox
