#include "core/qox_report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace qox {

Result<QoxVector> MeasureQox(const RunMetrics& metrics,
                             const PhysicalDesign& design,
                             const MeasurementContext& context,
                             const CostModel& cost_model) {
  QoxVector v;
  const double total_s = static_cast<double>(metrics.total_micros) / 1e6;
  v.Set(QoxMetric::kPerformance, total_s);
  if (metrics.failures_injected > 0) {
    v.Set(QoxMetric::kRecoverability,
          static_cast<double>(metrics.lost_work_micros) / 1e6 /
              static_cast<double>(metrics.failures_injected));
  }
  v.Set(QoxMetric::kReliability,
        1.0 / static_cast<double>(std::max<size_t>(1, metrics.attempts)));
  const double period_s =
      86400.0 / static_cast<double>(std::max<size_t>(1, context.loads_per_day));
  v.Set(QoxMetric::kFreshness, period_s / 2.0 + total_s);
  v.Set(QoxMetric::kAvailability,
        std::max(0.0, 1.0 - total_s / std::max(1e-9, context.time_window_s)));
  v.Set(QoxMetric::kCost,
        total_s * static_cast<double>(metrics.threads) *
            static_cast<double>(metrics.redundancy));
  v.Set(QoxMetric::kConsistency, 1.0);
  // Structural metrics are design properties; reuse the model's treatment
  // so prediction and measurement agree by construction on them.
  QOX_ASSIGN_OR_RETURN(const double maintainability,
                       cost_model.EstimateMaintainability(design));
  v.Set(QoxMetric::kMaintainability, maintainability);
  v.Set(QoxMetric::kFlexibility, std::sqrt(std::max(0.0, maintainability)));
  return v;
}

std::vector<ComparisonRow> ComparePredictionToMeasurement(
    const QoxVector& predicted, const QoxVector& measured) {
  std::vector<ComparisonRow> rows;
  for (const QoxMetric metric : AllQoxMetrics()) {
    if (!predicted.Has(metric) || !measured.Has(metric)) continue;
    ComparisonRow row;
    row.metric = metric;
    row.predicted = predicted.Get(metric).value();
    row.measured = measured.Get(metric).value();
    row.relative_error = std::fabs(row.predicted - row.measured) /
                         std::max(std::fabs(row.measured), 1e-9);
    rows.push_back(row);
  }
  return rows;
}

std::string RenderComparison(const std::vector<ComparisonRow>& rows) {
  std::ostringstream oss;
  oss << std::left << std::setw(18) << "metric" << std::right << std::setw(14)
      << "predicted" << std::setw(14) << "measured" << std::setw(12)
      << "rel_err" << "\n";
  for (const ComparisonRow& row : rows) {
    oss << std::left << std::setw(18) << QoxMetricName(row.metric)
        << std::right << std::fixed << std::setprecision(4) << std::setw(14)
        << row.predicted << std::setw(14) << row.measured << std::setw(11)
        << std::setprecision(1) << row.relative_error * 100.0 << "%\n";
  }
  return oss.str();
}

std::string RenderFaultToleranceReport(const RunMetrics& metrics) {
  std::ostringstream oss;
  const auto line = [&oss](const std::string& key, const std::string& value) {
    oss << std::left << std::setw(28) << key << value << "\n";
  };
  line("attempts", std::to_string(metrics.attempts));
  for (const auto& [cause, count] : metrics.retries_by_cause) {
    line("retry." + cause, std::to_string(count));
  }
  if (metrics.TotalRetries() > 0) {
    line("retries_total", std::to_string(metrics.TotalRetries()));
  }
  if (metrics.backoff_micros > 0) {
    std::ostringstream ms;
    ms << std::fixed << std::setprecision(1)
       << static_cast<double>(metrics.backoff_micros) / 1000.0 << "ms";
    line("backoff_wait", ms.str());
  }
  if (metrics.rp_corruption_fallbacks > 0) {
    line("rp_corruption_fallbacks",
         std::to_string(metrics.rp_corruption_fallbacks));
  }
  if (metrics.failures_injected > 0) {
    line("failures_injected", std::to_string(metrics.failures_injected));
  }
  if (metrics.lost_work_micros > 0) {
    std::ostringstream ms;
    ms << std::fixed << std::setprecision(1)
       << static_cast<double>(metrics.lost_work_micros) / 1000.0 << "ms";
    line("lost_work", ms.str());
  }
  if (metrics.rows_skipped > 0) {
    line("rows_skipped", std::to_string(metrics.rows_skipped));
  }
  if (metrics.rows_quarantined > 0) {
    line("rows_quarantined", std::to_string(metrics.rows_quarantined));
  }
  return oss.str();
}

std::string RenderCrashRecoveryReport(const SupervisorReport& report,
                                      double predicted_restart_s) {
  std::ostringstream oss;
  const auto line = [&oss](const std::string& key, const std::string& value) {
    oss << std::left << std::setw(28) << key << value << "\n";
  };
  const auto seconds = [](double s) {
    std::ostringstream v;
    v << std::fixed << std::setprecision(3) << s << "s";
    return v.str();
  };
  line("converged", report.success ? "yes" : "no");
  if (!report.final_status.ok()) {
    line("final_status", report.final_status.ToString());
  }
  line("incarnations", std::to_string(report.incarnations));
  if (report.crashes > 0) {
    line("crashes", std::to_string(report.crashes));
  }
  if (report.lease_takeover) {
    line("lease_takeover", "yes");
  }
  const FlowJournalState& journal = report.journal_state;
  // The final journal state is post-compaction for converged flows (the
  // per-attempt records are dropped); the supervisor's high-water mark
  // preserves the real count.
  line("journal.attempts",
       std::to_string(
           std::max(journal.attempts_started, report.attempts_observed)));
  if (!journal.rp_commits.empty()) {
    line("journal.rp_commits", std::to_string(journal.rp_commits.size()));
  }
  if (!journal.replay.empty()) {
    line("journal.replay_groups", std::to_string(journal.replay.size()));
  }
  line("journal.committed", journal.committed ? "yes" : "no");
  const double measured_s =
      static_cast<double>(report.total_micros) / 1e6;
  line("wall_time", seconds(measured_s));
  if (predicted_restart_s >= 0.0) {
    line("predicted_restart", seconds(predicted_restart_s));
  }
  return oss.str();
}

}  // namespace qox
