#include "core/micro_batch.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "storage/mem_table.h"

namespace qox {

std::string FreshnessStats::ToString() const {
  std::ostringstream oss;
  oss << "windows=" << windows_executed << " events=" << events_processed
      << " loaded=" << rows_loaded << " avg=" << avg_freshness_s
      << "s p95=" << p95_freshness_s << "s max=" << max_freshness_s
      << "s exec_total=" << total_exec_s << "s sla=" << sla_attainment;
  return oss.str();
}

Result<FreshnessStats> RunMicroBatches(const LogicalFlow& flow,
                                       const MicroBatchConfig& config) {
  if (config.num_windows == 0) {
    return Status::Invalid("num_windows must be >= 1");
  }
  if (flow.source() == nullptr || flow.target() == nullptr) {
    return Status::Invalid("flow needs a source and a target");
  }
  const Schema& schema = flow.source()->schema();
  QOX_ASSIGN_OR_RETURN(const size_t time_col,
                       schema.FieldIndex(config.event_time_column));
  if (schema.field(time_col).type != DataType::kTimestamp) {
    return Status::Invalid("event-time column '" +
                           config.event_time_column +
                           "' must be a timestamp");
  }
  QOX_ASSIGN_OR_RETURN(RowBatch all, flow.source()->ReadAll());
  FreshnessStats stats;
  if (all.empty()) return stats;

  // Observed event-time span defines the windows.
  int64_t t_min = all.row(0).value(time_col).timestamp_micros();
  int64_t t_max = t_min;
  for (const Row& row : all.rows()) {
    const int64_t t = row.value(time_col).timestamp_micros();
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
  const int64_t span = std::max<int64_t>(1, t_max - t_min);
  const int64_t window =
      span / static_cast<int64_t>(config.num_windows) + 1;

  // Bucket events by arrival window (source order preserved in-bucket).
  std::vector<std::vector<Row>> buckets(config.num_windows);
  for (const Row& row : all.rows()) {
    const int64_t t = row.value(time_col).timestamp_micros();
    const size_t bucket = std::min<size_t>(
        config.num_windows - 1,
        static_cast<size_t>((t - t_min) / window));
    buckets[bucket].push_back(row);
  }

  std::vector<double> latencies_s;
  latencies_s.reserve(all.num_rows());
  for (size_t w = 0; w < config.num_windows; ++w) {
    if (buckets[w].empty()) continue;
    const int64_t window_end =
        t_min + static_cast<int64_t>(w + 1) * window;
    auto batch_source =
        std::make_shared<MemTable>(flow.source()->name(), schema);
    QOX_RETURN_IF_ERROR(batch_source->Append(RowBatch(schema, buckets[w])));
    LogicalFlow batch_flow(flow.id() + ".w" + std::to_string(w),
                           batch_source,
                           std::vector<LogicalOp>(flow.ops()),
                           flow.target());
    QOX_ASSIGN_OR_RETURN(const RunMetrics metrics,
                         Executor::Run(batch_flow.ToFlowSpec(), config.exec));
    const double exec_s = static_cast<double>(metrics.total_micros) / 1e6;
    stats.total_exec_s += exec_s;
    stats.rows_loaded += metrics.rows_loaded;
    ++stats.windows_executed;
    for (const Row& row : buckets[w]) {
      const double wait_s =
          static_cast<double>(window_end -
                              row.value(time_col).timestamp_micros()) /
          1e6;
      latencies_s.push_back(wait_s + exec_s);
    }
  }
  stats.events_processed = latencies_s.size();
  if (latencies_s.empty()) return stats;
  std::sort(latencies_s.begin(), latencies_s.end());
  stats.avg_freshness_s =
      std::accumulate(latencies_s.begin(), latencies_s.end(), 0.0) /
      static_cast<double>(latencies_s.size());
  stats.p95_freshness_s = latencies_s[latencies_s.size() * 95 / 100];
  stats.max_freshness_s = latencies_s.back();
  if (config.freshness_sla_s > 0.0) {
    const size_t within = static_cast<size_t>(
        std::upper_bound(latencies_s.begin(), latencies_s.end(),
                         config.freshness_sla_s) -
        latencies_s.begin());
    stats.sla_attainment =
        static_cast<double>(within) /
        static_cast<double>(latencies_s.size());
  }
  return stats;
}

}  // namespace qox
