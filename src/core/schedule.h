// Flow scheduling: ordering multiple flows within an ETL time window.
//
// Sec. 2.2 (freshness): "scheduling of both the data flow and execution
// order of transformations becomes crucial", and Sec. 3.4 restructures
// Fig. 3 into independent flows precisely so each can run on its own
// schedule. This module plans the execution order of a set of flows that
// share one window: each flow has an estimated duration and a deadline
// (its freshness commitment); the planner orders them by earliest
// deadline (EDF — optimal for single-machine feasibility), reports
// per-flow slack and overall feasibility, and ExecuteSchedule() runs the
// plan for real and checks which deadlines were actually met.

#ifndef QOX_CORE_SCHEDULE_H_
#define QOX_CORE_SCHEDULE_H_

#include <string>
#include <vector>

#include "core/design.h"

namespace qox {

/// One flow to place in the window.
struct FlowJob {
  std::string id;
  /// Deadline relative to the window start, seconds (the moment this
  /// flow's data must be in the warehouse).
  double deadline_s = 0.0;
  /// Planner's estimated duration, seconds (e.g. from the cost model).
  double estimated_duration_s = 0.0;
  /// The executable flow (optional for pure planning).
  LogicalFlow flow;
  /// Execution configuration for ExecuteSchedule.
  ExecutionConfig exec;
};

/// One planned slot.
struct ScheduledSlot {
  std::string id;
  double start_s = 0.0;
  double expected_end_s = 0.0;
  double deadline_s = 0.0;
  /// deadline - expected_end (negative = predicted miss).
  double slack_s = 0.0;
};

struct SchedulePlan {
  std::vector<ScheduledSlot> slots;  ///< in execution order
  bool feasible = true;              ///< every slot has non-negative slack
  double makespan_s = 0.0;

  std::string ToString() const;
};

/// Plans the jobs by earliest deadline first. Jobs run back to back from
/// time 0 (single execution lane, as in the paper's nightly window).
SchedulePlan PlanSchedule(const std::vector<FlowJob>& jobs);

/// Outcome of actually running one slot.
struct ExecutedSlot {
  std::string id;
  double started_s = 0.0;
  double finished_s = 0.0;
  double deadline_s = 0.0;
  bool deadline_met = false;
  RunMetrics metrics;
};

struct ScheduleOutcome {
  std::vector<ExecutedSlot> slots;
  size_t deadlines_met = 0;
  double total_s = 0.0;
};

/// Executes the planned order for real (sequentially), timing each flow
/// and checking its deadline against the actual clock. Jobs must carry
/// executable flows.
Result<ScheduleOutcome> ExecuteSchedule(const std::vector<FlowJob>& jobs);

}  // namespace qox

#endif  // QOX_CORE_SCHEDULE_H_
