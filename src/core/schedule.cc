#include "core/schedule.h"

#include <algorithm>
#include <sstream>

#include "common/clock.h"

namespace qox {

std::string SchedulePlan::ToString() const {
  std::ostringstream oss;
  oss << (feasible ? "feasible" : "INFEASIBLE") << " makespan=" << makespan_s
      << "s:";
  for (const ScheduledSlot& slot : slots) {
    oss << " [" << slot.id << " " << slot.start_s << "-"
        << slot.expected_end_s << "s dl=" << slot.deadline_s
        << "s slack=" << slot.slack_s << "s]";
  }
  return oss.str();
}

SchedulePlan PlanSchedule(const std::vector<FlowJob>& jobs) {
  // Earliest deadline first; ties broken by id for determinism.
  std::vector<const FlowJob*> order;
  order.reserve(jobs.size());
  for (const FlowJob& job : jobs) order.push_back(&job);
  std::sort(order.begin(), order.end(),
            [](const FlowJob* a, const FlowJob* b) {
              if (a->deadline_s != b->deadline_s) {
                return a->deadline_s < b->deadline_s;
              }
              return a->id < b->id;
            });
  SchedulePlan plan;
  double t = 0.0;
  for (const FlowJob* job : order) {
    ScheduledSlot slot;
    slot.id = job->id;
    slot.start_s = t;
    t += job->estimated_duration_s;
    slot.expected_end_s = t;
    slot.deadline_s = job->deadline_s;
    slot.slack_s = job->deadline_s - t;
    if (slot.slack_s < 0) plan.feasible = false;
    plan.slots.push_back(std::move(slot));
  }
  plan.makespan_s = t;
  return plan;
}

Result<ScheduleOutcome> ExecuteSchedule(const std::vector<FlowJob>& jobs) {
  const SchedulePlan plan = PlanSchedule(jobs);
  ScheduleOutcome outcome;
  const StopWatch window_timer;
  for (const ScheduledSlot& slot : plan.slots) {
    const FlowJob* job = nullptr;
    for (const FlowJob& candidate : jobs) {
      if (candidate.id == slot.id) {
        job = &candidate;
        break;
      }
    }
    if (job == nullptr) {
      return Status::Internal("planned slot '" + slot.id +
                              "' has no matching job");
    }
    ExecutedSlot executed;
    executed.id = slot.id;
    executed.deadline_s = slot.deadline_s;
    executed.started_s = window_timer.ElapsedSeconds();
    QOX_ASSIGN_OR_RETURN(executed.metrics,
                         Executor::Run(job->flow.ToFlowSpec(), job->exec));
    executed.finished_s = window_timer.ElapsedSeconds();
    executed.deadline_met = executed.finished_s <= executed.deadline_s;
    if (executed.deadline_met) ++outcome.deadlines_met;
    outcome.slots.push_back(std::move(executed));
  }
  outcome.total_s = window_timer.ElapsedSeconds();
  return outcome;
}

}  // namespace qox
