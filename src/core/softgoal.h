// Soft-goal interdependency graphs (Fig. 2 of the paper).
//
// "For supporting the systematic modeling of the design, soft-goal
// interdependency graphs can be used [Chung et al.]. ... These soft-goals,
// expressed in the form of type[topic], are refined as soft-sub-goals ...
// the degree of parallelism contributes extremely positively (++) to the
// fulfillment of the reliability[software] soft-goal ... On the other
// hand, parallelism affects negatively (-) the reliability of hardware."
//
// The graph has three node kinds: qualitative soft-goals (type[topic]),
// operationalizations (concrete design decisions: parallelism, recovery
// points, redundancy, ...), and quantitative measures (MTBF, uptime, ...).
// Contribution links carry the NFR-framework strengths ++ / + / - / --.
// Given labels on the leaves (which design decisions a candidate design
// adopts), label propagation derives how well each soft-goal is satisficed
// — the qualitative pruning signal the optimizer uses before the numeric
// cost model runs.

#ifndef QOX_CORE_SOFTGOAL_H_
#define QOX_CORE_SOFTGOAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qox {

enum class GoalKind {
  kSoftGoal,            ///< qualitative quality goal, type[topic]
  kOperationalization,  ///< a design decision that can be adopted
  kMeasure,             ///< a quantitative functional parameter
};

/// NFR-framework contribution strengths.
enum class Contribution {
  kMake,   ///< ++ : strongly positive
  kHelp,   ///< +  : positive
  kHurt,   ///< -  : negative
  kBreak,  ///< -- : strongly negative
};

const char* ContributionSymbol(Contribution c);

/// Satisficing labels, ordered. Numeric values used for propagation.
enum class GoalLabel {
  kDenied = -2,
  kWeaklyDenied = -1,
  kUndetermined = 0,
  kWeaklySatisfied = 1,
  kSatisfied = 2,
};

const char* GoalLabelName(GoalLabel label);

struct SoftGoalNode {
  std::string id;      ///< unique, e.g. "reliability[software]"
  GoalKind kind = GoalKind::kSoftGoal;
  std::string type;    ///< e.g. "reliability"
  std::string topic;   ///< e.g. "software"
};

struct ContributionLink {
  std::string from;  ///< child (contributor)
  std::string to;    ///< parent (soft-goal)
  Contribution contribution = Contribution::kHelp;
};

/// AND/OR refinement of a soft-goal into sub-goals.
struct Decomposition {
  enum class Kind { kAnd, kOr };
  std::string parent;
  std::vector<std::string> children;
  Kind kind = Kind::kAnd;
};

class SoftGoalGraph {
 public:
  Status AddSoftGoal(const std::string& type, const std::string& topic);
  Status AddOperationalization(std::string id);
  Status AddMeasure(std::string id);

  /// Adds a contribution from `from` (operationalization, measure, or
  /// sub-goal) to soft-goal `to`.
  Status AddContribution(const std::string& from, const std::string& to,
                         Contribution c);

  /// Declares `parent` as an AND/OR refinement of `children` (which must
  /// be soft-goals).
  Status AddDecomposition(const std::string& parent,
                          std::vector<std::string> children,
                          Decomposition::Kind kind);

  bool HasNode(const std::string& id) const;
  const std::vector<SoftGoalNode>& nodes() const { return nodes_; }
  const std::vector<ContributionLink>& links() const { return links_; }

  /// Qualitative label propagation: given labels for the leaf nodes a
  /// design adopts or rejects (absent leaves are kUndetermined), computes
  /// the label of every node. Contributions scale the child's numeric
  /// label (++: x1, +: x0.5, -: x-0.5, --: x-1) and sum at the parent
  /// (clamped); AND takes the minimum of children, OR the maximum, and a
  /// node with both refinement and contributions takes the weaker of the
  /// two results (conservative).
  Result<std::map<std::string, GoalLabel>> Propagate(
      const std::map<std::string, GoalLabel>& leaf_labels) const;

  /// Numeric propagation with the same topology: leaf scores in [-2, 2],
  /// continuous result per node. Used for ranking design alternatives.
  Result<std::map<std::string, double>> PropagateScores(
      const std::map<std::string, double>& leaf_scores) const;

  /// Graphviz rendering with contribution symbols on edges.
  std::string ToDot() const;

  /// Helper: canonical id "type[topic]".
  static std::string GoalId(const std::string& type, const std::string& topic);

 private:
  Status AddNode(SoftGoalNode node);
  /// Topological order over contribution+decomposition edges
  /// (children before parents). Error on cycles.
  Result<std::vector<std::string>> EvaluationOrder() const;

  std::vector<SoftGoalNode> nodes_;
  std::vector<ContributionLink> links_;
  std::vector<Decomposition> decompositions_;
  std::map<std::string, size_t> index_;
};

/// Builds the paper's Fig. 2 example: reliability, maintainability,
/// performance, and freshness soft-goals; parallelism, recovery points,
/// redundancy, documentation, and partitioning operationalizations; MTBF
/// and uptime measures; and the contribution links discussed in Sec. 2.3.
SoftGoalGraph BuildFigure2Graph();

/// Names of the operationalization leaves in the Fig. 2 graph (stable API
/// for the optimizer: it labels these when scoring a physical design).
struct Figure2Leaves {
  static constexpr const char* kParallelism = "degree_of_parallelism";
  static constexpr const char* kRecoveryPoints = "recovery_points";
  static constexpr const char* kRedundancy = "nmr_redundancy";
  static constexpr const char* kDocumentation = "documentation";
  static constexpr const char* kPartitioning = "data_partitioning";
};

}  // namespace qox

#endif  // QOX_CORE_SOFTGOAL_H_
