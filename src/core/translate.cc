#include "core/translate.h"

#include <algorithm>
#include <cmath>

namespace qox {

ConceptualFlow SalesBottomConceptual() {
  ConceptualFlow flow;
  flow.id = "sales_bottom_conceptual";
  flow.sources = {"SALES_TRAN"};
  flow.target = "SALES";
  flow.operators = {
      {"detect_sales_changes", "detect_changes", {}},
      {"resolve_store_codes",
       "resolve_codes",
       {{QoxMetric::kConsistency, 0.99}}},
      {"cleanse_sales", "cleanse", {{QoxMetric::kRobustness, 0.8}}},
      {"derive_measures", "derive", {}},
      {"assign_warehouse_keys", "assign_keys", {}},
  };
  flow.annotations = {{QoxMetric::kPerformance, 120.0},
                      {QoxMetric::kReliability, 0.99}};
  return flow;
}

ConceptualFlow ClickstreamConceptual() {
  ConceptualFlow flow;
  flow.id = "clickstream_conceptual";
  flow.sources = {"CUSTWEB_CS"};
  flow.target = "CUSTOMER";
  flow.operators = {
      {"cleanse_clicks", "cleanse", {}},
      {"derive_channel", "derive", {}},
      {"assign_warehouse_keys", "assign_keys", {}},
  };
  // "This flow has a pressing requirement for freshness."
  flow.annotations = {{QoxMetric::kFreshness, 120.0},
                      {QoxMetric::kReliability, 0.95}};
  return flow;
}

Result<LogicalFlow> TranslateToLogical(const ConceptualFlow& conceptual,
                                       const SalesScenario& scenario) {
  if (conceptual.sources.size() != 1) {
    return Status::Unimplemented(
        "conceptual translation currently expands single-source flows; "
        "multi-source flows are restructured first (Sec. 3.4)");
  }
  const std::string& source_name = conceptual.sources.front();
  DataStorePtr source;
  SnapshotStorePtr snapshot;
  if (source_name == "SALES_TRAN") {
    source = scenario.s1();
    snapshot = scenario.sales_snapshot();
  } else if (source_name == "SALES_STAFF") {
    source = scenario.s2();
    snapshot = scenario.staff_snapshot();
  } else if (source_name == "CUSTWEB_CS") {
    source = scenario.s3();
  } else {
    return Status::NotFound("unknown conceptual source '" + source_name + "'");
  }
  const double freshness_req = [&] {
    const auto it = conceptual.annotations.find(QoxMetric::kFreshness);
    return it == conceptual.annotations.end() ? 1e18 : it->second;
  }();
  const bool freshness_pressed = freshness_req <= 300.0;

  std::vector<LogicalOp> ops;
  for (const ConceptualOperator& cop : conceptual.operators) {
    if (cop.kind == "detect_changes") {
      if (snapshot == nullptr) {
        return Status::Invalid("'" + cop.name +
                               "': source has no change snapshot");
      }
      ops.push_back(MakeDelta("Delta_" + cop.name, snapshot));
    } else if (cop.kind == "resolve_codes") {
      ops.push_back(MakeLookup("Lkp_" + cop.name, scenario.store_dim(),
                               "store_code", "store_code", {"store_key"},
                               LookupMissPolicy::kReject, 0.94));
    } else if (cop.kind == "cleanse") {
      if (source_name == "CUSTWEB_CS") {
        ops.push_back(MakeFilter("Flt_" + cop.name,
                                 {Predicate::NotNull("customer_id")}, 0.9));
      } else {
        ops.push_back(MakeFilter("Flt_" + cop.name,
                                 {Predicate::NotNull("amount"),
                                  Predicate::NotNull("store_code")},
                                 0.92));
      }
    } else if (cop.kind == "derive") {
      if (source_name == "CUSTWEB_CS") {
        ops.push_back(MakeFunction(
            "Func_" + cop.name,
            {ColumnTransform::Upper("action"),
             ColumnTransform::Constant("channel", Value::String("WEB"))}));
      } else {
        ops.push_back(MakeFunction(
            "Func_" + cop.name,
            {ColumnTransform::Arith("net_amount", "amount",
                                    ColumnTransform::ArithOp::kMul,
                                    "quantity"),
             ColumnTransform::Drop("store_code")}));
      }
    } else if (cop.kind == "assign_keys") {
      if (source_name == "CUSTWEB_CS") {
        ops.push_back(MakeSurrogateKey("SK_" + cop.name,
                                       scenario.customer_keys(),
                                       "customer_id", "customer_key", true));
      } else {
        // Warehouse keys for the fact row and the customer.
        auto sale_keys = std::make_shared<SurrogateKeyRegistry>(1);
        ops.push_back(MakeSurrogateKey("SK_" + cop.name + "_sale", sale_keys,
                                       "tran_id", "sale_key", true));
        ops.push_back(MakeSurrogateKey("SK_" + cop.name + "_cust",
                                       scenario.customer_keys(),
                                       "customer_id", "customer_key", true));
      }
    } else if (cop.kind == "aggregate") {
      if (freshness_pressed) {
        return Status::FailedPrecondition(
            "'" + cop.name +
            "': blocking aggregation refused under a freshness annotation "
            "of " +
            std::to_string(freshness_req) + "s (Sec. 3.4: lightweight "
            "flows should avoid blocking operations)");
      }
      ops.push_back(MakeGroup("Grp_" + cop.name, {"store_key"},
                              {Aggregate::Sum("net_amount", "total_amount"),
                               Aggregate::Count("num_sales")}));
    } else {
      return Status::Unimplemented("no expansion template for conceptual "
                                   "kind '" +
                                   cop.kind + "'");
    }
  }
  // Bind and create a target matching the expansion's output schema.
  QOX_ASSIGN_OR_RETURN(const std::vector<Schema> schemas,
                       BindLogicalChain(source->schema(), ops));
  auto target = std::make_shared<MemTable>(conceptual.target + "_t",
                                           schemas.back());
  return LogicalFlow(conceptual.id + "_logical", source, std::move(ops),
                     target);
}

Result<PhysicalDesign> TranslateToPhysical(
    const LogicalFlow& flow, const std::map<QoxMetric, double>& annotations,
    const CostModel& cost_model, const WorkloadParams& workload,
    size_t threads) {
  QOX_RETURN_IF_ERROR(flow.BindSchemas().status());
  PhysicalDesign design;
  design.flow = flow;
  design.threads = threads;
  design.loads_per_day = 24;

  const auto get = [&annotations](QoxMetric metric, double fallback) {
    const auto it = annotations.find(metric);
    return it == annotations.end() ? fallback : it->second;
  };
  const double freshness_req = get(QoxMetric::kFreshness, 1e18);
  const double reliability_req = get(QoxMetric::kReliability, 0.0);
  const double window_req =
      get(QoxMetric::kPerformance, workload.time_window_s);

  const PhaseEstimate base = cost_model.EstimatePhases(
      design, workload.rows_per_run);

  // Sec. 3.4: pressing freshness -> frequent small loads; recovery points
  // are unaffordable, use redundancy for fault tolerance instead.
  if (freshness_req <= 300.0) {
    design.loads_per_day = static_cast<size_t>(
        std::max(24.0, std::ceil(86400.0 / std::max(1.0, freshness_req))));
    if (reliability_req > 0.9) design.redundancy = 3;
  } else if (reliability_req > 0.0) {
    // Sec. 3.2: recovery point after extraction; and after the most
    // expensive operator when the window affords the I/O.
    design.recovery_points = {0};
    double rows = workload.rows_per_run;
    size_t most_expensive = 0;
    double best_cost = -1.0;
    for (size_t i = 0; i < flow.num_ops(); ++i) {
      const double cost = flow.ops()[i].cost_per_row * rows;
      if (cost > best_cost) {
        best_cost = cost;
        most_expensive = i;
      }
      rows *= flow.ops()[i].selectivity;
    }
    design.recovery_points.push_back(most_expensive + 1);
    const PhaseEstimate with_rp =
        cost_model.EstimatePhases(design, workload.rows_per_run);
    if (with_rp.total_s > window_req) {
      // Sec. 3.3: the window does not allow recovery points; switch to
      // redundancy (graceful degradation instead of recovery I/O).
      design.recovery_points.clear();
      design.redundancy = 3;
    }
  }

  // Sec. 3.1: parallelize the pipelineable segment when the sequential
  // plan misses the window.
  if (base.total_s > window_req * 0.5 && threads > 1) {
    const auto [begin, end] = flow.PipelineableRange();
    if (end > begin) {
      design.parallel.partitions = std::min<size_t>(threads, 4);
      design.parallel.range_begin = begin;
      design.parallel.range_end = end;
    }
  }
  return design;
}

}  // namespace qox
