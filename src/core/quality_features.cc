#include "core/quality_features.h"

namespace qox {

Result<LogicalFlow> AddProvenanceColumns(const LogicalFlow& flow,
                                         const std::string& load_tag,
                                         bool keep_target) {
  if (flow.source() == nullptr) {
    return Status::Invalid("flow has no source");
  }
  std::vector<LogicalOp> ops = flow.ops();
  ops.push_back(MakeFunction(
      "Func_provenance",
      {ColumnTransform::Constant("_source",
                                 Value::String(flow.source()->name())),
       ColumnTransform::Constant("_load_tag", Value::String(load_tag))}));
  QOX_ASSIGN_OR_RETURN(const std::vector<Schema> schemas,
                       BindLogicalChain(flow.source()->schema(), ops));
  DataStorePtr target = flow.target();
  if (keep_target) {
    if (target == nullptr || target->schema() != schemas.back()) {
      return Status::Invalid(
          "keep_target requires a target with the provenance-widened "
          "schema");
    }
  } else {
    target = std::make_shared<MemTable>(
        (flow.target() != nullptr ? flow.target()->name() : "target") +
            std::string("_traced"),
        schemas.back());
  }
  LogicalFlow traced(flow.id() + "_traced", flow.source(), std::move(ops),
                     target);
  traced.set_post_success(flow.post_success());
  return traced;
}

Result<MaterializedDesign> MaterializeQualityFeatures(
    const PhysicalDesign& design, const std::string& load_tag) {
  MaterializedDesign out;
  out.design = design;
  if (design.provenance_columns) {
    QOX_ASSIGN_OR_RETURN(out.design.flow,
                         AddProvenanceColumns(design.flow, load_tag));
    // The widened chain is one op longer; a parallel range covering the
    // whole chain keeps covering it (range_end saturates), and recovery
    // cuts remain valid positions.
  }
  if (design.audit_rejects) {
    out.reject_store =
        std::make_shared<MemTable>("reject_audit", RejectStoreSchema());
  }
  return out;
}

ExecutionConfig MaterializedExecutionConfig(
    const MaterializedDesign& materialized, RecoveryPointStorePtr rp_store,
    FailureInjector* injector) {
  ExecutionConfig config =
      materialized.design.ToExecutionConfig(std::move(rp_store), injector);
  config.reject_store = materialized.reject_store;
  return config;
}

}  // namespace qox
