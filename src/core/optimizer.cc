#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/rewrites.h"

namespace qox {

std::string OptimizationResult::Summary() const {
  std::ostringstream oss;
  oss << "explored=" << designs_explored
      << " pruned=" << designs_pruned_by_softgoals
      << " pareto=" << pareto_front.size() << "\nbest: "
      << best.design.Describe() << "\n  " << best.predicted.ToString()
      << "\n  " << best.evaluation.ToString();
  return oss.str();
}

Result<std::map<std::string, GoalLabel>> QoxOptimizer::SoftGoalLabels(
    const PhysicalDesign& design) {
  const SoftGoalGraph graph = BuildFigure2Graph();
  // Adopted decisions are satisfied leaves; decisions the design does not
  // adopt are UNDETERMINED (not denied): not partitioning a flow does not
  // actively work against any goal, it merely contributes nothing.
  std::map<std::string, GoalLabel> leaves;
  const bool parallel = design.parallel.partitions > 1;
  leaves[Figure2Leaves::kParallelism] =
      parallel ? GoalLabel::kSatisfied : GoalLabel::kUndetermined;
  leaves[Figure2Leaves::kPartitioning] =
      parallel ? GoalLabel::kSatisfied : GoalLabel::kUndetermined;
  leaves[Figure2Leaves::kRecoveryPoints] = design.recovery_points.empty()
                                               ? GoalLabel::kUndetermined
                                               : GoalLabel::kSatisfied;
  leaves[Figure2Leaves::kRedundancy] = design.redundancy > 1
                                           ? GoalLabel::kSatisfied
                                           : GoalLabel::kUndetermined;
  // Designs produced by this library always come with generated
  // documentation (plan dumps, graphs), so the documentation leaf is
  // weakly satisfied by construction.
  leaves[Figure2Leaves::kDocumentation] = GoalLabel::kWeaklySatisfied;
  return graph.Propagate(leaves);
}

namespace {

/// Maps a constrained QoX metric to the Fig. 2 soft-goal that expresses
/// it (empty when the graph has no goal for the metric).
std::string GoalForMetric(QoxMetric metric) {
  switch (metric) {
    case QoxMetric::kReliability:
      return "reliability[process]";
    case QoxMetric::kPerformance:
      return "performance[flow]";
    case QoxMetric::kFreshness:
      return "freshness[data]";
    case QoxMetric::kMaintainability:
      return "maintainability[flow]";
    default:
      return "";
  }
}

/// True when `a` dominates `b` over the objective's preferred metrics
/// (at least as good everywhere, strictly better somewhere).
bool Dominates(const QoxVector& a, const QoxVector& b,
               const std::vector<QoxPreference>& prefs) {
  bool strictly_better = false;
  for (const QoxPreference& p : prefs) {
    const double av = a.GetOr(p.metric, HigherIsBetter(p.metric) ? 0.0 : 1e18);
    const double bv = b.GetOr(p.metric, HigherIsBetter(p.metric) ? 0.0 : 1e18);
    const bool a_better = HigherIsBetter(p.metric) ? av > bv : av < bv;
    const bool a_worse = HigherIsBetter(p.metric) ? av < bv : av > bv;
    if (a_worse) return false;
    if (a_better) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace

std::vector<std::vector<size_t>> QoxOptimizer::RecoveryPointChoices(
    const LogicalFlow& flow) const {
  std::vector<std::vector<size_t>> choices = {{}};
  if (!options_.explore_recovery_points) return choices;
  // Heuristic candidate cuts (Sec. 3.2): after extraction (cut 0), after
  // the most expensive operator, after the last blocking operator, before
  // the load (cut n).
  std::vector<size_t> candidates;
  const auto add = [&candidates](size_t cut) {
    if (std::find(candidates.begin(), candidates.end(), cut) ==
        candidates.end()) {
      candidates.push_back(cut);
    }
  };
  add(0);
  const std::vector<LogicalOp>& ops = flow.ops();
  if (!ops.empty()) {
    size_t most_expensive = 0;
    double best_cost = -1.0;
    double rows = 1.0;
    for (size_t i = 0; i < ops.size(); ++i) {
      const double cost = ops[i].cost_per_row * rows;
      if (cost > best_cost) {
        best_cost = cost;
        most_expensive = i;
      }
      rows *= ops[i].selectivity;
    }
    add(most_expensive + 1);
    for (size_t i = ops.size(); i > 0; --i) {
      if (ops[i - 1].blocking) {
        add(i);
        break;
      }
    }
    add(ops.size());
  }
  std::sort(candidates.begin(), candidates.end());
  // Subsets of the candidates up to max_recovery_points, smallest first.
  const size_t n = candidates.size();
  for (size_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<size_t> subset;
    for (size_t bit = 0; bit < n; ++bit) {
      if (mask & (1u << bit)) subset.push_back(candidates[bit]);
    }
    if (subset.size() <= options_.max_recovery_points) {
      choices.push_back(std::move(subset));
    }
  }
  return choices;
}

Result<OptimizationResult> QoxOptimizer::Optimize(
    const LogicalFlow& flow, const QoxObjective& objective,
    const WorkloadParams& workload) const {
  QOX_RETURN_IF_ERROR(flow.BindSchemas().status());

  // 1. Orderings: original plus greedily reordered.
  std::vector<LogicalFlow> orderings = {flow};
  if (options_.explore_orderings) {
    QOX_ASSIGN_OR_RETURN(const ReorderResult reordered,
                         GreedyReorder(flow, workload.rows_per_run));
    if (reordered.swaps_applied > 0) orderings.push_back(reordered.flow);
  }

  // 2. Load schedules.
  std::vector<size_t> loads = options_.loads_per_day_choices;
  if (loads.empty()) loads = {options_.loads_per_day};

  OptimizationResult result;
  bool have_best = false;
  std::vector<DesignCandidate> front;

  for (const LogicalFlow& ordering : orderings) {
    const std::pair<size_t, size_t> segment = ordering.PipelineableRange();
    const std::vector<std::vector<size_t>> rp_choices =
        RecoveryPointChoices(ordering);
    for (const size_t partitions : options_.partition_choices) {
      // Parallel extents: none, pipelineable segment, whole chain.
      std::vector<ParallelSpec> extents;
      if (partitions <= 1) {
        extents.push_back(ParallelSpec{});
      } else {
        ParallelSpec whole;
        whole.partitions = partitions;
        extents.push_back(whole);
        if (segment.second > segment.first &&
            (segment.first != 0 || segment.second != ordering.num_ops())) {
          ParallelSpec part;
          part.partitions = partitions;
          part.range_begin = segment.first;
          part.range_end = segment.second;
          extents.push_back(part);
        }
      }
      for (const ParallelSpec& extent : extents) {
        for (const size_t redundancy : options_.redundancy_choices) {
          for (const std::vector<size_t>& rps : rp_choices) {
            // Redundancy replaces recovery (Sec. 3.3): skip combinations
            // carrying both mechanisms.
            if (redundancy > 1 && !rps.empty()) continue;
            for (const size_t load_freq : loads) {
              PhysicalDesign design;
              design.flow = ordering;
              design.threads = options_.threads;
              design.parallel = extent;
              design.recovery_points = rps;
              design.redundancy = redundancy;
              design.loads_per_day = load_freq;
              ++result.designs_explored;

              if (options_.softgoal_pruning) {
                QOX_ASSIGN_OR_RETURN(const auto labels,
                                     SoftGoalLabels(design));
                bool pruned = false;
                for (const QoxConstraint& c : objective.constraints()) {
                  if (c.kind != QoxConstraint::Kind::kAtLeast) continue;
                  const std::string goal = GoalForMetric(c.metric);
                  if (goal.empty()) continue;
                  const auto it = labels.find(goal);
                  if (it != labels.end() && it->second == GoalLabel::kDenied) {
                    pruned = true;
                    break;
                  }
                }
                if (pruned) {
                  ++result.designs_pruned_by_softgoals;
                  continue;
                }
              }

              QOX_ASSIGN_OR_RETURN(const QoxVector predicted,
                                   cost_model_.Predict(design, workload));
              DesignCandidate candidate;
              candidate.design = design;
              candidate.predicted = predicted;
              candidate.evaluation = objective.Evaluate(predicted);

              // Track best: feasibility first, then score.
              const bool better =
                  !have_best ||
                  (candidate.evaluation.feasible &&
                   !result.best.evaluation.feasible) ||
                  (candidate.evaluation.feasible ==
                       result.best.evaluation.feasible &&
                   candidate.evaluation.score > result.best.evaluation.score);
              if (better) {
                result.best = candidate;
                have_best = true;
              }

              // Maintain the Pareto front over preferred metrics.
              bool dominated = false;
              for (const DesignCandidate& existing : front) {
                if (Dominates(existing.predicted, candidate.predicted,
                              objective.preferences())) {
                  dominated = true;
                  break;
                }
              }
              if (!dominated) {
                front.erase(
                    std::remove_if(front.begin(), front.end(),
                                   [&](const DesignCandidate& existing) {
                                     return Dominates(candidate.predicted,
                                                      existing.predicted,
                                                      objective.preferences());
                                   }),
                    front.end());
                front.push_back(candidate);
              }
            }
          }
        }
      }
    }
  }
  if (!have_best) {
    return Status::Internal("optimizer explored no designs");
  }
  result.pareto_front = std::move(front);
  QOX_ASSIGN_OR_RETURN(result.softgoal_labels,
                       SoftGoalLabels(result.best.design));
  return result;
}

}  // namespace qox
