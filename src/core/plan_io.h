// Design metadata interchange (XML).
//
// The paper positions QoX tooling as engine-agnostic: "It can work on top
// of any ETL engine that provides export and import capabilities (e.g.,
// the metadata of an ETL workflow can be exported as or imported from an
// XML file)." This module implements that boundary: a PhysicalDesign's
// structure and physical choices serialize to XML, and XML parses back
// into a DesignSpec — the structural description a consultant (or another
// tool) exchanges. Re-binding a spec to executable stores/operators is
// deliberately out of scope for import (operators need live stores and
// registries); SpecOf() lets callers verify a design matches a spec.

#ifndef QOX_CORE_PLAN_IO_H_
#define QOX_CORE_PLAN_IO_H_

#include <string>
#include <vector>

#include "core/design.h"

namespace qox {

/// Structural description of one operator (no factory).
struct OpSpec {
  std::string name;
  std::string kind;
  bool blocking = false;
  double cost_per_row = 1.0;
  double selectivity = 1.0;
  std::vector<std::string> reads;
  std::vector<std::string> creates;
  std::vector<std::string> drops;

  bool operator==(const OpSpec& other) const;
};

/// Structural description of a physical design: everything XML carries.
struct DesignSpec {
  std::string flow_id;
  std::string source;
  std::string target;
  std::vector<OpSpec> ops;

  size_t threads = 1;
  size_t partitions = 1;
  std::string partition_scheme = "round_robin";  ///< or "hash"
  std::string hash_column;
  size_t range_begin = 0;
  size_t range_end = static_cast<size_t>(-1);
  std::vector<size_t> recovery_points;
  size_t redundancy = 1;
  size_t loads_per_day = 24;
  bool provenance_columns = false;
  bool audit_rejects = false;

  bool operator==(const DesignSpec& other) const;
};

/// Extracts the structural spec of a design (for export / comparison).
DesignSpec SpecOf(const PhysicalDesign& design);

/// Serializes a design spec as a self-contained XML document.
std::string ExportDesignXml(const DesignSpec& spec);
std::string ExportDesignXml(const PhysicalDesign& design);

/// Parses a document produced by ExportDesignXml (or a compatible tool).
/// Unknown elements are ignored; malformed XML or missing required
/// attributes error.
Result<DesignSpec> ParseDesignXml(const std::string& xml);

}  // namespace qox

#endif  // QOX_CORE_PLAN_IO_H_
