// Design metadata interchange (XML).
//
// The paper positions QoX tooling as engine-agnostic: "It can work on top
// of any ETL engine that provides export and import capabilities (e.g.,
// the metadata of an ETL workflow can be exported as or imported from an
// XML file)." This module implements that boundary: a PhysicalDesign's
// structure and physical choices serialize to XML, and XML parses back
// into a DesignSpec — the structural description a consultant (or another
// tool) exchanges. Re-binding a spec to executable stores/operators is
// deliberately out of scope for import (operators need live stores and
// registries); SpecOf() lets callers verify a design matches a spec.

#ifndef QOX_CORE_PLAN_IO_H_
#define QOX_CORE_PLAN_IO_H_

#include <string>
#include <vector>

#include "core/design.h"

namespace qox {

/// One node of the lowered ExecutionPlan (engine/plan.h) as exported
/// metadata: enough for an external tool to reconstruct the stage graph
/// without re-running the planner.
struct PlanStageSpec {
  size_t id = 0;
  std::string kind;  ///< PlanNodeKindName ("extract", "transform", ...)
  std::string label;
  size_t begin = 0;  ///< op range [begin, end); cut position for barriers
  size_t end = 0;
  size_t partition = 0;
  /// Section index, or size_t(-1) for nodes outside sections (serialized
  /// as section="none").
  size_t section = static_cast<size_t>(-1);

  bool operator==(const PlanStageSpec& other) const;
};

/// One channel edge of the lowered plan.
struct PlanEdgeSpec {
  size_t from = 0;
  size_t to = 0;
  size_t capacity = 8;

  bool operator==(const PlanEdgeSpec& other) const;
};

/// Structural description of one operator (no factory).
struct OpSpec {
  std::string name;
  std::string kind;
  bool blocking = false;
  double cost_per_row = 1.0;
  double selectivity = 1.0;
  std::vector<std::string> reads;
  std::vector<std::string> creates;
  std::vector<std::string> drops;
  /// Row-error containment policy (ErrorPolicyName): "fail_fast", "skip",
  /// or "quarantine".
  std::string error_policy = "fail_fast";

  bool operator==(const OpSpec& other) const;
};

/// Structural description of a physical design: everything XML carries.
struct DesignSpec {
  std::string flow_id;
  std::string source;
  std::string target;
  std::vector<OpSpec> ops;

  size_t threads = 1;
  size_t partitions = 1;
  std::string partition_scheme = "round_robin";  ///< or "hash"
  std::string hash_column;
  size_t range_begin = 0;
  size_t range_end = static_cast<size_t>(-1);
  std::vector<size_t> recovery_points;
  size_t redundancy = 1;
  size_t loads_per_day = 24;
  bool provenance_columns = false;
  bool audit_rejects = false;
  bool streaming = false;
  size_t channel_capacity = 8;
  /// Flow-level error budget; the defaults mean unlimited (no budget).
  size_t error_budget_max_rows = static_cast<size_t>(-1);
  double error_budget_max_fraction = 1.0;
  /// Crash safety: durable flow journal + its sync policy
  /// (JournalSyncName: "none", "commit", "always").
  bool journaled = false;
  std::string journal_sync = "always";
  /// Resource pressure: memory budget for blocking-operator state (0 =
  /// unlimited) and the degradation policy on resource exhaustion
  /// (ResourcePolicyName: "fail_flow", "pause_retry", "shed").
  size_t memory_budget_bytes = 0;
  std::string resource_policy = "fail_flow";
  /// Columnar batch fast path (PhysicalDesign::columnar).
  bool columnar = false;
  /// Freshness SLA expressed as an execution deadline, seconds
  /// (PhysicalDesign::sla_deadline_s). 0 = none; the attribute appears in
  /// the document only when set, so pre-SLA documents stay byte-stable
  /// and still parse (schema evolution).
  double sla_deadline_s = 0.0;
  /// Multi-flow service context the design is meant to be admitted under
  /// (engine/flow_service.h FlowServiceConfig), exported as an optional
  /// <service> element: shared-pool workers, concurrency slots, queue
  /// policy ("edf" or "fifo"), and admission control. has_service == false
  /// (the default) omits the element entirely — older documents without it
  /// load unchanged.
  bool has_service = false;
  size_t service_workers = 4;
  size_t service_max_concurrent = 4;
  std::string service_policy = "edf";
  bool service_admit_only_feasible = false;
  /// Sharded CDC ingestion shape (PhysicalDesign::cdc_*), exported as an
  /// optional <cdc> element. cdc_shards == 0 (the default) omits the
  /// element entirely, so pre-CDC documents stay byte-stable and parse
  /// unchanged.
  size_t cdc_shards = 0;
  size_t cdc_slice_events = 64;
  double cdc_update_rate_per_s = 0.0;

  /// The lowered ExecutionPlan (stage nodes + channel edges), exported as
  /// read-only metadata. SpecOf fills it by lowering the design; import
  /// reads it back verbatim. It is descriptive — re-imported designs are
  /// re-lowered from the structural fields, and the planner equivalence
  /// tests keep the two views consistent.
  std::vector<PlanStageSpec> plan_stages;
  std::vector<PlanEdgeSpec> plan_edges;

  bool operator==(const DesignSpec& other) const;
};

/// Extracts the structural spec of a design (for export / comparison).
DesignSpec SpecOf(const PhysicalDesign& design);

/// Serializes a design spec as a self-contained XML document.
std::string ExportDesignXml(const DesignSpec& spec);
std::string ExportDesignXml(const PhysicalDesign& design);

/// Parses a document produced by ExportDesignXml (or a compatible tool).
/// Unknown elements are ignored; malformed XML or missing required
/// attributes error.
Result<DesignSpec> ParseDesignXml(const std::string& xml);

}  // namespace qox

#endif  // QOX_CORE_PLAN_IO_H_
