#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "engine/plan.h"
#include "graph/graph_metrics.h"

namespace qox {

std::string PhaseEstimate::ToString() const {
  std::ostringstream oss;
  oss << "total=" << total_s << "s extract=" << extract_s
      << "s transform=" << transform_s << "s load=" << load_s
      << "s rp=" << rp_s << "s merge=" << merge_s
      << "s spill=" << spill_s << "s journal=" << journal_s << "s";
  return oss.str();
}

namespace {

/// Rows entering each op (index i) and leaving the chain, from
/// selectivities. result[i] = rows entering op i; result[n] = output rows.
std::vector<double> RowsAtCuts(const std::vector<LogicalOp>& ops,
                               double input_rows) {
  std::vector<double> rows;
  rows.reserve(ops.size() + 1);
  rows.push_back(input_rows);
  for (const LogicalOp& op : ops) {
    rows.push_back(rows.back() * op.selectivity);
  }
  return rows;
}

/// Expected row-error volume per containment class for one run: walks the
/// chain with volume shrinking by selectivity and charges rows_at[i] *
/// row_error_rate to op i's policy class. Error rates are small by
/// assumption, so the extra shrink from contained rows is ignored —
/// second-order for ranking purposes.
struct ContainmentVolumes {
  double skipped = 0.0;
  double quarantined = 0.0;
  double fail_fast = 0.0;  ///< errors at kFailFast ops: each aborts the run
};

ContainmentVolumes EstimateContainment(const PhysicalDesign& design,
                                       double input_rows,
                                       double row_error_rate) {
  ContainmentVolumes volumes;
  if (row_error_rate <= 0.0) return volumes;
  const std::vector<double> rows = RowsAtCuts(design.flow.ops(), input_rows);
  for (size_t i = 0; i < design.flow.num_ops(); ++i) {
    const double errors = rows[i] * row_error_rate;
    const ErrorPolicy policy = i < design.error_policies.size()
                                   ? design.error_policies[i]
                                   : ErrorPolicy::kFailFast;
    switch (policy) {
      case ErrorPolicy::kSkip:
        volumes.skipped += errors;
        break;
      case ErrorPolicy::kQuarantine:
        volumes.quarantined += errors;
        break;
      case ErrorPolicy::kFailFast:
        volumes.fail_fast += errors;
        break;
    }
  }
  return volumes;
}

/// Amdahl-style speedup of the parallel range, capped by the threads the
/// design can actually get. Solo runs get the design's full thread budget;
/// under a shared FlowService pool `available_threads` is the flow's share
/// of the machine, so concurrent flows degrade each other's speedup the
/// way shared core workers do.
double EffectiveSpeedup(const PhysicalDesign& design,
                        const CostModelParams& params,
                        size_t available_threads) {
  const double ways = static_cast<double>(std::min(
      design.parallel.partitions, std::max<size_t>(1, available_threads)));
  if (ways <= 1.0) return 1.0;
  return std::max(1.0, ways * params.parallel_efficiency);
}

/// Wall time of one streaming (pipelined) run. The dataflow drains
/// completely at pipeline BARRIERS — recovery-point cuts (the collect →
/// write → re-emit stage) and blocking operators (sort/group/delta buffer
/// everything before emitting) — which splits the op chain into sections.
/// Within a section, stages (extract, each transform chunk, load) run
/// concurrently, so the section costs the MAX of its stage times; sections,
/// RP writes, and the ordered merge serialize. On top ride the per-stage
/// spawn/fill startup and the per-row channel transfer overhead — the
/// prices streaming pays that phased execution does not.
///
/// The drain structure (CostChunks and channel borders) comes from the
/// lowered ExecutionPlan, so the model prices exactly the stage graph the
/// streaming scheduler spawns.
double StreamingTotalSeconds(const PhysicalDesign& design,
                             const ExecutionPlan& plan,
                             const CostModelParams& params,
                             const PhaseEstimate& est,
                             const std::vector<double>& op_seconds,
                             const std::vector<double>& rows_at_cut) {
  const size_t n = op_seconds.size();
  double total = 0.0;
  double wall = est.extract_s;  // extract overlaps the first section
  if (plan.drains_after_extract()) {  // RP at cut 0 drains extract by itself
    total += wall;
    wall = 0.0;
  }
  size_t stages = 2;  // extract + load/collect sink
  for (const ExecutionPlan::CostChunk& chunk : plan.cost_chunks()) {
    double stage_s = 0.0;
    for (size_t i = chunk.begin; i < chunk.end; ++i) stage_s += op_seconds[i];
    wall = std::max(wall, stage_s);
    ++stages;
    if (chunk.parallel) {
      stages += design.parallel.partitions + 1;  // partitioner + merge
    }
    if (chunk.drains_at_end) {  // section ends here
      if (chunk.end == n) wall = std::max(wall, est.load_s);
      total += wall;
      wall = 0.0;
    }
  }
  if (n == 0) total = std::max(est.extract_s, est.load_s);

  double channel_s = 0.0;  // each border is a channel edge rows cross
  for (const size_t b : plan.channel_borders()) {
    channel_s += rows_at_cut[b] * params.stream_channel_ns_per_row / 1e9;
  }
  double total_s = total + est.rp_s + est.merge_s + est.spill_s + channel_s +
                   static_cast<double>(stages) *
                       params.stream_stage_startup_us / 1e6;
  if (design.redundancy > 1) {
    total_s *= 1.0 + params.redundancy_contention *
                         static_cast<double>(design.redundancy - 1);
  }
  return total_s;
}

}  // namespace

ExecutionPlan CostModel::PlanFor(const PhysicalDesign& design) {
  PlanInput input;
  input.num_ops = design.flow.num_ops();
  input.blocking.reserve(input.num_ops);
  for (const LogicalOp& op : design.flow.ops()) {
    input.blocking.push_back(op.blocking);
  }
  input.parallel = design.parallel;
  input.parallel.partitions = std::max<size_t>(1, design.parallel.partitions);
  // Cuts beyond the chain would be rejected by the executor at run time;
  // for estimation we simply ignore them so lowering stays total.
  for (const size_t cut : design.recovery_points) {
    if (cut <= input.num_ops) input.recovery_points.push_back(cut);
  }
  input.redundancy = std::max<size_t>(1, design.redundancy);
  input.streaming = design.streaming;
  input.channel_capacity = design.channel_capacity;
  // Containment knobs ride along so plan dumps and exported metadata show
  // the policies the executors would enforce. Pathological values are
  // clamped (like out-of-range cuts above) to keep estimation total.
  input.error_policies = design.error_policies;
  if (input.error_policies.size() > input.num_ops) {
    input.error_policies.resize(input.num_ops);
  }
  input.error_budget = design.error_budget;
  input.error_budget.max_fraction =
      std::min(1.0, std::max(0.0, design.error_budget.max_fraction));
  return ExecutionPlan::Lower(input).ValueOr(ExecutionPlan());
}

PhaseEstimate CostModel::EstimatePhases(const PhysicalDesign& design,
                                        double input_rows) const {
  return EstimatePhases(design, input_rows, design.threads);
}

PhaseEstimate CostModel::EstimatePhases(const PhysicalDesign& design,
                                        double input_rows,
                                        size_t available_threads) const {
  const std::vector<LogicalOp>& ops = design.flow.ops();
  const std::vector<double> rows = RowsAtCuts(ops, input_rows);
  const ExecutionPlan plan = PlanFor(design);
  PhaseEstimate est;
  est.extract_s = input_rows * params_.extract_ns_per_row / 1e9;

  const bool parallel = design.parallel.partitions > 1;
  const size_t rb = parallel ? design.parallel.range_begin : 0;
  const size_t re =
      parallel ? std::min(design.parallel.range_end, ops.size()) : 0;
  const double speedup = EffectiveSpeedup(design, params_, available_threads);
  std::vector<double> op_seconds(ops.size(), 0.0);
  for (size_t i = 0; i < ops.size(); ++i) {
    double op_s = ops[i].cost_per_row * rows[i] *
                  params_.transform_ns_per_unit / 1e9;
    // Columnar fast path: per-row (non-blocking) ops run vectorized.
    if (design.columnar && !ops[i].blocking &&
        ops[i].op_class == OpClass::kPerRow &&
        params_.columnar_speedup > 1.0) {
      op_s /= params_.columnar_speedup;
    }
    if (parallel && i >= rb && i < re) op_s /= speedup;
    op_seconds[i] = op_s;
    est.transform_s += op_s;
  }
  if (parallel && rb < re) {
    est.merge_s = (rows[rb] * params_.split_ns_per_row +
                   rows[re] * params_.merge_ns_per_row) /
                  1e9;
  }
  for (const size_t cut : plan.rp_cuts()) {
    est.rp_s += rows[cut] * params_.bytes_per_row * params_.rp_ns_per_byte /
                    1e9 +
                params_.rp_fixed_us / 1e6;
  }
  est.load_s = rows.back() * params_.load_ns_per_row / 1e9;
  // Optional quality features add per-row work on the loaded volume.
  if (design.provenance_columns) {
    est.transform_s += rows.back() * 0.4 * params_.transform_ns_per_unit / 1e9;
  }
  if (design.audit_rejects) {
    est.transform_s +=
        (rows.front() - rows.back()) * 0.5 * params_.transform_ns_per_unit /
        1e9;
  }
  // Containment handling cost on the expected error volume (zero with a
  // clean-input model, so the seed predictions are untouched).
  if (params_.row_error_rate > 0.0) {
    const ContainmentVolumes volumes =
        EstimateContainment(design, input_rows, params_.row_error_rate);
    est.transform_s += (volumes.skipped * params_.skip_ns_per_row +
                        volumes.quarantined * params_.quarantine_ns_per_row) /
                       1e9;
  }
  // Resource-pressure law: with a finite memory budget, every blocking
  // op whose working set overflows the budget writes the overflow to a
  // checksummed spill run and reads it back during merge/replay. The
  // working set is the buffered input for sort/delta and the group table
  // (post-selectivity volume) for group.
  if (design.memory_budget_bytes > 0) {
    const double budget = static_cast<double>(design.memory_budget_bytes);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].blocking) continue;
      const double ws = (ops[i].kind == "group" ? rows[i + 1] : rows[i]) *
                        params_.bytes_per_row;
      const double overflow = std::max(0.0, ws - budget);
      est.spill_s += overflow * 2.0 * params_.spill_ns_per_byte / 1e9;
    }
  }
  // Flow-journal durability: a journaled run appends a fixed set of
  // lifecycle records (load_base, attempt_start, budget, attempt_end,
  // flow_commit) plus one rp_commit per recovery cut; the sync policy
  // decides which of those appends pay an fsync.
  if (design.journaled) {
    const double rps = static_cast<double>(plan.rp_cuts().size());
    double synced = 0.0;
    switch (design.journal_sync) {
      case JournalSync::kAlways:
        synced = 5.0 + rps;
        break;
      case JournalSync::kCommit:
        synced = 3.0 + rps;  // commit-flagged records only
        break;
      case JournalSync::kNone:
        synced = 0.0;
        break;
    }
    est.journal_s = synced * params_.journal_sync_us / 1e6;
  }
  double body = est.extract_s + est.transform_s + est.merge_s + est.rp_s +
                est.spill_s + est.journal_s;
  if (design.redundancy > 1) {
    body *= 1.0 + params_.redundancy_contention *
                      static_cast<double>(design.redundancy - 1);
  }
  est.total_s = body + est.load_s;
  if (design.streaming) {
    est.total_s =
        StreamingTotalSeconds(design, plan, params_, est, op_seconds, rows) +
        est.journal_s;
  }
  return est;
}

double CostModel::AttemptSuccessProbability(double exec_s,
                                            double failure_rate_per_s) {
  if (failure_rate_per_s <= 0.0) return 1.0;
  return std::exp(-failure_rate_per_s * std::max(0.0, exec_s));
}

double CostModel::EstimateRecoverability(const PhysicalDesign& design,
                                         const PhaseEstimate& phases) const {
  // Build the timeline of durable points. Time 0 (restart from scratch) is
  // always durable; each recovery-point cut adds one at the moment its
  // rows are written.
  const std::vector<LogicalOp>& ops = design.flow.ops();
  const std::vector<double> rows = RowsAtCuts(ops, 1.0);  // relative volumes
  // Per-op absolute durations consistent with EstimatePhases' shares.
  double unit_sum = 0.0;
  for (size_t i = 0; i < ops.size(); ++i) {
    unit_sum += ops[i].cost_per_row * rows[i];
  }
  // The RP write happens AT the cut, so its time belongs to the segment
  // before the durable point, not to the post-last-RP tail. The durable
  // cuts come from the lowered plan (sorted, deduplicated, clamped to the
  // chain) — the same hard barriers the executors persist at.
  const ExecutionPlan plan = PlanFor(design);
  const auto has_rp_at = [&](size_t cut) { return plan.rp_at(cut); };
  // Spread the total rp_s over the cuts proportionally to their volume.
  double rp_volume_sum = 0.0;
  for (const size_t cut : plan.rp_cuts()) {
    rp_volume_sum += rows[cut] + 1e-9;
  }
  const auto rp_share_s = [&](size_t cut) {
    if (rp_volume_sum <= 0) return 0.0;
    return phases.rp_s * (rows[cut] + 1e-9) / rp_volume_sum;
  };

  std::vector<double> durable{0.0};
  double t = phases.extract_s;
  if (has_rp_at(0)) {
    t += rp_share_s(0);
    durable.push_back(t);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const double share =
        unit_sum > 0 ? ops[i].cost_per_row * rows[i] / unit_sum : 0.0;
    t += share * (phases.transform_s + phases.merge_s);
    if (has_rp_at(i + 1)) {
      t += rp_share_s(i + 1);
      durable.push_back(t);
    }
  }
  const double total = std::max(phases.total_s, t);
  durable.push_back(total);  // sentinel end
  // E[rework | failure] with failure time uniform over [0, total):
  // sum of len^2 / (2 * total) over inter-durable segments, plus the fixed
  // resume cost whenever the restart point is a real RP (not scratch).
  double expected = 0.0;
  for (size_t i = 0; i + 1 < durable.size(); ++i) {
    const double len = durable[i + 1] - durable[i];
    if (len <= 0) continue;
    expected += len * len / (2.0 * total);
    if (i > 0) {
      expected += (len / total) * params_.rp_resume_fixed_s;
    }
  }
  return expected;
}

double CostModel::EstimateQuarantineVolume(const PhysicalDesign& design,
                                           double input_rows) const {
  return EstimateContainment(design, input_rows, params_.row_error_rate)
      .quarantined;
}

double CostModel::EstimateBudgetAbortProbability(const PhysicalDesign& design,
                                                 double input_rows) const {
  if (design.error_budget.unlimited()) return 0.0;
  const ContainmentVolumes volumes =
      EstimateContainment(design, input_rows, params_.row_error_rate);
  const double expected = volumes.skipped + volumes.quarantined;
  if (expected <= 0.0) return 0.0;
  double ceiling =
      design.error_budget.max_rows == std::numeric_limits<size_t>::max()
          ? input_rows
          : static_cast<double>(design.error_budget.max_rows);
  ceiling = std::min(ceiling, design.error_budget.max_fraction * input_rows);
  // Contained count ~ Poisson(expected); the tail beyond the ceiling via a
  // normal approximation — smooth and ordinal, which is all ranking needs.
  const double sigma = std::sqrt(std::max(1.0, expected));
  const double tail =
      0.5 * std::erfc((ceiling - expected) / (sigma * std::sqrt(2.0)));
  return std::min(1.0, std::max(0.0, tail));
}

double CostModel::EstimateReliability(const PhysicalDesign& design,
                                      const PhaseEstimate& phases,
                                      const WorkloadParams& workload) const {
  // Data-quality survival. Row errors are data-determined: every retry and
  // every replica hits the identical rows, so neither recovery points nor
  // redundancy lifts this term — a fail-fast op on dirty input aborts
  // permanently (P[zero errors] = exp(-expected)), and a breached error
  // budget aborts permanently by construction (kErrorBudgetExceeded is not
  // transient). 1.0 under the default clean-input model.
  double dq_survival = 1.0;
  if (params_.row_error_rate > 0.0) {
    const ContainmentVolumes volumes = EstimateContainment(
        design, workload.rows_per_run, params_.row_error_rate);
    dq_survival =
        std::exp(-volumes.fail_fast) *
        (1.0 - EstimateBudgetAbortProbability(design, workload.rows_per_run));
  }
  // Resource survival: under kFailFlow a disk-pressure fault kills the run
  // outright (kResourceExhausted is not transient, so retries don't save
  // it); the degrading policies ride it out.
  if (workload.disk_fault_rate > 0.0 &&
      design.resource_policy == ResourcePolicy::kFailFlow) {
    dq_survival *= 1.0 - std::min(1.0, workload.disk_fault_rate);
  }
  const double p_fail =
      1.0 - AttemptSuccessProbability(phases.total_s,
                                      workload.failure_rate_per_s);
  if (design.redundancy > 1) {
    // Majority vote among k independent instances.
    const size_t k = design.redundancy;
    const size_t majority = k / 2 + 1;
    double success = 0.0;
    for (size_t j = majority; j <= k; ++j) {
      // C(k, j)
      double comb = 1.0;
      for (size_t x = 0; x < j; ++x) {
        comb *= static_cast<double>(k - x) / static_cast<double>(x + 1);
      }
      success += comb * std::pow(1.0 - p_fail, static_cast<double>(j)) *
                 std::pow(p_fail, static_cast<double>(k - j));
    }
    return std::min(1.0, success) * dq_survival;
  }
  // Retries within the time window: a retry costs the expected rework —
  // cheap with recovery points, a full rerun without — plus the retry
  // policy's mean backoff wait; with probability rp_corruption_prob the
  // newest recovery point fails verification and the retry degrades to a
  // from-scratch rerun. Designs whose retries are cheap fit more of them
  // into the window ("to leave time for potential recovery", Sec. 2.2),
  // but never more than the policy's attempt budget allows.
  const double rework = std::max(1e-6, EstimateRecoverability(design, phases));
  const double p_corrupt =
      design.recovery_points.empty() ? 0.0 : params_.rp_corruption_prob;
  const double retry_cost = (1.0 - p_corrupt) * rework +
                            p_corrupt * phases.total_s +
                            design.retry.MeanBackoffSeconds();
  const double slack = std::max(0.0, workload.time_window_s - phases.total_s);
  const double budget = static_cast<double>(
      std::max<size_t>(1, design.retry.max_attempts) - 1);
  const double retries_allowed = std::min(
      std::min(16.0, budget), std::floor(slack / std::max(1e-6, retry_cost)));
  return (1.0 - std::pow(p_fail, 1.0 + std::max(0.0, retries_allowed))) *
         dq_survival;
}

double CostModel::EstimateRestartCost(const PhysicalDesign& design,
                                      const PhaseEstimate& phases,
                                      const WorkloadParams& workload) const {
  if (workload.crash_rate_per_s <= 0.0) return 0.0;
  // Crashes arrive Poisson over the run: E[crashes] = rate * T (the rate
  // regime of interest is rate * T << 1, where this is also the crash
  // probability). Each crash pays the supervised-restart machinery plus
  // rework. A journaled design resumes from its durable prefix — the same
  // expected-rework integral as recoverability — while an unjournaled one
  // re-executes the whole run (its recovery points died with the process's
  // in-memory store registry).
  const double expected_crashes =
      workload.crash_rate_per_s * std::max(0.0, phases.total_s);
  const double rework = design.journaled
                            ? EstimateRecoverability(design, phases)
                            : phases.total_s;
  return expected_crashes * (params_.restart_fixed_s + rework);
}

double CostModel::EstimateResourceDelay(const PhysicalDesign& design,
                                        const PhaseEstimate& phases,
                                        const WorkloadParams& workload) const {
  const double p = std::min(1.0, std::max(0.0, workload.disk_fault_rate));
  if (p <= 0.0) return 0.0;
  switch (design.resource_policy) {
    case ResourcePolicy::kFailFlow:
      // The run dies; the reschedule pays the restart machinery plus the
      // rework back to the last durable cut (full rerun without RPs).
      return p * (params_.restart_fixed_s +
                  EstimateRecoverability(design, phases));
    case ResourcePolicy::kPauseRetry:
      // The run waits out the pressure and resumes from its durable
      // prefix: one mean backoff plus the same rework integral.
      return p * (design.retry.MeanBackoffSeconds() +
                  EstimateRecoverability(design, phases));
    case ResourcePolicy::kShedToQuarantine: {
      // The fault strikes uniformly during the load, so on average half
      // the output volume is re-encoded into the dead-letter ledger
      // instead of the warehouse.
      const std::vector<double> rows =
          RowsAtCuts(design.flow.ops(), workload.rows_per_run);
      return p * 0.5 * rows.back() * params_.quarantine_ns_per_row / 1e9;
    }
  }
  return 0.0;
}

double CostModel::EstimateFreshness(const PhysicalDesign& design,
                                    const WorkloadParams& workload) const {
  const double loads =
      std::max<double>(1.0, static_cast<double>(design.loads_per_day));
  const double daily_rows = workload.rows_per_run * workload.loads_per_day > 0
                                ? workload.rows_per_run * workload.loads_per_day
                                : workload.rows_per_run;
  const double batch_rows = daily_rows / loads;
  const double period_s = 86400.0 / loads;
  const PhaseEstimate batch = EstimatePhases(design, batch_rows);
  return period_s / 2.0 + batch.total_s;
}

double CostModel::EstimateCdcFreshness(const PhysicalDesign& design,
                                       const WorkloadParams& workload) const {
  if (design.cdc_shards == 0) return 0.0;
  const double rate = workload.cdc_update_rate_per_s > 0.0
                          ? workload.cdc_update_rate_per_s
                          : design.cdc_update_rate_per_s;
  if (rate <= 0.0) return 0.0;
  const double slice =
      std::max<double>(1.0, static_cast<double>(design.cdc_slice_events));
  // Batching delay: an event waits on average half a slice fill before the
  // coordinator even sees its slice.
  const double fill_s = slice / (2.0 * rate);
  // Shard-parallel work: each worker extracts and transforms only its key
  // share of the slice.
  double cost_units = 0.0;
  for (const LogicalOp& op : design.flow.ops()) cost_units += op.cost_per_row;
  const double work_s = slice *
                        (params_.extract_ns_per_row +
                         cost_units * params_.transform_ns_per_unit) /
                        1e9;
  const double eff_shards =
      std::max(1.0, static_cast<double>(design.cdc_shards) *
                        params_.parallel_efficiency);
  // Serial coordinator floor: the version merge and the warehouse append
  // happen on one process regardless of shard count.
  const double serial_s =
      slice * (params_.merge_ns_per_row + params_.load_ns_per_row) / 1e9;
  return fill_s + work_s / eff_shards + serial_s;
}

Result<double> CostModel::EstimateMaintainability(
    const PhysicalDesign& design) const {
  QOX_ASSIGN_OR_RETURN(const FlowGraph graph, design.flow.ToGraph());
  QOX_ASSIGN_OR_RETURN(const MaintainabilityMetrics metrics,
                       ComputeMaintainability(graph));
  double score = metrics.score;
  // Physical plumbing the maintainer must understand: partition/merge
  // wiring, redundant instances, recovery-point handling.
  if (design.parallel.partitions > 1) {
    score *= std::pow(0.95, std::log2(static_cast<double>(
                                design.parallel.partitions)));
  }
  if (design.redundancy > 1) {
    score *= std::pow(0.96, static_cast<double>(design.redundancy - 1));
  }
  score *= std::pow(0.99, static_cast<double>(design.recovery_points.size()));
  return score;
}

Result<QoxVector> CostModel::Predict(const PhysicalDesign& design,
                                     const WorkloadParams& workload) const {
  QoxVector v;
  // Multi-flow contention: under a shared FlowService pool the design only
  // gets its proportional share of the thread budget. concurrent_flows == 1
  // (the default) grants the full budget, keeping solo predictions
  // byte-identical to the seed model.
  const size_t available_threads =
      workload.concurrent_flows > 1.0
          ? std::max<size_t>(1, static_cast<size_t>(
                                    static_cast<double>(design.threads) /
                                    workload.concurrent_flows))
          : design.threads;
  const PhaseEstimate phases =
      EstimatePhases(design, workload.rows_per_run, available_threads);
  v.Set(QoxMetric::kPerformance, phases.total_s);
  v.Set(QoxMetric::kRecoverability, EstimateRecoverability(design, phases));
  const double reliability = EstimateReliability(design, phases, workload);
  v.Set(QoxMetric::kReliability, reliability);
  v.Set(QoxMetric::kFreshness, EstimateFreshness(design, workload));
  // Sharded CDC designs are fresh at slice granularity, not load-schedule
  // granularity — the CDC law replaces the periodic-batch one when it has
  // a stream rate to price against.
  if (design.cdc_shards > 0) {
    const double cdc_freshness = EstimateCdcFreshness(design, workload);
    if (cdc_freshness > 0.0) v.Set(QoxMetric::kFreshness, cdc_freshness);
  }
  QOX_ASSIGN_OR_RETURN(const double maintainability,
                       EstimateMaintainability(design));
  v.Set(QoxMetric::kMaintainability, maintainability);

  // Scalability: retention of per-row efficiency at 10x volume.
  const PhaseEstimate at_10x = EstimatePhases(
      design, workload.rows_per_run * 10.0, available_threads);
  const double scalability =
      at_10x.total_s > 0
          ? std::min(1.0, phases.total_s * 10.0 / at_10x.total_s)
          : 1.0;
  v.Set(QoxMetric::kScalability, scalability);

  // Availability: share of the time window not consumed by execution and
  // expected failure rework.
  const double p_fail = 1.0 - AttemptSuccessProbability(
                                  phases.total_s, workload.failure_rate_per_s);
  const double busy = phases.total_s +
                      p_fail * EstimateRecoverability(design, phases) +
                      EstimateResourceDelay(design, phases, workload);
  v.Set(QoxMetric::kAvailability,
        std::max(0.0, std::min(1.0, 1.0 - busy /
                                         std::max(1e-9,
                                                  workload.time_window_s))));

  // Cost: machine-seconds across threads and redundant instances, plus
  // recovery-point storage (relative units).
  const double machine_seconds = phases.total_s *
                                 static_cast<double>(design.threads) *
                                 static_cast<double>(design.redundancy);
  double rp_rows = 0.0;
  {
    double rows = workload.rows_per_run;
    std::vector<double> at_cut{rows};
    for (const LogicalOp& op : design.flow.ops()) {
      rows *= op.selectivity;
      at_cut.push_back(rows);
    }
    const ExecutionPlan plan = PlanFor(design);
    for (const size_t cut : plan.rp_cuts()) {
      rp_rows += at_cut[cut];
    }
  }
  const double storage_cost = rp_rows * params_.bytes_per_row / 1e8;
  v.Set(QoxMetric::kCost, machine_seconds + storage_cost);

  // Robustness: structural — presence of data-quality handling. Row-level
  // containment absorbs anomalies the quality operators don't (a malformed
  // value no filter anticipated skips or quarantines instead of aborting),
  // and quarantining beats skipping because the rows remain recoverable.
  size_t quality_ops = 0;
  for (const LogicalOp& op : design.flow.ops()) {
    if (op.kind == "filter" || op.kind == "lookup") ++quality_ops;
  }
  double robustness =
      0.3 + 0.7 * std::min<double>(1.0,
                                   static_cast<double>(quality_ops) / 2.0);
  bool any_skip = false;
  bool any_quarantine = false;
  for (const ErrorPolicy policy : design.error_policies) {
    any_skip |= policy == ErrorPolicy::kSkip;
    any_quarantine |= policy == ErrorPolicy::kQuarantine;
  }
  if (any_quarantine) {
    robustness = std::min(1.0, robustness + 0.2);
  } else if (any_skip) {
    robustness = std::min(1.0, robustness + 0.1);
  }
  v.Set(QoxMetric::kRobustness, robustness);

  v.Set(QoxMetric::kTraceability, design.provenance_columns ? 0.9 : 0.2);
  v.Set(QoxMetric::kAuditability,
        (design.audit_rejects ? 0.8 : 0.3) +
            (design.recovery_points.empty() ? 0.0 : 0.1));
  // Consistency: the engine guarantees exactly-once replay from RPs; the
  // residual risk is an unrecovered failure mid-run.
  v.Set(QoxMetric::kConsistency, std::min(1.0, 0.5 + 0.5 * reliability));
  v.Set(QoxMetric::kFlexibility, std::sqrt(std::max(0.0, maintainability)));
  // Crash-recovery term: exactly 0 for crash-free engagements
  // (crash_rate_per_s == 0), so rankings there are unchanged.
  v.Set(QoxMetric::kRestartOverhead,
        EstimateRestartCost(design, phases, workload));
  return v;
}

CostModelParams CostModel::Calibrate(const CostModelParams& base,
                                     const RunMetrics& measured,
                                     const LogicalFlow& flow,
                                     double input_rows) {
  CostModelParams params = base;
  if (measured.rows_extracted > 0 && measured.extract_micros > 0) {
    params.extract_ns_per_row =
        static_cast<double>(measured.extract_micros) * 1000.0 /
        static_cast<double>(measured.rows_extracted);
  }
  // Transform rate: measured transform time over the chain's abstract work
  // (cost_per_row * rows_in summed over ops, using measured per-op rows
  // when available).
  double work_units = 0.0;
  for (const LogicalOp& op : flow.ops()) {
    double rows_in = 0.0;
    for (const OpStats& stats : measured.op_stats) {
      if (stats.name == op.name) {
        rows_in = static_cast<double>(stats.rows_in);
        break;
      }
    }
    if (rows_in == 0.0) rows_in = input_rows;  // fallback
    work_units += op.cost_per_row * rows_in;
  }
  if (work_units > 0 && measured.transform_micros > 0) {
    params.transform_ns_per_unit =
        static_cast<double>(measured.transform_micros) * 1000.0 / work_units;
  }
  if (measured.rows_loaded > 0 && measured.load_micros > 0) {
    params.load_ns_per_row = static_cast<double>(measured.load_micros) *
                             1000.0 /
                             static_cast<double>(measured.rows_loaded);
  }
  if (measured.rp_bytes_written > 0 && measured.rp_write_micros > 0) {
    params.rp_ns_per_byte = static_cast<double>(measured.rp_write_micros) *
                            1000.0 /
                            static_cast<double>(measured.rp_bytes_written);
  }
  return params;
}

}  // namespace qox
