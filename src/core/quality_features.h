// Optional quality features: the traceability/auditability levers of the
// QoX suite, materialized.
//
// Sec. 3.5: "one may choose to increase the workflow complexity and the
// data volumes by enriching the data flow with extra information useful
// for provenance purposes. In doing so, at least the performance,
// freshness, complexity ... are hurt, but the traceability gains ground."
//
// MaterializeQualityFeatures() turns a PhysicalDesign's declared feature
// flags into engine artifacts: provenance columns appended to the flow,
// and a reject/audit store wired into the execution config. The cost
// model already charges for both (cost_model.cc), so predictions and the
// materialized execution agree.

#ifndef QOX_CORE_QUALITY_FEATURES_H_
#define QOX_CORE_QUALITY_FEATURES_H_

#include <string>

#include "core/design.h"
#include "storage/mem_table.h"

namespace qox {

/// Returns a copy of `flow` whose rows carry provenance columns:
/// `_source` (the source store's name) and `_load_tag` (the given tag,
/// e.g. a load timestamp or batch id). The target is replaced with a
/// fresh MemTable matching the widened schema unless `keep_target` is
/// set (then the existing target must already have the widened schema).
Result<LogicalFlow> AddProvenanceColumns(const LogicalFlow& flow,
                                         const std::string& load_tag,
                                         bool keep_target = false);

/// Everything MaterializeQualityFeatures produced for one design.
struct MaterializedDesign {
  PhysicalDesign design;           ///< possibly provenance-widened flow
  DataStorePtr reject_store;       ///< non-null iff audit_rejects
};

/// Applies the design's `provenance_columns` and `audit_rejects` flags:
/// widens the flow and/or creates the audit store. The returned design's
/// ToExecutionConfig output should be given `materialized.reject_store`
/// via the returned helper below.
Result<MaterializedDesign> MaterializeQualityFeatures(
    const PhysicalDesign& design, const std::string& load_tag);

/// Convenience: execution config for a materialized design, with the
/// audit store wired in.
ExecutionConfig MaterializedExecutionConfig(
    const MaterializedDesign& materialized, RecoveryPointStorePtr rp_store,
    FailureInjector* injector);

}  // namespace qox

#endif  // QOX_CORE_QUALITY_FEATURES_H_
