// The QoX metric suite (Sec. 2.2 of the paper).
//
// The suite names the qualities an ETL engagement must deliver. Metrics
// split into two classes (Sec. 2.3): qualitative soft-goals ("the ETL
// process should be reliable") and quantitative functional parameters
// (execution time, MTBF, latency of updates, ...). This module defines the
// metric identifiers, their canonical quantitative encodings and units,
// and QoxVector — a point in metric space describing one design or one
// measured run. Soft-goal modelling lives in softgoal.h; prediction in
// cost_model.h; measurement in qox_report.h.

#ifndef QOX_CORE_METRICS_H_
#define QOX_CORE_METRICS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace qox {

/// The QoX metrics discussed by the paper. Each has a canonical
/// quantitative encoding, noted below with its improvement direction.
enum class QoxMetric {
  /// Elapsed execution time of the flow, seconds (lower is better).
  kPerformance,
  /// Expected time to restore after an interruption, seconds (lower).
  kRecoverability,
  /// Probability the flow completes a run without unrecovered failure,
  /// in [0, 1] (higher).
  kReliability,
  /// Mean source-event-to-warehouse latency, seconds (lower).
  kFreshness,
  /// Composite graph-based maintainability score in [0, 1] (higher).
  kMaintainability,
  /// Throughput retention when volume scales 10x: T(V)/ (10 * T(V/10)
  /// inverted into [0,1] (higher = closer to linear scaling).
  kScalability,
  /// Fraction of the time window the pipeline can accept work, [0,1]
  /// (higher).
  kAvailability,
  /// Monetary cost proxy: machine-seconds + storage, abstract units
  /// (lower).
  kCost,
  /// Ability to absorb input-quality anomalies without aborting, [0,1]
  /// (higher).
  kRobustness,
  /// Fraction of loaded rows carrying provenance annotations, [0,1]
  /// (higher).
  kTraceability,
  /// Fraction of rejected/changed rows that are logged for audit, [0,1]
  /// (higher).
  kAuditability,
  /// Probability warehouse state equals a serial no-failure run, [0,1]
  /// (higher).
  kConsistency,
  /// Ease of accommodating requirement change; design-level score [0,1]
  /// (higher).
  kFlexibility,
  /// Expected extra wall time per run spent on crash restarts and journal
  /// durability (supervised re-execution), seconds (lower). Exactly 0
  /// when the workload models no process deaths (crash_rate_per_s == 0).
  kRestartOverhead,
};

/// All metrics, in a stable order (iteration, reports).
const std::vector<QoxMetric>& AllQoxMetrics();

/// Canonical lowercase name ("performance", "freshness", ...).
const char* QoxMetricName(QoxMetric metric);

/// Parses a metric name. Error for unknown names.
Result<QoxMetric> ParseQoxMetric(const std::string& name);

/// Unit string of the canonical encoding ("s", "probability", "score", ...).
const char* QoxMetricUnit(QoxMetric metric);

/// True when larger values are better for this metric's encoding.
bool HigherIsBetter(QoxMetric metric);

/// True for metrics the paper calls hard to quantify (maintainability,
/// flexibility, robustness); these are scores derived from design
/// structure rather than run measurements.
bool IsDesignStructural(QoxMetric metric);

/// A point in QoX space: metric -> value in the canonical encoding.
class QoxVector {
 public:
  QoxVector() = default;

  void Set(QoxMetric metric, double value) { values_[metric] = value; }
  bool Has(QoxMetric metric) const {
    return values_.find(metric) != values_.end();
  }
  Result<double> Get(QoxMetric metric) const;
  double GetOr(QoxMetric metric, double fallback) const;

  const std::map<QoxMetric, double>& values() const { return values_; }
  size_t size() const { return values_.size(); }

  /// "performance=1.23s freshness=45s ..." for reports.
  std::string ToString() const;

 private:
  std::map<QoxMetric, double> values_;
};

}  // namespace qox

#endif  // QOX_CORE_METRICS_H_
