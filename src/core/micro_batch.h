// MicroBatchRunner: near-real-time operation of a flow (Sec. 3.4).
//
// The paper's top flow processes streaming data "at different moments
// depending on system's workload and business requirements ... through
// batches of small files". MicroBatchRunner slices a time-ordered source
// into arrival windows, executes the flow once per window, and accounts
// per-event freshness (wait-until-window-close + batch execution) — the
// operational counterpart of the Fig. 8 analysis, with an SLA check.

#ifndef QOX_CORE_MICRO_BATCH_H_
#define QOX_CORE_MICRO_BATCH_H_

#include <string>
#include <vector>

#include "core/design.h"

namespace qox {

struct MicroBatchConfig {
  /// Number of arrival windows the source's event-time span is cut into.
  size_t num_windows = 16;
  /// Column holding the event timestamp (must be kTimestamp).
  std::string event_time_column = "event_time";
  /// Execution configuration applied to every batch.
  ExecutionConfig exec;
  /// Optional freshness SLA, seconds. 0 = no SLA.
  double freshness_sla_s = 0.0;
};

struct FreshnessStats {
  size_t windows_executed = 0;
  size_t events_processed = 0;
  size_t rows_loaded = 0;
  double avg_freshness_s = 0.0;
  double p95_freshness_s = 0.0;
  double max_freshness_s = 0.0;
  double total_exec_s = 0.0;
  /// Fraction of events meeting the SLA (1.0 when no SLA configured).
  double sla_attainment = 1.0;

  std::string ToString() const;
};

/// Runs `flow` in micro-batches over its (time-ordered) source. The
/// flow's own source store defines the event stream; its target receives
/// every batch's output cumulatively. Freshness of an event = time from
/// the event to the completion of the load of its window's batch, where
/// windows close at equal subdivisions of the observed event-time span
/// and executions take their measured wall time.
Result<FreshnessStats> RunMicroBatches(const LogicalFlow& flow,
                                       const MicroBatchConfig& config);

}  // namespace qox

#endif  // QOX_CORE_MICRO_BATCH_H_
