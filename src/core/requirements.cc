#include "core/requirements.h"

#include <cmath>
#include <sstream>

namespace qox {

std::string QoxConstraint::ToString() const {
  std::ostringstream oss;
  oss << QoxMetricName(metric) << (kind == Kind::kAtMost ? " <= " : " >= ")
      << bound << " " << QoxMetricUnit(metric);
  return oss.str();
}

std::string ObjectiveEvaluation::ToString() const {
  std::ostringstream oss;
  oss << (feasible ? "feasible" : "INFEASIBLE") << " score=" << score;
  for (const QoxConstraint& c : violated) {
    oss << " [violated: " << c.ToString() << "]";
  }
  return oss.str();
}

QoxObjective& QoxObjective::AddConstraint(QoxConstraint constraint) {
  constraints_.push_back(std::move(constraint));
  return *this;
}

QoxObjective& QoxObjective::Prefer(QoxMetric metric, double weight,
                                   double reference) {
  preferences_.push_back({metric, weight, reference});
  return *this;
}

ObjectiveEvaluation QoxObjective::Evaluate(const QoxVector& v) const {
  ObjectiveEvaluation eval;
  for (const QoxConstraint& c : constraints_) {
    if (!v.Has(c.metric) || !c.Satisfied(v.Get(c.metric).value())) {
      eval.feasible = false;
      eval.violated.push_back(c);
    }
  }
  double weight_sum = 0.0;
  double score_sum = 0.0;
  for (const QoxPreference& p : preferences_) {
    weight_sum += p.weight;
    if (!v.Has(p.metric)) continue;
    const double value = v.Get(p.metric).value();
    // Normalize to (0, 1): value == reference scores 0.5; improvement
    // approaches 1, degradation approaches 0, smoothly (logistic in the
    // log-ratio so scale is relative, not absolute).
    const double ref = std::max(1e-12, p.reference);
    const double x = std::max(1e-12, value);
    double ratio = std::log(x / ref);
    if (HigherIsBetter(p.metric)) ratio = -ratio;
    const double component = 1.0 / (1.0 + std::exp(ratio));
    score_sum += p.weight * component;
  }
  eval.score = weight_sum > 0 ? score_sum / weight_sum : 0.0;
  return eval;
}

std::string QoxObjective::ToString() const {
  std::ostringstream oss;
  oss << "objective{";
  for (const QoxConstraint& c : constraints_) {
    oss << " " << c.ToString() << ";";
  }
  for (const QoxPreference& p : preferences_) {
    oss << " prefer " << QoxMetricName(p.metric) << " w=" << p.weight
        << " ref=" << p.reference << ";";
  }
  oss << " }";
  return oss.str();
}

QoxObjective QoxObjective::PerformanceFirst(double time_window_s) {
  QoxObjective obj;
  obj.AddConstraint(
      QoxConstraint::AtMost(QoxMetric::kPerformance, time_window_s));
  obj.Prefer(QoxMetric::kPerformance, 3.0, time_window_s / 2);
  obj.Prefer(QoxMetric::kCost, 1.0, 100.0);
  return obj;
}

QoxObjective QoxObjective::FreshnessFirst(double max_latency_s) {
  QoxObjective obj;
  obj.AddConstraint(QoxConstraint::AtMost(QoxMetric::kFreshness,
                                          max_latency_s));
  obj.AddConstraint(QoxConstraint::AtLeast(QoxMetric::kReliability, 0.9));
  obj.Prefer(QoxMetric::kFreshness, 3.0, max_latency_s / 2);
  obj.Prefer(QoxMetric::kReliability, 1.5, 0.95);
  obj.Prefer(QoxMetric::kPerformance, 1.0, max_latency_s);
  return obj;
}

QoxObjective QoxObjective::ReliabilityFirst(double min_reliability) {
  QoxObjective obj;
  obj.AddConstraint(
      QoxConstraint::AtLeast(QoxMetric::kReliability, min_reliability));
  obj.Prefer(QoxMetric::kReliability, 3.0, min_reliability);
  obj.Prefer(QoxMetric::kRecoverability, 2.0, 10.0);
  obj.Prefer(QoxMetric::kPerformance, 1.0, 60.0);
  return obj;
}

QoxObjective QoxObjective::MaintainabilityAware(double time_window_s) {
  QoxObjective obj;
  obj.AddConstraint(
      QoxConstraint::AtMost(QoxMetric::kPerformance, time_window_s));
  obj.Prefer(QoxMetric::kMaintainability, 2.0, 0.5);
  obj.Prefer(QoxMetric::kPerformance, 1.0, time_window_s / 2);
  obj.Prefer(QoxMetric::kFlexibility, 1.0, 0.5);
  return obj;
}

}  // namespace qox
