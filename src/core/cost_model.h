// Analytic QoX cost model: predicts every QoX metric for a physical design
// without executing it.
//
// This is the automation the paper calls for: "These metrics, in effect,
// prune the search space of all possible designs, much like cost-estimates
// are used to bound the search space in cost-based query optimization"
// (Sec. 2.1). The model is ORDINAL by intent — its job is to rank designs
// the way measured runs rank them (who wins, where crossovers fall), not
// to predict absolute times; bench/abl_cost_model measures the fidelity.
//
// Laws implemented (constants in CostModelParams, calibratable from a
// measured run):
//   extraction      rows * extract_ns (sequential: source scan + decode)
//   transformation  sum over ops of cost_per_row * rows_in * unit_ns,
//                   volume shrinking by selectivity; ops inside the
//                   parallel range divide by an Amdahl-style effective
//                   speedup min(partitions, threads) * efficiency, plus
//                   split and ordered-merge overhead at range borders
//                   ("the cost of merging back ... is not cheap")
//   recovery points per cut: rows_at_cut * bytes_per_row * rp write rate,
//                   plus a fixed per-point latency (Fig. 5)
//   redundancy      wall time factor 1 + contention * (k - 1) from
//                   resource sharing (Fig. 7's 14%..58% NMR overheads)
//   reliability     per-attempt failure probability 1 - exp(-lambda * T);
//                   retries (recovery) or NMR majority voting lift it; a
//                   retry costs expected rework + the retry policy's mean
//                   backoff wait, degraded toward a full rerun by the
//                   RP-corruption probability, and the policy's attempt
//                   budget caps how many retries the window can hold
//   recoverability  expected rework after a failure given RP placement:
//                   failure uniform over the run, rework = time since the
//                   last durable cut (Fig. 6)
//   streaming       overlapped execution: the flow splits into sections at
//                   pipeline barriers (recovery-point cuts and blocking
//                   operators); within a section concurrent stages overlap,
//                   so the section's wall time is the MAX of its stage
//                   costs (extract, per-chunk transform, load) instead of
//                   their sum, plus per-stage startup and per-row channel
//                   transfer overheads
//   freshness       load period / 2 + per-batch execution time (Fig. 8)
//   maintainability graph metrics of the logical flow (ref [16])
//   cost            machine-seconds (threads x time x redundancy) plus
//                   recovery-point storage
//
// Every law is exercised against measured engine runs in the tests and
// ablation benches.

#ifndef QOX_CORE_COST_MODEL_H_
#define QOX_CORE_COST_MODEL_H_

#include <string>

#include "core/design.h"
#include "core/metrics.h"
#include "engine/run_metrics.h"

namespace qox {

/// Calibration constants. Defaults are sane for the in-repo engine on a
/// current x86 box; Calibrate() fits the main rates from a measured run.
struct CostModelParams {
  double extract_ns_per_row = 2200.0;
  double transform_ns_per_unit = 160.0;  ///< per cost_per_row unit per row
  double load_ns_per_row = 700.0;
  double rp_ns_per_byte = 18.0;
  double rp_fixed_us = 400.0;
  double bytes_per_row = 70.0;
  double split_ns_per_row = 60.0;
  double merge_ns_per_row = 300.0;     ///< ordered merge of branches
  double parallel_efficiency = 0.80;   ///< fraction of ideal speedup
  double redundancy_contention = 0.12; ///< overhead per extra instance
  double rp_resume_fixed_s = 0.01;     ///< fixed resume cost from an RP
  /// Streaming-execution overheads: one-time spawn/fill cost per dataflow
  /// stage, and the per-row cost of moving a row across a bounded channel
  /// edge (enqueue + wakeup amortized over a batch).
  double stream_stage_startup_us = 150.0;
  double stream_channel_ns_per_row = 25.0;
  /// Probability that a resume finds its newest recovery point corrupted
  /// (checksum mismatch) and must fall back toward scratch. 0 (default)
  /// models perfectly reliable RP storage and keeps predictions identical
  /// to the pre-fault-tolerance model.
  double rp_corruption_prob = 0.0;
  /// Data-quality law input: expected fraction of an op's input rows that
  /// trip a row-scoped operator error (bad value, failed lookup). 0
  /// (default) models clean input and keeps every prediction identical to
  /// the pre-containment model.
  double row_error_rate = 0.0;
  /// Per-row cost of containing a row error: skipping is accounting only;
  /// quarantining encodes, checksums, and appends to the dead-letter
  /// ledger.
  double skip_ns_per_row = 120.0;
  double quarantine_ns_per_row = 2600.0;
  /// Crash-recovery law inputs. restart_fixed_s is the per-incarnation
  /// machinery cost of a supervised restart (fork, lease check, journal
  /// replay, recovery-point adoption). journal_sync_us prices one fsync'd
  /// flow-journal append; journaled designs pay it per durable record
  /// (JournalSync::kAlways) or per commit record (kCommit).
  double restart_fixed_s = 0.02;
  double journal_sync_us = 900.0;
  /// Resource-pressure law input: cost per byte moved through a spill run
  /// (checksummed write plus the read-back during merge/replay). Charged
  /// on the working-set overflow of every blocking op when the design sets
  /// a finite memory_budget_bytes.
  double spill_ns_per_byte = 30.0;
  /// Columnar fast-path throughput multiplier on per-row (non-blocking)
  /// transform ops when the design sets `columnar` (the vectorized-kernel
  /// speedup bench/perf_transform measures; 1.0 would price the flag as
  /// free).
  double columnar_speedup = 2.5;
};

/// Workload context a prediction is made for.
struct WorkloadParams {
  double rows_per_run = 100000;
  double loads_per_day = 24;
  /// System failure rate, failures per second of execution (1 / MTBF).
  double failure_rate_per_s = 0.0;
  /// Process-death rate (SIGKILL, OOM kill, node loss), crashes per second
  /// of execution. Unlike failure_rate_per_s, a crash kills the process
  /// mid-run: recovery needs a supervised restart, and only a journaled
  /// design resumes from its durable prefix instead of from scratch.
  double crash_rate_per_s = 0.0;
  /// The ETL time window, seconds (availability denominator).
  double time_window_s = 3600.0;
  /// Probability one run encounters a disk-pressure fault (ENOSPC, EIO)
  /// on its write path. The design's ResourcePolicy decides what that
  /// costs: a rerun (kFailFlow), a backoff + resume (kPauseRetry), or a
  /// shed batch re-encoded into the dead-letter ledger (kShed).
  double disk_fault_rate = 0.0;
  /// Flows sharing the machine concurrently (the FlowService admission
  /// load). The performance law grants the design only its proportional
  /// thread share — effective threads = max(1, threads / concurrent_flows)
  /// — so predictions degrade the way a shared WorkerPool does. 1 (the
  /// default) is the solo prediction, identical to the single-flow model.
  double concurrent_flows = 1.0;
  /// CDC stream update rate, events/second, for sharded ingestion designs.
  /// 0 (the default) defers to the design's own cdc_update_rate_per_s.
  double cdc_update_rate_per_s = 0.0;
};

/// Per-phase time prediction, seconds.
struct PhaseEstimate {
  double extract_s = 0.0;
  double transform_s = 0.0;
  double load_s = 0.0;
  double rp_s = 0.0;
  double merge_s = 0.0;
  /// Spill I/O tax: working-set overflow of blocking ops written to and
  /// read back from disk runs; 0 for unbudgeted designs.
  double spill_s = 0.0;
  /// Flow-journal durability overhead (fsync'd appends); 0 for
  /// non-journaled designs.
  double journal_s = 0.0;
  double total_s = 0.0;

  std::string ToString() const;
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostModelParams params) : params_(params) {}

  const CostModelParams& params() const { return params_; }

  /// Fits extract/transform/load/rp rates from one measured run of `flow`
  /// (no parallelism, no redundancy recommended for clean rates). Returns
  /// calibrated params; constants not identifiable from the run keep their
  /// previous value.
  static CostModelParams Calibrate(const CostModelParams& base,
                                   const RunMetrics& measured,
                                   const LogicalFlow& flow,
                                   double input_rows);

  /// Phase-by-phase time prediction for one run of the design over
  /// `input_rows` rows (no failures).
  PhaseEstimate EstimatePhases(const PhysicalDesign& design,
                               double input_rows) const;

  /// As above, but granting the design only `available_threads` of its
  /// thread budget — the flow's share of a WorkerPool other flows are
  /// running on (the FlowService's admission-control input). Passing
  /// design.threads reproduces the solo prediction exactly.
  PhaseEstimate EstimatePhases(const PhysicalDesign& design, double input_rows,
                               size_t available_threads) const;

  /// The ExecutionPlan the model prices: the same lowering the executors
  /// schedule (engine/plan.h), built from the design's structural facts.
  /// Barriers, sections, and recovery cuts used by the streaming and RP
  /// laws all come from here — one source of truth shared with the engine.
  /// Recovery points beyond the chain (rejected by the executor at run
  /// time) are dropped, and duplicate cuts deduplicate, so estimation over
  /// pathological designs stays total and rank-preserving.
  static ExecutionPlan PlanFor(const PhysicalDesign& design);

  /// Probability one attempt of duration `exec_s` completes without a
  /// system failure at the given rate.
  static double AttemptSuccessProbability(double exec_s,
                                          double failure_rate_per_s);

  /// Probability the design's run completes: retries-from-RP for
  /// non-redundant designs, majority vote for NMR.
  double EstimateReliability(const PhysicalDesign& design,
                             const PhaseEstimate& phases,
                             const WorkloadParams& workload) const;

  /// Expected rework time after one failure (the recoverability metric):
  /// failure position uniform over the run; rework = time back to the
  /// last durable cut plus resume overhead.
  double EstimateRecoverability(const PhysicalDesign& design,
                                const PhaseEstimate& phases) const;

  /// Mean event-to-warehouse latency at the design's load schedule:
  /// period / 2 + execution time of one batch (day volume / loads).
  double EstimateFreshness(const PhysicalDesign& design,
                           const WorkloadParams& workload) const;

  /// Mean event-to-warehouse latency of a sharded CDC design (cdc_shards
  /// > 0): slice fill wait (slice_events / 2R at stream rate R) plus the
  /// shard-parallel extract+transform of one slice (ideal speedup damped
  /// by parallel_efficiency) plus the serial coordinator floor (version
  /// merge + warehouse append are not sharded, so adding shards stops
  /// helping once per-shard work dips below it — the freshness-vs-shard-
  /// count law bench/fig_cdc_freshness sweeps). The workload's
  /// cdc_update_rate_per_s overrides the design's; 0 when the design is
  /// not CDC or neither supplies a positive rate.
  double EstimateCdcFreshness(const PhysicalDesign& design,
                              const WorkloadParams& workload) const;

  /// Expected extra wall time per run spent recovering from process
  /// crashes: E[crashes] = crash_rate * T, each costing the fixed
  /// supervised-restart overhead plus rework — the expected rework back to
  /// the last durable cut for a journaled design (the journal's resume
  /// state makes every committed recovery point a restart point), or a
  /// full rerun for an unjournaled one (a dead process forgets everything).
  /// 0 when the workload models no crashes.
  double EstimateRestartCost(const PhysicalDesign& design,
                             const PhaseEstimate& phases,
                             const WorkloadParams& workload) const;

  /// Expected extra wall time per run lost to resource-exhaustion
  /// degradation at the workload's disk_fault_rate, priced per the
  /// design's ResourcePolicy: kFailFlow pays a restart plus rework back to
  /// the last durable cut, kPauseRetry pays the policy's mean backoff plus
  /// the same rework, kShed pays re-encoding the unloadable remainder into
  /// the dead-letter ledger. 0 when the workload models no disk faults.
  double EstimateResourceDelay(const PhysicalDesign& design,
                               const PhaseEstimate& phases,
                               const WorkloadParams& workload) const;

  /// Expected number of rows routed to the dead-letter ledger in one run
  /// of `input_rows` rows at the configured row_error_rate: the volume a
  /// quarantine-enabled design must budget ledger storage and replay work
  /// for. 0 when no op carries kQuarantine or the error rate is 0.
  double EstimateQuarantineVolume(const PhysicalDesign& design,
                                  double input_rows) const;

  /// Probability one run aborts with kErrorBudgetExceeded: the expected
  /// contained volume measured against the budget's effective ceiling
  /// (min of max_rows and max_fraction * input), with the contained count
  /// modelled as Poisson around its mean. 0 with no budget, containment,
  /// or errors.
  double EstimateBudgetAbortProbability(const PhysicalDesign& design,
                                        double input_rows) const;

  /// Maintainability score of the logical flow, penalized by physical
  /// complexity (partitioned/redundant plumbing).
  Result<double> EstimateMaintainability(const PhysicalDesign& design) const;

  /// Full QoX vector for the design under the workload.
  Result<QoxVector> Predict(const PhysicalDesign& design,
                            const WorkloadParams& workload) const;

 private:
  CostModelParams params_;
};

}  // namespace qox

#endif  // QOX_CORE_COST_MODEL_H_
