// Business-requirement specifications over QoX metrics.
//
// The paper's engagements begin by gathering "service level objectives
// like overall cost, latency between operational event and warehouse load,
// provenance needs" (Sec. 1) which become concrete bounds at lower design
// levels: "the mean time between failures should be greater than x time
// units" (Sec. 2.3). A QoxObjective captures such an engagement spec:
// hard constraints (SLAs) plus soft weighted preferences, and scores any
// QoxVector against it. The optimizer searches for the design with the
// best objective score among those meeting every constraint.

#ifndef QOX_CORE_REQUIREMENTS_H_
#define QOX_CORE_REQUIREMENTS_H_

#include <string>
#include <vector>

#include "core/metrics.h"

namespace qox {

/// A hard SLA bound on one metric, in that metric's canonical encoding.
struct QoxConstraint {
  enum class Kind { kAtMost, kAtLeast };
  QoxMetric metric = QoxMetric::kPerformance;
  Kind kind = Kind::kAtMost;
  double bound = 0.0;

  static QoxConstraint AtMost(QoxMetric metric, double bound) {
    return {metric, Kind::kAtMost, bound};
  }
  static QoxConstraint AtLeast(QoxMetric metric, double bound) {
    return {metric, Kind::kAtLeast, bound};
  }

  bool Satisfied(double value) const {
    return kind == Kind::kAtMost ? value <= bound : value >= bound;
  }

  std::string ToString() const;
};

/// A soft preference: weight > 0 says "improve this metric"; relative
/// weights trade metrics off against each other. `reference` sets the
/// scale at which one unit of the metric matters (for normalization): a
/// value equal to `reference` scores 0.5 on this component.
struct QoxPreference {
  QoxMetric metric = QoxMetric::kPerformance;
  double weight = 1.0;
  double reference = 1.0;
};

/// Outcome of evaluating one design/run against an objective.
struct ObjectiveEvaluation {
  bool feasible = true;
  std::vector<QoxConstraint> violated;
  /// Weighted normalized score in [0, 1]; higher is better. Defined even
  /// when infeasible (useful for ranking infeasible candidates).
  double score = 0.0;

  std::string ToString() const;
};

class QoxObjective {
 public:
  QoxObjective() = default;

  QoxObjective& AddConstraint(QoxConstraint constraint);
  QoxObjective& Prefer(QoxMetric metric, double weight, double reference);

  const std::vector<QoxConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<QoxPreference>& preferences() const {
    return preferences_;
  }

  /// Scores `v`. Metrics absent from `v` fail their constraints and score 0
  /// on their preference component (the design did not demonstrate them).
  ObjectiveEvaluation Evaluate(const QoxVector& v) const;

  std::string ToString() const;

  // -- Canned engagement profiles used by examples and benches ------------

  /// Performance above all: minimize execution time.
  static QoxObjective PerformanceFirst(double time_window_s);
  /// The near-real-time profile: freshness dominates, reliability floor.
  static QoxObjective FreshnessFirst(double max_latency_s);
  /// Fault-tolerant overnight batch: reliability and recoverability.
  static QoxObjective ReliabilityFirst(double min_reliability);
  /// Long-lived engagement: maintainability weighted with performance.
  static QoxObjective MaintainabilityAware(double time_window_s);

 private:
  std::vector<QoxConstraint> constraints_;
  std::vector<QoxPreference> preferences_;
};

}  // namespace qox

#endif  // QOX_CORE_REQUIREMENTS_H_
