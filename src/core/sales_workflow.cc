#include "core/sales_workflow.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "storage/throttled_store.h"

namespace qox {

namespace {

/// Builds a source store either as a CSV flat file (real extraction I/O)
/// or an in-memory table.
Result<DataStorePtr> MakeSource(const std::string& name, const Schema& schema,
                                const std::vector<Row>& rows,
                                const std::string& data_dir) {
  if (data_dir.empty()) {
    auto table = std::make_shared<MemTable>(name, schema);
    QOX_RETURN_IF_ERROR(table->Append(RowBatch(schema, rows)));
    return DataStorePtr(table);
  }
  QOX_ASSIGN_OR_RETURN(
      std::shared_ptr<FlatFile> file,
      FlatFile::Open(name, schema, data_dir + "/" + name + ".csv",
                     /*sync_every_append=*/false));
  QOX_RETURN_IF_ERROR(file->Truncate());  // fresh data each scenario build
  QOX_RETURN_IF_ERROR(file->Append(RowBatch(schema, rows)));
  return DataStorePtr(file);
}

/// Merges a flow's linear graph into `graph` (shared node ids tolerated).
Status AddFlowToGraph(const LogicalFlow& flow, FlowGraph* graph) {
  if (!graph->HasNode(flow.source()->name())) {
    QOX_RETURN_IF_ERROR(
        graph->AddDataStore(flow.source()->name(), "source"));
  }
  std::string prev = flow.source()->name();
  for (const LogicalOp& op : flow.ops()) {
    if (!graph->HasNode(op.name)) {
      QOX_RETURN_IF_ERROR(graph->AddOperation(op.name, op.kind));
    }
    QOX_RETURN_IF_ERROR(graph->AddEdge(prev, op.name));
    prev = op.name;
  }
  if (!graph->HasNode(flow.target()->name())) {
    QOX_RETURN_IF_ERROR(graph->AddDataStore(flow.target()->name(), "target"));
  }
  QOX_RETURN_IF_ERROR(graph->AddEdge(prev, flow.target()->name()));
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SalesScenario>> SalesScenario::Create(
    const SalesScenarioConfig& config) {
  auto scenario = std::unique_ptr<SalesScenario>(new SalesScenario());
  QOX_RETURN_IF_ERROR(scenario->Build(config));
  return scenario;
}

Status SalesScenario::Build(const SalesScenarioConfig& config) {
  config_ = config;
  rng_ = Rng(config.workload.seed);

  // --- dimensions -----------------------------------------------------------
  {
    auto l1 = std::make_shared<MemTable>("STORE_DT", StoreDimSchema());
    QOX_RETURN_IF_ERROR(l1->Append(
        RowBatch(StoreDimSchema(), GenerateStoreDim(config.workload, &rng_))));
    l1_ = l1;
    auto l2 = std::make_shared<MemTable>("PRODUCT", ProductDimSchema());
    QOX_RETURN_IF_ERROR(l2->Append(RowBatch(
        ProductDimSchema(), GenerateProductDim(config.workload, &rng_))));
    l2_ = l2;
  }

  // --- sources --------------------------------------------------------------
  // Raw (unthrottled) handles: post-success snapshot commits read the
  // landed staging copy, not the remote channel.
  DataStorePtr s1_raw;
  DataStorePtr s2_raw;
  {
    const std::vector<Row> s1_rows = GenerateSalesTransactions(
        config.workload, config.s1_rows, /*first_tran_id=*/0, &rng_);
    next_tran_id_ = static_cast<int64_t>(config.s1_rows);
    QOX_ASSIGN_OR_RETURN(s1_, MakeSource("SALES_TRAN", SalesTranSchema(),
                                         s1_rows, config.data_dir));
    const std::vector<Row> s2_rows =
        GenerateStaffLogs(config.workload, config.s2_rows,
                          config.staff_update_fraction, &rng_);
    QOX_ASSIGN_OR_RETURN(s2_, MakeSource("SALES_STAFF", SalesStaffSchema(),
                                         s2_rows, config.data_dir));
    s1_raw = s1_;
    s2_raw = s2_;
    if (config.source_bandwidth_bytes_per_s > 0) {
      s1_ = std::make_shared<ThrottledStore>(
          s1_, config.source_bandwidth_bytes_per_s);
      s2_ = std::make_shared<ThrottledStore>(
          s2_, config.source_bandwidth_bytes_per_s);
    }
    const std::vector<Row> s3_rows =
        GenerateClickstream(config.workload, config.s3_rows, &rng_);
    // The clickstream is a streaming source; it stays in memory but still
    // arrives over the web-portal channel, so the bandwidth cap applies.
    auto s3 = std::make_shared<MemTable>("CUSTWEB_CS", ClickstreamSchema());
    QOX_RETURN_IF_ERROR(s3->Append(RowBatch(ClickstreamSchema(), s3_rows)));
    s3_ = s3;
    if (config.source_bandwidth_bytes_per_s > 0) {
      s3_ = std::make_shared<ThrottledStore>(
          s3_, config.source_bandwidth_bytes_per_s);
    }
  }

  // --- shared state ----------------------------------------------------------
  sales_snapshot_ = std::make_shared<SnapshotStore>(
      "SALES_SNAPSHOT", SalesTranSchema(), std::vector<size_t>{0});
  staff_snapshot_ = std::make_shared<SnapshotStore>(
      "STAFF_SNAPSHOT", SalesStaffSchema(), std::vector<size_t>{0});
  sale_keys_ = std::make_shared<SurrogateKeyRegistry>(1);
  customer_keys_ = std::make_shared<SurrogateKeyRegistry>(1);
  rep_keys_ = std::make_shared<SurrogateKeyRegistry>(1);

  // --- bottom flow: S1 -> DW1 SALES (paper-faithful op order) ----------------
  {
    std::vector<LogicalOp> ops;
    // Selectivity 1.0: the experiments run initial/full loads (every row
    // is a change); steady-state incremental flows would declare less.
    ops.push_back(MakeDelta("Delta_sales", sales_snapshot_, "",
                            /*estimated_selectivity=*/1.0));
    ops.push_back(MakeLookup("Lkp_store", l1_, "store_code", "store_code",
                             {"store_key"}, LookupMissPolicy::kReject,
                             /*estimated_hit_rate=*/0.94));
    ops.push_back(MakeLookup("Lkp_product", l2_, "product_code",
                             "product_code", {"product_key", "category"},
                             LookupMissPolicy::kReject,
                             /*estimated_hit_rate=*/0.98));
    ops.push_back(MakeFilter(
        "Flt_NN",
        {Predicate::NotNull("amount"), Predicate::NotNull("store_code")},
        /*estimated_selectivity=*/0.92));
    ops.push_back(MakeFunction(
        "Func_sales",
        {ColumnTransform::Arith("net_amount", "amount",
                                ColumnTransform::ArithOp::kMul, "quantity"),
         ColumnTransform::Upper("category"),
         ColumnTransform::Drop("store_code"),
         ColumnTransform::Drop("product_code")}));
    ops.push_back(MakeSurrogateKey("SK_sales", sale_keys_, "tran_id",
                                   "sale_key", /*drop_natural=*/true));
    ops.push_back(MakeSurrogateKey("SK_customer", customer_keys_,
                                   "customer_id", "customer_key",
                                   /*drop_natural=*/true));
    QOX_ASSIGN_OR_RETURN(const std::vector<Schema> schemas,
                         BindLogicalChain(s1_->schema(), ops));
    dw1_ = std::make_shared<MemTable>("SALES", schemas.back());
    bottom_flow_ = LogicalFlow("sales_bottom", s1_, std::move(ops), dw1_);
    const DataStorePtr s1 = s1_raw;
    const SnapshotStorePtr snapshot = sales_snapshot_;
    bottom_flow_.set_post_success([s1, snapshot]() -> Status {
      QOX_ASSIGN_OR_RETURN(const RowBatch landed, s1->ReadAll());
      return snapshot->Commit(landed.rows());
    });
  }

  // --- middle flow: S2 -> DW2 SALES_REP ---------------------------------------
  {
    std::vector<LogicalOp> ops;
    ops.push_back(MakeDelta("Delta_staff", staff_snapshot_));
    ops.push_back(MakeFunction(
        "Func_staff",
        {ColumnTransform::Upper("status"),
         ColumnTransform::Coalesce("working_hours", Value::Int64(0))}));
    ops.push_back(MakeSurrogateKey("SK_rep", rep_keys_, "rep_id", "rep_key",
                                   /*drop_natural=*/false));
    QOX_ASSIGN_OR_RETURN(const std::vector<Schema> schemas,
                         BindLogicalChain(s2_->schema(), ops));
    dw2_ = std::make_shared<MemTable>("SALES_REP", schemas.back());
    middle_flow_ = LogicalFlow("staff_middle", s2_, std::move(ops), dw2_);
    const DataStorePtr s2 = s2_raw;
    const SnapshotStorePtr snapshot = staff_snapshot_;
    middle_flow_.set_post_success([s2, snapshot]() -> Status {
      QOX_ASSIGN_OR_RETURN(const RowBatch landed, s2->ReadAll());
      return snapshot->Commit(landed.rows());
    });
  }

  // --- top flow: S3 -> DW3 CUSTOMER (streaming, freshness-pressed) -----------
  {
    std::vector<LogicalOp> ops;
    ops.push_back(MakeFilter("Flt_anon", {Predicate::NotNull("customer_id")},
                             /*estimated_selectivity=*/0.9));
    ops.push_back(MakeFunction(
        "Func_click", {ColumnTransform::Upper("action"),
                       ColumnTransform::Constant(
                           "channel", Value::String("WEB"))}));
    ops.push_back(MakeSurrogateKey("SK_cust_click", customer_keys_,
                                   "customer_id", "customer_key",
                                   /*drop_natural=*/true));
    QOX_ASSIGN_OR_RETURN(const std::vector<Schema> schemas,
                         BindLogicalChain(s3_->schema(), ops));
    dw3_ = std::make_shared<MemTable>("CUSTOMER", schemas.back());
    top_flow_ = LogicalFlow("click_top", s3_, std::move(ops), dw3_);
  }
  return Status::OK();
}

Status SalesScenario::ResetWarehouse() {
  QOX_RETURN_IF_ERROR(dw1_->Truncate());
  QOX_RETURN_IF_ERROR(dw2_->Truncate());
  QOX_RETURN_IF_ERROR(dw3_->Truncate());
  QOX_RETURN_IF_ERROR(sales_snapshot_->Clear());
  QOX_RETURN_IF_ERROR(staff_snapshot_->Clear());
  return Status::OK();
}

Status SalesScenario::AppendS1Batch(size_t rows) {
  const std::vector<Row> fresh = GenerateSalesTransactions(
      config_.workload, rows, next_tran_id_, &rng_);
  next_tran_id_ += static_cast<int64_t>(rows);
  return s1_->Append(RowBatch(SalesTranSchema(), fresh));
}

Result<FlowGraph> SalesScenario::ScenarioGraph() const {
  FlowGraph graph;
  QOX_RETURN_IF_ERROR(AddFlowToGraph(bottom_flow_, &graph));
  QOX_RETURN_IF_ERROR(AddFlowToGraph(middle_flow_, &graph));
  QOX_RETURN_IF_ERROR(AddFlowToGraph(top_flow_, &graph));
  // Lookup dimension feeds the lookup operator.
  QOX_RETURN_IF_ERROR(graph.AddDataStore("STORE_DT", "source"));
  QOX_RETURN_IF_ERROR(graph.AddEdge("STORE_DT", "Lkp_store"));
  // Views on top of the warehouse tables.
  QOX_RETURN_IF_ERROR(graph.AddDataStore("CUSTOMER_SALE_RELS", "view"));
  QOX_RETURN_IF_ERROR(graph.AddEdge("SALES", "CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(graph.AddEdge("CUSTOMER", "CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(graph.AddDataStore("SAL_SALES_REP_RELS", "view"));
  QOX_RETURN_IF_ERROR(graph.AddEdge("SALES", "SAL_SALES_REP_RELS"));
  QOX_RETURN_IF_ERROR(graph.AddEdge("SALES_REP", "SAL_SALES_REP_RELS"));
  return graph;
}

Result<RowBatch> SalesScenario::QueryCustomerSaleRels() const {
  // DW1 columns after the bottom flow (see Build): ..., customer_key last.
  QOX_ASSIGN_OR_RETURN(const RowBatch sales, dw1_->ReadAll());
  QOX_ASSIGN_OR_RETURN(const RowBatch customers, dw3_->ReadAll());
  QOX_ASSIGN_OR_RETURN(const size_t sales_ck,
                       dw1_->schema().FieldIndex("customer_key"));
  QOX_ASSIGN_OR_RETURN(const size_t sales_net,
                       dw1_->schema().FieldIndex("net_amount"));
  QOX_ASSIGN_OR_RETURN(const size_t cust_ck,
                       dw3_->schema().FieldIndex("customer_key"));
  std::unordered_set<int64_t> active;
  for (const Row& row : customers.rows()) {
    if (!row.value(cust_ck).is_null()) {
      active.insert(row.value(cust_ck).int64_value());
    }
  }
  struct Totals {
    double spend = 0.0;
    int64_t count = 0;
  };
  std::unordered_map<int64_t, Totals> per_customer;
  for (const Row& row : sales.rows()) {
    if (row.value(sales_ck).is_null()) continue;
    const int64_t key = row.value(sales_ck).int64_value();
    Totals& totals = per_customer[key];
    ++totals.count;
    if (!row.value(sales_net).is_null()) {
      totals.spend += row.value(sales_net).double_value();
    }
  }
  const Schema view_schema({{"customer_key", DataType::kInt64, false},
                            {"total_spend", DataType::kDouble, true},
                            {"num_sales", DataType::kInt64, false},
                            {"status", DataType::kString, false}});
  RowBatch out(view_schema);
  std::vector<int64_t> keys;
  for (const auto& [key, totals] : per_customer) {
    if (active.count(key) > 0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const int64_t key : keys) {
    const Totals& totals = per_customer.at(key);
    const char* status = totals.spend >= 5000.0   ? "platinum"
                         : totals.spend >= 1000.0 ? "gold"
                                                  : "silver";
    Row row;
    row.Append(Value::Int64(key));
    row.Append(Value::Double(totals.spend));
    row.Append(Value::Int64(totals.count));
    row.Append(Value::String(status));
    out.Append(std::move(row));
  }
  return out;
}

Result<RowBatch> SalesScenario::QuerySalesRepRels() const {
  QOX_ASSIGN_OR_RETURN(const RowBatch sales, dw1_->ReadAll());
  QOX_ASSIGN_OR_RETURN(const RowBatch reps, dw2_->ReadAll());
  QOX_ASSIGN_OR_RETURN(const size_t sales_rep,
                       dw1_->schema().FieldIndex("sales_rep_id"));
  QOX_ASSIGN_OR_RETURN(const size_t sales_net,
                       dw1_->schema().FieldIndex("net_amount"));
  QOX_ASSIGN_OR_RETURN(const size_t rep_id, dw2_->schema().FieldIndex("rep_id"));
  QOX_ASSIGN_OR_RETURN(const size_t rep_key,
                       dw2_->schema().FieldIndex("rep_key"));
  QOX_ASSIGN_OR_RETURN(const size_t rep_branch,
                       dw2_->schema().FieldIndex("branch"));
  struct Totals {
    double amount = 0.0;
    int64_t count = 0;
  };
  std::unordered_map<int64_t, Totals> per_rep;
  double grand_total = 0.0;
  for (const Row& row : sales.rows()) {
    if (row.value(sales_rep).is_null()) continue;
    Totals& totals = per_rep[row.value(sales_rep).int64_value()];
    ++totals.count;
    if (!row.value(sales_net).is_null()) {
      totals.amount += row.value(sales_net).double_value();
      grand_total += row.value(sales_net).double_value();
    }
  }
  const double mean = per_rep.empty()
                          ? 0.0
                          : grand_total / static_cast<double>(per_rep.size());
  const Schema view_schema({{"rep_key", DataType::kInt64, false},
                            {"branch", DataType::kString, true},
                            {"num_sales", DataType::kInt64, false},
                            {"total_amount", DataType::kDouble, true},
                            {"category", DataType::kString, false}});
  RowBatch out(view_schema);
  for (const Row& rep : reps.rows()) {
    if (rep.value(rep_id).is_null()) continue;
    const auto it = per_rep.find(rep.value(rep_id).int64_value());
    if (it == per_rep.end()) continue;
    const Totals& totals = it->second;
    const char* category = totals.amount >= 1.5 * mean   ? "lead"
                           : totals.amount >= 0.5 * mean ? "core"
                                                         : "developing";
    Row row;
    row.Append(rep.value(rep_key));
    row.Append(rep.value(rep_branch));
    row.Append(Value::Int64(totals.count));
    row.Append(Value::Double(totals.amount));
    row.Append(Value::String(category));
    out.Append(std::move(row));
  }
  return out;
}

Result<FlowGraph> BuildFigure3PaperGraph() {
  FlowGraph g;
  // Stores.
  QOX_RETURN_IF_ERROR(g.AddDataStore("S1_SALES_TRAN", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("S2_SALES_STAFF", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("S3_CUSTWEB_CS", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("L1_STORE_DT", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SNAPSHOT", "staging"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SP1", "recovery_point"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SP2", "recovery_point"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW1_SALES", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW2_SALES_REP", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW3_CUSTOMER", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("V1_CUSTOMER_SALE_RELS", "view"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("V2_SAL_SALES_REP_RELS", "view"));
  // The Δ with the paper's fan-in 3 (S1, S2, snapshot) and fan-out 3
  // (bottom chain, middle chain, SP1) — the "vulnerable" node.
  QOX_RETURN_IF_ERROR(g.AddOperation("Delta", "delta"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S1_SALES_TRAN", "Delta"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S2_SALES_STAFF", "Delta"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SNAPSHOT", "Delta"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta", "SP1"));
  // Bottom chain.
  QOX_RETURN_IF_ERROR(g.AddOperation("Lkp", "lookup"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Flt_NN", "filter"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Func", "function"));
  QOX_RETURN_IF_ERROR(g.AddOperation("SK", "surrogate_key"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta", "Lkp"));
  QOX_RETURN_IF_ERROR(g.AddEdge("L1_STORE_DT", "Lkp"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Lkp", "Flt_NN"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Flt_NN", "Func"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Func", "SK"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SK", "DW1_SALES"));
  // Middle chain (transformations hidden under the load task).
  QOX_RETURN_IF_ERROR(g.AddOperation("Load_DW2", "load"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta", "Load_DW2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Load_DW2", "DW2_SALES_REP"));
  // Top chain with SP2.
  QOX_RETURN_IF_ERROR(g.AddOperation("Load_DW3", "load"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S3_CUSTWEB_CS", "Load_DW3"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Load_DW3", "SP2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SP2", "DW3_CUSTOMER"));
  // Views.
  QOX_RETURN_IF_ERROR(g.AddEdge("DW1_SALES", "V1_CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW3_CUSTOMER", "V1_CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW1_SALES", "V2_SAL_SALES_REP_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW2_SALES_REP", "V2_SAL_SALES_REP_RELS"));
  return g;
}

Result<FlowGraph> BuildFigure3RestructuredGraph() {
  FlowGraph g;
  QOX_RETURN_IF_ERROR(g.AddDataStore("S1_SALES_TRAN", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("S2_SALES_STAFF", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("S3_CUSTWEB_CS", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("L1_STORE_DT", "source"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SNAPSHOT_1", "staging"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SNAPSHOT_2", "staging"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SP1", "recovery_point"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("SP2", "recovery_point"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW1_SALES", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW2_SALES_REP", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("DW3_CUSTOMER", "target"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("V1_CUSTOMER_SALE_RELS", "view"));
  QOX_RETURN_IF_ERROR(g.AddDataStore("V2_SAL_SALES_REP_RELS", "view"));
  // Independent bottom flow: Δ1 now has fan-in 2 (S1, its snapshot) and
  // fan-out 2 (chain + SP1) — strictly less vulnerable.
  QOX_RETURN_IF_ERROR(g.AddOperation("Delta_1", "delta"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S1_SALES_TRAN", "Delta_1"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SNAPSHOT_1", "Delta_1"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta_1", "SP1"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Lkp", "lookup"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Flt_NN", "filter"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Func", "function"));
  QOX_RETURN_IF_ERROR(g.AddOperation("SK", "surrogate_key"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta_1", "Lkp"));
  QOX_RETURN_IF_ERROR(g.AddEdge("L1_STORE_DT", "Lkp"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Lkp", "Flt_NN"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Flt_NN", "Func"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Func", "SK"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SK", "DW1_SALES"));
  // Independent middle flow with its own link to S2 (Sec. 3.4's proposal).
  QOX_RETURN_IF_ERROR(g.AddOperation("Delta_2", "delta"));
  QOX_RETURN_IF_ERROR(g.AddOperation("Load_DW2", "load"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S2_SALES_STAFF", "Delta_2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SNAPSHOT_2", "Delta_2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Delta_2", "Load_DW2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Load_DW2", "DW2_SALES_REP"));
  // Top flow unchanged.
  QOX_RETURN_IF_ERROR(g.AddOperation("Load_DW3", "load"));
  QOX_RETURN_IF_ERROR(g.AddEdge("S3_CUSTWEB_CS", "Load_DW3"));
  QOX_RETURN_IF_ERROR(g.AddEdge("Load_DW3", "SP2"));
  QOX_RETURN_IF_ERROR(g.AddEdge("SP2", "DW3_CUSTOMER"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW1_SALES", "V1_CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW3_CUSTOMER", "V1_CUSTOMER_SALE_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW1_SALES", "V2_SAL_SALES_REP_RELS"));
  QOX_RETURN_IF_ERROR(g.AddEdge("DW2_SALES_REP", "V2_SAL_SALES_REP_RELS"));
  return g;
}

}  // namespace qox
