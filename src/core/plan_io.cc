#include "core/plan_io.h"

#include <cctype>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "core/cost_model.h"
#include "engine/plan.h"

namespace qox {

bool PlanStageSpec::operator==(const PlanStageSpec& other) const {
  return id == other.id && kind == other.kind && label == other.label &&
         begin == other.begin && end == other.end &&
         partition == other.partition && section == other.section;
}

bool PlanEdgeSpec::operator==(const PlanEdgeSpec& other) const {
  return from == other.from && to == other.to && capacity == other.capacity;
}

bool OpSpec::operator==(const OpSpec& other) const {
  return name == other.name && kind == other.kind &&
         blocking == other.blocking &&
         cost_per_row == other.cost_per_row &&
         selectivity == other.selectivity && reads == other.reads &&
         creates == other.creates && drops == other.drops &&
         error_policy == other.error_policy;
}

bool DesignSpec::operator==(const DesignSpec& other) const {
  return flow_id == other.flow_id && source == other.source &&
         target == other.target && ops == other.ops &&
         threads == other.threads && partitions == other.partitions &&
         partition_scheme == other.partition_scheme &&
         hash_column == other.hash_column &&
         range_begin == other.range_begin && range_end == other.range_end &&
         recovery_points == other.recovery_points &&
         redundancy == other.redundancy &&
         loads_per_day == other.loads_per_day &&
         provenance_columns == other.provenance_columns &&
         audit_rejects == other.audit_rejects &&
         streaming == other.streaming &&
         channel_capacity == other.channel_capacity &&
         error_budget_max_rows == other.error_budget_max_rows &&
         error_budget_max_fraction == other.error_budget_max_fraction &&
         journaled == other.journaled &&
         journal_sync == other.journal_sync &&
         memory_budget_bytes == other.memory_budget_bytes &&
         resource_policy == other.resource_policy &&
         columnar == other.columnar &&
         sla_deadline_s == other.sla_deadline_s &&
         has_service == other.has_service &&
         service_workers == other.service_workers &&
         service_max_concurrent == other.service_max_concurrent &&
         service_policy == other.service_policy &&
         service_admit_only_feasible == other.service_admit_only_feasible &&
         cdc_shards == other.cdc_shards &&
         cdc_slice_events == other.cdc_slice_events &&
         cdc_update_rate_per_s == other.cdc_update_rate_per_s &&
         plan_stages == other.plan_stages && plan_edges == other.plan_edges;
}

DesignSpec SpecOf(const PhysicalDesign& design) {
  DesignSpec spec;
  spec.flow_id = design.flow.id();
  spec.source =
      design.flow.source() != nullptr ? design.flow.source()->name() : "";
  spec.target =
      design.flow.target() != nullptr ? design.flow.target()->name() : "";
  size_t op_index = 0;
  for (const LogicalOp& op : design.flow.ops()) {
    OpSpec op_spec;
    op_spec.error_policy =
        ErrorPolicyName(op_index < design.error_policies.size()
                            ? design.error_policies[op_index]
                            : ErrorPolicy::kFailFast);
    ++op_index;
    op_spec.name = op.name;
    op_spec.kind = op.kind;
    op_spec.blocking = op.blocking;
    op_spec.cost_per_row = op.cost_per_row;
    op_spec.selectivity = op.selectivity;
    op_spec.reads = op.reads;
    op_spec.creates = op.creates;
    op_spec.drops = op.drops;
    spec.ops.push_back(std::move(op_spec));
  }
  spec.threads = design.threads;
  spec.partitions = design.parallel.partitions;
  spec.partition_scheme =
      design.parallel.scheme == PartitionScheme::kHash ? "hash"
                                                       : "round_robin";
  spec.hash_column = design.parallel.hash_column;
  spec.range_begin = design.parallel.range_begin;
  spec.range_end = design.parallel.range_end;
  spec.recovery_points = design.recovery_points;
  spec.redundancy = design.redundancy;
  spec.loads_per_day = design.loads_per_day;
  spec.provenance_columns = design.provenance_columns;
  spec.audit_rejects = design.audit_rejects;
  spec.streaming = design.streaming;
  spec.channel_capacity = design.channel_capacity;
  spec.error_budget_max_rows = design.error_budget.max_rows;
  spec.error_budget_max_fraction = design.error_budget.max_fraction;
  spec.journaled = design.journaled;
  spec.journal_sync = JournalSyncName(design.journal_sync);
  spec.memory_budget_bytes = design.memory_budget_bytes;
  spec.resource_policy = ResourcePolicyName(design.resource_policy);
  spec.columnar = design.columnar;
  spec.sla_deadline_s = design.sla_deadline_s;
  spec.cdc_shards = design.cdc_shards;
  spec.cdc_slice_events = design.cdc_slice_events;
  spec.cdc_update_rate_per_s = design.cdc_update_rate_per_s;
  // The lowered stage graph rides along as descriptive metadata. PlanFor
  // is the same lowering the executors schedule, so the exported plan is
  // exactly what would run.
  const ExecutionPlan plan = CostModel::PlanFor(design);
  for (const PlanNode& node : plan.nodes()) {
    PlanStageSpec stage;
    stage.id = node.id;
    stage.kind = PlanNodeKindName(node.kind);
    stage.label = node.label;
    stage.begin = node.begin;
    stage.end = node.end;
    stage.partition = node.partition;
    stage.section = node.section;
    spec.plan_stages.push_back(std::move(stage));
  }
  for (const PlanEdge& edge : plan.edges()) {
    PlanEdgeSpec edge_spec;
    edge_spec.from = edge.from;
    edge_spec.to = edge.to;
    edge_spec.capacity = edge.capacity;
    spec.plan_edges.push_back(edge_spec);
  }
  return spec;
}

namespace {

std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> XmlUnescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out += text[i];
      continue;
    }
    const size_t end = text.find(';', i);
    if (end == std::string::npos) {
      return Status::Invalid("unterminated XML entity");
    }
    const std::string entity = text.substr(i + 1, end - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else return Status::Invalid("unknown XML entity '&" + entity + ";'");
    i = end;
  }
  return out;
}

std::string ColumnList(const std::vector<std::string>& columns) {
  return Join(columns, ",");
}

std::vector<std::string> ParseColumnList(const std::string& text) {
  if (text.empty()) return {};
  return Split(text, ',');
}

// ---------------------------------------------------------------------------
// A minimal XML reader sufficient for the documents this module emits:
// elements with attributes, nesting, self-closing tags; no text nodes,
// comments or processing instructions beyond the leading declaration.
// ---------------------------------------------------------------------------

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attributes;
  std::vector<XmlNode> children;

  const XmlNode* FirstChild(const std::string& name) const {
    for (const XmlNode& child : children) {
      if (child.tag == name) return &child;
    }
    return nullptr;
  }
};

class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  Result<XmlNode> Parse() {
    SkipWhitespaceAndDeclarations();
    QOX_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipWhitespaceAndDeclarations();
    if (pos_ != text_.size()) {
      return Status::Invalid("trailing content after the root element");
    }
    return root;
  }

 private:
  void SkipWhitespaceAndDeclarations() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 2, "<?") == 0) {
        const size_t end = text_.find("?>", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 2;
      } else if (text_.compare(pos_, 4, "<!--") == 0) {
        const size_t end = text_.find("-->", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  Result<XmlNode> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::Invalid("expected '<' at position " +
                             std::to_string(pos_));
    }
    ++pos_;
    XmlNode node;
    QOX_ASSIGN_OR_RETURN(node.tag, ParseName());
    while (true) {
      SkipSpaces();
      if (pos_ >= text_.size()) {
        return Status::Invalid("unterminated element <" + node.tag + ">");
      }
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
          return Status::Invalid("malformed self-closing tag");
        }
        pos_ += 2;
        return node;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      QOX_ASSIGN_OR_RETURN(const auto attribute, ParseAttribute());
      node.attributes[attribute.first] = attribute.second;
    }
    // Children until the closing tag.
    while (true) {
      SkipWhitespaceAndDeclarations();
      if (text_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        QOX_ASSIGN_OR_RETURN(const std::string closing, ParseName());
        SkipSpaces();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::Invalid("malformed closing tag </" + closing + ">");
        }
        ++pos_;
        if (closing != node.tag) {
          return Status::Invalid("mismatched closing tag </" + closing +
                                 "> for <" + node.tag + ">");
        }
        return node;
      }
      QOX_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
      node.children.push_back(std::move(child));
    }
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::Invalid("expected an XML name");
    return text_.substr(start, pos_ - start);
  }

  Result<std::pair<std::string, std::string>> ParseAttribute() {
    QOX_ASSIGN_OR_RETURN(const std::string name, ParseName());
    SkipSpaces();
    if (pos_ >= text_.size() || text_[pos_] != '=') {
      return Status::Invalid("attribute '" + name + "' missing '='");
    }
    ++pos_;
    SkipSpaces();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::Invalid("attribute '" + name + "' missing quote");
    }
    ++pos_;
    const size_t end = text_.find('"', pos_);
    if (end == std::string::npos) {
      return Status::Invalid("unterminated attribute value for '" + name +
                             "'");
    }
    QOX_ASSIGN_OR_RETURN(const std::string value,
                         XmlUnescape(text_.substr(pos_, end - pos_)));
    pos_ = end + 1;
    return std::make_pair(name, value);
  }

  void SkipSpaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<std::string> RequiredAttribute(const XmlNode& node,
                                      const std::string& name) {
  const auto it = node.attributes.find(name);
  if (it == node.attributes.end()) {
    return Status::Invalid("<" + node.tag + "> missing attribute '" + name +
                           "'");
  }
  return it->second;
}

std::string AttributeOr(const XmlNode& node, const std::string& name,
                        const std::string& fallback) {
  const auto it = node.attributes.find(name);
  return it == node.attributes.end() ? fallback : it->second;
}

Result<size_t> ParseSize(const std::string& text) {
  QOX_ASSIGN_OR_RETURN(const Value v, Value::Parse(text, DataType::kInt64));
  if (v.is_null() || v.int64_value() < 0) {
    return Status::Invalid("expected a non-negative integer, got '" + text +
                           "'");
  }
  return static_cast<size_t>(v.int64_value());
}

Result<double> ParseDouble(const std::string& text) {
  QOX_ASSIGN_OR_RETURN(const Value v, Value::Parse(text, DataType::kDouble));
  if (v.is_null()) return Status::Invalid("expected a number");
  return v.double_value();
}

}  // namespace

std::string ExportDesignXml(const DesignSpec& spec) {
  std::ostringstream oss;
  oss << "<?xml version=\"1.0\"?>\n";
  oss << "<physical_design threads=\"" << spec.threads << "\" redundancy=\""
      << spec.redundancy << "\" loads_per_day=\"" << spec.loads_per_day
      << "\" provenance_columns=\"" << (spec.provenance_columns ? 1 : 0)
      << "\" audit_rejects=\"" << (spec.audit_rejects ? 1 : 0)
      << "\" streaming=\"" << (spec.streaming ? 1 : 0)
      << "\" channel_capacity=\"" << spec.channel_capacity << "\"";
  // The budget attributes appear only when a budget is actually set, so
  // documents from designs that never touch containment stay byte-stable.
  if (spec.error_budget_max_rows != static_cast<size_t>(-1)) {
    oss << " error_budget_max_rows=\"" << spec.error_budget_max_rows << "\"";
  }
  if (spec.error_budget_max_fraction < 1.0) {
    oss << " error_budget_max_fraction=\"" << spec.error_budget_max_fraction
        << "\"";
  }
  // Journal attributes appear only for journaled designs (same
  // byte-stability contract as the budget attributes above).
  if (spec.journaled) {
    oss << " journaled=\"1\" journal_sync=\"" << spec.journal_sync << "\"";
  }
  // Resource-pressure attributes appear only for budgeted designs (same
  // byte-stability contract again).
  if (spec.memory_budget_bytes > 0) {
    oss << " memory_budget_bytes=\"" << spec.memory_budget_bytes
        << "\" resource_policy=\"" << XmlEscape(spec.resource_policy) << "\"";
  }
  // Likewise: the columnar attribute appears only when the fast path is on.
  if (spec.columnar) oss << " columnar=\"1\"";
  // The SLA attribute appears only for deadline-carrying flows, so
  // pre-service documents stay byte-stable.
  if (spec.sla_deadline_s > 0.0) {
    oss << " sla_deadline_s=\"" << spec.sla_deadline_s << "\"";
  }
  oss << ">\n";
  oss << "  <flow id=\"" << XmlEscape(spec.flow_id) << "\" source=\""
      << XmlEscape(spec.source) << "\" target=\"" << XmlEscape(spec.target)
      << "\">\n";
  for (const OpSpec& op : spec.ops) {
    oss << "    <operator name=\"" << XmlEscape(op.name) << "\" kind=\""
        << XmlEscape(op.kind) << "\" blocking=\"" << (op.blocking ? 1 : 0)
        << "\" cost_per_row=\"" << op.cost_per_row << "\" selectivity=\""
        << op.selectivity << "\" reads=\"" << XmlEscape(ColumnList(op.reads))
        << "\" creates=\"" << XmlEscape(ColumnList(op.creates))
        << "\" drops=\"" << XmlEscape(ColumnList(op.drops)) << "\"";
    if (op.error_policy != "fail_fast") {
      oss << " error_policy=\"" << XmlEscape(op.error_policy) << "\"";
    }
    oss << "/>\n";
  }
  oss << "  </flow>\n";
  oss << "  <parallel partitions=\"" << spec.partitions << "\" scheme=\""
      << spec.partition_scheme << "\" hash_column=\""
      << XmlEscape(spec.hash_column) << "\" range_begin=\""
      << spec.range_begin << "\" range_end=\""
      << (spec.range_end == static_cast<size_t>(-1)
              ? std::string("max")
              : std::to_string(spec.range_end))
      << "\"/>\n";
  oss << "  <recovery_points>\n";
  for (const size_t cut : spec.recovery_points) {
    oss << "    <cut position=\"" << cut << "\"/>\n";
  }
  oss << "  </recovery_points>\n";
  // Optional sharded-CDC ingestion shape. Absent for non-CDC designs, so
  // documents that predate CDC mode are unchanged.
  if (spec.cdc_shards > 0) {
    oss << "  <cdc shards=\"" << spec.cdc_shards << "\" slice_events=\""
        << spec.cdc_slice_events << "\" update_rate_per_s=\""
        << spec.cdc_update_rate_per_s << "\"/>\n";
  }
  // Optional multi-flow service context (FlowServiceConfig). Absent for
  // solo designs, so documents that predate the service are unchanged.
  if (spec.has_service) {
    oss << "  <service workers=\"" << spec.service_workers
        << "\" max_concurrent_flows=\"" << spec.service_max_concurrent
        << "\" policy=\"" << XmlEscape(spec.service_policy)
        << "\" admit_only_feasible=\""
        << (spec.service_admit_only_feasible ? 1 : 0) << "\"/>\n";
  }
  if (!spec.plan_stages.empty() || !spec.plan_edges.empty()) {
    oss << "  <execution_plan>\n";
    for (const PlanStageSpec& stage : spec.plan_stages) {
      oss << "    <stage id=\"" << stage.id << "\" kind=\""
          << XmlEscape(stage.kind) << "\" label=\"" << XmlEscape(stage.label)
          << "\" begin=\"" << stage.begin << "\" end=\"" << stage.end
          << "\" partition=\"" << stage.partition << "\" section=\""
          << (stage.section == static_cast<size_t>(-1)
                  ? std::string("none")
                  : std::to_string(stage.section))
          << "\"/>\n";
    }
    for (const PlanEdgeSpec& edge : spec.plan_edges) {
      oss << "    <edge from=\"" << edge.from << "\" to=\"" << edge.to
          << "\" capacity=\"" << edge.capacity << "\"/>\n";
    }
    oss << "  </execution_plan>\n";
  }
  oss << "</physical_design>\n";
  return oss.str();
}

std::string ExportDesignXml(const PhysicalDesign& design) {
  return ExportDesignXml(SpecOf(design));
}

Result<DesignSpec> ParseDesignXml(const std::string& xml) {
  XmlParser parser(xml);
  QOX_ASSIGN_OR_RETURN(const XmlNode root, parser.Parse());
  if (root.tag != "physical_design") {
    return Status::Invalid("root element must be <physical_design>, got <" +
                           root.tag + ">");
  }
  DesignSpec spec;
  QOX_ASSIGN_OR_RETURN(spec.threads,
                       ParseSize(AttributeOr(root, "threads", "1")));
  QOX_ASSIGN_OR_RETURN(spec.redundancy,
                       ParseSize(AttributeOr(root, "redundancy", "1")));
  QOX_ASSIGN_OR_RETURN(spec.loads_per_day,
                       ParseSize(AttributeOr(root, "loads_per_day", "24")));
  spec.provenance_columns =
      AttributeOr(root, "provenance_columns", "0") == "1";
  spec.audit_rejects = AttributeOr(root, "audit_rejects", "0") == "1";
  spec.streaming = AttributeOr(root, "streaming", "0") == "1";
  QOX_ASSIGN_OR_RETURN(spec.channel_capacity,
                       ParseSize(AttributeOr(root, "channel_capacity", "8")));
  const std::string budget_rows =
      AttributeOr(root, "error_budget_max_rows", "max");
  if (budget_rows == "max") {
    spec.error_budget_max_rows = static_cast<size_t>(-1);
  } else {
    QOX_ASSIGN_OR_RETURN(spec.error_budget_max_rows, ParseSize(budget_rows));
  }
  QOX_ASSIGN_OR_RETURN(
      spec.error_budget_max_fraction,
      ParseDouble(AttributeOr(root, "error_budget_max_fraction", "1")));
  spec.journaled = AttributeOr(root, "journaled", "0") == "1";
  spec.journal_sync = AttributeOr(root, "journal_sync", "always");
  // Validate the policy name now so a bad document fails at parse time,
  // not when somebody later maps the spec onto a design.
  QOX_RETURN_IF_ERROR(ParseJournalSync(spec.journal_sync).status());
  QOX_ASSIGN_OR_RETURN(
      spec.memory_budget_bytes,
      ParseSize(AttributeOr(root, "memory_budget_bytes", "0")));
  spec.resource_policy = AttributeOr(root, "resource_policy", "fail_flow");
  QOX_RETURN_IF_ERROR(ParseResourcePolicy(spec.resource_policy).status());
  spec.columnar = AttributeOr(root, "columnar", "0") == "1";
  // Schema evolution: documents written before the SLA / service additions
  // simply lack these attributes and fall back to the defaults.
  QOX_ASSIGN_OR_RETURN(spec.sla_deadline_s,
                       ParseDouble(AttributeOr(root, "sla_deadline_s", "0")));
  if (spec.sla_deadline_s < 0.0) {
    return Status::Invalid("sla_deadline_s must be >= 0");
  }
  if (spec.error_budget_max_fraction < 0.0 ||
      spec.error_budget_max_fraction > 1.0) {
    return Status::Invalid("error_budget_max_fraction must lie in [0, 1]");
  }

  const XmlNode* flow = root.FirstChild("flow");
  if (flow == nullptr) return Status::Invalid("missing <flow> element");
  QOX_ASSIGN_OR_RETURN(spec.flow_id, RequiredAttribute(*flow, "id"));
  spec.source = AttributeOr(*flow, "source", "");
  spec.target = AttributeOr(*flow, "target", "");
  for (const XmlNode& child : flow->children) {
    if (child.tag != "operator") continue;
    OpSpec op;
    QOX_ASSIGN_OR_RETURN(op.name, RequiredAttribute(child, "name"));
    QOX_ASSIGN_OR_RETURN(op.kind, RequiredAttribute(child, "kind"));
    op.blocking = AttributeOr(child, "blocking", "0") == "1";
    QOX_ASSIGN_OR_RETURN(
        op.cost_per_row,
        ParseDouble(AttributeOr(child, "cost_per_row", "1")));
    QOX_ASSIGN_OR_RETURN(op.selectivity,
                         ParseDouble(AttributeOr(child, "selectivity", "1")));
    op.reads = ParseColumnList(AttributeOr(child, "reads", ""));
    op.creates = ParseColumnList(AttributeOr(child, "creates", ""));
    op.drops = ParseColumnList(AttributeOr(child, "drops", ""));
    op.error_policy = AttributeOr(child, "error_policy", "fail_fast");
    // Policies are closed vocabulary; reject documents from the future.
    QOX_RETURN_IF_ERROR(ParseErrorPolicy(op.error_policy).status());
    spec.ops.push_back(std::move(op));
  }

  if (const XmlNode* parallel = root.FirstChild("parallel")) {
    QOX_ASSIGN_OR_RETURN(spec.partitions,
                         ParseSize(AttributeOr(*parallel, "partitions", "1")));
    spec.partition_scheme =
        AttributeOr(*parallel, "scheme", "round_robin");
    if (spec.partition_scheme != "round_robin" &&
        spec.partition_scheme != "hash") {
      return Status::Invalid("unknown partition scheme '" +
                             spec.partition_scheme + "'");
    }
    spec.hash_column = AttributeOr(*parallel, "hash_column", "");
    QOX_ASSIGN_OR_RETURN(
        spec.range_begin,
        ParseSize(AttributeOr(*parallel, "range_begin", "0")));
    const std::string range_end = AttributeOr(*parallel, "range_end", "max");
    if (range_end == "max") {
      spec.range_end = static_cast<size_t>(-1);
    } else {
      QOX_ASSIGN_OR_RETURN(spec.range_end, ParseSize(range_end));
    }
  }
  if (const XmlNode* rps = root.FirstChild("recovery_points")) {
    for (const XmlNode& child : rps->children) {
      if (child.tag != "cut") continue;
      QOX_ASSIGN_OR_RETURN(const std::string position,
                           RequiredAttribute(child, "position"));
      QOX_ASSIGN_OR_RETURN(const size_t cut, ParseSize(position));
      spec.recovery_points.push_back(cut);
    }
  }
  if (const XmlNode* cdc = root.FirstChild("cdc")) {
    QOX_ASSIGN_OR_RETURN(const std::string shards,
                         RequiredAttribute(*cdc, "shards"));
    QOX_ASSIGN_OR_RETURN(spec.cdc_shards, ParseSize(shards));
    if (spec.cdc_shards == 0) {
      return Status::Invalid("<cdc> shards must be >= 1");
    }
    QOX_ASSIGN_OR_RETURN(
        spec.cdc_slice_events,
        ParseSize(AttributeOr(*cdc, "slice_events", "64")));
    if (spec.cdc_slice_events == 0) {
      return Status::Invalid("<cdc> slice_events must be >= 1");
    }
    QOX_ASSIGN_OR_RETURN(
        spec.cdc_update_rate_per_s,
        ParseDouble(AttributeOr(*cdc, "update_rate_per_s", "0")));
    if (spec.cdc_update_rate_per_s < 0.0) {
      return Status::Invalid("<cdc> update_rate_per_s must be >= 0");
    }
  }
  if (const XmlNode* service = root.FirstChild("service")) {
    spec.has_service = true;
    QOX_ASSIGN_OR_RETURN(spec.service_workers,
                         ParseSize(AttributeOr(*service, "workers", "4")));
    QOX_ASSIGN_OR_RETURN(
        spec.service_max_concurrent,
        ParseSize(AttributeOr(*service, "max_concurrent_flows", "4")));
    spec.service_policy = AttributeOr(*service, "policy", "edf");
    // Policies are closed vocabulary; reject documents from the future.
    if (spec.service_policy != "edf" && spec.service_policy != "fifo") {
      return Status::Invalid("unknown service queue policy '" +
                             spec.service_policy + "'");
    }
    spec.service_admit_only_feasible =
        AttributeOr(*service, "admit_only_feasible", "0") == "1";
  }
  if (const XmlNode* plan = root.FirstChild("execution_plan")) {
    for (const XmlNode& child : plan->children) {
      if (child.tag == "stage") {
        PlanStageSpec stage;
        QOX_ASSIGN_OR_RETURN(const std::string id,
                             RequiredAttribute(child, "id"));
        QOX_ASSIGN_OR_RETURN(stage.id, ParseSize(id));
        QOX_ASSIGN_OR_RETURN(stage.kind, RequiredAttribute(child, "kind"));
        // Kinds are closed vocabulary; reject documents from the future.
        QOX_RETURN_IF_ERROR(ParsePlanNodeKind(stage.kind).status());
        stage.label = AttributeOr(child, "label", "");
        QOX_ASSIGN_OR_RETURN(stage.begin,
                             ParseSize(AttributeOr(child, "begin", "0")));
        QOX_ASSIGN_OR_RETURN(stage.end,
                             ParseSize(AttributeOr(child, "end", "0")));
        QOX_ASSIGN_OR_RETURN(stage.partition,
                             ParseSize(AttributeOr(child, "partition", "0")));
        const std::string section = AttributeOr(child, "section", "none");
        if (section == "none") {
          stage.section = static_cast<size_t>(-1);
        } else {
          QOX_ASSIGN_OR_RETURN(stage.section, ParseSize(section));
        }
        spec.plan_stages.push_back(std::move(stage));
      } else if (child.tag == "edge") {
        PlanEdgeSpec edge;
        QOX_ASSIGN_OR_RETURN(const std::string from,
                             RequiredAttribute(child, "from"));
        QOX_ASSIGN_OR_RETURN(edge.from, ParseSize(from));
        QOX_ASSIGN_OR_RETURN(const std::string to,
                             RequiredAttribute(child, "to"));
        QOX_ASSIGN_OR_RETURN(edge.to, ParseSize(to));
        QOX_ASSIGN_OR_RETURN(edge.capacity,
                             ParseSize(AttributeOr(child, "capacity", "8")));
        spec.plan_edges.push_back(edge);
      }
    }
  }
  return spec;
}

}  // namespace qox
