// The paper's example ETL workflow (Fig. 3): enterprise sales data
// warehouse with three flows.
//
//   S1 SALES_TRAN  (relational sales transactions),
//   S2 SALES_STAFF (log-sniffer file dumps), and
//   S3 CUSTWEB_CS  (web-portal clickstream) feed staging and DW tables:
//
//   bottom flow: S1 -> Δ -> Lkp(STORE_DT) -> Flt_NN -> Func -> SK -> DW1
//   middle flow: S2 -> Δ -> Func -> SK -> DW2 (sales representatives)
//   top flow:    S3 -> Flt -> Func -> SK -> DW3 (customer activity)
//   views:       V1 CUSTOMER_SALE_RELS (customer status by spend),
//                V2 SAL_SALES_REP_RELS (rep/branch performance)
//
// SalesScenario owns the stores, snapshot stores, surrogate-key
// registries, and the three logical flows; it is the workload every
// benchmark and most integration tests run. The bottom flow is the
// experiments' subject, exactly as in the paper — note its deliberately
// paper-faithful (suboptimal) operator order: Flt_NN sits AFTER the
// lookup, which Sec. 3.1's rewrite improves.

#ifndef QOX_CORE_SALES_WORKFLOW_H_
#define QOX_CORE_SALES_WORKFLOW_H_

#include <memory>
#include <string>

#include "core/design.h"
#include "storage/catalog.h"
#include "storage/flat_file.h"
#include "storage/generators.h"
#include "storage/mem_table.h"

namespace qox {

struct SalesScenarioConfig {
  WorkloadConfig workload;
  size_t s1_rows = 50000;
  size_t s2_rows = 8000;
  size_t s3_rows = 20000;
  /// Fraction of S2 records that update existing reps (delta updates).
  double staff_update_fraction = 0.3;
  /// Directory for file-backed sources (S1, S2 land as CSV so extraction
  /// performs genuine I/O + parse work, which is what makes extraction
  /// dominate as in Fig. 4). Empty => everything in memory (fast tests).
  std::string data_dir;
  /// Bandwidth of the source channels (bytes/second of row payload), the
  /// paper's remote-source network model. 0 = unthrottled local sources.
  double source_bandwidth_bytes_per_s = 0.0;
};

class SalesScenario {
 public:
  /// Generates all source data and builds the three flows.
  static Result<std::unique_ptr<SalesScenario>> Create(
      const SalesScenarioConfig& config);

  // Stores, by the paper's names.
  const DataStorePtr& s1() const { return s1_; }
  const DataStorePtr& s2() const { return s2_; }
  const DataStorePtr& s3() const { return s3_; }
  const DataStorePtr& store_dim() const { return l1_; }
  const DataStorePtr& product_dim() const { return l2_; }
  const DataStorePtr& dw1() const { return dw1_; }
  const DataStorePtr& dw2() const { return dw2_; }
  const DataStorePtr& dw3() const { return dw3_; }
  const SnapshotStorePtr& sales_snapshot() const { return sales_snapshot_; }
  const SnapshotStorePtr& staff_snapshot() const { return staff_snapshot_; }
  const SurrogateKeyRegistryPtr& customer_keys() const {
    return customer_keys_;
  }

  /// The three flows of Fig. 3.
  const LogicalFlow& bottom_flow() const { return bottom_flow_; }
  const LogicalFlow& middle_flow() const { return middle_flow_; }
  const LogicalFlow& top_flow() const { return top_flow_; }

  /// Clears warehouse tables and delta snapshots so the same scenario can
  /// run repeatedly (benchmark iterations).
  Status ResetWarehouse();

  /// Appends a fresh batch of S1 transactions (later deltas).
  Status AppendS1Batch(size_t rows);

  /// The whole-scenario workflow graph (three flows + views), for
  /// maintainability analysis and documentation dumps.
  Result<FlowGraph> ScenarioGraph() const;

  /// V1 CUSTOMER_SALE_RELS: per customer_key, total spend, sale count, and
  /// status bucket (platinum/gold/silver by spend thresholds).
  Result<RowBatch> QueryCustomerSaleRels() const;

  /// V2 SAL_SALES_REP_RELS: per rep, branch, sale count, total amount, and
  /// performance category.
  Result<RowBatch> QuerySalesRepRels() const;

 private:
  SalesScenario() = default;

  Status Build(const SalesScenarioConfig& config);

  SalesScenarioConfig config_;
  Rng rng_{0};
  int64_t next_tran_id_ = 0;

  DataStorePtr s1_, s2_, s3_, l1_, l2_;
  DataStorePtr dw1_, dw2_, dw3_;
  SnapshotStorePtr sales_snapshot_, staff_snapshot_;
  SurrogateKeyRegistryPtr sale_keys_, customer_keys_, rep_keys_;
  LogicalFlow bottom_flow_, middle_flow_, top_flow_;
};

/// The paper's Fig. 3 *picture* as a graph, including the SP1/SP2 recovery
/// points and the multi-source Δ with its high fan-in/fan-out — the node
/// Sec. 3.5 calls "a vulnerable point of the design". Used by the
/// maintainability analysis to reproduce that discussion.
Result<FlowGraph> BuildFigure3PaperGraph();

/// The restructured variant Sec. 3.5 proposes (three independent
/// single-source flows), which resolves the Δ vulnerability at the price
/// of modularity/size.
Result<FlowGraph> BuildFigure3RestructuredGraph();

}  // namespace qox

#endif  // QOX_CORE_SALES_WORKFLOW_H_
