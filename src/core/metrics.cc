#include "core/metrics.h"

#include <sstream>

namespace qox {

const std::vector<QoxMetric>& AllQoxMetrics() {
  static const std::vector<QoxMetric>* const kAll =
      new std::vector<QoxMetric>{
          QoxMetric::kPerformance,    QoxMetric::kRecoverability,
          QoxMetric::kReliability,    QoxMetric::kFreshness,
          QoxMetric::kMaintainability, QoxMetric::kScalability,
          QoxMetric::kAvailability,   QoxMetric::kCost,
          QoxMetric::kRobustness,     QoxMetric::kTraceability,
          QoxMetric::kAuditability,   QoxMetric::kConsistency,
          QoxMetric::kFlexibility,    QoxMetric::kRestartOverhead,
      };
  return *kAll;
}

const char* QoxMetricName(QoxMetric metric) {
  switch (metric) {
    case QoxMetric::kPerformance:
      return "performance";
    case QoxMetric::kRecoverability:
      return "recoverability";
    case QoxMetric::kReliability:
      return "reliability";
    case QoxMetric::kFreshness:
      return "freshness";
    case QoxMetric::kMaintainability:
      return "maintainability";
    case QoxMetric::kScalability:
      return "scalability";
    case QoxMetric::kAvailability:
      return "availability";
    case QoxMetric::kCost:
      return "cost";
    case QoxMetric::kRobustness:
      return "robustness";
    case QoxMetric::kTraceability:
      return "traceability";
    case QoxMetric::kAuditability:
      return "auditability";
    case QoxMetric::kConsistency:
      return "consistency";
    case QoxMetric::kFlexibility:
      return "flexibility";
    case QoxMetric::kRestartOverhead:
      return "restart_overhead";
  }
  return "unknown";
}

Result<QoxMetric> ParseQoxMetric(const std::string& name) {
  for (const QoxMetric metric : AllQoxMetrics()) {
    if (name == QoxMetricName(metric)) return metric;
  }
  return Status::NotFound("unknown QoX metric '" + name + "'");
}

const char* QoxMetricUnit(QoxMetric metric) {
  switch (metric) {
    case QoxMetric::kPerformance:
    case QoxMetric::kRecoverability:
    case QoxMetric::kFreshness:
    case QoxMetric::kRestartOverhead:
      return "s";
    case QoxMetric::kReliability:
    case QoxMetric::kAvailability:
    case QoxMetric::kConsistency:
      return "probability";
    case QoxMetric::kCost:
      return "units";
    default:
      return "score";
  }
}

bool HigherIsBetter(QoxMetric metric) {
  switch (metric) {
    case QoxMetric::kPerformance:
    case QoxMetric::kRecoverability:
    case QoxMetric::kFreshness:
    case QoxMetric::kCost:
    case QoxMetric::kRestartOverhead:
      return false;
    default:
      return true;
  }
}

bool IsDesignStructural(QoxMetric metric) {
  switch (metric) {
    case QoxMetric::kMaintainability:
    case QoxMetric::kFlexibility:
    case QoxMetric::kRobustness:
      return true;
    default:
      return false;
  }
}

Result<double> QoxVector::Get(QoxMetric metric) const {
  const auto it = values_.find(metric);
  if (it == values_.end()) {
    return Status::NotFound(std::string("metric '") + QoxMetricName(metric) +
                            "' not present");
  }
  return it->second;
}

double QoxVector::GetOr(QoxMetric metric, double fallback) const {
  const auto it = values_.find(metric);
  return it == values_.end() ? fallback : it->second;
}

std::string QoxVector::ToString() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [metric, value] : values_) {
    if (!first) oss << " ";
    first = false;
    oss << QoxMetricName(metric) << "=" << value;
    const std::string unit = QoxMetricUnit(metric);
    if (unit == "s") oss << "s";
  }
  return oss.str();
}

}  // namespace qox
