// QoX-driven design-space optimizer.
//
// This is the tool the paper's conclusion announces ("creating tools to
// automate the optimization ... is a topic we are working on"): given a
// logical flow, an engagement objective (constraints + weighted
// preferences over QoX metrics), and workload parameters, the optimizer
// searches the physical design space:
//
//   * operator orderings (algebraic rewrites of Sec. 3.1),
//   * recovery-point placements (Sec. 3.2's heuristics: after extraction,
//     after costly operators, before load — plus subsets thereof),
//   * parallelization (degree, whole-flow vs pipelineable segment),
//   * n-modular redundancy degree (Sec. 3.3),
//   * load frequency (Sec. 3.4's freshness lever),
//
// scoring every candidate with the analytic cost model and the soft-goal
// graph. Returns the best feasible design, the Pareto front over the
// objective's preferred metrics, and soft-goal labels explaining the
// qualitative tradeoffs of the winner.

#ifndef QOX_CORE_OPTIMIZER_H_
#define QOX_CORE_OPTIMIZER_H_

#include <map>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/requirements.h"
#include "core/softgoal.h"

namespace qox {

struct OptimizerOptions {
  std::vector<size_t> partition_choices = {1, 2, 4, 8};
  std::vector<size_t> redundancy_choices = {1, 3, 5};
  std::vector<size_t> loads_per_day_choices = {};  ///< empty: keep baseline
  /// Explore alternative operator orderings via greedy reorder.
  bool explore_orderings = true;
  /// Explore recovery-point placements (subsets of heuristic candidates).
  bool explore_recovery_points = true;
  size_t max_recovery_points = 2;
  /// CPU budget every candidate is planned for.
  size_t threads = 4;
  /// Baseline load schedule.
  size_t loads_per_day = 24;
  /// Prune candidates whose soft-goal label for a constrained metric's
  /// goal is denied (qualitative pruning before the cost model runs).
  bool softgoal_pruning = true;
};

struct DesignCandidate {
  PhysicalDesign design;
  QoxVector predicted;
  ObjectiveEvaluation evaluation;
};

struct OptimizationResult {
  DesignCandidate best;
  /// Non-dominated candidates over the objective's preferred metrics.
  std::vector<DesignCandidate> pareto_front;
  size_t designs_explored = 0;
  size_t designs_pruned_by_softgoals = 0;
  /// Soft-goal labels of the winning design (Fig. 2 explanation).
  std::map<std::string, GoalLabel> softgoal_labels;

  std::string Summary() const;
};

class QoxOptimizer {
 public:
  QoxOptimizer(CostModel cost_model, OptimizerOptions options)
      : cost_model_(std::move(cost_model)), options_(std::move(options)) {}

  /// Searches the design space for `flow` under `objective`. Error only on
  /// malformed flows; an infeasible space still returns the best-scoring
  /// (least-violating) design with evaluation.feasible == false.
  Result<OptimizationResult> Optimize(const LogicalFlow& flow,
                                      const QoxObjective& objective,
                                      const WorkloadParams& workload) const;

  /// Labels the Fig. 2 soft-goal leaves for a design (adopted -> satisfied,
  /// rejected -> denied) and propagates. Public for reporting/tests.
  static Result<std::map<std::string, GoalLabel>> SoftGoalLabels(
      const PhysicalDesign& design);

 private:
  /// Candidate recovery-point cut sets for a flow (heuristic positions).
  std::vector<std::vector<size_t>> RecoveryPointChoices(
      const LogicalFlow& flow) const;

  CostModel cost_model_;
  OptimizerOptions options_;
};

}  // namespace qox

#endif  // QOX_CORE_OPTIMIZER_H_
