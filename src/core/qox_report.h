// Measuring QoX from executed runs and comparing against predictions.
//
// The cost model predicts; the engine measures. This module binds a
// RunMetrics (what actually happened) to the QoX metric suite and renders
// prediction-vs-measurement reports — the evidence trail EXPERIMENTS.md is
// built from, and the calibration loop's feedback signal.

#ifndef QOX_CORE_QOX_REPORT_H_
#define QOX_CORE_QOX_REPORT_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/design.h"
#include "core/metrics.h"
#include "engine/run_metrics.h"
#include "engine/supervisor.h"

namespace qox {

struct MeasurementContext {
  double time_window_s = 3600.0;
  /// Load schedule in effect when the run executed (freshness denominator).
  size_t loads_per_day = 24;
};

/// Derives measured QoX values from an executed run:
///   performance      total wall time (s)
///   recoverability   observed rework per failure (lost work / failures);
///                    absent when the run saw no failures
///   reliability      observed per-attempt success frequency (1 / attempts)
///   freshness        load period / 2 + measured execution time
///   availability     1 - total / window
///   cost             machine-seconds (threads x redundancy x time)
///   consistency      1.0 when the run completed (engine enforces
///                    exactly-once replay), else absent
/// Structural metrics (maintainability, robustness, flexibility,
/// traceability, auditability) come from the design, identical to the
/// cost model's treatment.
Result<QoxVector> MeasureQox(const RunMetrics& metrics,
                             const PhysicalDesign& design,
                             const MeasurementContext& context,
                             const CostModel& cost_model);

struct ComparisonRow {
  QoxMetric metric = QoxMetric::kPerformance;
  double predicted = 0.0;
  double measured = 0.0;
  /// |predicted - measured| / max(|measured|, eps)
  double relative_error = 0.0;
};

/// Rows for every metric present in both vectors.
std::vector<ComparisonRow> ComparePredictionToMeasurement(
    const QoxVector& predicted, const QoxVector& measured);

/// Fixed-width text table of a comparison.
std::string RenderComparison(const std::vector<ComparisonRow>& rows);

/// Fault-tolerance evidence of a run: attempts, per-cause retry counts,
/// backoff wait, recovery-point corruption fallbacks, injected failures,
/// and lost work. One "key  value" line per counter; retry causes render
/// as retry.<cause> rows. Empty counters are omitted, so a clean run
/// renders only the attempts line.
std::string RenderFaultToleranceReport(const RunMetrics& metrics);

/// Crash-recovery evidence of a supervised run: incarnations forked,
/// crashes absorbed, lease takeover, convergence verdict, the journal's
/// view of the flow (attempts, durable RP commits, replay groups,
/// committed), wall time, and — when the caller has a cost-model
/// prediction (EstimateRestartCost) — the predicted restart overhead next
/// to the measured one, the abl_crash_recovery comparison. Pass a negative
/// `predicted_restart_s` to omit the prediction rows.
std::string RenderCrashRecoveryReport(const SupervisorReport& report,
                                      double predicted_restart_s = -1.0);

}  // namespace qox

#endif  // QOX_CORE_QOX_REPORT_H_
