#include "core/rewrites.h"

#include <algorithm>

namespace qox {

namespace {

bool ClassesMaySwap(OpClass a, OpClass b) {
  // Multiset operators (delta, group) are barriers; everything else
  // (per-row, order-only) commutes semantically.
  return a != OpClass::kMultiset && b != OpClass::kMultiset;
}

LogicalFlow WithSwapped(const LogicalFlow& flow, size_t i) {
  std::vector<LogicalOp> ops = flow.ops();
  std::swap(ops[i], ops[i + 1]);
  LogicalFlow out(flow.id(), flow.source(), std::move(ops), flow.target());
  out.set_post_success(flow.post_success());
  return out;
}

}  // namespace

bool CanSwapAdjacent(const LogicalFlow& flow, size_t i) {
  if (i + 1 >= flow.num_ops()) return false;
  const LogicalOp& a = flow.ops()[i];
  const LogicalOp& b = flow.ops()[i + 1];
  if (!ClassesMaySwap(a.op_class, b.op_class)) return false;
  // Column dependency: b cannot move above a when it reads what a creates,
  // and a cannot run after b when b drops/renames away what a reads. The
  // rebind below is authoritative for both, but check cheaply first.
  for (const std::string& read : b.reads) {
    if (std::find(a.creates.begin(), a.creates.end(), read) !=
        a.creates.end()) {
      return false;
    }
  }
  for (const std::string& read : a.reads) {
    if (std::find(b.drops.begin(), b.drops.end(), read) != b.drops.end()) {
      return false;
    }
  }
  const LogicalFlow candidate = WithSwapped(flow, i);
  // Rebind without the target-schema check: reordering per-row ops can
  // permute column positions mid-chain; the final schema must still match,
  // so bind the full chain and compare the final schema to the original.
  const Result<std::vector<Schema>> original = flow.BindSchemas();
  if (!original.ok()) return false;
  const Result<std::vector<Schema>> bound = BindLogicalChain(
      candidate.source()->schema(), candidate.ops());
  if (!bound.ok()) return false;
  return bound.value().back() == original.value().back();
}

Result<LogicalFlow> SwapAdjacent(const LogicalFlow& flow, size_t i) {
  if (i + 1 >= flow.num_ops()) {
    return Status::OutOfRange("swap index " + std::to_string(i) +
                              " out of range");
  }
  if (!CanSwapAdjacent(flow, i)) {
    return Status::FailedPrecondition(
        "ops '" + flow.ops()[i].name + "' and '" + flow.ops()[i + 1].name +
        "' cannot legally swap");
  }
  return WithSwapped(flow, i);
}

std::vector<LogicalFlow> Neighbors(const LogicalFlow& flow) {
  std::vector<LogicalFlow> out;
  for (size_t i = 0; i + 1 < flow.num_ops(); ++i) {
    if (CanSwapAdjacent(flow, i)) out.push_back(WithSwapped(flow, i));
  }
  return out;
}

double EstimateChainWork(const std::vector<LogicalOp>& ops,
                         double input_rows) {
  double rows = input_rows;
  double work = 0.0;
  for (const LogicalOp& op : ops) {
    work += op.cost_per_row * rows;
    rows *= op.selectivity;
  }
  return work;
}

Result<ReorderResult> GreedyReorder(const LogicalFlow& flow,
                                    double input_rows) {
  QOX_RETURN_IF_ERROR(flow.BindSchemas().status());
  ReorderResult result;
  result.flow = flow;
  result.work_before = EstimateChainWork(flow.ops(), input_rows);
  bool changed = true;
  // Bounded passes: each pass can only reduce estimated work, and the
  // number of beneficial swaps is bounded by n^2.
  size_t guard = flow.num_ops() * flow.num_ops() + 1;
  while (changed && guard-- > 0) {
    changed = false;
    for (size_t i = 0; i + 1 < result.flow.num_ops(); ++i) {
      if (!CanSwapAdjacent(result.flow, i)) continue;
      const LogicalFlow candidate = WithSwapped(result.flow, i);
      const double before = EstimateChainWork(result.flow.ops(), input_rows);
      const double after = EstimateChainWork(candidate.ops(), input_rows);
      if (after + 1e-9 < before) {
        result.flow = candidate;
        ++result.swaps_applied;
        changed = true;
      }
    }
  }
  result.work_after = EstimateChainWork(result.flow.ops(), input_rows);
  return result;
}

}  // namespace qox
