// QoX-driven translations between design levels (Fig. 1 of the paper).
//
// "there may be several alternative translations from conceptual model to
// logical model and these alternatives can be driven by the QoX objectives
// and tradeoffs. Similarly, the translation from the logical model to the
// physical model enables additional types of optimizations."
//
// Conceptual -> logical expands business-level operations into concrete
// operator chains over a SalesScenario's stores (the expansion templates
// consult QoX annotations: e.g. a high-freshness flow refuses blocking
// expansions). Logical -> physical applies the Sec. 3.2-3.4 heuristics to
// pick partitioning, recovery points, redundancy, and load frequency; the
// optimizer (optimizer.h) supersedes these heuristics with a full search,
// and bench/abl_rp_placement measures the gap.

#ifndef QOX_CORE_TRANSLATE_H_
#define QOX_CORE_TRANSLATE_H_

#include "core/cost_model.h"
#include "core/design.h"
#include "core/sales_workflow.h"

namespace qox {

/// The conceptual model of the Fig. 3 bottom flow: business operations
/// with QoX annotations, as a consultant would capture them.
ConceptualFlow SalesBottomConceptual();

/// The conceptual model of the Fig. 3 top (streaming) flow, annotated with
/// a pressing freshness requirement.
ConceptualFlow ClickstreamConceptual();

/// Expands a conceptual flow into a logical flow over the scenario's
/// stores. Supported conceptual kinds: "extract" (implicit, the flow
/// source), "detect_changes", "resolve_codes", "cleanse", "derive",
/// "assign_keys", "load" (implicit, the flow target). Unknown kinds error.
/// A kFreshness annotation <= 300 s on the flow rejects expansions that
/// introduce blocking operators beyond what change detection requires.
Result<LogicalFlow> TranslateToLogical(const ConceptualFlow& conceptual,
                                       const SalesScenario& scenario);

/// Picks a physical design for a logical flow from its QoX annotations
/// using the paper's heuristics:
///   tight freshness  -> frequent loads, no recovery points, redundancy
///                       for fault tolerance (Sec. 3.4)
///   high reliability -> recovery point after extraction and after the
///                       most expensive operator, or NMR when the time
///                       window is too tight for RP I/O (Secs. 3.2-3.3)
///   tight window     -> partition the pipelineable segment (Sec. 3.1)
Result<PhysicalDesign> TranslateToPhysical(
    const LogicalFlow& flow, const std::map<QoxMetric, double>& annotations,
    const CostModel& cost_model, const WorkloadParams& workload,
    size_t threads);

}  // namespace qox

#endif  // QOX_CORE_TRANSLATE_H_
