// Algebraic rewrites over logical flows (Sec. 3.1 of the paper).
//
// "the rule that the most restrictive operations should be placed at the
// start of the flow applies here as well ... an effective technique is to
// gather pipelining and blocking operations separately from each other ...
// one must ensure the applicability and correctness of such modifications."
//
// Legality is two-layered:
//  1. SEMANTIC: per-row operators commute with each other and with
//     order-only operators (sort); multiset operators (delta, group) are
//     barriers. This guarantees the output multiset is unchanged.
//  2. SCHEMA: after a candidate swap the chain must still bind — an
//     operator cannot move above the operator that creates a column it
//     reads. Rebinding is the authoritative check.
//
// Tests verify the semantic guarantee empirically: every legal rewrite of
// a flow produces the same output multiset on randomized data.

#ifndef QOX_CORE_REWRITES_H_
#define QOX_CORE_REWRITES_H_

#include <vector>

#include "core/design.h"

namespace qox {

/// True when ops i and i+1 of the flow may swap (semantic + schema checks).
bool CanSwapAdjacent(const LogicalFlow& flow, size_t i);

/// Swaps ops i and i+1; error when illegal.
Result<LogicalFlow> SwapAdjacent(const LogicalFlow& flow, size_t i);

/// All flows reachable by one legal adjacent swap (the optimizer's search
/// neighborhood).
std::vector<LogicalFlow> Neighbors(const LogicalFlow& flow);

/// Estimated transformation work of the chain in abstract units:
/// sum over ops of cost_per_row * rows_in, where rows_in shrinks by each
/// upstream operator's selectivity. This is the local objective driving
/// ordering rewrites ("move restrictive ops early").
double EstimateChainWork(const std::vector<LogicalOp>& ops,
                         double input_rows);

/// Greedy ordering optimization: bubble-sorts the chain with legal,
/// work-reducing adjacent swaps until a fixed point. This implements both
/// paper heuristics at once — restrictive (selective, cheap) operators
/// drift to the front and blocking operators drift together/late whenever
/// doing so reduces estimated work. Returns the optimized flow and the
/// number of swaps applied.
struct ReorderResult {
  LogicalFlow flow;
  size_t swaps_applied = 0;
  double work_before = 0.0;
  double work_after = 0.0;
};
Result<ReorderResult> GreedyReorder(const LogicalFlow& flow,
                                    double input_rows);

}  // namespace qox

#endif  // QOX_CORE_REWRITES_H_
