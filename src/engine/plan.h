// ExecutionPlan: the explicit stage-graph IR every physical design lowers
// to before execution.
//
// The paper's layered methodology ends at a *physical* design; this module
// is the next lowering step: FlowSpec + physical choices -> a DAG of typed
// stage nodes (extract, transform segment, partition router, partition
// branch, merge, recovery-point barrier, collect, NMR replica vote, load)
// with channel edges and barrier/section annotations. One plan serves
// every consumer:
//
//   * the PHASED executor schedules it section by section ("run the
//     section's units in order, materialize at the recovery-point barrier
//     ending it"),
//   * the STREAMING executor spawns one stage thread per node and wires a
//     bounded channel per edge,
//   * the COST MODEL prices streaming overlap from the plan's drain
//     structure (CostChunks) and recovery cost from the plan's RP cuts,
//   * plan_io exports/imports the node/edge structure as XML metadata,
//     and examples/plan_dump renders it as Graphviz DOT / JSON.
//
// Having exactly one place that answers "where are the barriers, how does
// the chain split into units, what runs concurrently" is what keeps the
// two execution modes and the model's predictions mutually consistent —
// and is the seam future multi-process sharding plugs into (a shard is a
// subgraph cut along channel edges).
//
// Terminology. The transform chain of n operators defines CUT positions
// 0..n (cut 0 = after extraction, cut i = after op i). A recovery point
// at a cut is a HARD barrier: both executors fully materialize there and
// persist the rows. A blocking operator (sort/group/delta) is a SOFT
// barrier: execution does not split there (the operator buffers inside
// its pipeline stage), but the streaming dataflow drains there, which is
// what the cost model's overlap law needs. Sections split at hard
// barriers; CostChunks split at both.

#ifndef QOX_ENGINE_PLAN_H_
#define QOX_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/error_policy.h"
#include "storage/journal_file.h"

namespace qox {

/// How rows are distributed across partitioned branches.
enum class PartitionScheme {
  kRoundRobin,
  kHash,  ///< by hash of `hash_column` (keeps keyed ops partition-local)
};

/// Which slice of the transform chain runs partitioned.
struct ParallelSpec {
  size_t partitions = 1;  ///< 1 = no parallelism
  PartitionScheme scheme = PartitionScheme::kRoundRobin;
  std::string hash_column;  ///< required for kHash
  /// Global op range [range_begin, range_end) executed partitioned; ops
  /// outside the range run sequentially. Defaults cover the whole chain
  /// ("4PF-f"); narrowing them yields the paper's "parallelize parts of the
  /// flow" ("4PF-p").
  size_t range_begin = 0;
  size_t range_end = static_cast<size_t>(-1);
};

/// Structural facts a plan is lowered from. Engine callers build this from
/// FlowSpec + ExecutionConfig (Executor::LowerPlan); the cost model and
/// plan_io build it from design-level metadata — the planner itself never
/// needs live stores or operator instances.
struct PlanInput {
  size_t num_ops = 0;
  /// Per-op blocking flags (soft barriers). May be empty = none blocking.
  std::vector<bool> blocking;
  ParallelSpec parallel;
  std::vector<size_t> recovery_points;  ///< cut positions (hard barriers)
  size_t redundancy = 1;
  bool streaming = false;
  size_t channel_capacity = 8;
  bool ordered_merge = true;
  /// Per-op row-error containment policy (by global index). Empty or
  /// shorter than the chain = kFailFast for the uncovered ops. Longer than
  /// the chain is a lowering error. Carried on the plan so dumps, the XML
  /// interchange format, and the cost model all see the same containment
  /// configuration the schedulers enforce.
  std::vector<ErrorPolicy> error_policies;
  /// Flow-level ceiling on contained (skipped + quarantined) rows.
  ErrorBudget error_budget;
  /// Crash-safety knobs: whether the run writes a durable FlowJournal and
  /// under which fsync policy (storage/journal_file.h). Carried on the
  /// plan — not interpreted by lowering — so the XML interchange format
  /// and the cost model's restart term see the same journaling
  /// configuration the executor runs under.
  bool journaled = false;
  JournalSync journal_sync = JournalSync::kAlways;
  /// Freshness-SLA deadline budget of the flow (relative microseconds from
  /// admission; 0 = none). Carried on the plan — not interpreted by
  /// lowering — so plan dumps, the XML interchange format, and the
  /// FlowService's admission control all see the SLA the executor runs
  /// under.
  int64_t sla_deadline_micros = 0;
};

enum class PlanNodeKind {
  kExtract,          ///< source scan (or recovery-point replay on resume)
  kTransform,        ///< sequential pipeline over ops [begin, end)
  kPartitionRouter,  ///< routes rows into per-partition channels
  kPartitionBranch,  ///< one partition's pipeline over ops [begin, end)
  kMerge,            ///< reunifies partition branches (ordered or RR)
  kRpBarrier,        ///< recovery-point cut: materialize + persist + re-emit
  kCollect,          ///< materializes output for the redundancy voter
  kReplicaGroup,     ///< NMR majority vote over `partition` = k replicas
  kLoad,             ///< warehouse load sink
};

/// Stable lowercase name ("extract", "transform", ...), used by plan
/// dumps and the XML interchange format.
const char* PlanNodeKindName(PlanNodeKind kind);

/// Parses a PlanNodeKindName back. Unknown names error.
Result<PlanNodeKind> ParsePlanNodeKind(const std::string& name);

struct PlanNode {
  /// Stable node id: index into ExecutionPlan::nodes(), assigned in
  /// topological order. RunMetrics::StageStats are keyed by this id.
  size_t id = 0;
  PlanNodeKind kind = PlanNodeKind::kTransform;
  /// Display label, identical to the streaming stage name ("extract",
  /// "transform[0,3)", "part2[1,4)", "rp.cut1", "merge[0,3)", "load").
  std::string label;
  /// Op range [begin, end) for transform/router/branch/merge nodes; for a
  /// kRpBarrier, begin == end == the cut position.
  size_t begin = 0;
  size_t end = 0;
  /// Branch index for kPartitionBranch; replica count for kReplicaGroup.
  size_t partition = 0;
  /// Index of the execution section this node belongs to, or kNoSection
  /// (extract, the cut-0 barrier, and sink nodes sit outside sections).
  size_t section = 0;
  std::vector<size_t> inputs;   ///< upstream node ids
  std::vector<size_t> outputs;  ///< downstream node ids
};

/// A channel edge of the dataflow (bounded to `capacity` batches when the
/// plan runs in streaming mode).
struct PlanEdge {
  size_t from = 0;
  size_t to = 0;
  size_t capacity = 8;
};

/// One scheduling unit of a section: a maximal op run that is either fully
/// sequential or fully inside the parallel range.
struct PlanUnit {
  bool parallel = false;
  size_t begin = 0;  ///< op range [begin, end)
  size_t end = 0;
  /// Sequential: the kTransform node. Parallel: unused.
  size_t node = 0;
  /// Parallel only: router / per-partition branches / merge node ids.
  size_t router = 0;
  size_t merge = 0;
  std::vector<size_t> branches;
};

/// A run of ops between hard (recovery-point) barriers. The phased
/// executor runs sections in order, materializing and persisting at each
/// rp_at_end; the streaming executor inserts a kRpBarrier stage there.
struct PlanSection {
  size_t begin_cut = 0;  ///< ops [begin_cut, end_cut)
  size_t end_cut = 0;
  bool rp_at_end = false;
  /// kRpBarrier node ending this section (kNoNode when !rp_at_end).
  size_t barrier_node = 0;
  std::vector<PlanUnit> units;
};

class ExecutionPlan {
 public:
  static constexpr size_t kNoNode = static_cast<size_t>(-1);
  static constexpr size_t kNoSection = static_cast<size_t>(-1);

  /// One chunk of the streaming-overlap cost structure: a maximal op run
  /// between channel borders (hard barriers, soft barriers, and the
  /// parallel range's edges). `drains_at_end` marks chunks whose end is a
  /// barrier — the dataflow fully drains there, so concurrent-stage
  /// overlap stops and wall times sum across the boundary.
  struct CostChunk {
    size_t begin = 0;  ///< ops [begin, end)
    size_t end = 0;
    bool parallel = false;      ///< runs partitioned (router + branches + merge)
    bool drains_at_end = false;
  };

  /// Lowers the structural input into a stage graph. Errors on structural
  /// impossibilities (0 partitions, 0 redundancy, recovery point beyond
  /// the chain); store/schema-level validation stays with
  /// Executor::BindChain.
  static Result<ExecutionPlan> Lower(const PlanInput& input);

  const PlanInput& input() const { return input_; }
  size_t num_ops() const { return input_.num_ops; }

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const std::vector<PlanEdge>& edges() const { return edges_; }
  const std::vector<PlanSection>& sections() const { return sections_; }

  /// Recovery-point cuts, sorted and deduplicated, all <= num_ops. The
  /// single source of truth for "where are the hard barriers" — the
  /// executors' resume search and the cost model's RP laws both read it.
  const std::vector<size_t>& rp_cuts() const { return rp_cuts_; }
  bool rp_at(size_t cut) const;
  /// True when a recovery point sits at cut 0 (right after extraction).
  bool rp_after_extract() const { return rp_after_extract_; }

  // Well-known nodes (kNoNode when absent).
  size_t extract_node() const { return extract_node_; }
  size_t rp0_barrier_node() const { return rp0_barrier_node_; }
  size_t collect_node() const { return collect_node_; }
  size_t replica_group_node() const { return replica_group_node_; }
  size_t load_node() const { return load_node_; }
  /// The dataflow's terminal per-instance stage: kLoad for inline-load
  /// plans (streaming, redundancy 1), else kCollect feeding the voter.
  size_t sink_node() const {
    return collect_node_ != kNoNode ? collect_node_ : load_node_;
  }

  /// The plan node executing transform op `op_index`: the kTransform node
  /// covering it, or — when the op runs partitioned — the partition-0
  /// kPartitionBranch (the representative branch; all branches share the op
  /// range). kNoNode when op_index is outside the chain. Quarantine
  /// provenance records carry this id.
  size_t NodeForOp(size_t op_index) const;

  /// The containment policy in force for op `op_index` (kFailFast for ops
  /// beyond the configured policy vector).
  ErrorPolicy PolicyForOp(size_t op_index) const;

  /// Streaming-overlap structure for the cost model's performance law.
  const std::vector<CostChunk>& cost_chunks() const { return cost_chunks_; }
  /// Cut positions rows cross a channel edge at (0, every barrier, the
  /// parallel range's edges) — the per-row channel-transfer cost sites.
  const std::vector<size_t>& channel_borders() const {
    return channel_borders_;
  }
  /// True when the dataflow drains immediately after extraction (RP at 0,
  /// or an empty chain): extraction then overlaps nothing.
  bool drains_after_extract() const {
    return rp_after_extract_ || input_.num_ops == 0;
  }

  /// Graphviz DOT rendering (sections as clusters, barriers as boxes).
  std::string ToDot() const;
  /// Single-line JSON rendering (nodes, edges, sections) for logs.
  std::string ToJson() const;

 private:
  size_t AddNode(PlanNodeKind kind, std::string label, size_t begin,
                 size_t end, size_t partition, size_t section);
  /// Adds a channel edge and mirrors it into the nodes' inputs/outputs.
  void Connect(size_t from, size_t to);

  PlanInput input_;
  std::vector<PlanNode> nodes_;
  std::vector<PlanEdge> edges_;
  std::vector<PlanSection> sections_;
  std::vector<size_t> rp_cuts_;
  std::vector<CostChunk> cost_chunks_;
  std::vector<size_t> channel_borders_;
  bool rp_after_extract_ = false;
  size_t extract_node_ = kNoNode;
  size_t rp0_barrier_node_ = kNoNode;
  size_t collect_node_ = kNoNode;
  size_t replica_group_node_ = kNoNode;
  size_t load_node_ = kNoNode;
};

}  // namespace qox

#endif  // QOX_ENGINE_PLAN_H_
