// ThreadPool: fixed-size worker pool bounding the CPU resources available
// to transformation work.
//
// The pool models the "number of processors" axis of the paper's
// experiments (Figs. 4 and 5): partitioned branches and redundant
// instances submit their work here, so configuring N workers is the
// reproduction's equivalent of running on N CPUs.

#ifndef QOX_ENGINE_THREAD_POOL_H_
#define QOX_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qox {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not block waiting for other tasks on the
  /// same pool — in particular they must not call Wait(), which would
  /// deadlock a fully occupied pool; Wait() detects and rejects this.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Calling Wait() from
  /// inside a task of this same pool is a deadlock-in-waiting (the worker
  /// would wait for itself); it is detected and rejected with
  /// kFailedPrecondition instead of blocking.
  Status Wait();

  /// True when the calling thread is one of this pool's workers. Useful
  /// for asserting "must not run on the pool" preconditions.
  bool InWorkerThread() const;

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qox

#endif  // QOX_ENGINE_THREAD_POOL_H_
