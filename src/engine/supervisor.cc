#include "engine/supervisor.h"

#include <cerrno>
#include <csignal>
#include <filesystem>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/crash_point.h"
#include "storage/lease_file.h"

namespace qox {

namespace {

/// Exit code a child uses to report a deterministic body failure (the
/// status itself travels through the verdict file).
constexpr int kBodyFailedExit = 3;

std::string VerdictPath(const std::string& scratch_dir,
                        const std::string& flow_id) {
  return scratch_dir + "/" + flow_id + ".verdict";
}

void WriteVerdict(const std::string& path, const Status& status) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << StatusCodeName(status.code()) << "\n" << status.message() << "\n";
  out.flush();
}

Status ReadVerdict(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Internal("supervised flow failed without a verdict");
  }
  std::string code_name;
  std::getline(in, code_name);
  std::string message;
  std::getline(in, message);
  // Map the name back onto a representative code; unknown names (torn
  // verdict) degrade to kInternal rather than erroring the supervisor.
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kInternal, StatusCode::kUnimplemented,
        StatusCode::kInjectedFailure, StatusCode::kCancelled,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
        StatusCode::kCorruptedData, StatusCode::kErrorBudgetExceeded}) {
    if (code_name == StatusCodeName(code)) return Status(code, message);
  }
  return Status::Internal("supervised flow failed: " + code_name + ": " +
                          message);
}

/// The child's whole life. Never returns.
[[noreturn]] void RunChild(const std::string& flow_id,
                           const SupervisedBody& body,
                           const SupervisorOptions& options, int incarnation) {
  if (options.child_setup) options.child_setup(incarnation);
  QOX_CRASH_POINT("child.start");
  const std::string verdict = VerdictPath(options.scratch_dir, flow_id);
  Result<FlowJournalPtr> journal =
      FlowJournal::Open(options.scratch_dir, flow_id, options.journal_sync);
  if (!journal.ok()) {
    WriteVerdict(verdict, journal.status());
    ::_exit(kBodyFailedExit);
  }
  FlowEnv env;
  env.scratch_dir = options.scratch_dir;
  env.journal = journal.TakeValue();
  env.resume = ResumeFromJournal(env.journal->state());
  env.incarnation = incarnation;
  const Status st = body(env);
  if (st.ok()) ::_exit(0);
  WriteVerdict(verdict, st);
  ::_exit(kBodyFailedExit);
}

}  // namespace

Result<SupervisorReport> FlowSupervisor::Run(const std::string& flow_id,
                                             const SupervisedBody& body,
                                             const SupervisorOptions& options) {
  const StopWatch timer;
  if (options.scratch_dir.empty()) {
    return Status::Invalid("supervisor needs a scratch_dir");
  }
  if (!body) return Status::Invalid("supervisor needs a body");
  std::error_code ec;
  std::filesystem::create_directories(options.scratch_dir, ec);
  if (ec) {
    return Status::IoError("cannot create scratch dir '" +
                           options.scratch_dir + "': " + ec.message());
  }
  QOX_ASSIGN_OR_RETURN(
      const std::unique_ptr<LeaseFile> lease,
      LeaseFile::Acquire(options.scratch_dir + "/" + flow_id + ".lease",
                         "supervisor:" + flow_id));
  SupervisorReport report;
  report.lease_takeover = lease->took_over();
  const size_t budget = std::max<size_t>(1, options.max_incarnations);
  const std::string verdict = VerdictPath(options.scratch_dir, flow_id);

  for (size_t incarnation = 1; incarnation <= budget; ++incarnation) {
    // Parent-side peek: re-opening also truncates any torn tail the last
    // child's death left (safe — the child is reaped, nobody appends).
    {
      QOX_ASSIGN_OR_RETURN(const FlowJournalPtr journal,
                           FlowJournal::Open(options.scratch_dir, flow_id,
                                             options.journal_sync));
      report.journal_state = journal->state();
      report.attempts_observed = std::max(
          report.attempts_observed, report.journal_state.attempts_started);
    }
    if (report.journal_state.committed) {
      // Already converged — either before this supervisor started (a
      // takeover after a crash between commit and exit) or by the child
      // whose death we just absorbed.
      report.success = true;
      report.final_status = Status::OK();
      report.total_micros = timer.ElapsedMicros();
      return report;
    }
    std::filesystem::remove(verdict, ec);

    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::IoError("fork failed for supervised flow '" + flow_id +
                             "'");
    }
    if (pid == 0) {
      RunChild(flow_id, body, options, static_cast<int>(incarnation));
    }
    ++report.incarnations;
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(wstatus)) {
      if (WEXITSTATUS(wstatus) == 0) {
        report.success = true;
        report.final_status = Status::OK();
        break;
      }
      // Deterministic failure: restarting would re-fail identically.
      report.success = false;
      report.final_status = ReadVerdict(verdict);
      break;
    }
    // Death by signal (SIGKILL, sanitizer abort, OOM): crash — restart.
    ++report.crashes;
  }

  {
    QOX_ASSIGN_OR_RETURN(
        const FlowJournalPtr journal,
        FlowJournal::Open(options.scratch_dir, flow_id, options.journal_sync));
    report.journal_state = journal->state();
    report.attempts_observed = std::max(report.attempts_observed,
                                        report.journal_state.attempts_started);
  }
  if (!report.success && report.final_status.ok()) {
    if (report.journal_state.committed) {
      // The last child committed and then died before its clean exit.
      report.success = true;
    } else {
      report.final_status = Status::Unavailable(
          "flow '" + flow_id + "' did not converge within " +
          std::to_string(report.incarnations) + " incarnations (" +
          std::to_string(report.crashes) + " crashes)");
    }
  }
  report.total_micros = timer.ElapsedMicros();
  return report;
}

}  // namespace qox
