// Pipeline: a bound, executable chain of operators.
//
// A pipeline owns its operator instances, binds their schemas at creation,
// and cascades batches through them on Push. Finish flushes blocking
// operators in order, cascading each flush through the downstream
// operators. Output rows accumulate in the pipeline (the executor decides
// where they go next: the next segment, a recovery point, a merge, or the
// warehouse load).
//
// The pipeline is also where failure injection and cancellation are
// observed: before each operator invocation it reports progress to the
// FailureInjector and checks the cooperative cancel flag.

#ifndef QOX_ENGINE_PIPELINE_H_
#define QOX_ENGINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/error_policy.h"
#include "engine/failure.h"
#include "engine/operator.h"

namespace qox {

/// Execution identity of a pipeline (which redundant instance, which
/// attempt, where its ops sit in the global transform chain).
struct PipelineConfig {
  int instance_id = 0;
  int attempt = 1;
  /// Global index of this pipeline's first operator within the flow's
  /// transform chain (failure specs address global indices).
  int op_index_offset = 0;
  FailureInjector* injector = nullptr;
  /// Expected number of input rows (denominator for failure fractions).
  size_t expected_input_rows = 0;
  /// Watchdog: absolute NowMicros() deadline of the enclosing attempt; the
  /// pipeline aborts with kDeadlineExceeded once past it. 0 = unbounded.
  int64_t deadline_micros = 0;
  /// Row-level containment policies, indexed by GLOBAL transform-op index
  /// (op_index_offset + ordinal). Null, or shorter than the chain, means
  /// kFailFast for the uncovered ops — the seed behaviour.
  const std::vector<ErrorPolicy>* error_policies = nullptr;
  /// Shared per-attempt budget accounting; charged for every contained
  /// row. May be null (containment then proceeds unbounded).
  ErrorBudgetState* error_budget = nullptr;
  /// Receives rows contained under kQuarantine (must be thread-safe). May
  /// be null: quarantined rows are then dropped like kSkip but still
  /// counted as quarantined.
  QuarantineSink quarantine_sink;
  /// Enables the columnar fast path: a contiguous run of columnar-capable,
  /// non-blocking operators executes on a ColumnBatch (selection-vector
  /// filtering, vectorized kernels), converting back to rows at the first
  /// non-capable op. Off keeps the pure row path (the seed behaviour);
  /// output is byte-identical either way.
  bool columnar = false;
};

class Pipeline {
 public:
  /// Binds `ops` against `input_schema`. Fails when any operator rejects
  /// its input schema. Opens every operator with `ctx` (which must outlive
  /// the pipeline).
  static Result<std::unique_ptr<Pipeline>> Create(
      const Schema& input_schema, std::vector<OperatorPtr> ops,
      OperatorContext* ctx, const PipelineConfig& config);

  /// Schema of rows this pipeline emits.
  const Schema& output_schema() const { return schemas_.back(); }

  /// Pushes one input batch through the whole chain.
  Status Push(const RowBatch& batch);
  /// Ownership-transferring push: the pipeline may move rows out of
  /// `batch` (pass-through operators then avoid deep-copying every cell).
  Status Push(RowBatch&& batch);

  /// Flushes blocking operators. Must be called exactly once, last.
  Status Finish();

  /// Rows emitted so far (all of them after Finish). Destructive read.
  std::vector<Row> TakeOutput();

  /// Per-operator statistics (timings, row counts).
  const std::vector<OpStats>& op_stats() const { return op_stats_; }

 private:
  Pipeline(std::vector<OperatorPtr> ops, std::vector<Schema> schemas,
           OperatorContext* ctx, const PipelineConfig& config);

  /// Pushes `batch` through ops [from, n), appending final rows to output_.
  /// When `batch_owned`, the caller hands over ownership: the chain may
  /// move rows out of `batch` (it must not be read after the call).
  Status PushFrom(size_t from, const RowBatch& batch, bool batch_owned);

  /// Runs ops [begin, end) — a contiguous columnar-capable run — on the
  /// column batch in place, re-pointing its schema after each op.
  Status RunColumnar(size_t begin, size_t end, ColumnBatch* batch);

  Status CheckInterrupts(size_t op_ordinal, size_t rows_about_to_enter);

  /// Containment policy of op `op_ordinal` (local index; policies are
  /// looked up at the global index).
  ErrorPolicy PolicyFor(size_t op_ordinal) const;

  /// Contains one failing row per the op's policy: counts it, routes it to
  /// the quarantine sink (kQuarantine), and charges the error budget.
  /// Returns non-OK when the budget is exhausted or the sink fails.
  Status Contain(size_t op_ordinal, const Row& row, const Status& cause);

  /// Pushes `input` through op `op_ordinal` into `*out`. A containable
  /// batch failure under kSkip/kQuarantine is replayed row by row, with
  /// the failing rows contained instead of aborting. `input_owned` lets the
  /// op consume `input` via the move overload — exploited only under
  /// kFailFast, since the replay path must re-read the input.
  Status ApplyOp(size_t op_ordinal, const RowBatch& input, bool input_owned,
                 RowBatch* out);

  std::vector<OperatorPtr> ops_;
  /// schemas_[i] = input schema of op i; schemas_[n] = output schema.
  std::vector<Schema> schemas_;
  /// Shared handles onto schemas_, built once so per-batch construction on
  /// the hot path never copies a Schema.
  std::vector<SchemaPtr> schema_ptrs_;
  /// columnar_ok_[i]: op i participates in columnar runs (config enables
  /// it, the op advertises the capability after Open, and it is
  /// non-blocking).
  std::vector<bool> columnar_ok_;
  OperatorContext* ctx_;
  PipelineConfig config_;
  std::vector<OpStats> op_stats_;
  std::vector<size_t> rows_entered_;  // per-op cumulative input rows
  std::vector<Row> output_;
};

}  // namespace qox

#endif  // QOX_ENGINE_PIPELINE_H_
