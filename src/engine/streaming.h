// StageSet: task + channel coordination for streaming (pipelined)
// execution.
//
// A streaming dataflow is a set of stages (extract, transform pipelines,
// partition branches, merges, recovery-point barriers, load) running as
// BLOCKING tasks on the shared executor substrate (engine/worker_pool.h —
// stage bodies park on channel edges, so they run on the pool's cached
// expansion workers, never occupying core workers), connected by bounded
// Channel<RowBatch> edges. The StageSet owns the wiring: it creates the
// channels, submits the stage tasks through its ExecContext, and
// guarantees clean unwinding when any stage fails. The context's tag
// (flow deadline, predicted cost) rides on every stage submission, which
// is how a whole streaming dataflow competes EDF against other flows on
// one shared pool.
//
// Error protocol: a stage body returns a Status. The first non-OK outcome
// poisons EVERY channel in the set with an explicitly tagged *echo* of the
// cause (PoisonEcho), which wakes every stage blocked on a Push or Pop;
// those stages return the echo in turn and are classified as "secondary"
// failures by the tag — never by comparing messages, so two stages failing
// independently with identical text are both recorded as primary. Join()
// then reports one winning status: injected failures beat everything (the
// retry machinery must see the true cause), then the first primary error,
// then any secondary echo.
//
// Accounting: each stage gets a StageStats slot. The stage body records
// rows/batches and its channel waits (Push/Pop expose their blocked time);
// the set derives busy time as wall − stall − backpressure when the body
// finishes. Join() appends all slots to the caller's RunMetrics stage list.

#ifndef QOX_ENGINE_STREAMING_H_
#define QOX_ENGINE_STREAMING_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "engine/channel.h"
#include "engine/exec_context.h"
#include "engine/run_metrics.h"

namespace qox {

using BatchChannel = Channel<RowBatch>;
using BatchChannelPtr = std::shared_ptr<BatchChannel>;

/// Any-ready demultiplexer over a set of per-partition channels.
///
/// A merge that pops its inputs in a fixed order head-of-line blocks:
/// under partition skew the starved partition's channel stays empty while
/// the hot partition's bounded channel fills, the hot producer stalls on
/// Push, the partitioner stalls behind it, and the starved partition never
/// receives data or end-of-stream — the dataflow deadlocks. The feed
/// breaks the cycle: Next(p) drains *every* ready channel into
/// per-partition local buffers while it waits for partition p, so
/// producers always make progress no matter which partition the consumer
/// wants next. Per-partition order is preserved and the consumer still
/// chooses the interleave, so deterministic merges stay deterministic.
///
/// The local buffers are unbounded: under total skew the feed can buffer a
/// hot partition's entire output while waiting for a starved partition's
/// end-of-stream — the same worst case as the phased executor's
/// materialized merge. Channel capacity still bounds memory whenever the
/// consumer keeps up.
class PartitionFeed {
 public:
  /// Attaches a shared notifier to every channel; construct the feed
  /// before polling (producers may already be running — items pushed
  /// before attachment are simply found by the first poll).
  explicit PartitionFeed(std::vector<BatchChannelPtr> parts);

  /// Blocking: the next batch from partition `p`, or nullopt once `p` is
  /// exhausted (channel closed and both queue and local buffer drained).
  /// Fails with the poison status if any channel is poisoned. Time blocked
  /// waiting (on *any* channel activity) accumulates into `wait_micros`.
  Result<std::optional<RowBatch>> Next(size_t p, int64_t* wait_micros);

 private:
  /// Non-blocking: moves every ready batch into the local buffers and
  /// marks channels that reached end-of-stream.
  Status Sweep();

  std::vector<BatchChannelPtr> parts_;
  std::shared_ptr<ChannelNotifier> notifier_;
  std::vector<std::deque<RowBatch>> buf_;
  std::vector<bool> channel_open_;  ///< false once closed and drained
};

class StageSet {
 public:
  /// Stages run as blocking tasks of `ctx`'s WorkerPool under its tag.
  /// The context must carry a pool: stage bodies block on bounded channels,
  /// so inline (pool-less) execution would deadlock the dataflow.
  explicit StageSet(const ExecContext& ctx);
  /// Waits out any stages still running (after poisoning, so this cannot
  /// hang).
  ~StageSet();

  StageSet(const StageSet&) = delete;
  StageSet& operator=(const StageSet&) = delete;

  /// Creates a channel registered for poison-on-failure. If a stage has
  /// already failed, the channel is born poisoned, so stages wired after a
  /// failure unwind immediately instead of processing data nobody reads.
  BatchChannelPtr MakeChannel(size_t capacity);

  /// Submits `body` as a blocking task on the substrate. The body fills
  /// its StageStats (rows, batches, waits); wall and busy time — plus the
  /// time the task waited queued before a worker picked it up and the
  /// stage's slack against the context's deadline — are measured here. A
  /// non-OK return poisons every channel in the set.
  void Spawn(std::string name, std::function<Status(StageStats*)> body);

  /// Waits for every spawned stage and appends their stats to `*stats`
  /// (may be null). Returns the winning status per the error protocol.
  /// Must be called after all Spawn/MakeChannel calls.
  Status Join(std::vector<StageStats>* stats);

  /// The tagged status channels are poisoned with when `cause` fails a
  /// stage: a distinct code + message prefix, so a stage that merely
  /// returns what it popped from a poisoned channel is recognizable as a
  /// secondary (echo) failure. Idempotent — an echo is not re-wrapped.
  static Status PoisonEcho(const Status& cause);

  /// True iff `status` is a PoisonEcho-tagged echo.
  static bool IsPoisonEcho(const Status& status);

 private:
  /// Poisons every registered channel with `status` (first failure wins).
  void FailAll(const Status& status);

  struct Outcome {
    Status status = Status::OK();
    StageStats stats;
    bool primary = false;  ///< failed before (not because of) the poison
  };

  ExecContext ctx_;
  /// Completion guard over every spawned stage task (replaces the old
  /// per-stage std::thread joins).
  TaskGroup group_;
  std::mutex mu_;
  std::vector<BatchChannelPtr> channels_;
  std::vector<Outcome> outcomes_;
  Status first_failure_ = Status::OK();
  bool joined_ = false;
};

}  // namespace qox

#endif  // QOX_ENGINE_STREAMING_H_
