// StageSet: thread + channel coordination for streaming (pipelined)
// execution.
//
// A streaming dataflow is a set of stages (extract, transform pipelines,
// partition branches, merges, recovery-point barriers, load) running on
// dedicated threads, connected by bounded Channel<RowBatch> edges. The
// StageSet owns both: it creates the channels, spawns the stage threads,
// and guarantees clean unwinding when any stage fails.
//
// Error protocol: a stage body returns a Status. The first non-OK outcome
// poisons EVERY channel in the set, which wakes every stage blocked on a
// Push or Pop with that status; those stages return it in turn (they are
// "secondary" failures). Join() then reports one winning status: injected
// failures beat everything (the retry machinery must see the true cause),
// then the first primary error, then any secondary echo.
//
// Accounting: each stage gets a StageStats slot. The stage body records
// rows/batches and its channel waits (Push/Pop expose their blocked time);
// the set derives busy time as wall − stall − backpressure when the body
// finishes. Join() appends all slots to the caller's RunMetrics stage list.

#ifndef QOX_ENGINE_STREAMING_H_
#define QOX_ENGINE_STREAMING_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "engine/channel.h"
#include "engine/run_metrics.h"

namespace qox {

using BatchChannel = Channel<RowBatch>;
using BatchChannelPtr = std::shared_ptr<BatchChannel>;

class StageSet {
 public:
  StageSet() = default;
  /// Joins any stages still running (after poisoning, so this cannot hang).
  ~StageSet();

  StageSet(const StageSet&) = delete;
  StageSet& operator=(const StageSet&) = delete;

  /// Creates a channel registered for poison-on-failure. If a stage has
  /// already failed, the channel is born poisoned, so stages wired after a
  /// failure unwind immediately instead of processing data nobody reads.
  BatchChannelPtr MakeChannel(size_t capacity);

  /// Spawns `body` on a dedicated thread. The body fills its StageStats
  /// (rows, batches, waits); wall and busy time are measured here. A
  /// non-OK return poisons every channel in the set.
  void Spawn(std::string name, std::function<Status(StageStats*)> body);

  /// Waits for every spawned stage and appends their stats to `*stats`
  /// (may be null). Returns the winning status per the error protocol.
  /// Must be called after all Spawn/MakeChannel calls.
  Status Join(std::vector<StageStats>* stats);

 private:
  /// Poisons every registered channel with `status` (first failure wins).
  void FailAll(const Status& status);

  struct Outcome {
    Status status = Status::OK();
    StageStats stats;
    bool primary = false;  ///< failed before (not because of) the poison
  };

  std::mutex mu_;
  std::vector<BatchChannelPtr> channels_;
  std::vector<Outcome> outcomes_;
  std::vector<std::thread> threads_;
  Status first_failure_ = Status::OK();
  bool joined_ = false;
};

}  // namespace qox

#endif  // QOX_ENGINE_STREAMING_H_
