// CdcCoordinator: exactly-once sharded CDC ingestion into one warehouse.
//
// The distributed near-real-time mode of the ROADMAP, built entirely out
// of the engine's existing durability machinery. The stream window is cut
// into time slices (ShardRouter); for each slice, every shard worker runs
// a fully supervised, journaled flow (FlowSupervisor + FlowJournal +
// durable-prefix load skip) that extracts its key partition of the slice,
// transforms it on the ordinary plan IR (streaming or phased, with its own
// per-process DimensionCache when a lookup dimension is configured), and
// stages the result — sorted by version — into a per-(shard, slice) flat
// file. The coordinator then merges the staged outputs of a slice by
// global version and appends them to the warehouse WAL.
//
// Exactly-once across arbitrary SIGKILLs is the sum of four watermarks:
//
//   * Shard workers are supervised flows: a killed worker restarts, skips
//     its journaled durable prefix, and a committed (shard, slice) flow is
//     never re-run (FlowSupervisor's committed check).
//   * The coordinator's own JournalFile records `slice_start(j, wal_base)`
//     BEFORE applying slice j and `slice_applied(j, ...)` after. On
//     restart, applied slices are skipped wholesale; a torn slice resumes
//     by comparing the WAL's current row count against the journaled
//     wal_base — the rows in between are the durable prefix of the merged
//     slice, appended by a dead incarnation, and are not re-appended.
//   * `slice_staged(j, rows...)` pins the slice's merge MEMBERSHIP once
//     every member shard's flow has converged (their staged files are
//     complete on disk from then on). A torn slice re-merges exactly the
//     pinned set from disk without re-running any shard flow, so the
//     durable prefix always extends the same merged list: a shard death
//     in the resume window degrades the run starting from the NEXT slice
//     instead of silently re-partitioning a half-applied one.
//   * Because every slice's merged output is ordered by globally unique
//     versions, the WAL contents are a pure function of (stream, member
//     shards) — the basis of the chaos test's byte-identity invariant
//     against an unkilled single-shard run.
//
// Degradation: a shard whose supervision exhausts its incarnation budget
// is journaled dead; the coordinator keeps applying the remaining shards'
// outputs instead of stalling, and reports the dead shard's backlog as
// per-shard lag in RunMetrics::shard_stats (bounded staleness, attributed).
//
// The coordinator itself may be supervised (and killed): a successor takes
// over the stale coordinator lease (QOX_LEASE_TIMEOUT_MS covers a hung —
// not dead — predecessor) and resumes from the coordinator journal. A
// displaced stale lease is journaled (`takeover`) so tests and operators
// see it after the fact. A live coordinator heartbeats its lease every
// slice and between shard runs, so a configured timeout never steals the
// lease from a healthy long run — and a failed heartbeat (the lease now
// names a live usurper) stops the run instead of split-braining the WAL.

#ifndef QOX_ENGINE_CDC_COORDINATOR_H_
#define QOX_ENGINE_CDC_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cdc_router.h"
#include "engine/run_metrics.h"
#include "storage/cdc_source.h"
#include "storage/data_store.h"
#include "storage/journal_file.h"

namespace qox {

struct CdcOptions {
  /// Root of everything durable: coordinator lease + journal, warehouse
  /// WAL, and one subdirectory per shard (leases, flow journals, staging
  /// files, recovery points). Created if absent.
  std::string scratch_dir;
  CdcStreamSpec stream;
  CdcTopology topology;
  /// Execution mode of the shard workers' flows.
  bool streaming = false;
  /// Row batch size of the shard flows and the WAL apply.
  size_t batch_size = 32;
  /// Fork each (shard, slice) flow under a FlowSupervisor (the production
  /// shape; required for kill-tolerance). false runs the flows in-process
  /// — the fast path for clean references and benches.
  bool supervised = true;
  /// Per-(shard, slice) supervision budget; exhausting it marks the shard
  /// dead (degrade_on_dead_shard) or fails the run.
  size_t max_shard_incarnations = 6;
  JournalSync journal_sync = JournalSync::kAlways;
  /// Keep loading healthy shards when one dies (the bounded-staleness
  /// degradation); false propagates the shard's failure.
  bool degrade_on_dead_shard = true;
  /// Optional lookup dimension keyed by `category` (column "cat"
  /// appended). Exercises each worker process's DimensionCache.
  DataStorePtr dimension;
  /// Chaos hook: runs in every forked shard worker immediately after fork
  /// (FlowSupervisor::child_setup), so tests can arm per-(shard,
  /// incarnation) kill schedules. The default DISARMS inherited crash
  /// points — a supervised coordinator's own armed schedule must not
  /// cascade into its grandchildren.
  std::function<void(size_t shard, int incarnation)> shard_child_setup;
};

struct CdcReport {
  /// Aggregate + per-shard accounting (shard_stats is always populated,
  /// one entry per shard). rows_loaded counts WAL rows appended BY THIS
  /// process; wal_rows below is the durable total.
  RunMetrics metrics;
  size_t slices = 0;
  /// Slices durably applied (journaled), including by prior incarnations.
  size_t slices_applied = 0;
  size_t shards_dead = 0;
  /// At least one shard died and the run completed without it.
  bool degraded = false;
  /// This coordinator displaced a stale predecessor's lease.
  bool lease_takeover = false;
  /// The warehouse WAL: every applied update, ordered by global version
  /// (the byte-identity artifact).
  std::string warehouse_path;
  size_t wal_rows = 0;
  /// Wall time of each slice applied by this process (stage + merge +
  /// load) — the measured component of end-to-end freshness.
  std::vector<int64_t> slice_latency_micros;
};

class CdcCoordinator {
 public:
  /// Runs the whole window to convergence (or bounded degradation).
  /// Restart-safe: call again with the same options after a crash and it
  /// resumes from the journals. Validation errors and unrecoverable I/O
  /// surface as the Result's status.
  static Result<CdcReport> Run(const CdcOptions& options);

  /// Schema of the staged / warehouse rows (the shard flow's bound chain
  /// output): key, version, amount, category, scaled [, cat].
  static Result<Schema> StagedSchema(const CdcOptions& options);
};

/// Reads the warehouse WAL and folds it into the canonical warehouse
/// state: one row per key, the highest version winning, ordered by key.
/// Two converged runs agree on this even when one degraded mid-window.
Result<std::vector<Row>> CdcWarehouseState(const std::string& wal_path,
                                           const Schema& schema);

}  // namespace qox

#endif  // QOX_ENGINE_CDC_COORDINATOR_H_
