#include "engine/quarantine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "engine/pipeline.h"

namespace qox {

Result<ReplayStats> ReplayQuarantine(const FlowSpec& flow,
                                     const ExecutionConfig& config,
                                     const DeadLetterStore& dead_letter) {
  QOX_ASSIGN_OR_RETURN(const std::vector<Schema> cut_schemas,
                       Executor::BindChain(flow, config));
  QOX_ASSIGN_OR_RETURN(const std::vector<QuarantineRecord> records,
                       dead_letter.ReadAll());
  ReplayStats stats;
  stats.records_read = records.size();

  // Deduplicate on (op_index, payload) and order payloads canonically per
  // op, so replay is deterministic regardless of which executor, attempt,
  // or instance wrote the ledger.
  std::map<size_t, std::set<std::string>> payloads_by_op;
  const size_t num_ops = flow.transforms.size();
  for (const QuarantineRecord& record : records) {
    if (record.op_index < 0 ||
        static_cast<size_t>(record.op_index) >= num_ops) {
      return Status::Invalid(
          "quarantine record names transform op " +
          std::to_string(record.op_index) + " but the chain has " +
          std::to_string(num_ops) + " ops");
    }
    const bool fresh = payloads_by_op[static_cast<size_t>(record.op_index)]
                           .insert(record.payload)
                           .second;
    if (!fresh) ++stats.deduplicated;
  }

  std::atomic<size_t> rejected{0};
  OperatorContext ctx;
  ctx.rejected_rows = &rejected;
  for (const auto& [op_index, payloads] : payloads_by_op) {
    RowBatch batch(cut_schemas[op_index]);
    batch.Reserve(payloads.size());
    for (const std::string& payload : payloads) {
      QOX_ASSIGN_OR_RETURN(
          Row row, DecodeQuarantinePayload(payload, cut_schemas[op_index]));
      batch.Append(std::move(row));
    }
    stats.replayed += batch.num_rows();

    std::vector<OperatorPtr> ops;
    ops.reserve(num_ops - op_index);
    for (size_t i = op_index; i < num_ops; ++i) {
      ops.push_back(flow.transforms[i]());
    }
    PipelineConfig pc;
    pc.op_index_offset = static_cast<int>(op_index);
    pc.expected_input_rows = batch.num_rows();
    QOX_ASSIGN_OR_RETURN(
        std::unique_ptr<Pipeline> pipeline,
        Pipeline::Create(cut_schemas[op_index], std::move(ops), &ctx, pc));
    QOX_RETURN_IF_ERROR(pipeline->Push(batch));
    QOX_RETURN_IF_ERROR(pipeline->Finish());
    std::vector<Row> produced = pipeline->TakeOutput();
    if (produced.empty()) continue;
    RowBatch load(cut_schemas.back());
    load.Reserve(produced.size());
    for (Row& row : produced) load.Append(std::move(row));
    QOX_RETURN_IF_ERROR(flow.target->Append(load));
    stats.rows_loaded += load.num_rows();
  }
  stats.rows_rejected = rejected.load();
  return stats;
}

}  // namespace qox
