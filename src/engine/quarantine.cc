#include "engine/quarantine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/crash_point.h"
#include "common/strings.h"
#include "engine/pipeline.h"
#include "storage/recovery_store.h"  // Fnv1a64

namespace qox {

namespace {

/// Durable dedup key of one replay group: the op index plus a content
/// fingerprint of its canonical payload set. A restarted replay over the
/// same ledger recomputes the identical key; a ledger that grew between
/// incarnations yields a fresh key (and the superseded group's rows were
/// never appended, so no double-apply either way).
std::string GroupKey(size_t op_index, const std::set<std::string>& payloads) {
  uint64_t fp = Fnv1a64(&op_index, sizeof(op_index));
  for (const std::string& payload : payloads) {
    fp = Fnv1a64(payload.data(), payload.size(), fp);
  }
  return "op" + std::to_string(op_index) + ":" + std::to_string(fp) + ":" +
         std::to_string(payloads.size());
}

}  // namespace

Result<ReplayStats> ReplayQuarantine(const FlowSpec& flow,
                                     const ExecutionConfig& config,
                                     const DeadLetterStore& dead_letter,
                                     FlowJournal* journal) {
  QOX_ASSIGN_OR_RETURN(const std::vector<Schema> cut_schemas,
                       Executor::BindChain(flow, config));
  QOX_ASSIGN_OR_RETURN(const std::vector<QuarantineRecord> records,
                       dead_letter.ReadAll());
  ReplayStats stats;
  stats.records_read = records.size();

  // Deduplicate on (op_index, payload) and order payloads canonically per
  // op, so replay is deterministic regardless of which executor, attempt,
  // or instance wrote the ledger.
  std::map<size_t, std::set<std::string>> payloads_by_op;
  const size_t num_ops = flow.transforms.size();
  for (const QuarantineRecord& record : records) {
    if (record.op_index < 0 ||
        static_cast<size_t>(record.op_index) >= num_ops) {
      return Status::Invalid(
          "quarantine record names transform op " +
          std::to_string(record.op_index) + " but the chain has " +
          std::to_string(num_ops) + " ops");
    }
    const bool fresh = payloads_by_op[static_cast<size_t>(record.op_index)]
                           .insert(record.payload)
                           .second;
    if (!fresh) ++stats.deduplicated;
  }

  const FlowJournalState journal_state =
      journal != nullptr ? journal->state() : FlowJournalState();

  std::atomic<size_t> rejected{0};
  OperatorContext ctx;
  ctx.rejected_rows = &rejected;
  for (const auto& [op_index, payloads] : payloads_by_op) {
    const std::string key =
        journal != nullptr ? GroupKey(op_index, payloads) : std::string();
    if (journal != nullptr) {
      const auto it = journal_state.replay.find(key);
      if (it != journal_state.replay.end() && it->second.done) {
        // A previous incarnation durably finished this group.
        ++stats.groups_already_applied;
        continue;
      }
    }
    RowBatch batch(cut_schemas[op_index]);
    batch.Reserve(payloads.size());
    for (const std::string& payload : payloads) {
      QOX_ASSIGN_OR_RETURN(
          Row row, DecodeQuarantinePayload(payload, cut_schemas[op_index]));
      batch.Append(std::move(row));
    }
    stats.replayed += batch.num_rows();

    std::vector<OperatorPtr> ops;
    ops.reserve(num_ops - op_index);
    for (size_t i = op_index; i < num_ops; ++i) {
      ops.push_back(flow.transforms[i]());
    }
    PipelineConfig pc;
    pc.op_index_offset = static_cast<int>(op_index);
    pc.expected_input_rows = batch.num_rows();
    QOX_ASSIGN_OR_RETURN(
        std::unique_ptr<Pipeline> pipeline,
        Pipeline::Create(cut_schemas[op_index], std::move(ops), &ctx, pc));
    QOX_RETURN_IF_ERROR(pipeline->Push(batch));
    QOX_RETURN_IF_ERROR(pipeline->Finish());
    std::vector<Row> produced = pipeline->TakeOutput();

    // Durable-prefix accounting: a torn group (replay_start journaled, no
    // replay_end) already appended target_now - target_base of these rows
    // before the kill; append only the remainder.
    size_t durable = 0;
    if (journal != nullptr) {
      const auto it = journal_state.replay.find(key);
      if (it != journal_state.replay.end()) {
        QOX_ASSIGN_OR_RETURN(const size_t target_now,
                             flow.target->NumRows());
        if (target_now > it->second.target_base) {
          durable = std::min(produced.size(),
                             target_now - it->second.target_base);
        }
        stats.rows_already_durable += durable;
      } else {
        QOX_ASSIGN_OR_RETURN(const size_t target_base,
                             flow.target->NumRows());
        QOX_RETURN_IF_ERROR(journal->RecordReplayStart(
            key, static_cast<int64_t>(op_index), produced.size(),
            target_base));
      }
    }
    if (durable < produced.size()) {
      RowBatch load(cut_schemas.back());
      load.Reserve(produced.size() - durable);
      for (size_t i = durable; i < produced.size(); ++i) {
        load.Append(std::move(produced[i]));
      }
      QOX_RETURN_IF_ERROR(flow.target->Append(load));
      stats.rows_loaded += load.num_rows();
    }
    QOX_CRASH_POINT("replay.loaded");
    if (journal != nullptr) {
      QOX_RETURN_IF_ERROR(journal->RecordReplayEnd(key));
    }
  }
  stats.rows_rejected = rejected.load();
  return stats;
}

}  // namespace qox
