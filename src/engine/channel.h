// Channel<T>: a bounded multi-producer multi-consumer queue — the edge of
// the streaming dataflow.
//
// Streaming execution (DESIGN.md §5) runs extract, transform segments, and
// load as concurrently running stages connected by channels of RowBatches.
// The bounded capacity provides backpressure: a producer that outruns its
// consumer blocks on Push until space frees, so no stage ever materializes
// more than `capacity` batches ahead of its consumer.
//
// Lifecycle:
//   * Close()   — graceful end-of-stream. Pending items drain; subsequent
//                 Pop() returns nullopt once the queue is empty; subsequent
//                 Push() fails with kFailedPrecondition.
//   * Poison(s) — error propagation / cooperative cancellation. Pending
//                 items are dropped and every blocked or future Push/Pop
//                 returns `s` immediately. The first poison wins; later
//                 calls are no-ops. Closing after poisoning is a no-op.
//
// Both operations wake all blocked parties, so a stage that fails can
// unwind the whole dataflow by poisoning every channel it touches: blocked
// neighbors wake, observe the poison status, return it, and their runner
// poisons the channels *they* touch in turn.
//
// Push/Pop optionally report how long the call was blocked (backpressure
// wait on Push, starvation stall on Pop); the streaming executor charges
// these to per-stage RunMetrics. Aggregate statistics (items pushed,
// high-water mark, cumulative waits) are kept internally.

#ifndef QOX_ENGINE_CHANNEL_H_
#define QOX_ENGINE_CHANNEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/status.h"

namespace qox {

/// Aggregate accounting of one channel's lifetime.
struct ChannelStats {
  size_t items_pushed = 0;
  size_t high_water = 0;           ///< max queue depth ever observed
  int64_t push_wait_micros = 0;    ///< cumulative backpressure blocking
  int64_t pop_wait_micros = 0;     ///< cumulative consumer starvation
};

/// Outcome of a non-blocking TryPop that did not fail.
enum class ChannelPoll {
  kItem,    ///< an item was dequeued
  kEmpty,   ///< channel open but momentarily empty
  kClosed,  ///< closed and fully drained — end of stream
};

/// Wake-up fan-in for consumers selecting over several channels.
///
/// A channel with an attached notifier bumps the notifier's version on
/// every push, close, and poison. A consumer waiting on "any of these
/// channels" snapshots the version, polls each channel with TryPop, and —
/// finding nothing — waits for the version to move before polling again.
/// Snapshotting *before* polling makes lost wake-ups impossible: any event
/// that lands after the poll also lands after the snapshot, so AwaitChange
/// returns immediately.
class ChannelNotifier {
 public:
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
  }

  /// Blocks until the version differs from `seen`; returns the new
  /// version. `wait_micros` (optional) accumulates the blocked time.
  uint64_t AwaitChange(uint64_t seen, int64_t* wait_micros = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (version_ == seen) {
      const StopWatch timer;
      cv_.wait(lock, [&] { return version_ != seen; });
      if (wait_micros != nullptr) *wait_micros += timer.ElapsedMicros();
    }
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t version_ = 0;
};

template <typename T>
class Channel {
 public:
  /// A capacity of 0 is promoted to 1 (a rendezvous-ish minimum; truly
  /// unbuffered hand-off is not needed by the executor and would deadlock
  /// single-threaded tests).
  explicit Channel(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Fails with the poison status if
  /// poisoned, or kFailedPrecondition if closed. `wait_micros` (optional)
  /// receives the time this call spent blocked.
  Status Push(T item, int64_t* wait_micros = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_ && !closed_ && poison_.ok()) {
      const StopWatch timer;
      not_full_.wait(lock, [this] {
        return queue_.size() < capacity_ || closed_ || !poison_.ok();
      });
      const int64_t waited = timer.ElapsedMicros();
      stats_.push_wait_micros += waited;
      if (wait_micros != nullptr) *wait_micros += waited;
    }
    if (!poison_.ok()) return poison_;
    if (closed_) {
      return Status::FailedPrecondition("push on closed channel");
    }
    queue_.push_back(std::move(item));
    ++stats_.items_pushed;
    stats_.high_water = std::max(stats_.high_water, queue_.size());
    not_empty_.notify_one();
    const std::shared_ptr<ChannelNotifier> notifier = notifier_;
    lock.unlock();
    if (notifier != nullptr) notifier->Notify();
    return Status::OK();
  }

  /// Non-blocking Pop: dequeues into `*item` and returns kItem when data
  /// is available, kEmpty while the channel is open but empty, kClosed
  /// once closed and drained; the poison status if poisoned.
  Result<ChannelPoll> TryPop(T* item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!poison_.ok()) return poison_;
    if (!queue_.empty()) {
      *item = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
      return ChannelPoll::kItem;
    }
    return closed_ ? ChannelPoll::kClosed : ChannelPoll::kEmpty;
  }

  /// Blocks while the channel is empty and open. Returns the next item;
  /// nullopt once the channel is closed and drained; the poison status if
  /// poisoned. `wait_micros` (optional) receives the time spent blocked.
  Result<std::optional<T>> Pop(int64_t* wait_micros = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty() && !closed_ && poison_.ok()) {
      const StopWatch timer;
      not_empty_.wait(lock, [this] {
        return !queue_.empty() || closed_ || !poison_.ok();
      });
      const int64_t waited = timer.ElapsedMicros();
      stats_.pop_wait_micros += waited;
      if (wait_micros != nullptr) *wait_micros += waited;
    }
    if (!poison_.ok()) return poison_;
    if (queue_.empty()) return std::optional<T>();  // closed and drained
    std::optional<T> item(std::move(queue_.front()));
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Graceful end-of-stream: no further pushes; pops drain what remains.
  void Close() {
    std::shared_ptr<ChannelNotifier> notifier;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      notifier = notifier_;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    if (notifier != nullptr) notifier->Notify();
  }

  /// Error propagation: drops pending items and fails every blocked or
  /// future Push/Pop with `status`. First poison wins; OK is ignored.
  void Poison(Status status) {
    if (status.ok()) return;
    std::shared_ptr<ChannelNotifier> notifier;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!poison_.ok()) return;  // first poison wins
      poison_ = std::move(status);
      queue_.clear();
      notifier = notifier_;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    if (notifier != nullptr) notifier->Notify();
  }

  /// Attaches a notifier bumped on every push, close, and poison. Attach
  /// before polling the channel from a multi-channel wait loop; events
  /// preceding the attachment are visible to TryPop, so only events after
  /// it need the wake-up.
  void set_notifier(std::shared_ptr<ChannelNotifier> notifier) {
    std::lock_guard<std::mutex> lock(mu_);
    notifier_ = std::move(notifier);
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// The poison status, or OK when healthy.
  Status poison() const {
    std::lock_guard<std::mutex> lock(mu_);
    return poison_;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
  Status poison_ = Status::OK();
  ChannelStats stats_;
  std::shared_ptr<ChannelNotifier> notifier_;
};

}  // namespace qox

#endif  // QOX_ENGINE_CHANNEL_H_
