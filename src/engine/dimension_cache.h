// DimensionCache: process-wide sharing of immutable lookup builds.
//
// Concurrent flows that probe the same dimension (the paper's L1 store
// dimension feeds both partitioned branches and parallel flows; Liu's
// shared-cache ETL optimization quantifies the win) each used to scan and
// hash the dimension independently at Open(). The cache hash-conses those
// builds: a DimensionTable is an immutable, refcounted flat hash table
// keyed by (store name, content version, key column), built at most once
// per version — concurrent requesters block on the in-flight build instead
// of starting their own (single-flight).
//
// The table itself is a flat open-addressing hash table over raw key bytes
// (common/column_batch.h's probe-key encoding): probing compares a cached
// 64-bit hash then memcmp's the encoded key, with no `Value` boxing on the
// path — the columnar lookup kernel encodes keys straight from column
// storage.
//
// Invariants:
//  - Tables are immutable after Build; sharing needs no further locking.
//  - The cache retains an entry until its version is superseded or the
//    retention cap evicts it; evicted tables stay alive while any acquirer
//    still holds its shared_ptr (refcounted lifetime).
//  - Memory accounting is per-acquirer: each LookupOp charges the table's
//    ByteSize() against ITS flow's MemoryBudget while holding the ref, so
//    a budgeted flow cannot smuggle working set through the shared cache.

#ifndef QOX_ENGINE_DIMENSION_CACHE_H_
#define QOX_ENGINE_DIMENSION_CACHE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/column_batch.h"
#include "storage/data_store.h"

namespace qox {

/// An immutable build of one dimension: the deduplicated rows plus a flat
/// open-addressing index over their encoded key bytes.
class DimensionTable {
 public:
  /// Scans `dimension` once and indexes it by `key_index`. First occurrence
  /// of a key wins (the same dedup an unordered_map build keeps); NULL keys
  /// are skipped (they are unreachable by probe on the row path too).
  static Result<std::shared_ptr<const DimensionTable>> Build(
      const DataStore& dimension, size_t key_index);

  /// Probes an encoded key (AppendValueKeyBytes / Column::AppendKeyBytes).
  /// Returns the matching dimension row or nullptr.
  const Row* Probe(std::string_view key_bytes) const;

  /// Convenience probe for the row path: encodes `key` into `*scratch`
  /// (cleared first) and probes. NULL keys return nullptr.
  const Row* ProbeValue(const Value& key, std::string* scratch) const;

  size_t num_rows() const { return rows_.size(); }

  /// The deduplicated dimension rows (lookup ops scan them once at Open to
  /// verify type purity for the columnar append path).
  const std::vector<Row>& rows() const { return rows_; }

  /// Approximate heap footprint (what acquirers charge to their budget).
  size_t ByteSize() const { return bytes_; }

 private:
  DimensionTable() = default;

  struct Span {
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  std::string_view KeyAt(size_t row) const {
    return std::string_view(key_arena_.data() + key_spans_[row].offset,
                            key_spans_[row].length);
  }

  /// Inserts row index `r` unless its key is already present.
  void Insert(size_t r);

  std::vector<Row> rows_;
  std::string key_arena_;
  std::vector<Span> key_spans_;      // parallel to rows_
  std::vector<uint32_t> slots_;      // row index per slot, kEmptySlot = free
  std::vector<uint64_t> slot_hashes_;
  size_t slot_mask_ = 0;
  size_t bytes_ = 0;
};

using DimensionTablePtr = std::shared_ptr<const DimensionTable>;

/// Process-wide single-flight cache of DimensionTable builds.
class DimensionCache {
 public:
  /// The process-wide instance (ops reach it through Open()).
  static DimensionCache& Instance();

  struct Acquired {
    DimensionTablePtr table;
    /// True when this call performed the build; false on a shared hit
    /// (including waiting out another flow's in-flight build).
    bool built = false;
  };

  /// Returns the shared table for (dimension name, `version`, `key_index`),
  /// building it at most once per version. `version` must be non-empty and
  /// must change whenever the store's contents change (see
  /// DataStore::ContentVersion). A new version supersedes the retained
  /// entry for the same dimension+key.
  Result<Acquired> GetOrBuild(const DataStore& dimension,
                              const std::string& version, size_t key_index);

  /// Returns the completed table for the exact (dimension, version, key) or
  /// nullptr. Never builds and never waits out an in-flight build — the
  /// path for budget-enforced flows, which may reuse a finished shared
  /// build (charging it) but must not start unbudgeted work.
  DimensionTablePtr TryGet(const DataStore& dimension,
                           const std::string& version,
                           size_t key_index) const;

  /// Drops every retained entry (tests; outstanding refs stay valid).
  void Clear();

  size_t num_entries() const;

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    DimensionTablePtr table;
  };

  /// Retain at most this many completed builds; beyond it the oldest entry
  /// is dropped (refcounting keeps in-use tables alive).
  static constexpr size_t kMaxRetained = 16;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> entries_;
  /// Latest cache key per (dimension name, key column): a new version
  /// supersedes and erases the stale entry.
  std::unordered_map<std::string, std::string> latest_;
  std::deque<std::string> retention_order_;
};

}  // namespace qox

#endif  // QOX_ENGINE_DIMENSION_CACHE_H_
