#include "engine/cdc_router.h"

#include <algorithm>
#include <memory>

namespace qox {

ShardRouter::ShardRouter(CdcSourcePtr source, CdcTopology topology)
    : source_(std::move(source)), topology_(topology) {
  // A zero anywhere would divide the window into nonsense; clamp to the
  // minimum sane shape instead of erroring (the validated entry points —
  // CdcOptions, plan import — reject these before they get here).
  if (topology_.shards == 0) topology_.shards = 1;
  if (topology_.slice_events == 0) topology_.slice_events = 1;
}

size_t ShardRouter::num_slices() const {
  const size_t total = source_->spec().total_events;
  return std::max<size_t>(
      1, (total + topology_.slice_events - 1) / topology_.slice_events);
}

std::pair<size_t, size_t> ShardRouter::SliceRange(size_t slice) const {
  const size_t total = source_->spec().total_events;
  const size_t begin = std::min(total, slice * topology_.slice_events);
  const size_t end = std::min(total, begin + topology_.slice_events);
  return {begin, end};
}

DataStorePtr ShardRouter::ShardSlice(size_t shard, size_t slice) const {
  const auto range = SliceRange(slice);
  return std::make_shared<CdcShardView>(source_, shard, topology_.shards,
                                        range.first, range.second);
}

size_t ShardRouter::CountShardEvents(size_t shard, size_t begin,
                                     size_t end) const {
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    const Row row = source_->EventAt(i);
    if (CdcShardOf(row.value(0).int64_value(), topology_.shards) == shard) {
      ++count;
    }
  }
  return count;
}

}  // namespace qox
