// FailureInjector: deterministic and stochastic system-failure injection.
//
// The paper classifies errors into ETL-operation failures and system
// failures (network, power, human, resource, miscellaneous; Sec. 2.2
// "Recoverability"). The injector models the system-failure class: the
// executor reports progress (which phase, which operator, how many rows),
// and the injector decides when a configured failure fires. A fired failure
// surfaces as StatusCode::kInjectedFailure, which the executor treats as a
// recoverable interruption (restart / resume from recovery point / fail
// over to a redundant instance).

#ifndef QOX_ENGINE_FAILURE_H_
#define QOX_ENGINE_FAILURE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/row.h"
#include "common/status.h"

namespace qox {

/// The paper's taxonomy of system failures.
enum class FailureKind {
  kNetwork,
  kPower,
  kHuman,
  kResource,
  kMisc,
};

const char* FailureKindName(FailureKind kind);

/// Phases of flow execution at which progress is reported.
enum class FlowPhase {
  kExtract,
  kTransform,
  kLoad,
};

const char* FlowPhaseName(FlowPhase phase);

/// One planned failure.
///
/// `at_op` positions the failure within the transform chain: -1 means the
/// extraction phase, k >= 0 means during transform operator k (0-based),
/// and kAtLoad means during the warehouse load. `at_fraction` refines the
/// position to a fraction of that phase's rows. `on_attempt` makes the
/// failure one-shot: it fires only on the given attempt number (1-based),
/// so the standard experiment "fail once, then recover" is on_attempt = 1.
/// `target_instance` restricts the failure to one redundant instance
/// (-1 = applies to instance 0 / non-redundant runs).
struct FailureSpec {
  FailureKind kind = FailureKind::kResource;
  int at_op = -1;
  double at_fraction = 0.5;
  int on_attempt = 1;
  int target_instance = -1;

  static constexpr int kAtLoad = 1 << 20;
};

/// One poisoned row: a content-keyed data error. Unlike FailureSpecs,
/// poison models a property of the *data*, not of time: it matches rows by
/// their first column (an int64 id) arriving at a specific transform op,
/// fires on every attempt and in both execution modes, and is never
/// consumed. The pipeline screens rows against the schedule before each
/// operator and handles matches per that op's ErrorPolicy — content keying
/// (rather than row ordinals) keeps the schedule identical across phased
/// and streaming execution, whose row orders diverge downstream of merges.
struct PoisonSpec {
  /// Global transform-op index at which the row turns poisonous.
  int at_op = 0;
  /// Matches rows whose column 0 is Int64(id_value).
  int64_t id_value = 0;
};

class FailureInjector {
 public:
  FailureInjector() = default;

  /// Registers a planned failure.
  void AddFailure(const FailureSpec& spec);

  /// Registers a poisoned row. Poison must be registered before execution
  /// starts: CheckRow reads the schedule without locking.
  void AddPoison(const PoisonSpec& spec);

  /// Cheap hot-path gate: true when any poison is registered.
  bool HasPoison() const {
    return has_poison_.load(std::memory_order_acquire);
  }

  /// Returns kInvalidArgument when `row` (by its column-0 int64 id) is
  /// poisoned at transform op `op_index`, OK otherwise. Unlike Check, this
  /// never consumes anything: poison re-fires on every attempt.
  Status CheckRow(int op_index, const Row& row) const;

  /// Arms `count` randomly placed one-shot failures over the transform
  /// chain of `num_ops` operators, fractions sampled uniformly. Each fires
  /// on a distinct attempt (1, 2, ...), modelling successive interruptions.
  void ArmRandom(size_t count, int num_ops, Rng* rng);

  /// MTBF mode: samples exponential times-to-failure with the given mean
  /// and fires whenever the wall clock crosses one, regardless of position
  /// (the paper's "system failures" — network, power — strike at arbitrary
  /// moments). `horizon_s` bounds how far ahead failures are sampled.
  void ArmMtbf(double mtbf_seconds, double horizon_s, Rng* rng);

  /// Called by the executor as work progresses. Returns an injected-failure
  /// status when a registered spec fires at this point, OK otherwise.
  ///
  /// `instance`: redundant-instance id (0 for non-redundant execution).
  /// `attempt`: 1-based attempt number of this instance.
  /// `op_index`: -1 extraction, k transform op k, FailureSpec::kAtLoad load.
  /// `rows_done` / `rows_total`: progress within the phase. rows_total may
  /// be 0 when the denominator is unknown (e.g. a streaming sink); then
  /// at_fraction == 0 specs fire on the first check and at_fraction > 0
  /// specs fire on the first check after any rows were seen.
  Status Check(int instance, int attempt, int op_index, size_t rows_done,
               size_t rows_total);

  /// Number of failures that have fired so far.
  size_t triggered_count() const;

  /// The MTBF-sampled failure schedule (elapsed microseconds since arming),
  /// fired or not, in firing order. Diagnostics/tests: two injectors armed
  /// from equal-seeded Rngs produce identical schedules.
  std::vector<int64_t> TimedScheduleMicros() const;

  /// Clears fired-state so the same plan can run again (keeps specs).
  void Rearm();

  /// Removes all specs.
  void Clear();

 private:
  struct Planned {
    FailureSpec spec;
    bool fired = false;
  };
  struct TimedFailure {
    int64_t at_elapsed_micros = 0;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::vector<Planned> planned_;
  std::vector<TimedFailure> timed_;
  int64_t clock_start_micros_ = 0;
  size_t triggered_ = 0;
  /// Poisoned ids per op. Written only by AddPoison/Clear (before/between
  /// runs); read lock-free by CheckRow on the pipeline hot path.
  std::map<int, std::set<int64_t>> poison_;
  std::atomic<bool> has_poison_{false};
};

}  // namespace qox

#endif  // QOX_ENGINE_FAILURE_H_
