#include "engine/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace qox {

namespace {
double UnjitteredBackoffMicros(const RetryPolicy& policy,
                               size_t failed_attempt) {
  if (policy.initial_backoff_micros <= 0 || failed_attempt == 0) return 0.0;
  const double grown =
      static_cast<double>(policy.initial_backoff_micros) *
      std::pow(std::max(1.0, policy.multiplier),
               static_cast<double>(failed_attempt - 1));
  return std::min(grown, static_cast<double>(std::max<int64_t>(
                             policy.initial_backoff_micros,
                             policy.max_backoff_micros)));
}
}  // namespace

int64_t RetryPolicy::BackoffMicros(size_t failed_attempt, Rng* rng) const {
  double backoff = UnjitteredBackoffMicros(*this, failed_attempt);
  if (backoff <= 0.0) return 0;
  if (jitter > 0.0 && rng != nullptr) {
    const double j = std::min(1.0, jitter);
    backoff *= 1.0 - j * rng->NextDouble();
  }
  return static_cast<int64_t>(backoff);
}

bool RetryPolicy::ShouldRetry(const Status& status,
                              size_t failed_attempt) const {
  return IsTransient(status) && failed_attempt < std::max<size_t>(1, max_attempts);
}

double RetryPolicy::MeanBackoffSeconds() const {
  if (max_attempts <= 1 || initial_backoff_micros <= 0) return 0.0;
  double sum = 0.0;
  for (size_t attempt = 1; attempt < max_attempts; ++attempt) {
    sum += UnjitteredBackoffMicros(*this, attempt);
  }
  const double mean = sum / static_cast<double>(max_attempts - 1);
  // E[1 - jitter * U] = 1 - jitter / 2.
  return mean * (1.0 - std::min(1.0, jitter) / 2.0) / 1e6;
}

}  // namespace qox
