// WorkerPool: the unified executor substrate both schedulers run on.
//
// One pool multiplexes every kind of engine work — phased partition
// branches, redundant flow instances, streaming dataflow stages, and whole
// flows admitted by the FlowService — so a single machine's cores can be
// shared across many concurrent flows instead of each flow owning threads.
// Two task classes, two execution paths:
//
//   * CPU tasks (the default): finite compute that never blocks on other
//     tasks except through helping waits. They run on a fixed set of CORE
//     workers with per-worker deques and work stealing: a task posted from
//     inside a core worker lands on that worker's own deque (LIFO for the
//     owner — cache affinity), idle workers steal from the oldest end of a
//     sibling's deque, and externally posted tasks go through a global
//     injection queue ordered EARLIEST-DEADLINE-FIRST by the task's
//     TaskTag (ties broken by submission order, so untagged workloads are
//     plain FIFO and deterministic).
//
//   * BLOCKING tasks (TaskTag::blocking): bodies that may park on channel
//     edges, condition variables, or child tasks for arbitrarily long —
//     streaming stages, flow drivers, redundant instances. They run on
//     EXPANSION workers: cached threads the pool spawns on demand and
//     reuses across tasks, flows, and attempts. Expansion capacity is
//     unbounded (exactly the liveness guarantee the old per-stage
//     dedicated threads gave the streaming dataflow) but threads are
//     pooled, so a service running hundreds of flow attempts recycles a
//     small steady-state set instead of churning thread spawns.
//
// Waiting without deadlock. The old ThreadPool rejected Wait() from inside
// a task (a worker waiting for its own queue deadlocks a full pool) but
// could not see TRANSITIVE waits — task A posting task B and blocking on a
// latch until B finishes deadlocks a single-worker pool just the same.
// The substrate closes that hole structurally: TaskGroup::Wait() and
// WaitIdle() called from a core worker HELP — they pop and run queued CPU
// tasks while the awaited work is outstanding — so a worker waiting on
// child tasks executes them itself instead of starving them. Blocking
// tasks may simply park (expansion capacity is unbounded).

#ifndef QOX_ENGINE_WORKER_POOL_H_
#define QOX_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qox {

class WorkerPool;

/// Scheduling tag of one task: the deadline-aware submit interface of the
/// substrate (the atlas-rt submit(deadline, exectime) shape). All fields
/// optional; a default tag is plain FIFO CPU work.
struct TaskTag {
  /// Absolute NowMicros() deadline of the owning flow (0 = none; sorts
  /// after every tagged task). The injection queue pops earliest-deadline
  /// first, which is what makes the shared pool schedule runnable stages
  /// of many flows EDF.
  int64_t deadline_micros = 0;
  /// Predicted execution time (cost-model estimate), for admission-control
  /// load accounting and diagnostics. Not used for ordering.
  int64_t predicted_micros = 0;
  /// May park on channels / condition variables / child tasks: run on an
  /// expansion worker instead of occupying a core worker.
  bool blocking = false;
};

/// Completion tracking for a set of related tasks (the substrate's work
/// guard: the pool cannot report idle while a group member is pending).
/// Wait() from a core worker HELPS — runs queued CPU tasks — so a task may
/// safely post subtasks to its own pool and wait on them.
class TaskGroup {
 public:
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// All tasks posted against this group must finish before destruction
  /// (Wait() enforces it; the destructor asserts via Wait as a backstop).
  ~TaskGroup() { Wait(); }

  /// Blocks until every task posted with this group has finished. Helping:
  /// when called on a core worker thread of the owning pool, queued CPU
  /// tasks are executed here while waiting (transitive-wait deadlock fix).
  void Wait();

  /// True when no member task is queued or running.
  bool done() const;

 private:
  friend class WorkerPool;
  friend class ExecContext;  // inline fallback balances Add/Finish itself
  void Add();
  void Finish();

  WorkerPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

class WorkerPool {
 public:
  /// Substrate-wide accounting (work-stealing observability; the
  /// engine_worker_pool_test invariants read these).
  struct Stats {
    size_t tasks_run = 0;        ///< CPU tasks executed by core workers
    size_t tasks_helped = 0;     ///< CPU tasks executed inside helping waits
    size_t steals = 0;           ///< tasks taken from a sibling's deque
    size_t blocking_run = 0;     ///< blocking tasks executed
    size_t expansion_threads = 0;  ///< expansion threads ever created
    size_t expansion_peak = 0;     ///< max blocking tasks in flight at once
  };

  explicit WorkerPool(size_t num_workers);
  /// Drains every queued task, then joins core and expansion workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Submits a task. CPU tasks from a core worker go to that worker's own
  /// deque; external CPU tasks go to the EDF injection queue; blocking
  /// tasks go to the expansion lane. `group` (optional) tracks completion.
  void Post(std::function<void()> task, const TaskTag& tag = TaskTag(),
            TaskGroup* group = nullptr);

  /// Blocks until every submitted task (CPU and blocking) has finished.
  /// From a core worker this HELPS: the calling task's own in-flight slot
  /// is excluded and queued CPU tasks run here, so "post subtasks, wait
  /// for quiescence" works from inside the pool (the old ThreadPool
  /// rejected this; transitive variants deadlocked it).
  Status WaitIdle();

  /// True when the calling thread is one of this pool's core workers.
  bool InWorkerThread() const;

  size_t num_workers() const { return core_workers_.size(); }
  Stats stats() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskTag tag;
    TaskGroup* group = nullptr;
    uint64_t seq = 0;  ///< submission order (EDF tie-break / FIFO fallback)
  };

  /// Min-heap order for the injection queue: earliest deadline first
  /// (deadline 0 = none sorts last), then submission order.
  struct EdfLater {
    bool operator()(const Task& a, const Task& b) const {
      const int64_t da = a.tag.deadline_micros == 0 ? INT64_MAX
                                                    : a.tag.deadline_micros;
      const int64_t db = b.tag.deadline_micros == 0 ? INT64_MAX
                                                    : b.tag.deadline_micros;
      if (da != db) return da > db;
      return a.seq > b.seq;
    }
  };

  void CoreWorkerLoop(size_t worker_index);
  void ExpansionWorkerLoop();
  /// Pops the next CPU task for `worker_index` (own deque newest-first,
  /// then injection queue EDF, then steal oldest-first from a sibling).
  /// `worker_index` == kExternal takes injection/steal only (helping from
  /// a non-worker thread). Returns false when nothing is runnable.
  bool TryTakeTask(size_t worker_index, Task* out);
  /// Runs one queued CPU task on the calling thread if any is runnable.
  bool TryHelpOne();
  void RunTask(Task task);
  void FinishTask(const Task& task);

  static constexpr size_t kExternal = static_cast<size_t>(-1);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< core workers: work or shutdown
  std::condition_variable idle_cv_;   ///< WaitIdle watchers
  std::condition_variable blocking_cv_;  ///< expansion workers
  std::priority_queue<Task, std::vector<Task>, EdfLater> injection_;
  std::vector<std::deque<Task>> local_;  ///< per-core-worker deques
  std::deque<Task> blocking_queue_;
  uint64_t next_seq_ = 0;
  /// Tasks running right now (core + helped + blocking); queued tasks are
  /// counted by the queues themselves.
  size_t running_ = 0;
  size_t queued_cpu_ = 0;  ///< injection_ + all local_ deques
  size_t idle_expansion_ = 0;  ///< expansion workers parked in wait
  /// Expansion threads spawned but not yet parked for the first time.
  /// Post counts them as supply so a burst of blocking posts spawns
  /// exactly enough threads to cover the queue depth instead of either
  /// stranding tasks behind an idle-worker check or stampede-spawning.
  size_t starting_expansion_ = 0;
  size_t blocking_in_flight_ = 0;
  bool shutdown_ = false;
  Stats stats_;
  std::vector<std::thread> core_workers_;
  std::vector<std::thread> expansion_workers_;
};

}  // namespace qox

#endif  // QOX_ENGINE_WORKER_POOL_H_
