#include "engine/ops/sort_op.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace qox {

SortOp::SortOp(std::string name, std::vector<SortKey> keys)
    : name_(std::move(name)), keys_(std::move(keys)) {}

Result<Schema> SortOp::Bind(const Schema& input) {
  if (keys_.empty()) return Status::Invalid("sort '" + name_ + "' has no keys");
  indices_.clear();
  for (const SortKey& key : keys_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(key.column));
    indices_.push_back(idx);
  }
  schema_ = input;
  buffered_.clear();
  runs_.clear();
  charged_ = 0;
  return input;
}

Status SortOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  enforce_ = ctx != nullptr && ctx->BudgetEnforced();
  return Status::OK();
}

bool SortOp::Less(const Row& a, const Row& b) const {
  for (size_t i = 0; i < indices_.size(); ++i) {
    const int c = a.value(indices_[i]).Compare(b.value(indices_[i]));
    if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
  }
  return false;
}

Status SortOp::BufferRow(const Row& row) {
  if (enforce_) {
    const size_t bytes = row.ByteSize();
    if (!ctx_->memory_budget->TryReserve(bytes)) {
      QOX_RETURN_IF_ERROR(SpillBuffered());
      if (!ctx_->memory_budget->TryReserve(bytes)) {
        // Budget smaller than one row: overrun by the irreducible minimum
        // and degrade to row-at-a-time spilling rather than deadlock.
        ctx_->memory_budget->ForceReserve(bytes);
      }
    }
    charged_ += bytes;
  }
  buffered_.push_back(row);
  return Status::OK();
}

Status SortOp::SpillBuffered() {
  if (buffered_.empty()) return Status::OK();
  std::stable_sort(
      buffered_.begin(), buffered_.end(),
      [this](const Row& a, const Row& b) { return Less(a, b); });
  QOX_ASSIGN_OR_RETURN(std::unique_ptr<SpillWriter> writer,
                       ctx_->spill->CreateRun(name_, schema_));
  for (const Row& row : buffered_) QOX_RETURN_IF_ERROR(writer->Append(row));
  QOX_ASSIGN_OR_RETURN(SpillFile file, writer->Finalize());
  runs_.push_back(std::move(file));
  buffered_.clear();
  ctx_->memory_budget->Release(charged_);
  charged_ = 0;
  return Status::OK();
}

Status SortOp::Push(const RowBatch& input, RowBatch* output) {
  (void)output;
  if (!enforce_) {
    buffered_.insert(buffered_.end(), input.rows().begin(),
                     input.rows().end());
    return Status::OK();
  }
  for (const Row& row : input.rows()) QOX_RETURN_IF_ERROR(BufferRow(row));
  return Status::OK();
}

Status SortOp::Finish(RowBatch* output) {
  std::stable_sort(
      buffered_.begin(), buffered_.end(),
      [this](const Row& a, const Row& b) { return Less(a, b); });
  if (!runs_.empty()) return MergeRuns(output);
  for (Row& row : buffered_) output->Append(std::move(row));
  buffered_.clear();
  if (enforce_ && charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

Status SortOp::MergeRuns(RowBatch* output) {
  // Each run holds a sorted, contiguous arrival-order segment; the
  // in-memory tail is the final segment (highest source index). Breaking
  // ties toward the lower source index therefore reproduces the order a
  // single std::stable_sort over the whole input would produce.
  const size_t num_sources = runs_.size() + 1;
  std::vector<std::unique_ptr<SpillReader>> readers;
  readers.reserve(runs_.size());
  for (const SpillFile& run : runs_) {
    readers.push_back(std::make_unique<SpillReader>(run));
  }
  std::vector<std::optional<Row>> heads(num_sources);
  size_t tail_pos = 0;
  const auto advance = [&](size_t src) -> Status {
    if (src < readers.size()) {
      QOX_ASSIGN_OR_RETURN(heads[src], readers[src]->Next());
    } else if (tail_pos < buffered_.size()) {
      heads[src] = std::move(buffered_[tail_pos++]);
    } else {
      heads[src].reset();
    }
    return Status::OK();
  };
  for (size_t src = 0; src < num_sources; ++src) {
    QOX_RETURN_IF_ERROR(advance(src));
  }
  while (true) {
    size_t best = num_sources;
    for (size_t src = 0; src < num_sources; ++src) {
      if (!heads[src].has_value()) continue;
      if (best == num_sources || Less(*heads[src], *heads[best])) best = src;
    }
    if (best == num_sources) break;
    output->Append(std::move(*heads[best]));
    QOX_RETURN_IF_ERROR(advance(best));
  }
  buffered_.clear();
  runs_.clear();
  if (enforce_ && charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

std::vector<std::string> SortOp::InputColumns() const {
  std::vector<std::string> cols;
  cols.reserve(keys_.size());
  for (const SortKey& key : keys_) cols.push_back(key.column);
  return cols;
}

}  // namespace qox
