#include "engine/ops/sort_op.h"

#include <algorithm>

namespace qox {

SortOp::SortOp(std::string name, std::vector<SortKey> keys)
    : name_(std::move(name)), keys_(std::move(keys)) {}

Result<Schema> SortOp::Bind(const Schema& input) {
  if (keys_.empty()) return Status::Invalid("sort '" + name_ + "' has no keys");
  indices_.clear();
  for (const SortKey& key : keys_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(key.column));
    indices_.push_back(idx);
  }
  buffered_.clear();
  return input;
}

Status SortOp::Push(const RowBatch& input, RowBatch* output) {
  (void)output;
  buffered_.insert(buffered_.end(), input.rows().begin(), input.rows().end());
  return Status::OK();
}

Status SortOp::Finish(RowBatch* output) {
  std::stable_sort(buffered_.begin(), buffered_.end(),
                   [this](const Row& a, const Row& b) {
                     for (size_t i = 0; i < indices_.size(); ++i) {
                       const int c =
                           a.value(indices_[i]).Compare(b.value(indices_[i]));
                       if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  for (Row& row : buffered_) output->Append(std::move(row));
  buffered_.clear();
  return Status::OK();
}

std::vector<std::string> SortOp::InputColumns() const {
  std::vector<std::string> cols;
  cols.reserve(keys_.size());
  for (const SortKey& key : keys_) cols.push_back(key.column);
  return cols;
}

}  // namespace qox
