// FunctionOp: schema-modifying row functions.
//
// Models the paper's "function operation (for modifying the schema)" in the
// Fig. 3 bottom flow. A FunctionOp applies an ordered list of structured
// column transforms (rename, drop, computed columns, string normalization).
// Transforms are structured data so the optimizer can compute column
// dependencies for rewrite legality.

#ifndef QOX_ENGINE_OPS_FUNCTION_OP_H_
#define QOX_ENGINE_OPS_FUNCTION_OP_H_

#include <string>
#include <vector>

#include "engine/operator.h"

namespace qox {

/// One column transform step.
struct ColumnTransform {
  enum class Kind {
    kRename,    ///< rename column `a` to `out`
    kDrop,      ///< drop column `a`
    kArith,     ///< out = a <arith_op> b (numeric columns)
    kScale,     ///< out = a * literal (numeric column, double literal)
    kConcat,    ///< out = string(a) + separator + string(b)
    kUpper,     ///< uppercase string column `a` in place
    kConstant,  ///< new column `out` with a constant value
    kCoalesce,  ///< out = a if not NULL else literal (in place when out==a)
  };
  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  Kind kind = Kind::kRename;
  std::string a;          ///< first input column
  std::string b;          ///< second input column (kArith, kConcat)
  std::string out;        ///< output column name
  ArithOp arith_op = ArithOp::kAdd;
  double scale = 1.0;     ///< kScale factor
  std::string separator;  ///< kConcat separator
  Value literal;          ///< kConstant / kCoalesce value
  DataType out_type = DataType::kDouble;  ///< type of computed column

  static ColumnTransform Rename(std::string from, std::string to);
  static ColumnTransform Drop(std::string column);
  static ColumnTransform Arith(std::string out, std::string a, ArithOp op,
                               std::string b);
  static ColumnTransform Scale(std::string out, std::string a, double factor);
  static ColumnTransform Concat(std::string out, std::string a, std::string b,
                                std::string separator);
  static ColumnTransform Upper(std::string column);
  static ColumnTransform Constant(std::string out, Value v);
  static ColumnTransform Coalesce(std::string column, Value fallback);

  std::string ToString() const;
};

class FunctionOp : public Operator {
 public:
  FunctionOp(std::string name, std::vector<ColumnTransform> transforms);

  const char* kind() const override { return "function"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Push(RowBatch&& input, RowBatch* output) override;
  /// Computed at Bind time: every step has a columnar kernel whose result
  /// matches the row path under the type-purity invariant. Steps that could
  /// leave a cell whose runtime type differs from the declared column type
  /// (coalesce with a mismatched literal, arith/scale/concat writing into an
  /// existing column of another type, NULL constants) keep the row path.
  bool CanPushColumnar() const override { return columnar_ok_; }
  Status PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) override;
  double CostPerRow() const override {
    return 0.5 + 0.4 * static_cast<double>(transforms_.size());
  }

  const std::vector<ColumnTransform>& transforms() const { return transforms_; }

  /// Columns read by any transform (rewrite legality).
  std::vector<std::string> InputColumns() const;
  /// Columns created or removed (rewrite legality: a filter cannot move
  /// above a function that creates the column it reads).
  std::vector<std::string> CreatedColumns() const;
  std::vector<std::string> DroppedColumns() const;

 private:
  // A bound step: resolved indices against the evolving schema.
  struct BoundStep {
    ColumnTransform transform;
    size_t a_index = 0;
    size_t b_index = 0;
    size_t out_index = 0;  // target slot (existing or appended)
    bool out_is_new = false;
    // Declared input types at this point of the schema evolution (drive the
    // typed columnar kernels).
    DataType a_type = DataType::kNull;
    DataType b_type = DataType::kNull;
  };

  const std::string name_;
  const std::vector<ColumnTransform> transforms_;
  std::vector<BoundStep> bound_;
  bool columnar_ok_ = false;
  Schema output_schema_;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_FUNCTION_OP_H_
