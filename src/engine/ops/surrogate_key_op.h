// SurrogateKeyOp: replaces transactional (natural) keys with warehouse
// surrogate keys.
//
// "a surrogate key assignment that replaces the transactional keys with
// surrogate keys" (Fig. 3). Assignments live in a shared, thread-safe
// SurrogateKeyRegistry so that partitioned branches, redundant instances,
// and successive loads agree on the mapping — a required property for
// warehouse consistency (and asserted by the engine tests).

#ifndef QOX_ENGINE_OPS_SURROGATE_KEY_OP_H_
#define QOX_ENGINE_OPS_SURROGATE_KEY_OP_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/operator.h"

namespace qox {

/// Thread-safe natural-key -> surrogate-key mapping for one target
/// dimension. Surrogates are dense int64s starting at `first_key`.
class SurrogateKeyRegistry {
 public:
  explicit SurrogateKeyRegistry(int64_t first_key = 1)
      : next_key_(first_key) {}

  /// Returns the surrogate for `natural`, assigning the next key on first
  /// sight. NULL natural keys map to a shared "unknown" surrogate of 0.
  int64_t GetOrAssign(const Value& natural);

  /// Batch form: one lock acquisition for the whole batch. `out` receives
  /// one surrogate per input, in order; first sight assigns, exactly as a
  /// sequence of GetOrAssign calls would.
  void GetOrAssignBatch(const std::vector<Value>& naturals,
                        std::vector<int64_t>* out);

  /// Unboxed batch form for int64/timestamp natural keys (they share one
  /// equality group, so raw payloads probe exactly like boxed Values): one
  /// lock, flat int64 probes, no Value construction. `nulls`, when non-null,
  /// flags entries that map to the unknown surrogate 0. Assignment order —
  /// and therefore the key sequence — matches the boxed paths.
  void GetOrAssignI64Batch(const int64_t* keys, const uint8_t* nulls,
                           size_t n, std::vector<int64_t>* out);

  /// Returns the surrogate if already assigned.
  Result<int64_t> Get(const Value& natural) const;

  size_t size() const;

 private:
  /// Assigns the next key to an unseen natural (mu_ held). Keeps the
  /// int64-group mirror index in sync with the boxed map.
  int64_t AssignLocked(const Value& natural);

  mutable std::mutex mu_;
  std::unordered_map<Value, int64_t, ValueHash> map_;
  /// Mirror of map_'s int64/timestamp entries keyed by raw payload: the
  /// columnar probe path hits this with inline integer hashing instead of
  /// boxing every key. Every assignment site maintains both, so either
  /// path sees keys first assigned by the other.
  std::unordered_map<int64_t, int64_t> i64_index_;
  int64_t next_key_;
};

using SurrogateKeyRegistryPtr = std::shared_ptr<SurrogateKeyRegistry>;

class SurrogateKeyOp : public Operator {
 public:
  /// Replaces `natural_column` with a surrogate: the output column
  /// `surrogate_column` (int64) is appended and, when `drop_natural`, the
  /// natural column is removed.
  SurrogateKeyOp(std::string name, SurrogateKeyRegistryPtr registry,
                 std::string natural_column, std::string surrogate_column,
                 bool drop_natural = true);

  const char* kind() const override { return "surrogate_key"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Push(RowBatch&& input, RowBatch* output) override;
  bool CanPushColumnar() const override { return true; }
  /// Batch surrogate assignment: keys for SELECTED rows only, in selection
  /// order, under one registry lock — the registry's next_key_ sequence
  /// stays identical to the row path's.
  Status PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) override;
  double CostPerRow() const override { return 1.8; }

  std::vector<std::string> InputColumns() const { return {natural_column_}; }
  const std::string& surrogate_column() const { return surrogate_column_; }

 private:
  const std::string name_;
  const SurrogateKeyRegistryPtr registry_;
  const std::string natural_column_;
  const std::string surrogate_column_;
  const bool drop_natural_;
  size_t natural_index_ = 0;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_SURROGATE_KEY_OP_H_
