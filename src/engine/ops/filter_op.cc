#include "engine/ops/filter_op.h"

namespace qox {

bool Predicate::Matches(const Row& row, size_t index) const {
  const Value& v = row.value(index);
  switch (kind) {
    case Kind::kNotNull:
      return !v.is_null();
    case Kind::kIsNull:
      return v.is_null();
    case Kind::kCompare: {
      if (v.is_null()) return false;  // SQL-style: NULL fails comparisons
      const int c = v.Compare(literal);
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return false;
    }
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kNotNull:
      return column + " IS NOT NULL";
    case Kind::kIsNull:
      return column + " IS NULL";
    case Kind::kCompare: {
      const char* op_text = "=";
      switch (op) {
        case CmpOp::kEq:
          op_text = "=";
          break;
        case CmpOp::kNe:
          op_text = "!=";
          break;
        case CmpOp::kLt:
          op_text = "<";
          break;
        case CmpOp::kLe:
          op_text = "<=";
          break;
        case CmpOp::kGt:
          op_text = ">";
          break;
        case CmpOp::kGe:
          op_text = ">=";
          break;
      }
      return column + " " + op_text + " " + literal.ToString();
    }
  }
  return "?";
}

FilterOp::FilterOp(std::string name, std::vector<Predicate> conjuncts,
                   double estimated_selectivity)
    : name_(std::move(name)),
      conjuncts_(std::move(conjuncts)),
      estimated_selectivity_(estimated_selectivity) {}

Result<Schema> FilterOp::Bind(const Schema& input) {
  indices_.clear();
  indices_.reserve(conjuncts_.size());
  for (const Predicate& p : conjuncts_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(p.column));
    indices_.push_back(idx);
  }
  return input;  // filters do not change the schema
}

Status FilterOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  return Status::OK();
}

Status FilterOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    bool pass = true;
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      if (!conjuncts_[i].Matches(row, indices_[i])) {
        pass = false;
        break;
      }
    }
    if (pass) {
      output->Append(row);
    } else if (ctx_ != nullptr) {
      QOX_RETURN_IF_ERROR(ctx_->Reject(row));
    }
  }
  return Status::OK();
}

std::vector<std::string> FilterOp::InputColumns() const {
  std::vector<std::string> cols;
  cols.reserve(conjuncts_.size());
  for (const Predicate& p : conjuncts_) cols.push_back(p.column);
  return cols;
}

}  // namespace qox
