#include "engine/ops/filter_op.h"

namespace qox {
namespace {

// Type-ordering group used by Value::Compare: NULL(0) < bool(1) <
// numeric(2: int64/double/timestamp) < string(3). Cross-group comparisons
// have a constant sign, which the columnar compiler exploits.
int TypeGroup(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kTimestamp:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 0;
}

bool PassesCmp(Predicate::CmpOp op, int c) {
  switch (op) {
    case Predicate::CmpOp::kEq:
      return c == 0;
    case Predicate::CmpOp::kNe:
      return c != 0;
    case Predicate::CmpOp::kLt:
      return c < 0;
    case Predicate::CmpOp::kLe:
      return c <= 0;
    case Predicate::CmpOp::kGt:
      return c > 0;
    case Predicate::CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

bool Predicate::Matches(const Row& row, size_t index) const {
  const Value& v = row.value(index);
  switch (kind) {
    case Kind::kNotNull:
      return !v.is_null();
    case Kind::kIsNull:
      return v.is_null();
    case Kind::kCompare: {
      if (v.is_null()) return false;  // SQL-style: NULL fails comparisons
      const int c = v.Compare(literal);
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return false;
    }
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kNotNull:
      return column + " IS NOT NULL";
    case Kind::kIsNull:
      return column + " IS NULL";
    case Kind::kCompare: {
      const char* op_text = "=";
      switch (op) {
        case CmpOp::kEq:
          op_text = "=";
          break;
        case CmpOp::kNe:
          op_text = "!=";
          break;
        case CmpOp::kLt:
          op_text = "<";
          break;
        case CmpOp::kLe:
          op_text = "<=";
          break;
        case CmpOp::kGt:
          op_text = ">";
          break;
        case CmpOp::kGe:
          op_text = ">=";
          break;
      }
      return column + " " + op_text + " " + literal.ToString();
    }
  }
  return "?";
}

FilterOp::FilterOp(std::string name, std::vector<Predicate> conjuncts,
                   double estimated_selectivity)
    : name_(std::move(name)),
      conjuncts_(std::move(conjuncts)),
      estimated_selectivity_(estimated_selectivity) {}

Result<Schema> FilterOp::Bind(const Schema& input) {
  indices_.clear();
  indices_.reserve(conjuncts_.size());
  for (const Predicate& p : conjuncts_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(p.column));
    indices_.push_back(idx);
  }
  return input;  // filters do not change the schema
}

Status FilterOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  return Status::OK();
}

Status FilterOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    bool pass = true;
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      if (!conjuncts_[i].Matches(row, indices_[i])) {
        pass = false;
        break;
      }
    }
    if (pass) {
      output->Append(row);
    } else if (ctx_ != nullptr) {
      QOX_RETURN_IF_ERROR(ctx_->Reject(row));
    }
  }
  return Status::OK();
}

Status FilterOp::Push(RowBatch&& input, RowBatch* output) {
  for (Row& row : input.rows()) {
    bool pass = true;
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      if (!conjuncts_[i].Matches(row, indices_[i])) {
        pass = false;
        break;
      }
    }
    if (pass) {
      output->Append(std::move(row));
    } else if (ctx_ != nullptr) {
      QOX_RETURN_IF_ERROR(ctx_->Reject(row));
    }
  }
  return Status::OK();
}

Status FilterOp::PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) {
  (void)cctx;  // filtering never fails per row; rejects are not errors

  // Each conjunct compiles to one typed mode against its column. The type
  // purity invariant (every non-NULL cell matches the declared type) lets
  // cross-type-group comparisons against the literal collapse to a constant
  // sign, exactly as Value::Compare would produce per row.
  struct Compiled {
    enum class Mode { kNonNull, kIsNull, kFalse, kI64, kF64, kBool, kStr };
    Mode mode = Mode::kNonNull;
    const Column* col = nullptr;
    Predicate::CmpOp op = Predicate::CmpOp::kEq;
    bool cast_col = false;  // kF64 with an int64/timestamp column
    int64_t lit_i64 = 0;
    double lit_f64 = 0.0;
    int lit_bool = 0;
    const std::string* lit_str = nullptr;
  };
  using Mode = Compiled::Mode;
  std::vector<Compiled> compiled;
  compiled.reserve(conjuncts_.size());
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    const Predicate& p = conjuncts_[i];
    Compiled c;
    c.col = &batch->column(indices_[i]);
    c.op = p.op;
    const DataType col_type = c.col->type();
    if (p.kind == Predicate::Kind::kNotNull) {
      c.mode = Mode::kNonNull;
    } else if (p.kind == Predicate::Kind::kIsNull) {
      c.mode = Mode::kIsNull;
    } else {
      const DataType lit_type = p.literal.type();
      const int vg = TypeGroup(col_type);
      const int lg = TypeGroup(lit_type);
      if (vg != lg) {
        // NULL cells always fail kCompare, so a constant-true comparison
        // reduces to a NOT NULL check.
        c.mode = PassesCmp(p.op, vg < lg ? -1 : 1) ? Mode::kNonNull
                                                   : Mode::kFalse;
      } else if (col_type == DataType::kBool) {
        c.mode = Mode::kBool;
        c.lit_bool = p.literal.bool_value() ? 1 : 0;
      } else if (col_type == DataType::kString) {
        c.mode = Mode::kStr;
        c.lit_str = &p.literal.string_value();
      } else if (col_type != DataType::kDouble &&
                 lit_type != DataType::kDouble) {
        // Both sides hold int64 payloads (int64/timestamp): exact compare.
        c.mode = Mode::kI64;
        c.lit_i64 = p.literal.int64_value();
      } else {
        c.mode = Mode::kF64;
        c.cast_col = col_type != DataType::kDouble;
        c.lit_f64 = lit_type == DataType::kDouble
                        ? p.literal.double_value()
                        : static_cast<double>(p.literal.int64_value());
      }
    }
    compiled.push_back(c);
  }

  std::vector<uint32_t> kept;
  kept.reserve(batch->selection().size());
  for (const uint32_t r : batch->selection()) {
    bool pass = true;
    for (const Compiled& c : compiled) {
      const bool valid = c.col->IsValid(r);
      int cmp = 0;
      switch (c.mode) {
        case Mode::kNonNull:
          pass = valid;
          break;
        case Mode::kIsNull:
          pass = !valid;
          break;
        case Mode::kFalse:
          pass = false;
          break;
        case Mode::kI64: {
          if (!valid) {
            pass = false;
            break;
          }
          const int64_t v = c.col->Int64At(r);
          cmp = v < c.lit_i64 ? -1 : (v > c.lit_i64 ? 1 : 0);
          pass = PassesCmp(c.op, cmp);
          break;
        }
        case Mode::kF64: {
          if (!valid) {
            pass = false;
            break;
          }
          const double v = c.cast_col
                               ? static_cast<double>(c.col->Int64At(r))
                               : c.col->DoubleAt(r);
          cmp = v < c.lit_f64 ? -1 : (v > c.lit_f64 ? 1 : 0);
          pass = PassesCmp(c.op, cmp);
          break;
        }
        case Mode::kBool: {
          if (!valid) {
            pass = false;
            break;
          }
          cmp = (c.col->BoolAt(r) ? 1 : 0) - c.lit_bool;
          pass = PassesCmp(c.op, cmp);
          break;
        }
        case Mode::kStr: {
          if (!valid) {
            pass = false;
            break;
          }
          const int raw = c.col->StringAt(r).compare(*c.lit_str);
          cmp = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
          pass = PassesCmp(c.op, cmp);
          break;
        }
      }
      if (!pass) break;
    }
    if (pass) {
      kept.push_back(r);
    } else if (ctx_ != nullptr) {
      QOX_RETURN_IF_ERROR(ctx_->Reject(batch->RowAt(r)));
    }
  }
  batch->SetSelection(std::move(kept));
  return Status::OK();
}

std::vector<std::string> FilterOp::InputColumns() const {
  std::vector<std::string> cols;
  cols.reserve(conjuncts_.size());
  for (const Predicate& p : conjuncts_) cols.push_back(p.column);
  return cols;
}

}  // namespace qox
