// FilterOp: row filtering on structured predicates.
//
// Predicates are structured (not opaque lambdas) so the optimizer can
// reason about them: dependency analysis for the "move the most restrictive
// operator to the start of the flow" rewrite (Sec. 3.1) needs to know which
// columns a filter touches. The paper's Flt_NN — "rejecting tuples
// containing null values" — is a conjunction of kNotNull predicates.

#ifndef QOX_ENGINE_OPS_FILTER_OP_H_
#define QOX_ENGINE_OPS_FILTER_OP_H_

#include <string>
#include <vector>

#include "engine/operator.h"

namespace qox {

/// One predicate over a named column.
struct Predicate {
  enum class Kind {
    kNotNull,  ///< column IS NOT NULL
    kIsNull,   ///< column IS NULL
    kCompare,  ///< column <op> literal
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kNotNull;
  std::string column;
  CmpOp op = CmpOp::kEq;
  Value literal;

  static Predicate NotNull(std::string column) {
    Predicate p;
    p.kind = Kind::kNotNull;
    p.column = std::move(column);
    return p;
  }
  static Predicate IsNull(std::string column) {
    Predicate p;
    p.kind = Kind::kIsNull;
    p.column = std::move(column);
    return p;
  }
  static Predicate Compare(std::string column, CmpOp op, Value literal) {
    Predicate p;
    p.kind = Kind::kCompare;
    p.column = std::move(column);
    p.op = op;
    p.literal = std::move(literal);
    return p;
  }

  /// Evaluates against a bound row. `index` is the resolved column index.
  bool Matches(const Row& row, size_t index) const;

  std::string ToString() const;
};

class FilterOp : public Operator {
 public:
  /// Rows must satisfy ALL `conjuncts` to pass. Non-passing rows are
  /// rejected (routed to the context's reject sink and counted).
  /// `estimated_selectivity` is the planner's expectation of the pass rate,
  /// carried for the cost model; the operator itself is exact.
  FilterOp(std::string name, std::vector<Predicate> conjuncts,
           double estimated_selectivity = 0.9);

  const char* kind() const override { return "filter"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Open(OperatorContext* ctx) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Push(RowBatch&& input, RowBatch* output) override;
  bool CanPushColumnar() const override { return true; }
  /// Selection-vector evaluation: conjuncts run over typed columns and
  /// non-passing rows leave the selection (rejects routed as in row mode).
  Status PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) override;
  double CostPerRow() const override { return 0.6; }
  double Selectivity() const override { return estimated_selectivity_; }

  const std::vector<Predicate>& conjuncts() const { return conjuncts_; }

  /// Names of the columns the predicates read (for rewrite legality).
  std::vector<std::string> InputColumns() const;

 private:
  const std::string name_;
  const std::vector<Predicate> conjuncts_;
  const double estimated_selectivity_;
  std::vector<size_t> indices_;
  OperatorContext* ctx_ = nullptr;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_FILTER_OP_H_
