// SortOp: blocking sorter.
//
// Sorters are the canonical blocking operator of the paper's pipelining
// discussion ("gather pipelining and blocking operations separately from
// each other") and a recommended recovery-point site ("following an
// operation that is costly or difficult to undo (e.g., a sort)").

#ifndef QOX_ENGINE_OPS_SORT_OP_H_
#define QOX_ENGINE_OPS_SORT_OP_H_

#include <string>
#include <vector>

#include "engine/operator.h"

namespace qox {

/// One sort key.
struct SortKey {
  std::string column;
  bool descending = false;
};

class SortOp : public Operator {
 public:
  SortOp(std::string name, std::vector<SortKey> keys);

  const char* kind() const override { return "sort"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Finish(RowBatch* output) override;
  bool IsBlocking() const override { return true; }
  double CostPerRow() const override { return 3.0; }

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<std::string> InputColumns() const;

 private:
  const std::string name_;
  const std::vector<SortKey> keys_;
  std::vector<size_t> indices_;
  std::vector<Row> buffered_;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_SORT_OP_H_
