// SortOp: blocking sorter.
//
// Sorters are the canonical blocking operator of the paper's pipelining
// discussion ("gather pipelining and blocking operations separately from
// each other") and a recommended recovery-point site ("following an
// operation that is costly or difficult to undo (e.g., a sort)").
//
// Under a MemoryBudget the sorter runs as an external merge sort: buffered
// rows are charged to the budget, and when a reservation is refused the
// buffer is sorted and written to a checksummed spill run. Finish merges
// the runs with the sorted in-memory tail, breaking ties toward the
// earlier run — runs hold contiguous arrival-order segments, so the merge
// reproduces std::stable_sort byte-identically.

#ifndef QOX_ENGINE_OPS_SORT_OP_H_
#define QOX_ENGINE_OPS_SORT_OP_H_

#include <string>
#include <vector>

#include "engine/operator.h"
#include "storage/spill_manager.h"

namespace qox {

/// One sort key.
struct SortKey {
  std::string column;
  bool descending = false;
};

class SortOp : public Operator {
 public:
  SortOp(std::string name, std::vector<SortKey> keys);

  const char* kind() const override { return "sort"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Open(OperatorContext* ctx) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Finish(RowBatch* output) override;
  bool IsBlocking() const override { return true; }
  double CostPerRow() const override { return 3.0; }

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<std::string> InputColumns() const;

 private:
  bool Less(const Row& a, const Row& b) const;
  Status BufferRow(const Row& row);
  Status SpillBuffered();
  Status MergeRuns(RowBatch* output);

  const std::string name_;
  const std::vector<SortKey> keys_;
  std::vector<size_t> indices_;
  Schema schema_;
  OperatorContext* ctx_ = nullptr;
  bool enforce_ = false;
  std::vector<Row> buffered_;
  size_t charged_ = 0;
  std::vector<SpillFile> runs_;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_SORT_OP_H_
