#include "engine/ops/function_op.h"

#include <algorithm>
#include <cctype>

namespace qox {

ColumnTransform ColumnTransform::Rename(std::string from, std::string to) {
  ColumnTransform t;
  t.kind = Kind::kRename;
  t.a = std::move(from);
  t.out = std::move(to);
  return t;
}

ColumnTransform ColumnTransform::Drop(std::string column) {
  ColumnTransform t;
  t.kind = Kind::kDrop;
  t.a = std::move(column);
  return t;
}

ColumnTransform ColumnTransform::Arith(std::string out, std::string a,
                                       ArithOp op, std::string b) {
  ColumnTransform t;
  t.kind = Kind::kArith;
  t.out = std::move(out);
  t.a = std::move(a);
  t.arith_op = op;
  t.b = std::move(b);
  return t;
}

ColumnTransform ColumnTransform::Scale(std::string out, std::string a,
                                       double factor) {
  ColumnTransform t;
  t.kind = Kind::kScale;
  t.out = std::move(out);
  t.a = std::move(a);
  t.scale = factor;
  return t;
}

ColumnTransform ColumnTransform::Concat(std::string out, std::string a,
                                        std::string b, std::string separator) {
  ColumnTransform t;
  t.kind = Kind::kConcat;
  t.out = std::move(out);
  t.a = std::move(a);
  t.b = std::move(b);
  t.separator = std::move(separator);
  t.out_type = DataType::kString;
  return t;
}

ColumnTransform ColumnTransform::Upper(std::string column) {
  ColumnTransform t;
  t.kind = Kind::kUpper;
  t.a = column;
  t.out = std::move(column);
  t.out_type = DataType::kString;
  return t;
}

ColumnTransform ColumnTransform::Constant(std::string out, Value v) {
  ColumnTransform t;
  t.kind = Kind::kConstant;
  t.out = std::move(out);
  t.out_type = v.type();
  t.literal = std::move(v);
  return t;
}

ColumnTransform ColumnTransform::Coalesce(std::string column, Value fallback) {
  ColumnTransform t;
  t.kind = Kind::kCoalesce;
  t.a = column;
  t.out = std::move(column);
  t.literal = std::move(fallback);
  return t;
}

std::string ColumnTransform::ToString() const {
  switch (kind) {
    case Kind::kRename:
      return "rename(" + a + " -> " + out + ")";
    case Kind::kDrop:
      return "drop(" + a + ")";
    case Kind::kArith: {
      const char* op_text = "+";
      switch (arith_op) {
        case ArithOp::kAdd:
          op_text = "+";
          break;
        case ArithOp::kSub:
          op_text = "-";
          break;
        case ArithOp::kMul:
          op_text = "*";
          break;
        case ArithOp::kDiv:
          op_text = "/";
          break;
      }
      return out + " = " + a + " " + op_text + " " + b;
    }
    case Kind::kScale:
      return out + " = " + a + " * " + std::to_string(scale);
    case Kind::kConcat:
      return out + " = concat(" + a + ", " + b + ")";
    case Kind::kUpper:
      return "upper(" + a + ")";
    case Kind::kConstant:
      return out + " = const(" + literal.ToString() + ")";
    case Kind::kCoalesce:
      return "coalesce(" + a + ", " + literal.ToString() + ")";
  }
  return "?";
}

FunctionOp::FunctionOp(std::string name,
                       std::vector<ColumnTransform> transforms)
    : name_(std::move(name)), transforms_(std::move(transforms)) {}

Result<Schema> FunctionOp::Bind(const Schema& input) {
  bound_.clear();
  columnar_ok_ = true;
  Schema schema = input;
  for (const ColumnTransform& t : transforms_) {
    BoundStep step;
    step.transform = t;
    switch (t.kind) {
      case ColumnTransform::Kind::kRename: {
        QOX_ASSIGN_OR_RETURN(step.a_index, schema.FieldIndex(t.a));
        QOX_ASSIGN_OR_RETURN(schema, schema.RenameField(t.a, t.out));
        break;
      }
      case ColumnTransform::Kind::kDrop: {
        QOX_ASSIGN_OR_RETURN(step.a_index, schema.FieldIndex(t.a));
        QOX_ASSIGN_OR_RETURN(schema, schema.RemoveField(t.a));
        break;
      }
      case ColumnTransform::Kind::kArith:
      case ColumnTransform::Kind::kConcat: {
        QOX_ASSIGN_OR_RETURN(step.a_index, schema.FieldIndex(t.a));
        QOX_ASSIGN_OR_RETURN(step.b_index, schema.FieldIndex(t.b));
        step.a_type = schema.field(step.a_index).type;
        step.b_type = schema.field(step.b_index).type;
        const DataType produced = t.kind == ColumnTransform::Kind::kArith
                                      ? DataType::kDouble
                                      : DataType::kString;
        if (schema.HasField(t.out)) {
          QOX_ASSIGN_OR_RETURN(step.out_index, schema.FieldIndex(t.out));
          // Writing into an existing column of another declared type would
          // break type purity mid-run; keep the row path for that.
          if (schema.field(step.out_index).type != produced) {
            columnar_ok_ = false;
          }
        } else {
          step.out_is_new = true;
          step.out_index = schema.num_fields();
          QOX_ASSIGN_OR_RETURN(schema,
                               schema.AddField({t.out, t.out_type, true}));
          if (t.out_type != produced) columnar_ok_ = false;
        }
        break;
      }
      case ColumnTransform::Kind::kScale: {
        QOX_ASSIGN_OR_RETURN(step.a_index, schema.FieldIndex(t.a));
        step.a_type = schema.field(step.a_index).type;
        if (schema.HasField(t.out)) {
          QOX_ASSIGN_OR_RETURN(step.out_index, schema.FieldIndex(t.out));
          if (schema.field(step.out_index).type != DataType::kDouble) {
            columnar_ok_ = false;
          }
        } else {
          step.out_is_new = true;
          step.out_index = schema.num_fields();
          QOX_ASSIGN_OR_RETURN(
              schema, schema.AddField({t.out, DataType::kDouble, true}));
        }
        break;
      }
      case ColumnTransform::Kind::kUpper:
      case ColumnTransform::Kind::kCoalesce: {
        QOX_ASSIGN_OR_RETURN(step.a_index, schema.FieldIndex(t.a));
        step.out_index = step.a_index;
        step.a_type = schema.field(step.a_index).type;
        if (t.kind == ColumnTransform::Kind::kCoalesce &&
            !t.literal.is_null() && t.literal.type() != step.a_type) {
          columnar_ok_ = false;
        }
        break;
      }
      case ColumnTransform::Kind::kConstant: {
        if (schema.HasField(t.out)) {
          return Status::AlreadyExists("constant column '" + t.out +
                                       "' already exists");
        }
        step.out_is_new = true;
        step.out_index = schema.num_fields();
        QOX_ASSIGN_OR_RETURN(schema,
                             schema.AddField({t.out, t.out_type, true}));
        if (t.literal.is_null()) columnar_ok_ = false;
        break;
      }
    }
    bound_.push_back(std::move(step));
  }
  output_schema_ = schema;
  return output_schema_;
}

namespace {

Value ApplyArith(const Value& a, const Value& b,
                 ColumnTransform::ArithOp op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  const Result<double> da = a.AsDouble();
  const Result<double> db = b.AsDouble();
  if (!da.ok() || !db.ok()) return Value::Null();
  switch (op) {
    case ColumnTransform::ArithOp::kAdd:
      return Value::Double(da.value() + db.value());
    case ColumnTransform::ArithOp::kSub:
      return Value::Double(da.value() - db.value());
    case ColumnTransform::ArithOp::kMul:
      return Value::Double(da.value() * db.value());
    case ColumnTransform::ArithOp::kDiv:
      return db.value() == 0.0 ? Value::Null()
                               : Value::Double(da.value() / db.value());
  }
  return Value::Null();
}

}  // namespace

Status FunctionOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& in_row : input.rows()) {
    std::vector<Value> cells(in_row.values().begin(), in_row.values().end());
    for (const BoundStep& step : bound_) {
      const ColumnTransform& t = step.transform;
      switch (t.kind) {
        case ColumnTransform::Kind::kRename:
          break;  // metadata only
        case ColumnTransform::Kind::kDrop:
          cells.erase(cells.begin() + static_cast<ptrdiff_t>(step.a_index));
          break;
        case ColumnTransform::Kind::kArith: {
          Value v = ApplyArith(cells[step.a_index], cells[step.b_index],
                               t.arith_op);
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kScale: {
          const Value& a = cells[step.a_index];
          Value v = Value::Null();
          if (!a.is_null()) {
            const Result<double> da = a.AsDouble();
            if (da.ok()) v = Value::Double(da.value() * t.scale);
          }
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kConcat: {
          Value v = Value::String(cells[step.a_index].ToString() +
                                  t.separator +
                                  cells[step.b_index].ToString());
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kUpper: {
          Value& v = cells[step.a_index];
          if (!v.is_null() && v.type() == DataType::kString) {
            std::string s = v.string_value();
            std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
              return static_cast<char>(std::toupper(c));
            });
            v = Value::String(std::move(s));
          }
          break;
        }
        case ColumnTransform::Kind::kConstant:
          cells.push_back(t.literal);
          break;
        case ColumnTransform::Kind::kCoalesce: {
          Value& v = cells[step.a_index];
          if (v.is_null()) v = t.literal;
          break;
        }
      }
    }
    output->Append(Row(std::move(cells)));
  }
  return Status::OK();
}

Status FunctionOp::Push(RowBatch&& input, RowBatch* output) {
  for (Row& in_row : input.rows()) {
    std::vector<Value> cells;
    cells.reserve(in_row.num_values() + bound_.size());
    for (size_t i = 0; i < in_row.num_values(); ++i) {
      cells.push_back(std::move(in_row.value(i)));
    }
    for (const BoundStep& step : bound_) {
      const ColumnTransform& t = step.transform;
      switch (t.kind) {
        case ColumnTransform::Kind::kRename:
          break;
        case ColumnTransform::Kind::kDrop:
          cells.erase(cells.begin() + static_cast<ptrdiff_t>(step.a_index));
          break;
        case ColumnTransform::Kind::kArith: {
          Value v = ApplyArith(cells[step.a_index], cells[step.b_index],
                               t.arith_op);
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kScale: {
          const Value& a = cells[step.a_index];
          Value v = Value::Null();
          if (!a.is_null()) {
            const Result<double> da = a.AsDouble();
            if (da.ok()) v = Value::Double(da.value() * t.scale);
          }
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kConcat: {
          Value v = Value::String(cells[step.a_index].ToString() +
                                  t.separator +
                                  cells[step.b_index].ToString());
          if (step.out_is_new) {
            cells.push_back(std::move(v));
          } else {
            cells[step.out_index] = std::move(v);
          }
          break;
        }
        case ColumnTransform::Kind::kUpper: {
          Value& v = cells[step.a_index];
          if (!v.is_null() && v.type() == DataType::kString) {
            std::string s = v.string_value();
            std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
              return static_cast<char>(std::toupper(c));
            });
            v = Value::String(std::move(s));
          }
          break;
        }
        case ColumnTransform::Kind::kConstant:
          cells.push_back(t.literal);
          break;
        case ColumnTransform::Kind::kCoalesce: {
          Value& v = cells[step.a_index];
          if (v.is_null()) v = t.literal;
          break;
        }
      }
    }
    output->Append(Row(std::move(cells)));
  }
  return Status::OK();
}

namespace {

// How a declared column type reads as a number, mirroring Value::AsDouble
// (bool -> 0/1; int64/timestamp -> cast; string/null -> no numeric view).
enum class NumKind { kI64, kF64, kB8, kNone };

NumKind NumKindOf(DataType t) {
  switch (t) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return NumKind::kI64;
    case DataType::kDouble:
      return NumKind::kF64;
    case DataType::kBool:
      return NumKind::kB8;
    default:
      return NumKind::kNone;
  }
}

double NumAt(const Column& c, NumKind k, size_t r) {
  switch (k) {
    case NumKind::kI64:
      return static_cast<double>(c.Int64At(r));
    case NumKind::kF64:
      return c.DoubleAt(r);
    case NumKind::kB8:
      return c.BoolAt(r) ? 1.0 : 0.0;
    case NumKind::kNone:
      break;
  }
  return 0.0;
}

}  // namespace

Status FunctionOp::PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) {
  (void)cctx;  // under type purity no step can fail on a row
  const size_t n = batch->num_physical_rows();
  for (const BoundStep& step : bound_) {
    const ColumnTransform& t = step.transform;
    switch (t.kind) {
      case ColumnTransform::Kind::kRename:
        break;  // metadata only; the pipeline re-points the schema
      case ColumnTransform::Kind::kDrop:
        batch->EraseColumn(step.a_index);
        break;
      case ColumnTransform::Kind::kArith: {
        const Column& a = batch->column(step.a_index);
        const Column& b = batch->column(step.b_index);
        const NumKind ka = NumKindOf(step.a_type);
        const NumKind kb = NumKindOf(step.b_type);
        Column out(DataType::kDouble);
        out.Reserve(n);
        if (ka == NumKind::kNone || kb == NumKind::kNone) {
          // Non-numeric operand: the row path yields NULL for every row.
          for (size_t r = 0; r < n; ++r) out.AppendNull();
        } else {
          for (size_t r = 0; r < n; ++r) {
            if (!a.IsValid(r) || !b.IsValid(r)) {
              out.AppendNull();
              continue;
            }
            const double da = NumAt(a, ka, r);
            const double db = NumAt(b, kb, r);
            switch (t.arith_op) {
              case ColumnTransform::ArithOp::kAdd:
                out.AppendDouble(da + db);
                break;
              case ColumnTransform::ArithOp::kSub:
                out.AppendDouble(da - db);
                break;
              case ColumnTransform::ArithOp::kMul:
                out.AppendDouble(da * db);
                break;
              case ColumnTransform::ArithOp::kDiv:
                if (db == 0.0) {
                  out.AppendNull();
                } else {
                  out.AppendDouble(da / db);
                }
                break;
            }
          }
        }
        if (step.out_is_new) {
          batch->AppendColumn(std::move(out));
        } else {
          batch->ReplaceColumn(step.out_index, std::move(out));
        }
        break;
      }
      case ColumnTransform::Kind::kScale: {
        const Column& a = batch->column(step.a_index);
        const NumKind ka = NumKindOf(step.a_type);
        Column out(DataType::kDouble);
        out.Reserve(n);
        for (size_t r = 0; r < n; ++r) {
          if (ka == NumKind::kNone || !a.IsValid(r)) {
            out.AppendNull();
          } else {
            out.AppendDouble(NumAt(a, ka, r) * t.scale);
          }
        }
        if (step.out_is_new) {
          batch->AppendColumn(std::move(out));
        } else {
          batch->ReplaceColumn(step.out_index, std::move(out));
        }
        break;
      }
      case ColumnTransform::Kind::kConcat: {
        const Column& a = batch->column(step.a_index);
        const Column& b = batch->column(step.b_index);
        Column out(DataType::kString);
        out.Reserve(n);
        // Boxed ToString keeps formatting (double precision, bool words)
        // bit-identical with the row path.
        for (size_t r = 0; r < n; ++r) {
          out.AppendString(a.ValueAt(r).ToString() + t.separator +
                           b.ValueAt(r).ToString());
        }
        if (step.out_is_new) {
          batch->AppendColumn(std::move(out));
        } else {
          batch->ReplaceColumn(step.out_index, std::move(out));
        }
        break;
      }
      case ColumnTransform::Kind::kUpper:
        // Type purity: on a declared-string column every non-NULL cell is a
        // string; on any other column no cell is, so the row path would not
        // touch it. Dead (unselected) payloads are uppercased too, which is
        // unobservable.
        if (step.a_type == DataType::kString) {
          batch->column(step.a_index).UpperInPlaceAscii();
        }
        break;
      case ColumnTransform::Kind::kConstant: {
        Column out(t.literal.type());
        out.Reserve(n);
        for (size_t r = 0; r < n; ++r) out.AppendValue(t.literal);
        batch->AppendColumn(std::move(out));
        break;
      }
      case ColumnTransform::Kind::kCoalesce: {
        if (t.literal.is_null()) break;  // no-op either way
        Column& a = batch->column(step.a_index);
        Column out(a.type());
        out.Reserve(n);
        for (size_t r = 0; r < n; ++r) {
          if (a.IsValid(r)) {
            out.AppendValue(a.ValueAt(r));
          } else {
            out.AppendValue(t.literal);
          }
        }
        batch->ReplaceColumn(step.a_index, std::move(out));
        break;
      }
    }
  }
  return Status::OK();
}

std::vector<std::string> FunctionOp::InputColumns() const {
  std::vector<std::string> cols;
  for (const ColumnTransform& t : transforms_) {
    if (!t.a.empty()) cols.push_back(t.a);
    if (!t.b.empty()) cols.push_back(t.b);
  }
  return cols;
}

std::vector<std::string> FunctionOp::CreatedColumns() const {
  std::vector<std::string> cols;
  for (const ColumnTransform& t : transforms_) {
    switch (t.kind) {
      case ColumnTransform::Kind::kRename:
      case ColumnTransform::Kind::kArith:
      case ColumnTransform::Kind::kScale:
      case ColumnTransform::Kind::kConcat:
      case ColumnTransform::Kind::kConstant:
        if (!t.out.empty()) cols.push_back(t.out);
        break;
      case ColumnTransform::Kind::kDrop:
      case ColumnTransform::Kind::kUpper:
      case ColumnTransform::Kind::kCoalesce:
        break;
    }
  }
  return cols;
}

std::vector<std::string> FunctionOp::DroppedColumns() const {
  std::vector<std::string> cols;
  for (const ColumnTransform& t : transforms_) {
    if (t.kind == ColumnTransform::Kind::kDrop) cols.push_back(t.a);
    if (t.kind == ColumnTransform::Kind::kRename) cols.push_back(t.a);
  }
  return cols;
}

}  // namespace qox
