#include "engine/ops/surrogate_key_op.h"

namespace qox {

int64_t SurrogateKeyRegistry::AssignLocked(const Value& natural) {
  const int64_t key = next_key_++;
  if (natural.is_int64() || natural.is_timestamp()) {
    i64_index_.emplace(natural.int64_value(), key);
  }
  map_.emplace(natural, key);
  return key;
}

int64_t SurrogateKeyRegistry::GetOrAssign(const Value& natural) {
  if (natural.is_null()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(natural);
  if (it != map_.end()) return it->second;
  return AssignLocked(natural);
}

void SurrogateKeyRegistry::GetOrAssignBatch(const std::vector<Value>& naturals,
                                            std::vector<int64_t>* out) {
  out->clear();
  out->reserve(naturals.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const Value& natural : naturals) {
    if (natural.is_null()) {
      out->push_back(0);
      continue;
    }
    const auto it = map_.find(natural);
    if (it != map_.end()) {
      out->push_back(it->second);
      continue;
    }
    out->push_back(AssignLocked(natural));
  }
}

void SurrogateKeyRegistry::GetOrAssignI64Batch(const int64_t* keys,
                                               const uint8_t* nulls, size_t n,
                                               std::vector<int64_t>* out) {
  out->clear();
  out->resize(n);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n; ++i) {
    if (nulls != nullptr && nulls[i] != 0) {
      (*out)[i] = 0;
      continue;
    }
    const auto it = i64_index_.find(keys[i]);
    if (it != i64_index_.end()) {
      (*out)[i] = it->second;
      continue;
    }
    (*out)[i] = AssignLocked(Value::Int64(keys[i]));
  }
}

Result<int64_t> SurrogateKeyRegistry::Get(const Value& natural) const {
  if (natural.is_null()) return static_cast<int64_t>(0);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(natural);
  if (it == map_.end()) {
    return Status::NotFound("no surrogate assigned for " + natural.ToString());
  }
  return it->second;
}

size_t SurrogateKeyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

SurrogateKeyOp::SurrogateKeyOp(std::string name,
                               SurrogateKeyRegistryPtr registry,
                               std::string natural_column,
                               std::string surrogate_column,
                               bool drop_natural)
    : name_(std::move(name)),
      registry_(std::move(registry)),
      natural_column_(std::move(natural_column)),
      surrogate_column_(std::move(surrogate_column)),
      drop_natural_(drop_natural) {}

Result<Schema> SurrogateKeyOp::Bind(const Schema& input) {
  if (registry_ == nullptr) {
    return Status::Invalid("surrogate key op '" + name_ + "' has no registry");
  }
  QOX_ASSIGN_OR_RETURN(natural_index_, input.FieldIndex(natural_column_));
  Schema schema = input;
  QOX_ASSIGN_OR_RETURN(
      schema, schema.AddField({surrogate_column_, DataType::kInt64, false}));
  if (drop_natural_) {
    QOX_ASSIGN_OR_RETURN(schema, schema.RemoveField(natural_column_));
  }
  return schema;
}

Status SurrogateKeyOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    const int64_t surrogate = registry_->GetOrAssign(row.value(natural_index_));
    Row out = row;
    out.Append(Value::Int64(surrogate));
    if (drop_natural_) {
      std::vector<Value> cells(out.values().begin(), out.values().end());
      cells.erase(cells.begin() + static_cast<ptrdiff_t>(natural_index_));
      out = Row(std::move(cells));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

Status SurrogateKeyOp::Push(RowBatch&& input, RowBatch* output) {
  for (Row& row : input.rows()) {
    const int64_t surrogate = registry_->GetOrAssign(row.value(natural_index_));
    Row out = std::move(row);
    out.Append(Value::Int64(surrogate));
    if (drop_natural_) {
      std::vector<Value> cells;
      cells.reserve(out.num_values() - 1);
      for (size_t i = 0; i < out.num_values(); ++i) {
        if (i == natural_index_) continue;
        cells.push_back(std::move(out.value(i)));
      }
      out = Row(std::move(cells));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

Status SurrogateKeyOp::PushColumnar(ColumnBatch* batch,
                                    ColumnarPushContext* cctx) {
  (void)cctx;  // assignment never fails per row
  const Column& natural = batch->column(natural_index_);
  const std::vector<uint32_t>& sel = batch->selection();

  std::vector<int64_t> surrogates;
  if (natural.type() == DataType::kInt64 ||
      natural.type() == DataType::kTimestamp) {
    // Unboxed probe: gather raw payloads for the selected rows and hit the
    // registry's int64 mirror index directly.
    std::vector<int64_t> raw(sel.size());
    const int64_t* data = natural.i64_data();
    if (!natural.has_nulls()) {
      for (size_t i = 0; i < sel.size(); ++i) raw[i] = data[sel[i]];
      registry_->GetOrAssignI64Batch(raw.data(), nullptr, raw.size(),
                                     &surrogates);
    } else {
      std::vector<uint8_t> nulls(sel.size());
      for (size_t i = 0; i < sel.size(); ++i) {
        raw[i] = data[sel[i]];
        nulls[i] = natural.IsValid(sel[i]) ? 0 : 1;
      }
      registry_->GetOrAssignI64Batch(raw.data(), nulls.data(), raw.size(),
                                     &surrogates);
    }
  } else {
    std::vector<Value> keys;
    keys.reserve(sel.size());
    for (const uint32_t r : sel) keys.push_back(natural.ValueAt(r));
    registry_->GetOrAssignBatch(keys, &surrogates);
  }

  Column out(DataType::kInt64);
  out.Reserve(batch->num_physical_rows());
  size_t sel_pos = 0;
  for (uint32_t r = 0; r < batch->num_physical_rows(); ++r) {
    if (sel_pos < sel.size() && sel[sel_pos] == r) {
      out.AppendInt64(surrogates[sel_pos]);
      ++sel_pos;
    } else {
      out.AppendInt64(0);  // dead row: placeholder, never materialized
    }
  }
  batch->AppendColumn(std::move(out));
  if (drop_natural_) batch->EraseColumn(natural_index_);
  return Status::OK();
}

}  // namespace qox
