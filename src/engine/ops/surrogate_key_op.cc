#include "engine/ops/surrogate_key_op.h"

namespace qox {

int64_t SurrogateKeyRegistry::GetOrAssign(const Value& natural) {
  if (natural.is_null()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(natural);
  if (it != map_.end()) return it->second;
  const int64_t key = next_key_++;
  map_.emplace(natural, key);
  return key;
}

Result<int64_t> SurrogateKeyRegistry::Get(const Value& natural) const {
  if (natural.is_null()) return static_cast<int64_t>(0);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(natural);
  if (it == map_.end()) {
    return Status::NotFound("no surrogate assigned for " + natural.ToString());
  }
  return it->second;
}

size_t SurrogateKeyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

SurrogateKeyOp::SurrogateKeyOp(std::string name,
                               SurrogateKeyRegistryPtr registry,
                               std::string natural_column,
                               std::string surrogate_column,
                               bool drop_natural)
    : name_(std::move(name)),
      registry_(std::move(registry)),
      natural_column_(std::move(natural_column)),
      surrogate_column_(std::move(surrogate_column)),
      drop_natural_(drop_natural) {}

Result<Schema> SurrogateKeyOp::Bind(const Schema& input) {
  if (registry_ == nullptr) {
    return Status::Invalid("surrogate key op '" + name_ + "' has no registry");
  }
  QOX_ASSIGN_OR_RETURN(natural_index_, input.FieldIndex(natural_column_));
  Schema schema = input;
  QOX_ASSIGN_OR_RETURN(
      schema, schema.AddField({surrogate_column_, DataType::kInt64, false}));
  if (drop_natural_) {
    QOX_ASSIGN_OR_RETURN(schema, schema.RemoveField(natural_column_));
  }
  return schema;
}

Status SurrogateKeyOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    const int64_t surrogate = registry_->GetOrAssign(row.value(natural_index_));
    Row out = row;
    out.Append(Value::Int64(surrogate));
    if (drop_natural_) {
      std::vector<Value> cells(out.values().begin(), out.values().end());
      cells.erase(cells.begin() + static_cast<ptrdiff_t>(natural_index_));
      out = Row(std::move(cells));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

}  // namespace qox
