// DeltaOp: the Δ transformation of Fig. 3 — change detection against the
// previous landing.
//
// "The data after their landing to the transformation area are compared
// (Δ transformation) against the previous landing (snapshot table) for
// identifying the changed tuples."
//
// DeltaOp is blocking: it buffers its input, classifies it against the
// SnapshotStore at Finish(), and emits only inserts and updates (optionally
// tagged with a change-type column). Committing the fresh landing into the
// snapshot is NOT done here — the executor commits only after the flow
// loads successfully, so failed/restarted runs see the same delta again
// (exactly-once semantics; asserted by recovery tests).

#ifndef QOX_ENGINE_OPS_DELTA_OP_H_
#define QOX_ENGINE_OPS_DELTA_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "storage/snapshot_store.h"

namespace qox {

using SnapshotStorePtr = std::shared_ptr<SnapshotStore>;

class DeltaOp : public Operator {
 public:
  /// When `change_type_column` is non-empty, a string column with values
  /// "insert" / "update" is appended to the output.
  DeltaOp(std::string name, SnapshotStorePtr snapshot,
          std::string change_type_column = "");

  const char* kind() const override { return "delta"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Finish(RowBatch* output) override;
  bool IsBlocking() const override { return true; }
  double CostPerRow() const override { return 2.2; }
  double Selectivity() const override { return 0.6; }  // typical change rate

 private:
  const std::string name_;
  const SnapshotStorePtr snapshot_;
  const std::string change_type_column_;
  std::vector<Row> buffered_;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_DELTA_OP_H_
