#include "engine/ops/group_op.h"

namespace qox {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "unknown";
}

GroupOp::GroupOp(std::string name, std::vector<std::string> group_columns,
                 std::vector<Aggregate> aggregates)
    : name_(std::move(name)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {}

Result<Schema> GroupOp::Bind(const Schema& input) {
  if (group_columns_.empty()) {
    return Status::Invalid("group '" + name_ + "' has no group columns");
  }
  group_indices_.clear();
  std::vector<Field> out_fields;
  for (const std::string& col : group_columns_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(col));
    group_indices_.push_back(idx);
    out_fields.push_back(input.field(idx));
  }
  agg_indices_.clear();
  for (const Aggregate& agg : aggregates_) {
    if (agg.kind == AggKind::kCount) {
      agg_indices_.push_back(0);  // unused
      out_fields.push_back({agg.as, DataType::kInt64, false});
      continue;
    }
    QOX_ASSIGN_OR_RETURN(const size_t idx, input.FieldIndex(agg.column));
    agg_indices_.push_back(idx);
    out_fields.push_back({agg.as, DataType::kDouble, true});
  }
  input_schema_ = input;
  groups_.clear();
  group_order_.clear();
  charged_ = 0;
  spilling_ = false;
  spill_writer_.reset();
  return Schema(std::move(out_fields));
}

Status GroupOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  enforce_ = ctx != nullptr && ctx->BudgetEnforced();
  return Status::OK();
}

Row GroupOp::MakeKey(const Row& row) const {
  Row key;
  for (const size_t idx : group_indices_) key.Append(row.value(idx));
  return key;
}

size_t GroupOp::GroupBytes(const Row& key) const {
  return key.ByteSize() + aggregates_.size() * sizeof(AggState);
}

void GroupOp::AggregateRow(const Row& row, bool charge_forced) {
  Row key = MakeKey(row);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    if (enforce_ && charge_forced) {
      // Replay path: Finish must rebuild the whole group state, so new
      // groups overrun the budget by force — visible in the high-water
      // mark rather than hidden from it.
      const size_t bytes = GroupBytes(key);
      ctx_->memory_budget->ForceReserve(bytes);
      charged_ += bytes;
    }
    group_order_.push_back(key);
    it = groups_.emplace(std::move(key),
                         std::vector<AggState>(aggregates_.size()))
             .first;
  }
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    AggState& state = it->second[i];
    ++state.row_count;
    if (aggregates_[i].kind == AggKind::kCount) continue;
    const Value& v = row.value(agg_indices_[i]);
    if (v.is_null()) continue;
    const Result<double> d = v.AsDouble();
    if (!d.ok()) continue;
    if (state.count == 0) {
      state.min = d.value();
      state.max = d.value();
    } else {
      state.min = std::min(state.min, d.value());
      state.max = std::max(state.max, d.value());
    }
    state.sum += d.value();
    ++state.count;
  }
}

Status GroupOp::Push(const RowBatch& input, RowBatch* output) {
  (void)output;
  for (const Row& row : input.rows()) {
    if (spilling_) {
      QOX_RETURN_IF_ERROR(spill_writer_->Append(row));
      continue;
    }
    if (enforce_) {
      const Row key = MakeKey(row);
      if (groups_.find(key) == groups_.end()) {
        const size_t bytes = GroupBytes(key);
        if (!ctx_->memory_budget->TryReserve(bytes)) {
          // Budget refused a new group: freeze the live table and spill
          // every subsequent raw row, preserving arrival order so Finish's
          // replay updates each group in exactly the unbudgeted order.
          QOX_ASSIGN_OR_RETURN(
              spill_writer_, ctx_->spill->CreateRun(name_, input_schema_));
          spilling_ = true;
          QOX_RETURN_IF_ERROR(spill_writer_->Append(row));
          continue;
        }
        charged_ += bytes;
      }
    }
    AggregateRow(row, /*charge_forced=*/false);
  }
  return Status::OK();
}

Status GroupOp::Finish(RowBatch* output) {
  if (spilling_) {
    QOX_ASSIGN_OR_RETURN(const SpillFile run, spill_writer_->Finalize());
    spill_writer_.reset();
    SpillReader reader(run);
    while (true) {
      QOX_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
      if (!row.has_value()) break;
      AggregateRow(*row, /*charge_forced=*/true);
    }
    spilling_ = false;
  }
  for (const Row& key : group_order_) {
    const std::vector<AggState>& states = groups_.at(key);
    Row out = key;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const AggState& state = states[i];
      switch (aggregates_[i].kind) {
        case AggKind::kCount:
          out.Append(Value::Int64(static_cast<int64_t>(state.row_count)));
          break;
        case AggKind::kSum:
          out.Append(state.count == 0 ? Value::Null()
                                      : Value::Double(state.sum));
          break;
        case AggKind::kMin:
          out.Append(state.count == 0 ? Value::Null()
                                      : Value::Double(state.min));
          break;
        case AggKind::kMax:
          out.Append(state.count == 0 ? Value::Null()
                                      : Value::Double(state.max));
          break;
        case AggKind::kAvg:
          out.Append(state.count == 0
                         ? Value::Null()
                         : Value::Double(state.sum /
                                         static_cast<double>(state.count)));
          break;
      }
    }
    output->Append(std::move(out));
  }
  groups_.clear();
  group_order_.clear();
  if (enforce_ && charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

std::vector<std::string> GroupOp::InputColumns() const {
  std::vector<std::string> cols = group_columns_;
  for (const Aggregate& agg : aggregates_) {
    if (!agg.column.empty()) cols.push_back(agg.column);
  }
  return cols;
}

}  // namespace qox
