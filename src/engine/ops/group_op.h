// GroupOp: blocking hash aggregation ("grouper" in the paper's pipelining
// example {filter, sorter, filter, filter, function, grouper}).
//
// Under a MemoryBudget the hash table is charged per group. When a new
// group is refused, the operator stops aggregating live and appends every
// subsequent raw input row to one spill run; Finish replays the run
// through the same aggregation loop in arrival order. Per-group update
// order is then live-phase rows followed by spill-phase rows — exactly the
// arrival order — so floating-point sums match the unbudgeted run bit for
// bit. Finish transiently rebuilds the full group state (the documented
// memory bound for this operator: the output itself must fit).

#ifndef QOX_ENGINE_OPS_GROUP_OP_H_
#define QOX_ENGINE_OPS_GROUP_OP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/operator.h"
#include "storage/spill_manager.h"

namespace qox {

enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

const char* AggKindName(AggKind kind);

/// One aggregate: kind over `column` (ignored for kCount), output `as`.
struct Aggregate {
  AggKind kind = AggKind::kCount;
  std::string column;
  std::string as;

  static Aggregate Count(std::string as) { return {AggKind::kCount, "", std::move(as)}; }
  static Aggregate Sum(std::string column, std::string as) {
    return {AggKind::kSum, std::move(column), std::move(as)};
  }
  static Aggregate Min(std::string column, std::string as) {
    return {AggKind::kMin, std::move(column), std::move(as)};
  }
  static Aggregate Max(std::string column, std::string as) {
    return {AggKind::kMax, std::move(column), std::move(as)};
  }
  static Aggregate Avg(std::string column, std::string as) {
    return {AggKind::kAvg, std::move(column), std::move(as)};
  }
};

class GroupOp : public Operator {
 public:
  GroupOp(std::string name, std::vector<std::string> group_columns,
          std::vector<Aggregate> aggregates);

  const char* kind() const override { return "group"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Open(OperatorContext* ctx) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Finish(RowBatch* output) override;
  bool IsBlocking() const override { return true; }
  double CostPerRow() const override { return 2.5; }
  double Selectivity() const override { return 0.1; }  // group reduction

  std::vector<std::string> InputColumns() const;

 private:
  struct AggState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    size_t count = 0;      ///< non-NULL inputs
    size_t row_count = 0;  ///< all rows (kCount)
  };

  Row MakeKey(const Row& row) const;
  size_t GroupBytes(const Row& key) const;
  void AggregateRow(const Row& row, bool charge_forced);

  const std::string name_;
  const std::vector<std::string> group_columns_;
  const std::vector<Aggregate> aggregates_;
  std::vector<size_t> group_indices_;
  std::vector<size_t> agg_indices_;
  Schema input_schema_;
  OperatorContext* ctx_ = nullptr;
  bool enforce_ = false;
  size_t charged_ = 0;
  bool spilling_ = false;
  std::unique_ptr<SpillWriter> spill_writer_;
  // Key = group-column row; value = one state per aggregate.
  std::unordered_map<Row, std::vector<AggState>, RowHash> groups_;
  std::vector<Row> group_order_;  // first-seen order for determinism
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_GROUP_OP_H_
