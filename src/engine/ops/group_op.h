// GroupOp: blocking hash aggregation ("grouper" in the paper's pipelining
// example {filter, sorter, filter, filter, function, grouper}).

#ifndef QOX_ENGINE_OPS_GROUP_OP_H_
#define QOX_ENGINE_OPS_GROUP_OP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/operator.h"

namespace qox {

enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

const char* AggKindName(AggKind kind);

/// One aggregate: kind over `column` (ignored for kCount), output `as`.
struct Aggregate {
  AggKind kind = AggKind::kCount;
  std::string column;
  std::string as;

  static Aggregate Count(std::string as) { return {AggKind::kCount, "", std::move(as)}; }
  static Aggregate Sum(std::string column, std::string as) {
    return {AggKind::kSum, std::move(column), std::move(as)};
  }
  static Aggregate Min(std::string column, std::string as) {
    return {AggKind::kMin, std::move(column), std::move(as)};
  }
  static Aggregate Max(std::string column, std::string as) {
    return {AggKind::kMax, std::move(column), std::move(as)};
  }
  static Aggregate Avg(std::string column, std::string as) {
    return {AggKind::kAvg, std::move(column), std::move(as)};
  }
};

class GroupOp : public Operator {
 public:
  GroupOp(std::string name, std::vector<std::string> group_columns,
          std::vector<Aggregate> aggregates);

  const char* kind() const override { return "group"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Finish(RowBatch* output) override;
  bool IsBlocking() const override { return true; }
  double CostPerRow() const override { return 2.5; }
  double Selectivity() const override { return 0.1; }  // group reduction

  std::vector<std::string> InputColumns() const;

 private:
  struct AggState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    size_t count = 0;      ///< non-NULL inputs
    size_t row_count = 0;  ///< all rows (kCount)
  };

  const std::string name_;
  const std::vector<std::string> group_columns_;
  const std::vector<Aggregate> aggregates_;
  std::vector<size_t> group_indices_;
  std::vector<size_t> agg_indices_;
  // Key = group-column row; value = one state per aggregate.
  std::unordered_map<Row, std::vector<AggState>, RowHash> groups_;
  std::vector<Row> group_order_;  // first-seen order for determinism
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_GROUP_OP_H_
