#include "engine/ops/lookup_op.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace qox {

LookupOp::LookupOp(std::string name, DataStorePtr dimension,
                   std::string input_key, std::string dim_key,
                   std::vector<std::string> append_columns,
                   LookupMissPolicy miss_policy, double estimated_hit_rate)
    : name_(std::move(name)),
      dimension_(std::move(dimension)),
      input_key_(std::move(input_key)),
      dim_key_(std::move(dim_key)),
      append_columns_(std::move(append_columns)),
      miss_policy_(miss_policy),
      estimated_hit_rate_(estimated_hit_rate) {}

Result<Schema> LookupOp::Bind(const Schema& input) {
  if (dimension_ == nullptr) {
    return Status::Invalid("lookup '" + name_ + "' has no dimension store");
  }
  QOX_ASSIGN_OR_RETURN(input_key_index_, input.FieldIndex(input_key_));
  const Schema& dim_schema = dimension_->schema();
  QOX_ASSIGN_OR_RETURN(dim_key_index_, dim_schema.FieldIndex(dim_key_));
  append_indices_.clear();
  output_column_names_.clear();
  Schema schema = input;
  for (const std::string& col : append_columns_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, dim_schema.FieldIndex(col));
    append_indices_.push_back(idx);
    std::string out_name = col;
    if (schema.HasField(out_name)) {
      out_name = dimension_->name() + "_" + col;
    }
    output_column_names_.push_back(out_name);
    QOX_ASSIGN_OR_RETURN(
        schema,
        schema.AddField({out_name, dim_schema.field(idx).type, true}));
  }
  return schema;
}

namespace {
// Dimension scan granularity at Open(): small enough that one transient
// batch never rivals a sane budget, big enough to amortize the scan.
constexpr size_t kDimScanBatch = 1024;
}  // namespace

Status LookupOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  partitions_.clear();
  partitioned_ = false;
  charged_ = 0;
  flat_table_.reset();
  columnar_probe_ok_ = false;
  const bool enforce = ctx != nullptr && ctx->BudgetEnforced();
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget : nullptr;

  // Fast path: a flat table, shared across flows through the process-wide
  // DimensionCache when the store is versioned, or built locally when not.
  // Budget-enforced flows may only reuse a completed shared build (charged
  // against their budget) — never start one, since an in-flight build is
  // unbudgeted working set; on a refused reservation or a miss they keep
  // the legacy streamed/spill build below.
  const std::string version = dimension_->ContentVersion();
  if (!version.empty()) {
    DimensionCache& cache = DimensionCache::Instance();
    if (enforce) {
      DimensionTablePtr hit =
          cache.TryGet(*dimension_, version, dim_key_index_);
      if (hit != nullptr && budget->TryReserve(hit->ByteSize())) {
        charged_ = hit->ByteSize();
        flat_table_ = std::move(hit);
        if (ctx_->dim_cache_hits != nullptr) {
          ctx_->dim_cache_hits->fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else {
      QOX_ASSIGN_OR_RETURN(
          DimensionCache::Acquired acquired,
          cache.GetOrBuild(*dimension_, version, dim_key_index_));
      if (budget != nullptr && !budget->unlimited()) {
        // Finite budget without enforcement still gets charged (cache
        // memory is real working set); unlimited budgets keep reporting 0
        // high water, as documented.
        if (budget->TryReserve(acquired.table->ByteSize())) {
          charged_ = acquired.table->ByteSize();
          flat_table_ = std::move(acquired.table);
        }
      } else {
        flat_table_ = std::move(acquired.table);
      }
      if (flat_table_ != nullptr && ctx_ != nullptr) {
        std::atomic<size_t>* counter =
            acquired.built ? ctx_->dim_cache_builds : ctx_->dim_cache_hits;
        if (counter != nullptr) {
          counter->fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  } else if (!enforce) {
    // Uncacheable store: build the flat table locally so row probing and
    // the columnar kernel still skip per-probe Value boxing.
    QOX_ASSIGN_OR_RETURN(flat_table_,
                         DimensionTable::Build(*dimension_, dim_key_index_));
  }
  if (flat_table_ != nullptr) {
    // Columnar appends copy dimension cells into typed columns; verify the
    // build side is type-pure once so the kernel never hits a mismatch.
    columnar_probe_ok_ = true;
    const Schema& dim_schema = dimension_->schema();
    for (const Row& row : flat_table_->rows()) {
      for (const size_t idx : append_indices_) {
        const Value& v = row.value(idx);
        if (!v.is_null() && v.type() != dim_schema.field(idx).type) {
          columnar_probe_ok_ = false;
          break;
        }
      }
      if (!columnar_probe_ok_) break;
    }
    return Status::OK();
  }

  // The dimension is streamed, never materialized whole: rows build the
  // in-memory table while the budget admits them; the first refused
  // reservation repartitions that table into spill runs and the rest of
  // the scan is routed straight to the partition writers, so the build's
  // working set stays within the budget plus one scan batch.
  std::vector<std::unique_ptr<SpillWriter>> writers;
  ValueHash hasher;
  size_t rows_seen = 0;
  QOX_RETURN_IF_ERROR(dimension_->Scan(
      kDimScanBatch, [&](RowBatch& batch) -> Status {
        for (Row& row : batch.rows()) {
          ++rows_seen;
          const Value& key = row.value(dim_key_index_);
          if (!partitioned_) {
            // First occurrence of a key wins, matching what emplace on a
            // whole-dimension build (and on partition load) would keep.
            if (table_.find(key) != table_.end()) continue;
            const size_t row_bytes = key.ByteSize() + row.ByteSize();
            if (!enforce || ctx_->memory_budget->TryReserve(row_bytes)) {
              if (enforce) charged_ += row_bytes;
              Value key_copy = key;
              table_.emplace(std::move(key_copy), std::move(row));
              continue;
            }
            QOX_RETURN_IF_ERROR(StartPartitions(rows_seen, &writers));
          }
          const size_t p = hasher(key) % writers.size();
          QOX_RETURN_IF_ERROR(writers[p]->Append(row));
          partitions_[p].bytes += key.ByteSize() + row.ByteSize();
        }
        return Status::OK();
      }));
  for (size_t p = 0; p < writers.size(); ++p) {
    QOX_ASSIGN_OR_RETURN(partitions_[p].file, writers[p]->Finalize());
  }
  return Status::OK();
}

Status LookupOp::StartPartitions(
    size_t rows_seen, std::vector<std::unique_ptr<SpillWriter>>* writers) {
  // Size partitions to roughly half the budget each, so one cached
  // partition table plus the flowing batches fit. The full build size is
  // estimated from the rows admitted so far (the scan is still running);
  // the fan-out is capped to keep run counts (and file handles) sane for
  // pathological budgets.
  const size_t budget = ctx_->memory_budget->limit();
  const size_t target = std::max<size_t>(1, budget / 2);
  size_t est_total = charged_;
  const Result<size_t> total_rows = dimension_->NumRows();
  if (total_rows.ok() && rows_seen > 0 && total_rows.value() > rows_seen) {
    est_total = charged_ * (total_rows.value() / rows_seen + 1);
  }
  const size_t k = std::min<size_t>(
      16, std::max<size_t>(2, (est_total + target - 1) / target));
  partitioned_ = true;
  partitions_.resize(k);
  writers->resize(k);
  for (size_t p = 0; p < k; ++p) {
    QOX_ASSIGN_OR_RETURN(
        (*writers)[p],
        ctx_->spill->CreateRun(name_ + ".part" + std::to_string(p),
                               dimension_->schema()));
  }
  // Drain the in-memory table into the partition files and hand the
  // charge back: from here on the build side lives on disk.
  ValueHash hasher;
  for (auto& entry : table_) {
    const size_t p = hasher(entry.first) % k;
    QOX_RETURN_IF_ERROR((*writers)[p]->Append(entry.second));
    partitions_[p].bytes += entry.first.ByteSize() + entry.second.ByteSize();
  }
  table_.clear();
  if (charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

Status LookupOp::EnsurePartition(size_t p) {
  Partition& part = partitions_[p];
  if (part.loaded) return Status::OK();
  while (!ctx_->memory_budget->TryReserve(part.bytes)) {
    bool evicted = false;
    for (Partition& other : partitions_) {
      if (!other.loaded) continue;
      other.table.clear();
      other.loaded = false;
      ctx_->memory_budget->Release(other.bytes);
      charged_ -= other.bytes;
      evicted = true;
      break;
    }
    if (!evicted) {
      // Nothing left to evict: one partition alone exceeds the budget.
      // Overrun rather than deadlock (visible in the high-water mark).
      ctx_->memory_budget->ForceReserve(part.bytes);
      break;
    }
  }
  charged_ += part.bytes;
  SpillReader reader(part.file);
  while (true) {
    QOX_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
    if (!row.has_value()) break;
    Value key = row->value(dim_key_index_);
    part.table.emplace(std::move(key), std::move(*row));
  }
  part.loaded = true;
  return Status::OK();
}

Result<const Row*> LookupOp::Probe(const Value& key) {
  if (key.is_null()) return static_cast<const Row*>(nullptr);
  if (flat_table_ != nullptr) {
    return flat_table_->ProbeValue(key, &probe_scratch_);
  }
  if (!partitioned_) {
    const auto it = table_.find(key);
    return it == table_.end() ? nullptr : &it->second;
  }
  const size_t p = ValueHash{}(key) % partitions_.size();
  QOX_RETURN_IF_ERROR(EnsurePartition(p));
  const Table& table = partitions_[p].table;
  const auto it = table.find(key);
  return it == table.end() ? nullptr : &it->second;
}

Status LookupOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    const Value& key = row.value(input_key_index_);
    QOX_ASSIGN_OR_RETURN(const Row* match, Probe(key));
    if (match == nullptr) {
      switch (miss_policy_) {
        case LookupMissPolicy::kReject:
          if (ctx_ != nullptr) QOX_RETURN_IF_ERROR(ctx_->Reject(row));
          continue;
        case LookupMissPolicy::kNull: {
          Row out = row;
          for (size_t i = 0; i < append_indices_.size(); ++i) {
            out.Append(Value::Null());
          }
          output->Append(std::move(out));
          continue;
        }
        case LookupMissPolicy::kError:
          return Status::NotFound("lookup '" + name_ +
                                  "': unresolved key " + key.ToString());
      }
    }
    Row out = row;
    for (const size_t idx : append_indices_) {
      out.Append(match->value(idx));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

Status LookupOp::Push(RowBatch&& input, RowBatch* output) {
  for (Row& row : input.rows()) {
    const Value& key = row.value(input_key_index_);
    QOX_ASSIGN_OR_RETURN(const Row* match, Probe(key));
    if (match == nullptr) {
      switch (miss_policy_) {
        case LookupMissPolicy::kReject:
          if (ctx_ != nullptr) QOX_RETURN_IF_ERROR(ctx_->Reject(row));
          continue;
        case LookupMissPolicy::kNull: {
          Row out = std::move(row);
          for (size_t i = 0; i < append_indices_.size(); ++i) {
            out.Append(Value::Null());
          }
          output->Append(std::move(out));
          continue;
        }
        case LookupMissPolicy::kError:
          return Status::NotFound("lookup '" + name_ +
                                  "': unresolved key " + key.ToString());
      }
    }
    Row out = std::move(row);
    for (const size_t idx : append_indices_) {
      out.Append(match->value(idx));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

Status LookupOp::PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) {
  const Column& key_col = batch->column(input_key_index_);
  const std::vector<uint32_t>& sel = batch->selection();
  const Schema& dim_schema = dimension_->schema();

  std::vector<Column> appended;
  appended.reserve(append_indices_.size());
  for (const size_t idx : append_indices_) {
    Column col(dim_schema.field(idx).type);
    col.Reserve(batch->num_physical_rows());
    appended.push_back(std::move(col));
  }

  // One pass over physical rows: selected rows probe (misses handled per
  // policy, in selection order, exactly as the row path); dead rows get
  // NULL placeholders so the new columns stay aligned.
  std::vector<uint32_t> kept;
  kept.reserve(sel.size());
  size_t sel_pos = 0;
  std::string scratch;
  for (uint32_t r = 0; r < batch->num_physical_rows(); ++r) {
    const bool selected = sel_pos < sel.size() && sel[sel_pos] == r;
    if (selected) ++sel_pos;
    if (!selected) {
      for (Column& col : appended) col.AppendNull();
      continue;
    }
    const Row* match = nullptr;
    if (key_col.IsValid(r)) {
      scratch.clear();
      key_col.AppendKeyBytes(r, &scratch);
      match = flat_table_->Probe(scratch);
    }
    if (match == nullptr) {
      switch (miss_policy_) {
        case LookupMissPolicy::kReject:
          if (ctx_ != nullptr) {
            QOX_RETURN_IF_ERROR(ctx_->Reject(batch->RowAt(r)));
          }
          for (Column& col : appended) col.AppendNull();
          continue;  // dropped from the selection
        case LookupMissPolicy::kNull:
          for (Column& col : appended) col.AppendNull();
          kept.push_back(r);
          continue;
        case LookupMissPolicy::kError: {
          Status miss = Status::NotFound(
              "lookup '" + name_ + "': unresolved key " +
              key_col.ValueAt(r).ToString());
          if (cctx != nullptr && cctx->contain) {
            cctx->contained.emplace_back(batch->RowAt(r), std::move(miss));
            for (Column& col : appended) col.AppendNull();
            continue;  // contained: dropped from the selection
          }
          return miss;
        }
      }
    }
    for (size_t i = 0; i < appended.size(); ++i) {
      appended[i].AppendValue(match->value(append_indices_[i]));
    }
    kept.push_back(r);
  }
  for (Column& col : appended) batch->AppendColumn(std::move(col));
  batch->SetSelection(std::move(kept));
  return Status::OK();
}

Status LookupOp::Finish(RowBatch* output) {
  (void)output;
  table_.clear();
  flat_table_.reset();
  columnar_probe_ok_ = false;
  for (Partition& part : partitions_) {
    part.table.clear();
    part.loaded = false;
  }
  if (ctx_ != nullptr && ctx_->memory_budget != nullptr && charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

}  // namespace qox
