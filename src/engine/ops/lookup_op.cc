#include "engine/ops/lookup_op.h"

namespace qox {

LookupOp::LookupOp(std::string name, DataStorePtr dimension,
                   std::string input_key, std::string dim_key,
                   std::vector<std::string> append_columns,
                   LookupMissPolicy miss_policy, double estimated_hit_rate)
    : name_(std::move(name)),
      dimension_(std::move(dimension)),
      input_key_(std::move(input_key)),
      dim_key_(std::move(dim_key)),
      append_columns_(std::move(append_columns)),
      miss_policy_(miss_policy),
      estimated_hit_rate_(estimated_hit_rate) {}

Result<Schema> LookupOp::Bind(const Schema& input) {
  if (dimension_ == nullptr) {
    return Status::Invalid("lookup '" + name_ + "' has no dimension store");
  }
  QOX_ASSIGN_OR_RETURN(input_key_index_, input.FieldIndex(input_key_));
  const Schema& dim_schema = dimension_->schema();
  QOX_ASSIGN_OR_RETURN(dim_key_index_, dim_schema.FieldIndex(dim_key_));
  append_indices_.clear();
  output_column_names_.clear();
  Schema schema = input;
  for (const std::string& col : append_columns_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, dim_schema.FieldIndex(col));
    append_indices_.push_back(idx);
    std::string out_name = col;
    if (schema.HasField(out_name)) {
      out_name = dimension_->name() + "_" + col;
    }
    output_column_names_.push_back(out_name);
    QOX_ASSIGN_OR_RETURN(
        schema,
        schema.AddField({out_name, dim_schema.field(idx).type, true}));
  }
  return schema;
}

Status LookupOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  QOX_ASSIGN_OR_RETURN(const RowBatch dim_rows, dimension_->ReadAll());
  table_.reserve(dim_rows.num_rows());
  for (const Row& row : dim_rows.rows()) {
    table_.emplace(row.value(dim_key_index_), row);
  }
  return Status::OK();
}

Status LookupOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    const Value& key = row.value(input_key_index_);
    const auto it = key.is_null() ? table_.end() : table_.find(key);
    if (it == table_.end()) {
      switch (miss_policy_) {
        case LookupMissPolicy::kReject:
          if (ctx_ != nullptr) QOX_RETURN_IF_ERROR(ctx_->Reject(row));
          continue;
        case LookupMissPolicy::kNull: {
          Row out = row;
          for (size_t i = 0; i < append_indices_.size(); ++i) {
            out.Append(Value::Null());
          }
          output->Append(std::move(out));
          continue;
        }
        case LookupMissPolicy::kError:
          return Status::NotFound("lookup '" + name_ +
                                  "': unresolved key " + key.ToString());
      }
    }
    Row out = row;
    for (const size_t idx : append_indices_) {
      out.Append(it->second.value(idx));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

}  // namespace qox
