#include "engine/ops/lookup_op.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace qox {

LookupOp::LookupOp(std::string name, DataStorePtr dimension,
                   std::string input_key, std::string dim_key,
                   std::vector<std::string> append_columns,
                   LookupMissPolicy miss_policy, double estimated_hit_rate)
    : name_(std::move(name)),
      dimension_(std::move(dimension)),
      input_key_(std::move(input_key)),
      dim_key_(std::move(dim_key)),
      append_columns_(std::move(append_columns)),
      miss_policy_(miss_policy),
      estimated_hit_rate_(estimated_hit_rate) {}

Result<Schema> LookupOp::Bind(const Schema& input) {
  if (dimension_ == nullptr) {
    return Status::Invalid("lookup '" + name_ + "' has no dimension store");
  }
  QOX_ASSIGN_OR_RETURN(input_key_index_, input.FieldIndex(input_key_));
  const Schema& dim_schema = dimension_->schema();
  QOX_ASSIGN_OR_RETURN(dim_key_index_, dim_schema.FieldIndex(dim_key_));
  append_indices_.clear();
  output_column_names_.clear();
  Schema schema = input;
  for (const std::string& col : append_columns_) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, dim_schema.FieldIndex(col));
    append_indices_.push_back(idx);
    std::string out_name = col;
    if (schema.HasField(out_name)) {
      out_name = dimension_->name() + "_" + col;
    }
    output_column_names_.push_back(out_name);
    QOX_ASSIGN_OR_RETURN(
        schema,
        schema.AddField({out_name, dim_schema.field(idx).type, true}));
  }
  return schema;
}

namespace {
// Dimension scan granularity at Open(): small enough that one transient
// batch never rivals a sane budget, big enough to amortize the scan.
constexpr size_t kDimScanBatch = 1024;
}  // namespace

Status LookupOp::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  partitions_.clear();
  partitioned_ = false;
  charged_ = 0;
  const bool enforce = ctx != nullptr && ctx->BudgetEnforced();
  // The dimension is streamed, never materialized whole: rows build the
  // in-memory table while the budget admits them; the first refused
  // reservation repartitions that table into spill runs and the rest of
  // the scan is routed straight to the partition writers, so the build's
  // working set stays within the budget plus one scan batch.
  std::vector<std::unique_ptr<SpillWriter>> writers;
  ValueHash hasher;
  size_t rows_seen = 0;
  QOX_RETURN_IF_ERROR(dimension_->Scan(
      kDimScanBatch, [&](RowBatch& batch) -> Status {
        for (Row& row : batch.rows()) {
          ++rows_seen;
          const Value& key = row.value(dim_key_index_);
          if (!partitioned_) {
            // First occurrence of a key wins, matching what emplace on a
            // whole-dimension build (and on partition load) would keep.
            if (table_.find(key) != table_.end()) continue;
            const size_t row_bytes = key.ByteSize() + row.ByteSize();
            if (!enforce || ctx_->memory_budget->TryReserve(row_bytes)) {
              if (enforce) charged_ += row_bytes;
              Value key_copy = key;
              table_.emplace(std::move(key_copy), std::move(row));
              continue;
            }
            QOX_RETURN_IF_ERROR(StartPartitions(rows_seen, &writers));
          }
          const size_t p = hasher(key) % writers.size();
          QOX_RETURN_IF_ERROR(writers[p]->Append(row));
          partitions_[p].bytes += key.ByteSize() + row.ByteSize();
        }
        return Status::OK();
      }));
  for (size_t p = 0; p < writers.size(); ++p) {
    QOX_ASSIGN_OR_RETURN(partitions_[p].file, writers[p]->Finalize());
  }
  return Status::OK();
}

Status LookupOp::StartPartitions(
    size_t rows_seen, std::vector<std::unique_ptr<SpillWriter>>* writers) {
  // Size partitions to roughly half the budget each, so one cached
  // partition table plus the flowing batches fit. The full build size is
  // estimated from the rows admitted so far (the scan is still running);
  // the fan-out is capped to keep run counts (and file handles) sane for
  // pathological budgets.
  const size_t budget = ctx_->memory_budget->limit();
  const size_t target = std::max<size_t>(1, budget / 2);
  size_t est_total = charged_;
  const Result<size_t> total_rows = dimension_->NumRows();
  if (total_rows.ok() && rows_seen > 0 && total_rows.value() > rows_seen) {
    est_total = charged_ * (total_rows.value() / rows_seen + 1);
  }
  const size_t k = std::min<size_t>(
      16, std::max<size_t>(2, (est_total + target - 1) / target));
  partitioned_ = true;
  partitions_.resize(k);
  writers->resize(k);
  for (size_t p = 0; p < k; ++p) {
    QOX_ASSIGN_OR_RETURN(
        (*writers)[p],
        ctx_->spill->CreateRun(name_ + ".part" + std::to_string(p),
                               dimension_->schema()));
  }
  // Drain the in-memory table into the partition files and hand the
  // charge back: from here on the build side lives on disk.
  ValueHash hasher;
  for (auto& entry : table_) {
    const size_t p = hasher(entry.first) % k;
    QOX_RETURN_IF_ERROR((*writers)[p]->Append(entry.second));
    partitions_[p].bytes += entry.first.ByteSize() + entry.second.ByteSize();
  }
  table_.clear();
  if (charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

Status LookupOp::EnsurePartition(size_t p) {
  Partition& part = partitions_[p];
  if (part.loaded) return Status::OK();
  while (!ctx_->memory_budget->TryReserve(part.bytes)) {
    bool evicted = false;
    for (Partition& other : partitions_) {
      if (!other.loaded) continue;
      other.table.clear();
      other.loaded = false;
      ctx_->memory_budget->Release(other.bytes);
      charged_ -= other.bytes;
      evicted = true;
      break;
    }
    if (!evicted) {
      // Nothing left to evict: one partition alone exceeds the budget.
      // Overrun rather than deadlock (visible in the high-water mark).
      ctx_->memory_budget->ForceReserve(part.bytes);
      break;
    }
  }
  charged_ += part.bytes;
  SpillReader reader(part.file);
  while (true) {
    QOX_ASSIGN_OR_RETURN(std::optional<Row> row, reader.Next());
    if (!row.has_value()) break;
    Value key = row->value(dim_key_index_);
    part.table.emplace(std::move(key), std::move(*row));
  }
  part.loaded = true;
  return Status::OK();
}

Result<const Row*> LookupOp::Probe(const Value& key) {
  if (key.is_null()) return static_cast<const Row*>(nullptr);
  if (!partitioned_) {
    const auto it = table_.find(key);
    return it == table_.end() ? nullptr : &it->second;
  }
  const size_t p = ValueHash{}(key) % partitions_.size();
  QOX_RETURN_IF_ERROR(EnsurePartition(p));
  const Table& table = partitions_[p].table;
  const auto it = table.find(key);
  return it == table.end() ? nullptr : &it->second;
}

Status LookupOp::Push(const RowBatch& input, RowBatch* output) {
  for (const Row& row : input.rows()) {
    const Value& key = row.value(input_key_index_);
    QOX_ASSIGN_OR_RETURN(const Row* match, Probe(key));
    if (match == nullptr) {
      switch (miss_policy_) {
        case LookupMissPolicy::kReject:
          if (ctx_ != nullptr) QOX_RETURN_IF_ERROR(ctx_->Reject(row));
          continue;
        case LookupMissPolicy::kNull: {
          Row out = row;
          for (size_t i = 0; i < append_indices_.size(); ++i) {
            out.Append(Value::Null());
          }
          output->Append(std::move(out));
          continue;
        }
        case LookupMissPolicy::kError:
          return Status::NotFound("lookup '" + name_ +
                                  "': unresolved key " + key.ToString());
      }
    }
    Row out = row;
    for (const size_t idx : append_indices_) {
      out.Append(match->value(idx));
    }
    output->Append(std::move(out));
  }
  return Status::OK();
}

Status LookupOp::Finish(RowBatch* output) {
  (void)output;
  table_.clear();
  for (Partition& part : partitions_) {
    part.table.clear();
    part.loaded = false;
  }
  if (ctx_ != nullptr && ctx_->memory_budget != nullptr && charged_ > 0) {
    ctx_->memory_budget->Release(charged_);
    charged_ = 0;
  }
  return Status::OK();
}

}  // namespace qox
