#include "engine/ops/delta_op.h"

namespace qox {

DeltaOp::DeltaOp(std::string name, SnapshotStorePtr snapshot,
                 std::string change_type_column)
    : name_(std::move(name)),
      snapshot_(std::move(snapshot)),
      change_type_column_(std::move(change_type_column)) {}

Result<Schema> DeltaOp::Bind(const Schema& input) {
  if (snapshot_ == nullptr) {
    return Status::Invalid("delta op '" + name_ + "' has no snapshot store");
  }
  if (input != snapshot_->schema()) {
    return Status::Invalid("delta op '" + name_ +
                           "': input schema does not match snapshot schema");
  }
  buffered_.clear();
  if (change_type_column_.empty()) return input;
  return input.AddField({change_type_column_, DataType::kString, false});
}

Status DeltaOp::Push(const RowBatch& input, RowBatch* output) {
  (void)output;
  buffered_.insert(buffered_.end(), input.rows().begin(), input.rows().end());
  return Status::OK();
}

Status DeltaOp::Finish(RowBatch* output) {
  QOX_ASSIGN_OR_RETURN(DeltaResult delta,
                       snapshot_->ComputeDelta(buffered_));
  buffered_.clear();
  const bool tag = !change_type_column_.empty();
  for (Row& row : delta.inserts) {
    if (tag) row.Append(Value::String("insert"));
    output->Append(std::move(row));
  }
  for (Row& row : delta.updates) {
    if (tag) row.Append(Value::String("update"));
    output->Append(std::move(row));
  }
  return Status::OK();
}

}  // namespace qox
