// LookupOp: hash-join a stream against a lookup dimension.
//
// Models the paper's "lookup operation (for finding corresponding codes
// from store sites and for verifying the moving information as well)".
// The dimension is scanned into a hash table at Open(); each input row is
// probed by its key column and the requested dimension columns are
// appended. The miss policy implements verification: unresolved codes can
// be rejected (routed to the reject sink), padded with NULLs, or treated
// as a hard error.
//
// Under a MemoryBudget the build streams the dimension scan: rows are
// admitted to the in-memory table row by row, and the first refused
// reservation hash-partitions the table into spill runs, with the rest of
// the scan routed straight to the partition writers — the build never
// materializes a dimension larger than the budget. Probing stays strictly
// in input order (so output is byte-identical to the unbudgeted run) and
// loads the partition a key hashes to on demand, evicting cached
// partitions when the budget refuses the load. An undersized budget
// therefore trades memory for partition-reload I/O — the thrash the cost
// model's spill tax prices.

#ifndef QOX_ENGINE_OPS_LOOKUP_OP_H_
#define QOX_ENGINE_OPS_LOOKUP_OP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/dimension_cache.h"
#include "engine/operator.h"
#include "storage/data_store.h"

namespace qox {

enum class LookupMissPolicy {
  kReject,  ///< route the row to the reject sink (verification failure)
  kNull,    ///< keep the row, appended columns become NULL
  kError,   ///< abort the flow
};

class LookupOp : public Operator {
 public:
  /// `dimension` is scanned once at Open(). `input_key` is the probe column
  /// of the stream; `dim_key` the dimension's key column; `append_columns`
  /// the dimension columns appended to matching rows (renamed on collision
  /// with "<dim name>_" prefix).
  LookupOp(std::string name, DataStorePtr dimension, std::string input_key,
           std::string dim_key, std::vector<std::string> append_columns,
           LookupMissPolicy miss_policy = LookupMissPolicy::kReject,
           double estimated_hit_rate = 0.98);

  const char* kind() const override { return "lookup"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Open(OperatorContext* ctx) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  Status Push(RowBatch&& input, RowBatch* output) override;
  /// Columnar probing needs the flat shared/local table (a spilled build is
  /// row-only) and a type-pure build side for the appended columns.
  bool CanPushColumnar() const override {
    return flat_table_ != nullptr && columnar_probe_ok_;
  }
  Status PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) override;
  Status Finish(RowBatch* output) override;
  double CostPerRow() const override { return 2.0; }
  double Selectivity() const override {
    return miss_policy_ == LookupMissPolicy::kReject ? estimated_hit_rate_
                                                     : 1.0;
  }

  const std::string& input_key() const { return input_key_; }

  /// Columns this operator reads from its input (rewrite legality).
  std::vector<std::string> InputColumns() const { return {input_key_}; }
  /// Columns appended to the output (post-rename).
  const std::vector<std::string>& OutputColumnNames() const {
    return output_column_names_;
  }

 private:
  using Table = std::unordered_map<Value, Row, ValueHash>;

  /// One build-side hash partition spilled at Open().
  struct Partition {
    SpillFile file;
    size_t bytes = 0;  ///< in-memory table charge when loaded
    bool loaded = false;
    Table table;
  };

  /// Switches the mid-scan build to partitioned mode: picks a fan-out,
  /// opens one spill writer per partition, and drains the in-memory table
  /// into them (releasing its budget charge).
  Status StartPartitions(size_t rows_seen,
                         std::vector<std::unique_ptr<SpillWriter>>* writers);
  Status EnsurePartition(size_t p);
  /// Probes `key` in the (possibly partitioned) build side; the returned
  /// pointer is valid until the next EnsurePartition call.
  Result<const Row*> Probe(const Value& key);

  const std::string name_;
  const DataStorePtr dimension_;
  const std::string input_key_;
  const std::string dim_key_;
  const std::vector<std::string> append_columns_;
  const LookupMissPolicy miss_policy_;
  const double estimated_hit_rate_;

  std::vector<std::string> output_column_names_;
  size_t input_key_index_ = 0;
  size_t dim_key_index_ = 0;
  std::vector<size_t> append_indices_;
  Table table_;
  size_t charged_ = 0;
  bool partitioned_ = false;
  std::vector<Partition> partitions_;
  /// Flat probe table (shared via DimensionCache or built locally) used
  /// when the budget admits the whole build side; the legacy streamed/
  /// partitioned build above remains the budget-enforced path.
  DimensionTablePtr flat_table_;
  bool columnar_probe_ok_ = false;
  std::string probe_scratch_;
  OperatorContext* ctx_ = nullptr;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_LOOKUP_OP_H_
