// LookupOp: hash-join a stream against a lookup dimension.
//
// Models the paper's "lookup operation (for finding corresponding codes
// from store sites and for verifying the moving information as well)".
// The dimension is loaded into a hash table at Open(); each input row is
// probed by its key column and the requested dimension columns are
// appended. The miss policy implements verification: unresolved codes can
// be rejected (routed to the reject sink), padded with NULLs, or treated
// as a hard error.

#ifndef QOX_ENGINE_OPS_LOOKUP_OP_H_
#define QOX_ENGINE_OPS_LOOKUP_OP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/operator.h"
#include "storage/data_store.h"

namespace qox {

enum class LookupMissPolicy {
  kReject,  ///< route the row to the reject sink (verification failure)
  kNull,    ///< keep the row, appended columns become NULL
  kError,   ///< abort the flow
};

class LookupOp : public Operator {
 public:
  /// `dimension` is scanned once at Open(). `input_key` is the probe column
  /// of the stream; `dim_key` the dimension's key column; `append_columns`
  /// the dimension columns appended to matching rows (renamed on collision
  /// with "<dim name>_" prefix).
  LookupOp(std::string name, DataStorePtr dimension, std::string input_key,
           std::string dim_key, std::vector<std::string> append_columns,
           LookupMissPolicy miss_policy = LookupMissPolicy::kReject,
           double estimated_hit_rate = 0.98);

  const char* kind() const override { return "lookup"; }
  const std::string& name() const override { return name_; }
  Result<Schema> Bind(const Schema& input) override;
  Status Open(OperatorContext* ctx) override;
  Status Push(const RowBatch& input, RowBatch* output) override;
  double CostPerRow() const override { return 2.0; }
  double Selectivity() const override {
    return miss_policy_ == LookupMissPolicy::kReject ? estimated_hit_rate_
                                                     : 1.0;
  }

  const std::string& input_key() const { return input_key_; }

  /// Columns this operator reads from its input (rewrite legality).
  std::vector<std::string> InputColumns() const { return {input_key_}; }
  /// Columns appended to the output (post-rename).
  const std::vector<std::string>& OutputColumnNames() const {
    return output_column_names_;
  }

 private:
  const std::string name_;
  const DataStorePtr dimension_;
  const std::string input_key_;
  const std::string dim_key_;
  const std::vector<std::string> append_columns_;
  const LookupMissPolicy miss_policy_;
  const double estimated_hit_rate_;

  std::vector<std::string> output_column_names_;
  size_t input_key_index_ = 0;
  size_t dim_key_index_ = 0;
  std::vector<size_t> append_indices_;
  std::unordered_map<Value, Row, ValueHash> table_;
  OperatorContext* ctx_ = nullptr;
};

}  // namespace qox

#endif  // QOX_ENGINE_OPS_LOOKUP_OP_H_
