#include "engine/streaming.h"

#include "common/clock.h"

namespace qox {
namespace {

/// Message prefix marking a status as a poison echo (see PoisonEcho).
constexpr char kPoisonEchoPrefix[] = "dataflow poisoned by: ";

}  // namespace

PartitionFeed::PartitionFeed(std::vector<BatchChannelPtr> parts)
    : parts_(std::move(parts)),
      notifier_(std::make_shared<ChannelNotifier>()),
      buf_(parts_.size()),
      channel_open_(parts_.size(), true) {
  for (const BatchChannelPtr& part : parts_) part->set_notifier(notifier_);
}

Result<std::optional<RowBatch>> PartitionFeed::Next(size_t p,
                                                    int64_t* wait_micros) {
  // Snapshot-sweep-wait: any channel event after the sweep also postdates
  // the snapshot, so AwaitChange cannot miss it.
  while (buf_[p].empty() && channel_open_[p]) {
    const uint64_t seen = notifier_->version();
    QOX_RETURN_IF_ERROR(Sweep());
    if (!buf_[p].empty() || !channel_open_[p]) break;
    notifier_->AwaitChange(seen, wait_micros);
  }
  if (buf_[p].empty()) return std::optional<RowBatch>();  // exhausted
  std::optional<RowBatch> batch(std::move(buf_[p].front()));
  buf_[p].pop_front();
  return batch;
}

Status PartitionFeed::Sweep() {
  for (size_t q = 0; q < parts_.size(); ++q) {
    while (channel_open_[q]) {
      RowBatch batch;
      QOX_ASSIGN_OR_RETURN(const ChannelPoll poll, parts_[q]->TryPop(&batch));
      if (poll == ChannelPoll::kItem) {
        buf_[q].push_back(std::move(batch));
        continue;
      }
      if (poll == ChannelPoll::kClosed) channel_open_[q] = false;
      break;
    }
  }
  return Status::OK();
}

Status StageSet::PoisonEcho(const Status& cause) {
  if (IsPoisonEcho(cause)) return cause;
  return Status::Cancelled(kPoisonEchoPrefix + cause.ToString());
}

bool StageSet::IsPoisonEcho(const Status& status) {
  return status.code() == StatusCode::kCancelled &&
         status.message().rfind(kPoisonEchoPrefix, 0) == 0;
}

StageSet::StageSet(const ExecContext& ctx)
    : ctx_(ctx), group_(ctx.pool()) {}

StageSet::~StageSet() {
  if (joined_) return;
  // Destroyed without Join (likely unwinding after an error): poison so no
  // stage can block forever, then wait out the stage tasks.
  FailAll(Status::Cancelled("StageSet destroyed before Join"));
  group_.Wait();
}

BatchChannelPtr StageSet::MakeChannel(size_t capacity) {
  auto channel = std::make_shared<BatchChannel>(capacity);
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_failure_.ok()) channel->Poison(PoisonEcho(first_failure_));
  channels_.push_back(channel);
  return channel;
}

void StageSet::Spawn(std::string name, std::function<Status(StageStats*)> body) {
  size_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = outcomes_.size();
    outcomes_.emplace_back();
    outcomes_[slot].stats.name = std::move(name);
  }
  const int64_t posted_micros = NowMicros();
  ctx_.Post(
      [this, slot, posted_micros, body = std::move(body)] {
        StageStats local;
        {
          std::lock_guard<std::mutex> lock(mu_);
          local.name = outcomes_[slot].stats.name;
        }
        // Under a shared pool a stage may sit queued behind other flows'
        // work before an expansion worker picks it up; that wait belongs
        // to scheduling, not to the stage's busy time.
        local.queue_wait_us = NowMicros() - posted_micros;
        StopWatch watch;
        Status status = body(&local);
        const int64_t wall = watch.ElapsedMicros();
        local.busy_micros =
            wall - local.stall_micros - local.backpressure_micros;
        if (local.busy_micros < 0) local.busy_micros = 0;
        if (ctx_.tag().deadline_micros > 0) {
          local.deadline_slack_us = ctx_.tag().deadline_micros - NowMicros();
        }
        bool primary = false;
        if (!status.ok()) {
          // A stage that failed on its own is primary; one that merely
          // returned the tagged poison it popped from a channel is an echo.
          // The explicit tag (not message comparison) keeps two independent
          // failures with identical messages both classified as primary.
          primary = !IsPoisonEcho(status);
          FailAll(status);
        }
        std::lock_guard<std::mutex> lock(mu_);
        outcomes_[slot].status = std::move(status);
        outcomes_[slot].stats = std::move(local);
        outcomes_[slot].primary = primary;
      },
      &group_, /*blocking=*/true);
}

void StageSet::FailAll(const Status& status) {
  std::vector<BatchChannelPtr> channels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_failure_.ok()) first_failure_ = status;
    channels = channels_;
  }
  // Channels carry the tagged echo, not the raw cause: stages unblocked by
  // the poison return a status recognizable as secondary.
  const Status echo = PoisonEcho(status);
  for (const BatchChannelPtr& channel : channels) channel->Poison(echo);
}

Status StageSet::Join(std::vector<StageStats>* stats) {
  group_.Wait();
  joined_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  // Pick the winning status: injected failures first (the retry machinery
  // keys on them), then the first primary failure, then any failure.
  Status winner = Status::OK();
  bool winner_primary = false;
  for (const Outcome& outcome : outcomes_) {
    if (outcome.status.ok()) continue;
    if (outcome.status.code() == StatusCode::kInjectedFailure) {
      winner = outcome.status;
      break;
    }
    if (winner.ok() || (outcome.primary && !winner_primary)) {
      winner = outcome.status;
      winner_primary = outcome.primary;
    }
  }
  if (stats != nullptr) {
    for (Outcome& outcome : outcomes_) {
      stats->push_back(std::move(outcome.stats));
    }
  }
  return winner;
}

}  // namespace qox
