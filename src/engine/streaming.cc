#include "engine/streaming.h"

#include "common/clock.h"

namespace qox {
namespace {

/// Message prefix marking a status as a poison echo (see PoisonEcho).
constexpr char kPoisonEchoPrefix[] = "dataflow poisoned by: ";

}  // namespace

PartitionFeed::PartitionFeed(std::vector<BatchChannelPtr> parts)
    : parts_(std::move(parts)),
      notifier_(std::make_shared<ChannelNotifier>()),
      buf_(parts_.size()),
      channel_open_(parts_.size(), true) {
  for (const BatchChannelPtr& part : parts_) part->set_notifier(notifier_);
}

Result<std::optional<RowBatch>> PartitionFeed::Next(size_t p,
                                                    int64_t* wait_micros) {
  // Snapshot-sweep-wait: any channel event after the sweep also postdates
  // the snapshot, so AwaitChange cannot miss it.
  while (buf_[p].empty() && channel_open_[p]) {
    const uint64_t seen = notifier_->version();
    QOX_RETURN_IF_ERROR(Sweep());
    if (!buf_[p].empty() || !channel_open_[p]) break;
    notifier_->AwaitChange(seen, wait_micros);
  }
  if (buf_[p].empty()) return std::optional<RowBatch>();  // exhausted
  std::optional<RowBatch> batch(std::move(buf_[p].front()));
  buf_[p].pop_front();
  return batch;
}

Status PartitionFeed::Sweep() {
  for (size_t q = 0; q < parts_.size(); ++q) {
    while (channel_open_[q]) {
      RowBatch batch;
      QOX_ASSIGN_OR_RETURN(const ChannelPoll poll, parts_[q]->TryPop(&batch));
      if (poll == ChannelPoll::kItem) {
        buf_[q].push_back(std::move(batch));
        continue;
      }
      if (poll == ChannelPoll::kClosed) channel_open_[q] = false;
      break;
    }
  }
  return Status::OK();
}

Status StageSet::PoisonEcho(const Status& cause) {
  if (IsPoisonEcho(cause)) return cause;
  return Status::Cancelled(kPoisonEchoPrefix + cause.ToString());
}

bool StageSet::IsPoisonEcho(const Status& status) {
  return status.code() == StatusCode::kCancelled &&
         status.message().rfind(kPoisonEchoPrefix, 0) == 0;
}

StageSet::~StageSet() {
  if (joined_) return;
  // Destroyed without Join (likely unwinding after an error): poison so no
  // stage can block forever, then detach-free join.
  FailAll(Status::Cancelled("StageSet destroyed before Join"));
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

BatchChannelPtr StageSet::MakeChannel(size_t capacity) {
  auto channel = std::make_shared<BatchChannel>(capacity);
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_failure_.ok()) channel->Poison(PoisonEcho(first_failure_));
  channels_.push_back(channel);
  return channel;
}

void StageSet::Spawn(std::string name, std::function<Status(StageStats*)> body) {
  size_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = outcomes_.size();
    outcomes_.emplace_back();
    outcomes_[slot].stats.name = std::move(name);
  }
  threads_.emplace_back([this, slot, body = std::move(body)] {
    StageStats local;
    {
      std::lock_guard<std::mutex> lock(mu_);
      local.name = outcomes_[slot].stats.name;
    }
    StopWatch watch;
    Status status = body(&local);
    const int64_t wall = watch.ElapsedMicros();
    local.busy_micros = wall - local.stall_micros - local.backpressure_micros;
    if (local.busy_micros < 0) local.busy_micros = 0;
    bool primary = false;
    if (!status.ok()) {
      // A stage that failed on its own is primary; one that merely
      // returned the tagged poison it popped from a channel is an echo.
      // The explicit tag (not message comparison) keeps two independent
      // failures with identical messages both classified as primary.
      primary = !IsPoisonEcho(status);
      FailAll(status);
    }
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[slot].status = std::move(status);
    outcomes_[slot].stats = std::move(local);
    outcomes_[slot].primary = primary;
  });
}

void StageSet::FailAll(const Status& status) {
  std::vector<BatchChannelPtr> channels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_failure_.ok()) first_failure_ = status;
    channels = channels_;
  }
  // Channels carry the tagged echo, not the raw cause: stages unblocked by
  // the poison return a status recognizable as secondary.
  const Status echo = PoisonEcho(status);
  for (const BatchChannelPtr& channel : channels) channel->Poison(echo);
}

Status StageSet::Join(std::vector<StageStats>* stats) {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  // Pick the winning status: injected failures first (the retry machinery
  // keys on them), then the first primary failure, then any failure.
  Status winner = Status::OK();
  bool winner_primary = false;
  for (const Outcome& outcome : outcomes_) {
    if (outcome.status.ok()) continue;
    if (outcome.status.code() == StatusCode::kInjectedFailure) {
      winner = outcome.status;
      break;
    }
    if (winner.ok() || (outcome.primary && !winner_primary)) {
      winner = outcome.status;
      winner_primary = outcome.primary;
    }
  }
  if (stats != nullptr) {
    for (Outcome& outcome : outcomes_) {
      stats->push_back(std::move(outcome.stats));
    }
  }
  return winner;
}

}  // namespace qox
