#include "engine/streaming.h"

#include "common/clock.h"

namespace qox {

StageSet::~StageSet() {
  if (joined_) return;
  // Destroyed without Join (likely unwinding after an error): poison so no
  // stage can block forever, then detach-free join.
  FailAll(Status::Cancelled("StageSet destroyed before Join"));
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

BatchChannelPtr StageSet::MakeChannel(size_t capacity) {
  auto channel = std::make_shared<BatchChannel>(capacity);
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_failure_.ok()) channel->Poison(first_failure_);
  channels_.push_back(channel);
  return channel;
}

void StageSet::Spawn(std::string name, std::function<Status(StageStats*)> body) {
  size_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = outcomes_.size();
    outcomes_.emplace_back();
    outcomes_[slot].stats.name = std::move(name);
  }
  threads_.emplace_back([this, slot, body = std::move(body)] {
    StageStats local;
    {
      std::lock_guard<std::mutex> lock(mu_);
      local.name = outcomes_[slot].stats.name;
    }
    StopWatch watch;
    Status status = body(&local);
    const int64_t wall = watch.ElapsedMicros();
    local.busy_micros = wall - local.stall_micros - local.backpressure_micros;
    if (local.busy_micros < 0) local.busy_micros = 0;
    bool primary = false;
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        // A stage that failed on its own (not by echoing the recorded
        // poison status) is a primary failure.
        primary = first_failure_.ok() ||
                  first_failure_.message() != status.message();
      }
      FailAll(status);
    }
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[slot].status = std::move(status);
    outcomes_[slot].stats = std::move(local);
    outcomes_[slot].primary = primary;
  });
}

void StageSet::FailAll(const Status& status) {
  std::vector<BatchChannelPtr> channels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_failure_.ok()) first_failure_ = status;
    channels = channels_;
  }
  for (const BatchChannelPtr& channel : channels) channel->Poison(status);
}

Status StageSet::Join(std::vector<StageStats>* stats) {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  // Pick the winning status: injected failures first (the retry machinery
  // keys on them), then the first primary failure, then any failure.
  Status winner = Status::OK();
  bool winner_primary = false;
  for (const Outcome& outcome : outcomes_) {
    if (outcome.status.ok()) continue;
    if (outcome.status.code() == StatusCode::kInjectedFailure) {
      winner = outcome.status;
      break;
    }
    if (winner.ok() || (outcome.primary && !winner_primary)) {
      winner = outcome.status;
      winner_primary = outcome.primary;
    }
  }
  if (stats != nullptr) {
    for (Outcome& outcome : outcomes_) {
      stats->push_back(std::move(outcome.stats));
    }
  }
  return winner;
}

}  // namespace qox
