#include "engine/cdc_coordinator.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/clock.h"
#include "common/crash_point.h"
#include "engine/executor.h"
#include "engine/flow_journal.h"
#include "engine/ops/filter_op.h"
#include "engine/ops/function_op.h"
#include "engine/ops/lookup_op.h"
#include "engine/ops/sort_op.h"
#include "engine/supervisor.h"
#include "storage/flat_file.h"
#include "storage/lease_file.h"
#include "storage/recovery_store.h"

namespace qox {

namespace {

// Coordinator journal record types. All are commit records (fsynced under
// JournalSync::kCommit): each one is a watermark correctness depends on.
constexpr char kRecMeta[] = "cdc_meta";
constexpr char kRecTakeover[] = "takeover";
constexpr char kRecSliceStart[] = "slice_start";
constexpr char kRecSliceStaged[] = "slice_staged";
constexpr char kRecSliceApplied[] = "slice_applied";
constexpr char kRecShardDead[] = "shard_dead";
constexpr char kRecCommit[] = "cdc_commit";

/// Per-shard rows count inside a slice_staged / slice_applied record
/// meaning "this shard's output is not part of the merge" (dead by then).
constexpr char kShardExcluded[] = "-";

std::string ShardDir(const CdcOptions& options, size_t shard) {
  return options.scratch_dir + "/shard" + std::to_string(shard);
}

std::string SliceFlowId(size_t shard, size_t slice) {
  return "s" + std::to_string(shard) + "_j" + std::to_string(slice);
}

std::string StagedPath(const CdcOptions& options, size_t shard,
                       size_t slice) {
  return ShardDir(options, shard) + "/slice" + std::to_string(slice) +
         ".csv";
}

std::vector<OperatorFactory> MakeTransforms(const CdcOptions& options) {
  std::vector<OperatorFactory> transforms;
  transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FilterOp>(
        "flt_nn", std::vector<Predicate>{Predicate::NotNull("amount")});
  });
  transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FunctionOp>(
        "scale", std::vector<ColumnTransform>{
                     ColumnTransform::Scale("scaled", "amount", 2.0)});
  });
  if (options.dimension != nullptr) {
    const DataStorePtr dimension = options.dimension;
    transforms.push_back([dimension]() -> OperatorPtr {
      return std::make_unique<LookupOp>(
          "dim", dimension, "category", "cat_key",
          std::vector<std::string>{"cat_label"}, LookupMissPolicy::kNull);
    });
  }
  // The trailing version sort makes staged order deterministic — the
  // precondition of both the shard flow's durable-prefix load skip and the
  // coordinator's merged-slice prefix math.
  transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<SortOp>("by_version",
                                    std::vector<SortKey>{{"version", false}});
  });
  return transforms;
}

Status ValidateOptions(const CdcOptions& options) {
  if (options.scratch_dir.empty()) {
    return Status::Invalid("CdcOptions.scratch_dir must be set");
  }
  if (options.topology.shards == 0) {
    return Status::Invalid("CdcOptions.topology.shards must be >= 1");
  }
  if (options.topology.slice_events == 0) {
    return Status::Invalid("CdcOptions.topology.slice_events must be >= 1");
  }
  if (options.batch_size == 0) {
    return Status::Invalid("CdcOptions.batch_size must be >= 1");
  }
  if (options.dimension != nullptr) {
    const Schema& dim = options.dimension->schema();
    if (!dim.HasField("cat_key") || !dim.HasField("cat_label")) {
      return Status::Invalid(
          "CdcOptions.dimension must carry 'cat_key' and 'cat_label'");
    }
  }
  return Status::OK();
}

/// Everything replayed from the coordinator journal.
struct CoordinatorState {
  bool has_meta = false;
  bool committed = false;
  bool takeover = false;
  /// slice -> journaled wal_base of its (possibly torn) apply.
  std::map<size_t, size_t> slice_wal_base;
  /// slice -> pinned merge membership: per-shard staged rows (SIZE_MAX =
  /// shard excluded). Present once every member's flow converged.
  std::map<size_t, std::vector<size_t>> staged;
  /// slice -> per-shard applied rows (SIZE_MAX = shard excluded).
  std::map<size_t, std::vector<size_t>> applied;
  std::set<size_t> dead_shards;
};

Result<size_t> ParseCount(const std::string& s) {
  // strtoull alone is too lenient for a watermark field: it parses "" as
  // 0, wraps "-5" to a huge unsigned value, and skips leading whitespace
  // — a corrupted journal cell must surface, not replay as a bogus count.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return Status::CorruptedData("bad count '" + s +
                                 "' in coordinator journal");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE ||
      v > std::numeric_limits<size_t>::max()) {
    return Status::CorruptedData("bad count '" + s +
                                 "' in coordinator journal");
  }
  return static_cast<size_t>(v);
}

/// Parses the per-shard row-count cells of a slice_staged / slice_applied
/// record (kShardExcluded -> SIZE_MAX).
Result<std::vector<size_t>> ParsePerShardCells(const JournalRecord& record,
                                               size_t first_field,
                                               size_t shards) {
  std::vector<size_t> per_shard(shards, 0);
  for (size_t s = 0; s < shards; ++s) {
    const std::string& cell = record.fields[first_field + s];
    if (cell == kShardExcluded) {
      per_shard[s] = static_cast<size_t>(-1);
    } else {
      QOX_ASSIGN_OR_RETURN(per_shard[s], ParseCount(cell));
    }
  }
  return per_shard;
}

Result<CoordinatorState> ReplayCoordinatorJournal(
    const JournalFile& journal, const CdcOptions& options) {
  CoordinatorState state;
  const size_t shards = options.topology.shards;
  for (const JournalRecord& record : journal.records()) {
    if (record.type == kRecMeta) {
      if (record.fields.size() != 4) {
        return Status::CorruptedData("malformed cdc_meta record");
      }
      // A journal from a different stream or topology must not be resumed:
      // every watermark in it is meaningless against this configuration.
      if (record.fields[0] != std::to_string(shards) ||
          record.fields[1] != std::to_string(options.topology.slice_events) ||
          record.fields[2] != std::to_string(options.stream.total_events) ||
          record.fields[3] != std::to_string(options.stream.seed)) {
        return Status::FailedPrecondition(
            "coordinator journal was written for a different stream or "
            "topology (journaled " +
            record.fields[0] + "/" + record.fields[1] + "/" +
            record.fields[2] + "/" + record.fields[3] + ")");
      }
      state.has_meta = true;
    } else if (record.type == kRecTakeover) {
      state.takeover = true;
    } else if (record.type == kRecSliceStart) {
      if (record.fields.size() != 2) {
        return Status::CorruptedData("malformed slice_start record");
      }
      QOX_ASSIGN_OR_RETURN(const size_t slice, ParseCount(record.fields[0]));
      QOX_ASSIGN_OR_RETURN(const size_t base, ParseCount(record.fields[1]));
      // Re-journaled starts after a restart repeat the SAME base (the
      // first one wins — the WAL may have grown since).
      state.slice_wal_base.emplace(slice, base);
    } else if (record.type == kRecSliceStaged) {
      if (record.fields.size() != 1 + shards) {
        return Status::CorruptedData("malformed slice_staged record");
      }
      QOX_ASSIGN_OR_RETURN(const size_t slice, ParseCount(record.fields[0]));
      QOX_ASSIGN_OR_RETURN(std::vector<size_t> per_shard,
                           ParsePerShardCells(record, 1, shards));
      state.staged.emplace(slice, std::move(per_shard));
    } else if (record.type == kRecSliceApplied) {
      if (record.fields.size() != 2 + shards) {
        return Status::CorruptedData("malformed slice_applied record");
      }
      QOX_ASSIGN_OR_RETURN(const size_t slice, ParseCount(record.fields[0]));
      QOX_ASSIGN_OR_RETURN(std::vector<size_t> per_shard,
                           ParsePerShardCells(record, 2, shards));
      state.applied[slice] = std::move(per_shard);
    } else if (record.type == kRecShardDead) {
      if (record.fields.empty()) {
        return Status::CorruptedData("malformed shard_dead record");
      }
      QOX_ASSIGN_OR_RETURN(const size_t shard, ParseCount(record.fields[0]));
      if (shard >= shards) {
        return Status::CorruptedData("shard_dead names shard " +
                                     record.fields[0] + " of " +
                                     std::to_string(shards));
      }
      state.dead_shards.insert(shard);
    } else if (record.type == kRecCommit) {
      state.committed = true;
    }
    // Unknown types are ignored (forward compatibility).
  }
  return state;
}

/// The supervised (or in-process) execution of one (shard, slice) flow:
/// extract the shard's partition of the slice, transform, stage sorted by
/// version. Journaled + resumable in supervised mode.
Status RunShardSliceBody(const CdcOptions& options, const ShardRouter& router,
                         const Schema& staged_schema, size_t shard,
                         size_t slice, const FlowEnv* env) {
  const std::string flow_id = SliceFlowId(shard, slice);
  QOX_ASSIGN_OR_RETURN(
      auto staged, FlatFile::Open("staged_" + flow_id, staged_schema,
                                  StagedPath(options, shard, slice)));
  ExecutionConfig config;
  config.batch_size = options.batch_size;
  config.streaming = options.streaming;
  config.retry.max_attempts = 32;
  config.retry.initial_backoff_micros = 50;
  if (env != nullptr) {
    QOX_ASSIGN_OR_RETURN(auto rp_store,
                         RecoveryPointStore::Open(ShardDir(options, shard) +
                                                  "/rp_" + flow_id));
    QOX_RETURN_IF_ERROR(AdoptJournaledRecoveryPoints(env->journal->state(),
                                                     flow_id, rp_store.get())
                            .status());
    config.recovery_points = {1};
    config.rp_store = rp_store;
    config.journal = env->journal;
    config.resume = env->resume;
  }
  FlowSpec flow;
  flow.id = flow_id;
  flow.source = router.ShardSlice(shard, slice);
  flow.transforms = MakeTransforms(options);
  flow.target = staged;
  return Executor::Run(flow, config).status();
}

}  // namespace

Result<Schema> CdcCoordinator::StagedSchema(const CdcOptions& options) {
  Schema schema = CdcSchema();
  for (const OperatorFactory& factory : MakeTransforms(options)) {
    QOX_ASSIGN_OR_RETURN(schema, factory()->Bind(schema));
  }
  return schema;
}

Result<std::vector<Row>> CdcWarehouseState(const std::string& wal_path,
                                           const Schema& schema) {
  QOX_ASSIGN_OR_RETURN(auto wal,
                       FlatFile::Open("wal_state", schema, wal_path));
  QOX_ASSIGN_OR_RETURN(RowBatch rows, wal->ReadAll());
  QOX_ASSIGN_OR_RETURN(const size_t key_idx, schema.FieldIndex("key"));
  QOX_ASSIGN_OR_RETURN(const size_t ver_idx, schema.FieldIndex("version"));
  std::map<int64_t, Row> state;
  for (const Row& row : rows.rows()) {
    const int64_t key = row.value(key_idx).int64_value();
    const auto it = state.find(key);
    if (it == state.end() ||
        it->second.value(ver_idx).int64_value() <
            row.value(ver_idx).int64_value()) {
      state.insert_or_assign(key, row);
    }
  }
  std::vector<Row> folded;
  folded.reserve(state.size());
  for (auto& [key, row] : state) folded.push_back(std::move(row));
  return folded;
}

Result<CdcReport> CdcCoordinator::Run(const CdcOptions& options) {
  QOX_RETURN_IF_ERROR(ValidateOptions(options));
  const StopWatch total_watch;
  std::error_code ec;
  std::filesystem::create_directories(options.scratch_dir, ec);
  if (ec) {
    return Status::IoError("cannot create '" + options.scratch_dir +
                           "': " + ec.message());
  }

  const auto source = std::make_shared<const CdcSource>(options.stream);
  const ShardRouter router(source, options.topology);
  const size_t shards = options.topology.shards;
  for (size_t s = 0; s < shards; ++s) {
    std::filesystem::create_directories(ShardDir(options, s), ec);
    if (ec) {
      return Status::IoError("cannot create '" + ShardDir(options, s) +
                             "': " + ec.message());
    }
  }
  const size_t num_slices = router.num_slices();
  QOX_ASSIGN_OR_RETURN(const Schema staged_schema, StagedSchema(options));

  // Single-writer guard: one coordinator per scratch directory. A crashed
  // predecessor's lease is taken over (pid-dead, or hung past
  // QOX_LEASE_TIMEOUT_MS) and the displacement journaled below.
  QOX_ASSIGN_OR_RETURN(
      auto lease, LeaseFile::Acquire(options.scratch_dir + "/coordinator.lease",
                                     "cdc-coordinator"));

  QOX_ASSIGN_OR_RETURN(
      auto journal, JournalFile::Open(options.scratch_dir + "/coordinator.journal",
                                      options.journal_sync));
  QOX_ASSIGN_OR_RETURN(CoordinatorState state,
                       ReplayCoordinatorJournal(*journal, options));
  if (!state.has_meta) {
    QOX_RETURN_IF_ERROR(journal->Append(
        kRecMeta,
        {std::to_string(shards), std::to_string(options.topology.slice_events),
         std::to_string(options.stream.total_events),
         std::to_string(options.stream.seed)},
        /*commit=*/true));
  }
  if (lease->took_over()) {
    state.takeover = true;
    QOX_RETURN_IF_ERROR(journal->Append(kRecTakeover, {}, /*commit=*/true));
  }

  QOX_ASSIGN_OR_RETURN(
      auto wal, FlatFile::Open("warehouse", staged_schema,
                               options.scratch_dir + "/warehouse.csv"));

  CdcReport report;
  report.slices = num_slices;
  report.lease_takeover = state.takeover;
  report.warehouse_path = options.scratch_dir + "/warehouse.csv";
  report.metrics.streaming = options.streaming;
  report.metrics.shard_stats.resize(shards);
  for (size_t s = 0; s < shards; ++s) {
    report.metrics.shard_stats[s].shard = s;
  }
  for (size_t slice = 0; !state.committed && slice < num_slices; ++slice) {
    const StopWatch slice_watch;
    // Keep the lease fresh: with QOX_LEASE_TIMEOUT_MS set, a coordinator
    // that stops refreshing for longer than the timeout becomes stealable
    // while still alive — two coordinators appending to one WAL. A failed
    // heartbeat means we were already displaced: stop, don't split-brain.
    QOX_RETURN_IF_ERROR(lease->Heartbeat());
    if (state.applied.count(slice) != 0) continue;

    // Watermark 1: pin the WAL row count this slice's apply starts from.
    // A restart after a torn apply reuses the journaled base — the WAL has
    // grown past it by exactly the merged rows already durable.
    size_t wal_base = 0;
    const auto base_it = state.slice_wal_base.find(slice);
    if (base_it != state.slice_wal_base.end()) {
      wal_base = base_it->second;
    } else {
      QOX_ASSIGN_OR_RETURN(wal_base, wal->NumRows());
      QOX_RETURN_IF_ERROR(journal->Append(
          kRecSliceStart, {std::to_string(slice), std::to_string(wal_base)},
          /*commit=*/true));
      QOX_CRASH_POINT("cdc.slice_start");
    }

    // Watermark 2: the slice's merge membership. Once journaled
    // (slice_staged below), the member shards' staged files are complete
    // on disk — the record is only written after every member's flow
    // converged — so a resume re-merges exactly that set from disk without
    // re-running any shard flow. A shard that dies between the pin and a
    // torn apply's resume is therefore excluded starting from the NEXT
    // slice, never from a merged list whose prefix may already be durable
    // in the WAL (excluding it there would silently duplicate some rows
    // of the durable prefix and drop others).
    const auto staged_it = state.staged.find(slice);
    const bool membership_pinned = staged_it != state.staged.end();

    // Run every live shard's worker flow for this slice to convergence
    // (skipped wholesale once the membership is pinned: the staging is
    // done, and a re-run could only add shard deaths this slice must not
    // observe).
    for (size_t s = 0; !membership_pinned && s < shards; ++s) {
      if (state.dead_shards.count(s) != 0) continue;
      Status outcome;
      if (options.supervised) {
        SupervisorOptions sup;
        sup.scratch_dir = ShardDir(options, s);
        sup.max_incarnations = options.max_shard_incarnations;
        sup.journal_sync = options.journal_sync;
        const auto hook = options.shard_child_setup;
        sup.child_setup = [s, hook](int incarnation) {
          // Shard workers inherit the coordinator's crash-point arming
          // across fork; a supervised coordinator's own kill schedule must
          // not cascade into its grandchildren, so the default disarms.
          if (hook) {
            hook(s, incarnation);
          } else {
            ArmCrashPoints("");
          }
        };
        const Result<SupervisorReport> sup_report = FlowSupervisor::Run(
            SliceFlowId(s, slice),
            [&options, &router, &staged_schema, s, slice](const FlowEnv& env) {
              return RunShardSliceBody(options, router, staged_schema, s,
                                       slice, &env);
            },
            sup);
        QOX_RETURN_IF_ERROR(sup_report.status());
        ShardStats& stats = report.metrics.shard_stats[s];
        stats.incarnations += sup_report.value().incarnations;
        stats.crashes += sup_report.value().crashes;
        if (sup_report.value().lease_takeover) ++stats.lease_takeovers;
        outcome = sup_report.value().success
                      ? Status::OK()
                      : sup_report.value().final_status;
      } else {
        outcome =
            RunShardSliceBody(options, router, staged_schema, s, slice,
                              /*env=*/nullptr);
      }
      if (!outcome.ok()) {
        if (!options.degrade_on_dead_shard) return outcome;
        // Sticky degradation: the shard is dead for the rest of the
        // window. Its backlog becomes reported lag; the healthy shards
        // keep loading.
        state.dead_shards.insert(s);
        report.metrics.shard_stats[s].dead = true;
        QOX_RETURN_IF_ERROR(journal->Append(
            kRecShardDead, {std::to_string(s), std::to_string(slice)},
            /*commit=*/true));
      }
      // Shard runs dominate the slice's wall time — refresh the lease
      // between them so a long slice cannot outlast the takeover timeout.
      QOX_RETURN_IF_ERROR(lease->Heartbeat());
    }

    // The shards this slice's merge covers: the pinned membership on a
    // resume, the current live set on first contact.
    std::vector<bool> excluded(shards, false);
    for (size_t s = 0; s < shards; ++s) {
      excluded[s] = membership_pinned
                        ? staged_it->second[s] == static_cast<size_t>(-1)
                        : state.dead_shards.count(s) != 0;
    }

    // Merge the member shards' staged outputs by global version. Versions
    // are unique, so the merged order — and therefore the WAL bytes — are
    // a pure function of (stream, member shard set).
    std::vector<Row> merged;
    std::vector<size_t> per_shard_rows(shards, 0);
    QOX_ASSIGN_OR_RETURN(const size_t ver_idx,
                         staged_schema.FieldIndex("version"));
    for (size_t s = 0; s < shards; ++s) {
      if (excluded[s]) continue;
      QOX_ASSIGN_OR_RETURN(
          auto staged,
          FlatFile::Open("staged", staged_schema, StagedPath(options, s,
                                                             slice)));
      QOX_ASSIGN_OR_RETURN(RowBatch rows, staged->ReadAll());
      per_shard_rows[s] = rows.num_rows();
      for (Row& row : rows.rows()) merged.push_back(std::move(row));
    }
    if (membership_pinned) {
      // The staged files must still reproduce the journaled merge — a
      // shorter (truncated) or longer file would silently shift the
      // durable-prefix math below.
      for (size_t s = 0; s < shards; ++s) {
        if (!excluded[s] && per_shard_rows[s] != staged_it->second[s]) {
          return Status::CorruptedData(
              "staged file of shard " + std::to_string(s) + " slice " +
              std::to_string(slice) + " has " +
              std::to_string(per_shard_rows[s]) +
              " rows; the journal pinned " +
              std::to_string(staged_it->second[s]));
        }
      }
    } else {
      std::vector<std::string> cells{std::to_string(slice)};
      for (size_t s = 0; s < shards; ++s) {
        cells.push_back(excluded[s] ? std::string(kShardExcluded)
                                    : std::to_string(per_shard_rows[s]));
      }
      QOX_RETURN_IF_ERROR(
          journal->Append(kRecSliceStaged, cells, /*commit=*/true));
      QOX_CRASH_POINT("cdc.slice_staged");
    }
    std::sort(merged.begin(), merged.end(),
              [ver_idx](const Row& a, const Row& b) {
                return a.value(ver_idx).int64_value() <
                       b.value(ver_idx).int64_value();
              });

    // Watermark 3: exactly-once apply. Rows past wal_base are the durable
    // prefix a dead incarnation already landed; append only the rest.
    QOX_ASSIGN_OR_RETURN(const size_t wal_rows_now, wal->NumRows());
    if (wal_rows_now < wal_base || wal_rows_now - wal_base > merged.size()) {
      return Status::CorruptedData(
          "warehouse WAL at " + std::to_string(wal_rows_now) +
          " rows does not extend slice " + std::to_string(slice) +
          " base " + std::to_string(wal_base) + " by at most " +
          std::to_string(merged.size()));
    }
    QOX_CRASH_POINT("cdc.apply");
    size_t next = wal_rows_now - wal_base;
    while (next < merged.size()) {
      const size_t batch_end =
          std::min(merged.size(), next + options.batch_size);
      RowBatch batch(staged_schema);
      batch.Reserve(batch_end - next);
      for (size_t i = next; i < batch_end; ++i) {
        batch.Append(merged[i]);
      }
      QOX_RETURN_IF_ERROR(wal->Append(batch));
      report.metrics.rows_loaded += batch.num_rows();
      next = batch_end;
    }
    // The double-apply window: merged rows durable, applied record not yet
    // — the restart path must absorb a kill landing exactly here.
    QOX_CRASH_POINT("cdc.slice_applied");
    std::vector<std::string> fields{std::to_string(slice),
                                    std::to_string(merged.size())};
    for (size_t s = 0; s < shards; ++s) {
      fields.push_back(excluded[s] ? std::string(kShardExcluded)
                                   : std::to_string(per_shard_rows[s]));
    }
    QOX_RETURN_IF_ERROR(journal->Append(kRecSliceApplied, fields,
                                        /*commit=*/true));
    std::vector<size_t> applied_counts(shards, 0);
    for (size_t s = 0; s < shards; ++s) {
      applied_counts[s] =
          excluded[s] ? static_cast<size_t>(-1) : per_shard_rows[s];
    }
    state.applied[slice] = std::move(applied_counts);
    report.slice_latency_micros.push_back(slice_watch.ElapsedMicros());
  }

  if (!state.committed) {
    QOX_RETURN_IF_ERROR(lease->Heartbeat());
    QOX_CRASH_POINT("cdc.commit");
    QOX_RETURN_IF_ERROR(journal->Append(kRecCommit, {}, /*commit=*/true));
    state.committed = true;
  }

  // Final accounting, valid on fresh and resumed runs alike: routing and
  // application counts are re-derived from the (deterministic) stream and
  // the journaled watermarks, staging volume from the staged files.
  report.slices_applied = state.applied.size();
  report.shards_dead = state.dead_shards.size();
  report.degraded = report.shards_dead > 0;
  QOX_ASSIGN_OR_RETURN(report.wal_rows, wal->NumRows());
  for (size_t s = 0; s < shards; ++s) {
    ShardStats& stats = report.metrics.shard_stats[s];
    stats.events_routed =
        router.CountShardEvents(s, 0, options.stream.total_events);
    stats.dead = state.dead_shards.count(s) != 0;
    for (const auto& [slice, per_shard] : state.applied) {
      if (per_shard[s] == static_cast<size_t>(-1)) continue;
      const auto range = router.SliceRange(slice);
      stats.events_applied +=
          router.CountShardEvents(s, range.first, range.second);
      stats.rows_applied += per_shard[s];
    }
    stats.lag_events = stats.events_routed - stats.events_applied;
    for (size_t slice = 0; slice < num_slices; ++slice) {
      // Only count files a worker actually wrote (Open would create one).
      if (!std::filesystem::exists(StagedPath(options, s, slice), ec)) {
        continue;
      }
      const auto staged = FlatFile::Open("staged", staged_schema,
                                         StagedPath(options, s, slice));
      if (!staged.ok()) continue;
      const auto rows = staged.value()->NumRows();
      if (rows.ok()) stats.rows_staged += rows.value();
    }
    report.metrics.rows_extracted += stats.events_applied;
  }
  report.metrics.total_micros = total_watch.ElapsedMicros();
  report.metrics.threads = 1;
  return report;
}

}  // namespace qox
