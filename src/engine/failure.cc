#include "engine/failure.h"

#include <algorithm>

#include "common/clock.h"

namespace qox {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNetwork:
      return "network";
    case FailureKind::kPower:
      return "power";
    case FailureKind::kHuman:
      return "human";
    case FailureKind::kResource:
      return "resource";
    case FailureKind::kMisc:
      return "misc";
  }
  return "unknown";
}

const char* FlowPhaseName(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::kExtract:
      return "extract";
    case FlowPhase::kTransform:
      return "transform";
    case FlowPhase::kLoad:
      return "load";
  }
  return "unknown";
}

void FailureInjector::AddFailure(const FailureSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  planned_.push_back(Planned{spec, false});
}

void FailureInjector::AddPoison(const PoisonSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  poison_[spec.at_op].insert(spec.id_value);
  has_poison_.store(true, std::memory_order_release);
}

Status FailureInjector::CheckRow(int op_index, const Row& row) const {
  if (!HasPoison()) return Status::OK();
  if (row.num_values() == 0 || row.value(0).type() != DataType::kInt64) {
    return Status::OK();
  }
  const auto it = poison_.find(op_index);
  if (it == poison_.end()) return Status::OK();
  const int64_t id = row.value(0).int64_value();
  if (it->second.count(id) == 0) return Status::OK();
  return Status::Invalid("poison row id=" + std::to_string(id) +
                         " at transform op " + std::to_string(op_index));
}

void FailureInjector::ArmRandom(size_t count, int num_ops, Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < count; ++i) {
    FailureSpec spec;
    const uint64_t pick = rng->Next() % 5;
    spec.kind = static_cast<FailureKind>(pick);
    // -1 (extraction) .. num_ops-1 (transform ops).
    spec.at_op = static_cast<int>(rng->Uniform(-1, num_ops - 1));
    spec.at_fraction = rng->NextDouble();
    spec.on_attempt = static_cast<int>(i) + 1;
    planned_.push_back(Planned{spec, false});
  }
}

void FailureInjector::ArmMtbf(double mtbf_seconds, double horizon_s,
                              Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_start_micros_ = NowMicros();
  timed_.clear();
  double t = 0.0;
  while (true) {
    t += rng->Exponential(mtbf_seconds);
    if (t >= horizon_s) break;
    timed_.push_back({static_cast<int64_t>(t * 1e6), false});
  }
}

Status FailureInjector::Check(int instance, int attempt, int op_index,
                              size_t rows_done, size_t rows_total) {
  std::lock_guard<std::mutex> lock(mu_);
  // MTBF-sampled failures fire on wall-clock crossings, any position.
  const int64_t elapsed = NowMicros() - clock_start_micros_;
  for (TimedFailure& timed : timed_) {
    if (timed.fired || elapsed < timed.at_elapsed_micros) continue;
    timed.fired = true;
    ++triggered_;
    return Status::InjectedFailure(
        "system failure (MTBF-sampled) at elapsed " +
        std::to_string(elapsed / 1000) + "ms");
  }
  for (Planned& planned : planned_) {
    if (planned.fired) continue;
    const FailureSpec& spec = planned.spec;
    const int target =
        spec.target_instance < 0 ? 0 : spec.target_instance;
    if (target != instance) continue;
    if (spec.on_attempt != attempt) continue;
    if (spec.at_op != op_index) continue;
    // An unknown denominator (rows_total == 0, e.g. a streaming sink that
    // cannot know its final output count) treats any progress as "far
    // enough": at_fraction > 0 specs fire on the first check after rows
    // were seen, at_fraction == 0 specs on the first check regardless.
    const bool unknown_total = rows_total == 0;
    const double fraction =
        unknown_total
            ? (rows_done > 0 ? 1.0 : 0.0)
            : static_cast<double>(rows_done) / static_cast<double>(rows_total);
    if (fraction + 1e-12 < spec.at_fraction) continue;
    planned.fired = true;
    ++triggered_;
    std::string where =
        op_index < 0 ? "extraction"
        : op_index == FailureSpec::kAtLoad
            ? "load"
            : "transform op " + std::to_string(op_index);
    const std::string position =
        unknown_total && rows_done > 0
            ? std::to_string(rows_done) + " rows (total unknown)"
            : std::to_string(fraction * 100.0) + "%";
    return Status::InjectedFailure(std::string(FailureKindName(spec.kind)) +
                                   " failure during " + where + " at " +
                                   position);
  }
  return Status::OK();
}

size_t FailureInjector::triggered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return triggered_;
}

std::vector<int64_t> FailureInjector::TimedScheduleMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> schedule;
  schedule.reserve(timed_.size());
  for (const TimedFailure& timed : timed_) {
    schedule.push_back(timed.at_elapsed_micros);
  }
  return schedule;
}

void FailureInjector::Rearm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Planned& planned : planned_) planned.fired = false;
  for (TimedFailure& timed : timed_) timed.fired = false;
  clock_start_micros_ = NowMicros();
  triggered_ = 0;
}

void FailureInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  planned_.clear();
  timed_.clear();
  triggered_ = 0;
  poison_.clear();
  has_poison_.store(false, std::memory_order_release);
}

}  // namespace qox
