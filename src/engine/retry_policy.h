// RetryPolicy: how the executor spends its attempt budget.
//
// The paper's reliability metric asks whether a flow finishes within its
// time window despite failures (Sec. 2.2); how fast retries come back
// matters as much as how many are allowed. A RetryPolicy bundles the knobs:
// attempt budget, exponential backoff between attempts (with jitter so
// co-failing flows do not retry in lockstep against a struggling backend),
// and a per-attempt watchdog deadline that aborts hung attempts so the
// budget is not consumed by a stalled source.
//
// Only TRANSIENT failures (see IsTransient in common/status: injected
// system failures, unavailable storage, expired deadlines) are retried;
// permanent errors fail fast without touching the budget.

#ifndef QOX_ENGINE_RETRY_POLICY_H_
#define QOX_ENGINE_RETRY_POLICY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace qox {

struct RetryPolicy {
  /// Maximum attempts per instance before giving up (>= 1).
  size_t max_attempts = 8;
  /// Pause before the first retry, microseconds. 0 = immediate retries.
  int64_t initial_backoff_micros = 0;
  /// Backoff ceiling, microseconds.
  int64_t max_backoff_micros = 1000000;
  /// Backoff growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1]: each pause is scaled by a random factor in
  /// [1 - jitter, 1], decorrelating retries of co-failing flows.
  double jitter = 0.0;
  /// Watchdog: abort an attempt that runs longer than this (microseconds);
  /// the abort surfaces as kDeadlineExceeded and is retried as transient.
  /// 0 = unbounded.
  int64_t attempt_deadline_micros = 0;
  /// Seed for the jitter stream (kept explicit for reproducible runs).
  uint64_t jitter_seed = 0x5e7f;

  /// Pause before the retry following failed attempt `failed_attempt`
  /// (1-based): min(max, initial * multiplier^(failed_attempt - 1)),
  /// jittered via `rng`.
  int64_t BackoffMicros(size_t failed_attempt, Rng* rng) const;

  /// True when `status` is transient and the budget allows another attempt
  /// after `failed_attempt` failures.
  bool ShouldRetry(const Status& status, size_t failed_attempt) const;

  /// Expected pause before a retry, averaged over the attempt budget — the
  /// backoff-delay term the QoX cost model charges to recovery time.
  double MeanBackoffSeconds() const;
};

}  // namespace qox

#endif  // QOX_ENGINE_RETRY_POLICY_H_
