#include "engine/flow_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/clock.h"

namespace qox {

FlowService::FlowService(const FlowServiceConfig& config)
    : config_(config), pool_(std::max<size_t>(1, config.num_workers)) {}

FlowService::~FlowService() { Drain(); }

Result<uint64_t> FlowService::Submit(FlowSubmission submission) {
  const int64_t now = NowMicros();
  // Absolute deadline: an explicit absolute value wins; otherwise the
  // relative SLA budget starts counting at admission, not at dispatch —
  // time spent queued behind other flows eats the budget, which is what
  // makes queue policy matter.
  int64_t deadline = submission.config.sla.absolute_deadline_micros;
  if (deadline == 0 && submission.config.sla.deadline_micros > 0) {
    deadline = now + submission.config.sla.deadline_micros;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (config_.admit_only_feasible && deadline > 0 &&
      submission.predicted_micros > 0) {
    // Projected finish under current load: the outstanding predicted work
    // plus this flow, spread across the pool's core workers. A coarse
    // M/G/k bound, but it is the cost model's own estimate — the same
    // numbers the QoX design phase optimized against.
    const int64_t workers =
        static_cast<int64_t>(std::max<size_t>(1, pool_.num_workers()));
    const int64_t projected_finish =
        now + (outstanding_predicted_ + submission.predicted_micros) / workers;
    if (projected_finish > deadline) {
      ++stats_.rejected;
      std::ostringstream msg;
      msg << "flow '" << submission.flow.id << "' SLA infeasible: projected "
          << "finish +" << (projected_finish - now) << "us exceeds deadline +"
          << (deadline - now) << "us under " << outstanding_predicted_
          << "us of outstanding predicted load";
      return Status::ResourceExhausted(msg.str());
    }
  }

  const uint64_t ticket = next_ticket_++;
  auto entry = std::make_unique<FlowEntry>();
  entry->submission = std::move(submission);
  entry->ticket = ticket;
  entry->submit_micros = now;
  entry->absolute_deadline_micros = deadline;
  outstanding_predicted_ += entry->submission.predicted_micros;
  flows_[ticket] = std::move(entry);
  ++stats_.admitted;
  ++live_;
  DispatchLocked();
  return ticket;
}

FlowService::FlowEntry* FlowService::NextPendingLocked() {
  FlowEntry* best = nullptr;
  for (auto& [ticket, entry] : flows_) {
    if (entry->state != FlowState::kPending) continue;
    if (best == nullptr) {
      best = entry.get();
      continue;
    }
    if (config_.policy == QueuePolicy::kEdf) {
      // Earliest deadline wins; no-deadline flows go last; the map's
      // ticket order breaks ties, so equal deadlines dispatch FIFO.
      const int64_t a = entry->absolute_deadline_micros == 0
                            ? INT64_MAX
                            : entry->absolute_deadline_micros;
      const int64_t b = best->absolute_deadline_micros == 0
                            ? INT64_MAX
                            : best->absolute_deadline_micros;
      if (a < b) best = entry.get();
    }
    // kFifo: the map iterates in ticket (submission) order; first pending
    // entry already wins.
  }
  return best;
}

void FlowService::DispatchLocked() {
  while (running_ < std::max<size_t>(1, config_.max_concurrent_flows)) {
    FlowEntry* entry = NextPendingLocked();
    if (entry == nullptr) return;
    entry->state = FlowState::kRunning;
    entry->queue_wait_micros = NowMicros() - entry->submit_micros;
    ++running_;
    TaskTag tag;
    tag.deadline_micros = entry->absolute_deadline_micros;
    tag.predicted_micros = entry->submission.predicted_micros;
    tag.blocking = true;  // drivers park in Executor::Run for the flow's life
    pool_.Post([this, entry] { RunDriver(entry); }, tag);
  }
}

void FlowService::RunDriver(FlowEntry* entry) {
  // The driver owns the entry's submission fields until it flips the state
  // to kDone under mu_; Wait() only touches the entry after that flip.
  ExecutionConfig config = entry->submission.config;
  config.worker_pool = &pool_;
  config.sla.absolute_deadline_micros = entry->absolute_deadline_micros;

  Result<RunMetrics> result = Executor::Run(entry->submission.flow, config);
  const int64_t finish = NowMicros();
  if (result.ok()) {
    result.value().queue_wait_micros = entry->queue_wait_micros;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (entry->absolute_deadline_micros > 0) {
    if (finish <= entry->absolute_deadline_micros) {
      ++stats_.deadline_hits;
    } else {
      ++stats_.deadline_misses;
    }
  }
  outstanding_predicted_ -= entry->submission.predicted_micros;
  entry->result = std::move(result);
  entry->state = FlowState::kDone;
  ++stats_.completed;
  --running_;
  --live_;
  DispatchLocked();
  done_cv_.notify_all();
}

Result<RunMetrics> FlowService::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = flows_.find(ticket);
  if (it == flows_.end()) {
    return Status::NotFound("unknown or already-collected flow ticket");
  }
  FlowEntry* entry = it->second.get();
  done_cv_.wait(lock, [entry] { return entry->state == FlowState::kDone; });
  Result<RunMetrics> result = std::move(entry->result);
  flows_.erase(it);
  return result;
}

void FlowService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return live_ == 0; });
}

FlowService::Stats FlowService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qox
