// Operator: the unit of transformation in a flow.
//
// Operators are push-based and vectorized: the pipeline calls Push() with
// input batches and the operator appends produced rows to the output batch;
// Finish() flushes state buffered by blocking operators (sort, group,
// delta). Bind() performs schema inference/validation before any data
// flows, so mis-wired flows fail at plan time.
//
// Operators are single-use: partitioned and redundant execution construct a
// fresh clone per branch via OperatorFactory.

#ifndef QOX_ENGINE_OPERATOR_H_
#define QOX_ENGINE_OPERATOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/column_batch.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "engine/memory_budget.h"
#include "engine/run_metrics.h"
#include "storage/spill_manager.h"

namespace qox {

/// Shared per-execution context handed to operators at Open().
struct OperatorContext {
  /// Cooperative cancellation flag (set when a redundant sibling already
  /// produced the accepted result). May be null.
  std::atomic<bool>* cancelled = nullptr;

  /// Sink for rows rejected by quality operators (NULL filters, failed
  /// lookups). May be null, in which case rejects are counted but dropped.
  std::function<Status(const Row&)> reject_sink;

  /// Rejected-row counter (always maintained).
  std::atomic<size_t>* rejected_rows = nullptr;

  /// Shared-dimension-cache accounting (engine/dimension_cache.h): lookup
  /// builds performed by this flow vs. builds another flow already paid
  /// for. May be null.
  std::atomic<size_t>* dim_cache_builds = nullptr;
  std::atomic<size_t>* dim_cache_hits = nullptr;

  /// Columnar fast-path accounting: batches that entered a columnar run
  /// and the live rows they carried. May be null.
  std::atomic<size_t>* columnar_batches = nullptr;
  std::atomic<size_t>* columnar_rows = nullptr;

  /// Flow-level byte accountant. Blocking operators (sort, group, the
  /// lookup build side) charge their buffered working set here and spill
  /// when a reservation is refused. May be null (unbudgeted — the seed
  /// behaviour: buffer everything in RAM).
  MemoryBudget* memory_budget = nullptr;

  /// Where refused working sets spill. Null when memory_budget is null;
  /// when a budget is set the executor always provides a manager.
  SpillManager* spill = nullptr;

  /// True when the operator should enforce the byte budget (both pieces
  /// wired and a finite limit configured).
  bool BudgetEnforced() const {
    return memory_budget != nullptr && !memory_budget->unlimited() &&
           spill != nullptr;
  }

  bool IsCancelled() const {
    return cancelled != nullptr && cancelled->load(std::memory_order_relaxed);
  }

  Status Reject(const Row& row) {
    if (rejected_rows != nullptr) {
      rejected_rows->fetch_add(1, std::memory_order_relaxed);
    }
    if (reject_sink) return reject_sink(row);
    return Status::OK();
  }
};

/// Per-call context of a columnar push (see Operator::PushColumnar).
struct ColumnarPushContext {
  /// True when the op's error policy allows containment (kSkip/
  /// kQuarantine): rows that fail with a containable error must then be
  /// dropped from the selection and reported in `contained` instead of
  /// failing the push. When false the op returns its first containable
  /// error directly (the fail-fast contract of the row path).
  bool contain = false;
  /// Rows dropped from the selection with a containable error, boxed as
  /// they entered the op, in selection order. The pipeline routes them
  /// through the same containment path as the row-mode replay.
  std::vector<std::pair<Row, Status>> contained;
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Short operator kind ("filter", "lookup", "sort", ...), used by plan
  /// dumps, cost models, and maintainability metrics.
  virtual const char* kind() const = 0;

  /// Instance name ("Flt_NN", "SK_sales", ...).
  virtual const std::string& name() const = 0;

  /// Validates the input schema and returns the output schema. Called once
  /// before Open(). Implementations must be callable repeatedly (planners
  /// bind speculatively while exploring rewrites).
  virtual Result<Schema> Bind(const Schema& input) = 0;

  /// Acquires execution-time resources (e.g., builds lookup hash tables).
  /// Called once after Bind, before the first Push.
  virtual Status Open(OperatorContext* ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Consumes `input`, appending any produced rows to `*output`. `*output`
  /// carries the Bind() output schema. Blocking operators buffer here.
  ///
  /// Row-error contract: an operator that can fail on *individual* rows
  /// (returning a containable status — kInvalidArgument, kNotFound,
  /// kOutOfRange) must be stateless across Push calls and must leave no
  /// side effects behind a failed Push: the pipeline discards the failed
  /// call's output and replays the batch row by row when the op's
  /// ErrorPolicy allows containment. Blocking operators (which buffer
  /// state) must never report row-scoped errors from Push.
  virtual Status Push(const RowBatch& input, RowBatch* output) = 0;

  /// Move-aware push: the caller hands over ownership of `input`, letting
  /// pass-through operators move rows into `*output` instead of deep-
  /// copying every cell. The default forwards to the const-ref overload
  /// (copy semantics), so operators opt in individually. Callers must only
  /// use this overload when they will not read `input` afterwards — in
  /// particular the pipeline keeps the copying path whenever a containable
  /// failure could require replaying the input row by row.
  virtual Status Push(RowBatch&& input, RowBatch* output) {
    return Push(static_cast<const RowBatch&>(input), output);
  }

  /// Columnar capability: true when the operator (as currently bound and
  /// opened) implements PushColumnar. Queried by the pipeline after Open()
  /// — capability may depend on execution-time state (e.g. a lookup that
  /// spilled its build side is row-only).
  virtual bool CanPushColumnar() const { return false; }

  /// Vectorized push: transforms `*batch` in place — filtering edits the
  /// selection vector, schema-changing ops append/erase/replace whole
  /// columns so the columns match the Bind() output schema (the pipeline
  /// re-points the batch's schema handle afterwards). Kernels must process
  /// side effects (rejects, surrogate assignment, containment) for
  /// SELECTED rows only, in selection order, to match the row path; pure
  /// compute may cover all physical rows. Only called when
  /// CanPushColumnar(); never called on blocking operators.
  virtual Status PushColumnar(ColumnBatch* batch, ColumnarPushContext* cctx) {
    (void)batch;
    (void)cctx;
    return Status::Internal("operator '" + name() +
                            "' does not support columnar push");
  }

  /// Emits rows buffered by blocking operators. Called exactly once, after
  /// the final Push.
  virtual Status Finish(RowBatch* output) {
    (void)output;
    return Status::OK();
  }

  /// True when the operator must see its entire input before emitting
  /// (sort, group, delta). Pipelining/blocking separation drives both the
  /// paper's algebraic optimization and recovery-point placement.
  virtual bool IsBlocking() const { return false; }

  /// Relative CPU cost per input row (1.0 = a trivial pass). Used by the
  /// QoX cost model; calibrated against measured OpStats in tests.
  virtual double CostPerRow() const { return 1.0; }

  /// Expected output/input row ratio (selectivity), for volume estimation.
  virtual double Selectivity() const { return 1.0; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Builds a fresh operator instance. Factories are the unit the planner
/// composes: each partition/redundant branch materializes its own clone.
using OperatorFactory = std::function<OperatorPtr()>;

}  // namespace qox

#endif  // QOX_ENGINE_OPERATOR_H_
