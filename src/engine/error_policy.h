// Row-level error containment: policies, budgets, and containment records.
//
// The paper's reliability metric (Sec. 2.2) treats a run as all-or-nothing:
// one malformed row aborts the whole flow. Commercial ETL tools instead
// contain row-level errors with reject links and error tables. This header
// defines the containment vocabulary shared by the pipeline (which detects
// and contains row errors), the executor (which owns the flow-level error
// budget), and the dead-letter machinery (which persists quarantined rows
// for later replay):
//
//   kFailFast    a row error aborts the attempt (the seed behaviour);
//   kSkip        the failing row is dropped and counted;
//   kQuarantine  the failing row is wrapped with provenance and routed to
//                a dead-letter store, replayable once the flow is repaired.
//
// Skip and quarantine are bounded by an ErrorBudget: when more rows are
// contained than the budget allows, the run aborts with the *permanent*
// status kErrorBudgetExceeded (re-running the identical flow re-contains
// the identical rows, so burning retry attempts on it would be pointless).

#ifndef QOX_ENGINE_ERROR_POLICY_H_
#define QOX_ENGINE_ERROR_POLICY_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>

#include "common/row.h"
#include "common/status.h"

namespace qox {

/// What to do when an individual row trips an operator error.
enum class ErrorPolicy {
  kFailFast = 0,
  kSkip,
  kQuarantine,
};

inline const char* ErrorPolicyName(ErrorPolicy policy) {
  switch (policy) {
    case ErrorPolicy::kFailFast:
      return "fail_fast";
    case ErrorPolicy::kSkip:
      return "skip";
    case ErrorPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

inline Result<ErrorPolicy> ParseErrorPolicy(const std::string& name) {
  if (name == "fail_fast") return ErrorPolicy::kFailFast;
  if (name == "skip") return ErrorPolicy::kSkip;
  if (name == "quarantine") return ErrorPolicy::kQuarantine;
  return Status::Invalid("unknown error policy: " + name);
}

/// True for status codes that represent a *row-scoped* data error — bad
/// input, a failed lookup, a domain violation — as opposed to systemic
/// failures (injected faults, I/O errors, cancellation, deadlines) that no
/// amount of row dropping can contain.
inline bool IsRowContainable(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kNotFound || code == StatusCode::kOutOfRange;
}
inline bool IsRowContainable(const Status& status) {
  return IsRowContainable(status.code());
}

/// Flow-level ceiling on contained (skipped + quarantined) rows. The
/// defaults are unlimited, so a design that never sets a budget behaves
/// exactly like the seed.
struct ErrorBudget {
  /// Abort once more than this many rows have been contained. Checked
  /// online, as rows are contained, in both executors.
  size_t max_rows = std::numeric_limits<size_t>::max();
  /// Abort when contained rows exceed this fraction of the attempt's
  /// extracted rows. The denominator is only known once extraction ends, so
  /// this is checked once per attempt after the transforms drain — at the
  /// same point in both executors.
  double max_fraction = 1.0;

  bool unlimited() const {
    return max_rows == std::numeric_limits<size_t>::max() &&
           max_fraction >= 1.0;
  }
  bool operator==(const ErrorBudget& other) const {
    return max_rows == other.max_rows && max_fraction == other.max_fraction;
  }
};

/// Shared, thread-safe per-attempt budget accounting. One instance per flow
/// run, reset at the start of every attempt, charged concurrently by all
/// pipelines (partition branches, streaming stages) of that attempt.
class ErrorBudgetState {
 public:
  explicit ErrorBudgetState(const ErrorBudget& budget) : budget_(budget) {}

  /// Records one contained row. Returns kErrorBudgetExceeded once the total
  /// crosses budget.max_rows.
  Status Charge(ErrorPolicy policy, int op_index) {
    auto& counter =
        policy == ErrorPolicy::kQuarantine ? quarantined_ : skipped_;
    counter.fetch_add(1, std::memory_order_relaxed);
    if (contained() > budget_.max_rows) {
      return Status::ErrorBudgetExceeded(
          "error budget exhausted: " + std::to_string(contained()) +
          " rows contained (max " + std::to_string(budget_.max_rows) +
          "), last at transform op " + std::to_string(op_index));
    }
    return Status::OK();
  }

  /// End-of-attempt fraction check against the attempt's input row count.
  Status CheckFraction(size_t input_rows) const {
    if (input_rows == 0 || budget_.max_fraction >= 1.0) return Status::OK();
    const double fraction =
        static_cast<double>(contained()) / static_cast<double>(input_rows);
    if (fraction > budget_.max_fraction + 1e-12) {
      return Status::ErrorBudgetExceeded(
          "error budget exhausted: " + std::to_string(contained()) + " of " +
          std::to_string(input_rows) + " rows contained, fraction exceeds " +
          std::to_string(budget_.max_fraction));
    }
    return Status::OK();
  }

  void Reset() {
    skipped_.store(0, std::memory_order_relaxed);
    quarantined_.store(0, std::memory_order_relaxed);
  }

  size_t skipped() const { return skipped_.load(std::memory_order_relaxed); }
  size_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  size_t contained() const { return skipped() + quarantined(); }
  const ErrorBudget& budget() const { return budget_; }

 private:
  ErrorBudget budget_;
  std::atomic<size_t> skipped_{0};
  std::atomic<size_t> quarantined_{0};
};

/// One contained row, as handed from the pipeline to the executor's
/// quarantine sink (which adds flow-level provenance and persists it).
struct ContainedRow {
  /// Global index of the failing operator in the flow's transform chain.
  int op_index = 0;
  std::string op_name;
  /// The row exactly as it entered the failing operator (i.e. with all
  /// upstream transforms applied) — the unit the replay helper re-runs.
  Row row;
  Status cause;
};

/// Receives quarantined rows. Must be thread-safe: partition branches and
/// streaming stages contain rows concurrently.
using QuarantineSink = std::function<Status(const ContainedRow&)>;

}  // namespace qox

#endif  // QOX_ENGINE_ERROR_POLICY_H_
