// ExecContext: the Executor concept both schedulers program against.
//
// A context is a (pool, tag) pair — *where* work runs plus *how it is
// scheduled* (flow deadline, predicted cost, blocking class). The engine's
// execution sites submit through the three canonical executor operations
// instead of touching threads:
//
//   Post        — queue for asynchronous execution (never inline)
//   Dispatch    — run inline when already on a pool worker, else post
//   BulkExecute — fan a counted loop out as CPU tasks and help-wait until
//                 every iteration completes (the phased scheduler's
//                 partition fan-out)
//
// The tag travels with every submission, so a FlowService can stamp one
// deadline on a flow's context and have every partition branch, streaming
// stage, and redundant instance of that flow compete EDF against other
// flows' work on the shared WorkerPool without the flow code knowing.
//
// A default-constructed context has no pool and degrades to inline serial
// execution — useful for cost-model unit paths; the real engine always
// supplies a pool.

#ifndef QOX_ENGINE_EXEC_CONTEXT_H_
#define QOX_ENGINE_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>

#include "engine/worker_pool.h"

namespace qox {

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(WorkerPool* pool, const TaskTag& tag) : pool_(pool), tag_(tag) {}

  WorkerPool* pool() const { return pool_; }
  const TaskTag& tag() const { return tag_; }

  /// Derives a context with the same pool and deadline but a different
  /// predicted execution time (per-stage cost-model estimates under one
  /// flow deadline).
  ExecContext WithPredictedMicros(int64_t predicted_micros) const {
    TaskTag tag = tag_;
    tag.predicted_micros = predicted_micros;
    return ExecContext(pool_, tag);
  }

  /// Queues `fn` for asynchronous execution under this context's tag.
  /// `blocking` routes to the pool's expansion lane (bodies that may park —
  /// streaming stages, flow drivers). Without a pool, runs inline as a
  /// degenerate fallback — callers that require asynchrony (the streaming
  /// scheduler) must hold a pooled context.
  void Post(std::function<void()> fn, TaskGroup* group = nullptr,
            bool blocking = false) const;

  /// Runs `fn` inline when the calling thread can execute work for this
  /// context (a pool worker, or no pool at all); otherwise posts it.
  void Dispatch(std::function<void()> fn) const;

  /// Runs `fn(0) .. fn(n-1)` as CPU tasks of the pool and blocks until all
  /// complete. From a core worker the wait HELPS (executes queued tasks),
  /// so nested bulk fan-out cannot deadlock. Without a pool, a serial loop.
  void BulkExecute(size_t n, const std::function<void(size_t)>& fn) const;

 private:
  WorkerPool* pool_ = nullptr;
  TaskTag tag_;
};

}  // namespace qox

#endif  // QOX_ENGINE_EXEC_CONTEXT_H_
