// MemoryBudget: the per-flow byte accountant behind spill-to-disk, and the
// ResourcePolicy vocabulary for degrading under resource exhaustion.
//
// The paper prices resource utilization as a first-class QoX objective;
// the engine backs that with an enforced byte budget instead of assuming
// infinite RAM. One MemoryBudget is shared by every pipeline of a flow
// instance (partition branches, streaming stages); blocking operators
// charge it for their buffered working set and, when a reservation is
// refused, switch to checksummed spill files (storage/spill_manager.h)
// instead of growing. The accountant is advisory-but-enforced: operators
// that honor it keep the flow inside the budget, and the RLIMIT_AS test
// tier proves the enforcement holds under a hard OS cap.

#ifndef QOX_ENGINE_MEMORY_BUDGET_H_
#define QOX_ENGINE_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"

namespace qox {

/// How the engine degrades when a resource (disk space, a storage quota,
/// the dead-letter cap) is exhausted at a write boundary.
enum class ResourcePolicy {
  /// kResourceExhausted is permanent: the flow fails immediately without
  /// burning retry attempts (the seed behaviour for any permanent error).
  kFailFlow = 0,
  /// kResourceExhausted is reclassified transient: the attempt pauses for
  /// the RetryPolicy's backoff and retries, modelling "wait for the
  /// operator to free disk" degradation.
  kPauseRetry,
  /// Rows whose load write hits resource exhaustion are shed to the
  /// dead-letter ledger (with provenance, bounded by the error budget)
  /// and the flow continues: availability is bought with completeness,
  /// and the ledger holds exactly what must be replayed later.
  kShedToQuarantine,
};

inline const char* ResourcePolicyName(ResourcePolicy policy) {
  switch (policy) {
    case ResourcePolicy::kFailFlow:
      return "fail_flow";
    case ResourcePolicy::kPauseRetry:
      return "pause_retry";
    case ResourcePolicy::kShedToQuarantine:
      return "shed_to_quarantine";
  }
  return "unknown";
}

inline Result<ResourcePolicy> ParseResourcePolicy(const std::string& name) {
  if (name == "fail_flow") return ResourcePolicy::kFailFlow;
  if (name == "pause_retry") return ResourcePolicy::kPauseRetry;
  if (name == "shed_to_quarantine") return ResourcePolicy::kShedToQuarantine;
  return Status::Invalid("unknown resource policy: " + name);
}

/// Thread-safe byte accountant. limit_bytes == 0 means unlimited; the
/// accountant would still track whatever is charged, but operators skip
/// charging when no finite limit is enforced (see OperatorContext::
/// BudgetEnforced), so unbudgeted runs report a zero high-water mark.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }

  /// Reserves `bytes` if they fit under the limit. Returns false (and
  /// reserves nothing) when the reservation would exceed it — the caller's
  /// cue to spill. Always succeeds on an unlimited budget.
  bool TryReserve(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      const size_t next = used + bytes;
      if (limit_ != 0 && next > limit_) return false;
      if (used_.compare_exchange_weak(used, next,
                                      std::memory_order_relaxed)) {
        BumpHighWater(next);
        return true;
      }
    }
  }

  /// Reserves unconditionally (may overrun the limit). For the irreducible
  /// minimum an operator cannot shed — e.g. one row of a sort run — so a
  /// budget smaller than a single row degrades to row-at-a-time spilling
  /// instead of deadlocking.
  void ForceReserve(size_t bytes) {
    BumpHighWater(used_.fetch_add(bytes, std::memory_order_relaxed) + bytes);
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Zeroes the usage counter at attempt start: a failed attempt's
  /// operators may die before releasing their charges, and the retry must
  /// not inherit phantom usage. The high-water mark survives — it reports
  /// peak pressure across the whole run.
  void ResetUsage() { used_.store(0, std::memory_order_relaxed); }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  void BumpHighWater(size_t candidate) {
    size_t hw = high_water_.load(std::memory_order_relaxed);
    while (candidate > hw && !high_water_.compare_exchange_weak(
                                 hw, candidate, std::memory_order_relaxed)) {
    }
  }

  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> high_water_{0};
};

/// Parses a byte-size string: a plain byte count with an optional k/m/g
/// suffix (binary multiples), e.g. "65536", "64k", "16m". Error on
/// malformed input.
Result<size_t> ParseByteSize(const std::string& text);

/// The QOX_MEM_BUDGET environment override, parsed with ParseByteSize.
/// Returns 0 (unlimited) when the variable is unset or empty; malformed
/// values are ignored (a typo must not silently change flow semantics, so
/// the engine runs unbudgeted rather than guessing).
size_t MemoryBudgetFromEnv();

}  // namespace qox

#endif  // QOX_ENGINE_MEMORY_BUDGET_H_
