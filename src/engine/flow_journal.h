// FlowJournal: the durable write-ahead log of one flow's execution
// lifecycle, and the resume state a new process incarnation reconstructs
// from it.
//
// The executor appends typed records at every durability boundary —
// attempt starts and ends, budget counters, recovery-point commits, the
// load baseline, quarantine-replay group lifecycle, and the final flow
// commit — to a checksummed JournalFile under the flow's scratch
// directory. After a SIGKILL, FlowJournal::Open replays the surviving
// records (the torn tail already truncated by the segment layer) into a
// FlowJournalState, from which ResumeFromJournal derives the FlowResume
// the next incarnation hands to Executor::Run: how many attempts the dead
// incarnations consumed (the retry budget spans process boundaries) and
// the target-row baseline for the durable-prefix load skip (recomputing it
// from the target would silently re-count rows a dead incarnation already
// landed). Recovery points referenced by rp_commit records are re-adopted
// into a fresh RecoveryPointStore via AdoptJournaledRecoveryPoints.
//
// Record schema (fields after seq + type; DESIGN.md "Crash recovery"):
//   load_base      rows                          target rows before 1st load
//   attempt_start  attempt mode resume_cut       mode = phased|streaming
//   rp_commit      point_id cut rows             after the marker sealed
//   budget         attempt skipped quarantined   successful attempt only
//   attempt_end    attempt status_code           "ok" or the failure code
//   flow_commit    —                             load + post_success done
//   replay_start   key op rows target_base       quarantine replay group
//   replay_end     key                           group fully applied
//   spill_dir      dir                           spill runs live under dir

#ifndef QOX_ENGINE_FLOW_JOURNAL_H_
#define QOX_ENGINE_FLOW_JOURNAL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/journal_file.h"
#include "storage/recovery_store.h"

namespace qox {

/// State reconstructed by replaying the journal.
struct FlowJournalState {
  /// attempt_start records seen: attempts consumed by this and all prior
  /// incarnations (a started-but-unfinished attempt was consumed).
  size_t attempts_started = 0;
  size_t attempts_finished = 0;
  std::string last_attempt_status;
  /// Flow fully committed (load + post_success + RP cleanup done).
  bool committed = false;
  bool has_load_base = false;
  size_t load_base_rows = 0;
  /// Budget counters of the last successful attempt.
  size_t budget_skipped = 0;
  size_t budget_quarantined = 0;
  struct RpCommit {
    std::string point_id;
    size_t cut = 0;
    size_t rows = 0;
  };
  /// In journal order; the latest commit of a point supersedes earlier
  /// ones (std::map keyed by point_id keeps exactly the latest).
  std::map<std::string, RpCommit> rp_commits;
  struct ReplayGroup {
    int64_t op_index = 0;
    size_t rows = 0;
    /// Target row count recorded immediately before the group's append.
    size_t target_base = 0;
    bool done = false;
  };
  /// Quarantine-replay dedup state, keyed by the group's content key.
  std::map<std::string, ReplayGroup> replay;
  /// Directories a budgeted incarnation spilled under (deduplicated, in
  /// first-seen order). A supervised restart sweeps them for orphaned
  /// `.spill` / `.spill.tmp` files left by a SIGKILL mid-spill.
  std::vector<std::string> spill_dirs;
};

/// Cross-process resume state handed to Executor::Run by a supervisor.
struct FlowResume {
  /// Attempts consumed by earlier incarnations; the next attempt numbers
  /// from prior_attempts + 1 and the retry budget counts them.
  size_t prior_attempts = 0;
  /// Target row count before the flow's very first load, journaled by the
  /// first incarnation. When set, the executor uses it (instead of
  /// re-reading the target) as the durable-prefix baseline, so rows a dead
  /// incarnation already landed are skipped, not re-appended.
  bool has_load_base = false;
  size_t load_base_rows = 0;
};

class FlowJournal;
using FlowJournalPtr = std::shared_ptr<FlowJournal>;

class FlowJournal {
 public:
  /// Opens (creating if absent) `dir/<flow_id>.journal`, recovering state
  /// from the surviving records.
  static Result<FlowJournalPtr> Open(const std::string& dir,
                                     const std::string& flow_id,
                                     JournalSync sync);

  /// State as of open plus every record appended since.
  FlowJournalState state() const;

  Status RecordLoadBase(size_t rows);
  Status RecordAttemptStart(size_t attempt, bool streaming, int resume_cut);
  Status RecordRpCommit(const std::string& point_id, size_t cut, size_t rows);
  Status RecordBudget(size_t attempt, size_t skipped, size_t quarantined);
  Status RecordAttemptEnd(size_t attempt, const std::string& status_code);
  Status RecordFlowCommit();
  Status RecordReplayStart(const std::string& key, int64_t op_index,
                           size_t rows, size_t target_base);
  Status RecordReplayEnd(const std::string& key);
  Status RecordSpillDir(const std::string& dir);

  /// Compacts the segment after a flow commit: drops the per-attempt and
  /// rp_commit noise (the RPs are gone once the flow committed) and keeps
  /// only the records later opens still need — load_base, flow_commit, and
  /// the replay dedup groups. Atomic-rename rotation underneath.
  Status Compact();

  const std::string& path() const { return journal_->path(); }
  JournalSync sync_policy() const { return journal_->sync_policy(); }
  size_t syncs() const { return journal_->syncs(); }
  size_t truncated_bytes() const { return journal_->truncated_bytes(); }

 private:
  explicit FlowJournal(std::unique_ptr<JournalFile> journal)
      : journal_(std::move(journal)) {}

  /// Applies one record to `state`; unknown types are ignored (forward
  /// compatibility). Static so tests can fold prefixes independently.
  static void Apply(const JournalRecord& record, FlowJournalState* state);

  Status AppendAndApply(const std::string& type,
                        const std::vector<std::string>& fields, bool commit);

  const std::unique_ptr<JournalFile> journal_;
  mutable std::mutex mu_;
  FlowJournalState state_;
};

/// Derives the resume state the next incarnation runs under.
FlowResume ResumeFromJournal(const FlowJournalState& state);

/// Re-registers every journaled recovery point into `store` (which starts
/// logically empty in a fresh process). Points whose on-disk marker did
/// not survive are skipped — resume falls back past them. Returns the
/// number adopted.
Result<size_t> AdoptJournaledRecoveryPoints(const FlowJournalState& state,
                                            const std::string& flow_id,
                                            RecoveryPointStore* store);

}  // namespace qox

#endif  // QOX_ENGINE_FLOW_JOURNAL_H_
