// FlowSupervisor: runs a flow in a forked child process and re-executes it
// after abnormal death until it converges or the incarnation budget runs
// out.
//
// The supervisor is the process-level analogue of the executor's retry
// loop: where retries heal transient *operation* failures inside one
// process, supervision heals the death of the process itself (SIGKILL, OOM
// kill, power loss of a worker). The protocol:
//
//   1. Acquire the flow's lease under the scratch directory (stale-lease
//      takeover when the previous supervisor died).
//   2. Read the FlowJournal: if the flow already committed, done.
//   3. Fork. The child opens the journal (truncating any torn tail the
//      predecessor's death left), derives a FlowResume, re-adopts journaled
//      recovery points, runs the caller's body, and _exits: 0 on success,
//      nonzero (with the status written to a verdict file) on a
//      deterministic failure.
//   4. The parent waits. Normal exit 0 = converged; normal nonzero exit =
//      deterministic failure, do NOT restart (it would loop); death by
//      signal = crash, go to 2.
//
// Sanitizer/fork caveat: Run must be called while the calling process has
// no competing threads (the forked child may create threads freely — both
// executors do). Test binaries and benches satisfy this naturally.

#ifndef QOX_ENGINE_SUPERVISOR_H_
#define QOX_ENGINE_SUPERVISOR_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "engine/flow_journal.h"
#include "storage/journal_file.h"

namespace qox {

/// Everything a supervised incarnation gets from its supervisor. The body
/// builds its stores/config around these: pass `journal` and `resume` into
/// ExecutionConfig, adopt recovery points via AdoptJournaledRecoveryPoints
/// with `journal->state()`.
struct FlowEnv {
  std::string scratch_dir;
  FlowJournalPtr journal;
  FlowResume resume;
  /// 1-based incarnation number (1 = first child).
  int incarnation = 1;
};

/// Runs in the CHILD process. Every durable effect must go through stores
/// rooted on disk (the child's memory dies with it).
using SupervisedBody = std::function<Status(const FlowEnv&)>;

struct SupervisorOptions {
  /// Directory holding the lease, journal, and (by convention) the flow's
  /// durable stores. Created if absent.
  std::string scratch_dir;
  /// Fork budget: total children, including the first. When crashes
  /// exhaust it the run fails with kUnavailable.
  size_t max_incarnations = 8;
  JournalSync journal_sync = JournalSync::kAlways;
  /// Runs in the child immediately after fork, before the journal opens —
  /// the crash-test hook for arming per-incarnation kill schedules
  /// (common/crash_point.h).
  std::function<void(int incarnation)> child_setup;
};

struct SupervisorReport {
  bool success = false;
  /// OK on success; the child's verdict on deterministic failure;
  /// kUnavailable when the incarnation budget ran out.
  Status final_status;
  /// Children forked.
  size_t incarnations = 0;
  /// Children that died abnormally (signal) and triggered a restart.
  size_t crashes = 0;
  /// Acquisition displaced a stale lease left by a dead supervisor.
  bool lease_takeover = false;
  /// Journal state after the last incarnation (the parent's view).
  FlowJournalState journal_state;
  /// High-water mark of journaled attempt starts across all of the
  /// parent's journal peeks. Unlike journal_state.attempts_started this
  /// survives the executor's post-commit Compact (which drops per-attempt
  /// records), so it measures re-execution even for converged flows.
  size_t attempts_observed = 0;
  int64_t total_micros = 0;
};

class FlowSupervisor {
 public:
  /// Supervises `body` for `flow_id` until it converges, fails
  /// deterministically, or exhausts options.max_incarnations. Errors of
  /// the supervision machinery itself (lease held by a live process,
  /// unforkable, unreadable journal) surface as the Result's status; the
  /// flow's own outcome lands in the report.
  static Result<SupervisorReport> Run(const std::string& flow_id,
                                      const SupervisedBody& body,
                                      const SupervisorOptions& options);
};

}  // namespace qox

#endif  // QOX_ENGINE_SUPERVISOR_H_
