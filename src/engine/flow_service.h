// FlowService: a multi-flow execution service over one shared WorkerPool.
//
// The paper's QoX tradeoffs are framed per flow, but a real ETL deployment
// runs MANY flows against one machine: nightly loads, near-real-time delta
// feeds, backfills — each with its own freshness SLA. The service is that
// deployment seam. It admits flows (FlowSpec + ExecutionConfig, plus a
// cost-model execution-time estimate), holds them in a pending queue while
// the concurrency slots are full, and runs each admitted flow's driver as
// a blocking task on the shared substrate (engine/worker_pool.h), so every
// partition branch and streaming stage of every live flow competes for the
// same cores.
//
//   * SCHEDULING. The pending queue dispatches earliest-deadline-first
//     (QueuePolicy::kEdf, the default): a flow's freshness SLA becomes an
//     absolute deadline at submission, and the tightest deadline gets the
//     next free slot. kFifo preserves submission order (the baseline the
//     multi-flow benchmark compares against). Below the queue, the shared
//     pool itself pops runnable tasks EDF by TaskTag, so deadline pressure
//     reaches individual stages, not just whole flows.
//
//   * ADMISSION CONTROL. With admit_only_feasible set, a flow whose SLA
//     cannot be met under current load is rejected at Submit() with
//     kResourceExhausted instead of admitted-then-missed: projected finish
//     = now + (outstanding predicted work + this flow's prediction) /
//     pool workers. The caller can renegotiate the SLA (the QoX
//     freshness/cost tradeoff) rather than discover the miss after the
//     fact.
//
//   * ATTRIBUTION. Each flow's RunMetrics come back with queue_wait_micros
//     (admission to driver start) and deadline_slack_micros (deadline −
//     finish; negative = missed) filled in, so service-level SLA reports
//     decompose into scheduling wait vs. execution time per flow.
//
// Isolation semantics are unchanged from solo runs: a failing flow fails
// only its own ticket (drivers are ordinary Executor::Run calls; error
// containment, quarantine, retry, and crash journaling all behave exactly
// as they do standalone), and results are byte-identical to solo execution
// because only thread provenance changes, never per-flow logic.

#ifndef QOX_ENGINE_FLOW_SERVICE_H_
#define QOX_ENGINE_FLOW_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/worker_pool.h"

namespace qox {

/// Order in which pending flows take free concurrency slots.
enum class QueuePolicy {
  kEdf,   ///< earliest absolute deadline first (no-deadline flows last)
  kFifo,  ///< submission order
};

struct FlowServiceConfig {
  /// Core workers of the shared substrate ("CPUs" of the service machine).
  size_t num_workers = 4;
  /// Flow drivers allowed to run concurrently. Pending flows queue.
  size_t max_concurrent_flows = 4;
  QueuePolicy policy = QueuePolicy::kEdf;
  /// Reject flows whose SLA is predicted infeasible under current load
  /// (see header comment). Flows without an SLA or without a prediction
  /// are always admitted.
  bool admit_only_feasible = false;
};

/// One flow handed to the service. The service overrides
/// config.worker_pool (always the shared pool) and stamps
/// config.sla.absolute_deadline_micros from the SLA at submission; every
/// other knob (partitions, streaming, recovery points, redundancy,
/// containment, journaling, ...) is honored as given.
struct FlowSubmission {
  FlowSpec flow;
  ExecutionConfig config;
  /// Cost-model estimate of the flow's execution time (microseconds),
  /// e.g. CostModel::Predict(...).seconds * 1e6. Feeds admission control
  /// and the pool's load accounting; 0 = unknown (always admitted).
  int64_t predicted_micros = 0;
};

class FlowService {
 public:
  /// Service-level counters (cumulative since construction).
  struct Stats {
    size_t submitted = 0;
    size_t admitted = 0;
    size_t rejected = 0;   ///< admission-control rejections
    size_t completed = 0;  ///< drivers finished (ok or failed)
    size_t deadline_hits = 0;    ///< completed with an SLA, on time
    size_t deadline_misses = 0;  ///< completed with an SLA, late
  };

  explicit FlowService(const FlowServiceConfig& config);
  /// Waits for every admitted flow to finish, then tears down the pool.
  ~FlowService();

  FlowService(const FlowService&) = delete;
  FlowService& operator=(const FlowService&) = delete;

  /// Admits a flow (or rejects it under admission control). Returns a
  /// ticket id for Wait(). The flow may start running before Submit
  /// returns; it never runs on the caller's thread.
  Result<uint64_t> Submit(FlowSubmission submission);

  /// Blocks until the flow behind `ticket` finishes; returns its result
  /// (the same Result an Executor::Run of the flow would return, with
  /// queue_wait_micros / deadline_slack_micros attribution filled in).
  /// A ticket may be waited on once; a second Wait errors kNotFound.
  Result<RunMetrics> Wait(uint64_t ticket);

  /// Blocks until every admitted flow has finished.
  void Drain();

  /// The shared substrate (tests observe steal/help counters through it).
  WorkerPool* pool() { return &pool_; }

  Stats stats() const;

 private:
  enum class FlowState { kPending, kRunning, kDone };

  struct FlowEntry {
    FlowSubmission submission;
    uint64_t ticket = 0;
    FlowState state = FlowState::kPending;
    int64_t submit_micros = 0;
    int64_t absolute_deadline_micros = 0;  ///< 0 = no SLA
    int64_t queue_wait_micros = 0;
    Result<RunMetrics> result{Status::Internal("flow not finished")};
  };

  /// Starts pending flows while free slots remain (mu_ held).
  void DispatchLocked();
  /// Picks the next pending flow per policy (mu_ held); null when none.
  FlowEntry* NextPendingLocked();
  void RunDriver(FlowEntry* entry);

  const FlowServiceConfig config_;
  WorkerPool pool_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::map<uint64_t, std::unique_ptr<FlowEntry>> flows_;
  uint64_t next_ticket_ = 1;
  size_t running_ = 0;
  size_t live_ = 0;  ///< admitted flows not yet done (pending + running)
  /// Sum of predicted_micros over admitted-but-unfinished flows (the
  /// admission-control load estimate).
  int64_t outstanding_predicted_ = 0;
  Stats stats_;
};

}  // namespace qox

#endif  // QOX_ENGINE_FLOW_SERVICE_H_
