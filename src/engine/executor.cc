#include "engine/executor.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <thread>

#include "common/clock.h"
#include "engine/memory_budget.h"
#include "engine/streaming.h"
#include "storage/spill_manager.h"

namespace qox {

Schema RejectStoreSchema() {
  return Schema({{"flow_id", DataType::kString, false},
                 {"instance", DataType::kInt64, false},
                 {"attempt", DataType::kInt64, false},
                 {"rejected_row", DataType::kString, false}});
}

size_t FingerprintRows(const std::vector<Row>& rows) {
  // Order-insensitive combination: commutative sum of mixed row hashes.
  size_t acc = 0x51ed270b0129ULL + rows.size();
  for (const Row& row : rows) {
    const size_t h = row.Hash();
    acc += h * (h | 1);
  }
  return acc;
}

namespace {

std::string CutPointId(int instance, size_t cut) {
  return "i" + std::to_string(instance) + ".cut" + std::to_string(cut);
}

/// Sleeps out a retry backoff and accounts it. Kept out of line so the
/// instance loop and the load loop charge waits identically.
void WaitBackoff(const RetryPolicy& policy, size_t failed_attempt, Rng* rng,
                 RunMetrics* metrics) {
  const int64_t wait = policy.BackoffMicros(failed_attempt, rng);
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(wait));
    metrics->backoff_micros += wait;
  }
}

/// Per-instance flow execution: a scheduler over the lowered ExecutionPlan
/// with recovery semantics. Produces the rows at the final cut (pre-load).
/// Phased mode runs the plan's sections in order, materializing at every
/// barrier; streaming mode submits one blocking stage task per plan node
/// and wires one bounded channel per edge. All work — partition branches,
/// streaming stages — goes through the instance's ExecContext, so it runs
/// on whatever substrate the caller provided (a private pool for solo
/// runs, the shared pool under a FlowService) under the flow's deadline
/// tag.
class FlowRunner {
 public:
  FlowRunner(const FlowSpec& flow, const ExecutionConfig& config,
             const ExecutionPlan& plan,
             const std::vector<Schema>& cut_schemas, const ExecContext& exec,
             int instance_id, std::atomic<bool>* cancelled)
      : flow_(flow),
        config_(config),
        plan_(plan),
        cut_schemas_(cut_schemas),
        exec_(exec),
        instance_id_(instance_id),
        cancelled_(cancelled),
        backoff_rng_(config.retry.jitter_seed +
                     static_cast<uint64_t>(instance_id)),
        budget_state_(config.error_budget),
        memory_budget_(config.memory_budget_bytes),
        spill_(config.spill_dir + "/i" + std::to_string(instance_id)),
        journal_(instance_id == 0 ? config.journal.get() : nullptr) {
    ctx_.cancelled = cancelled;
    ctx_.rejected_rows = &rejected_;
    ctx_.dim_cache_builds = &dim_cache_builds_;
    ctx_.dim_cache_hits = &dim_cache_hits_;
    ctx_.columnar_batches = &columnar_batches_;
    ctx_.columnar_rows = &columnar_rows_;
    ctx_.memory_budget = &memory_budget_;
    ctx_.spill = &spill_;
    if (config_.spill_write_fault) {
      spill_.SetWriteFault(config_.spill_write_fault);
    }
    if (config_.reject_store != nullptr) {
      ctx_.reject_sink = [this](const Row& row) -> Status {
        RowBatch audit(RejectStoreSchema());
        Row record;
        record.Append(Value::String(flow_.id));
        record.Append(Value::Int64(instance_id_));
        record.Append(Value::Int64(current_attempt_.load()));
        record.Append(Value::String(row.ToString()));
        audit.Append(std::move(record));
        return config_.reject_store->Append(audit);
      };
    }
    if (config_.dead_letter != nullptr) {
      quarantine_sink_ = [this](const ContainedRow& contained) -> Status {
        QuarantineRecord record;
        record.flow_id = flow_.id;
        const size_t node =
            plan_.NodeForOp(static_cast<size_t>(contained.op_index));
        record.node_id = node == ExecutionPlan::kNoNode
                             ? -1
                             : static_cast<int64_t>(node);
        record.op_index = contained.op_index;
        record.op_name = contained.op_name;
        record.instance = instance_id_;
        record.attempt = current_attempt_.load();
        record.row_index =
            quarantine_seq_.fetch_add(1, std::memory_order_relaxed);
        record.status_code = StatusCodeName(contained.cause.code());
        record.status_message = contained.cause.message();
        record.payload = EncodeQuarantinePayload(contained.row);
        return config_.dead_letter->Quarantine(record);
      };
    }
  }

  /// Streaming with no redundancy loads inline at the dataflow sink
  /// (redundant instances must still hand their output to the voter).
  bool StreamingInlineLoad() const {
    return config_.streaming && config_.redundancy <= 1;
  }

  /// Whether the inline-load sink ran and made the target current (so the
  /// caller must skip its own load phase).
  bool loaded_inline() const { return loaded_inline_; }

  /// Runs (with per-instance retries unless redundant) and fills `*out`
  /// with the transform output. Metrics cover this instance only. In
  /// inline-load streaming mode `*out` stays empty: rows are already in
  /// the target on success.
  Status RunToOutput(std::vector<Row>* out) {
    const RetryPolicy& policy = config_.retry;
    const size_t max_attempts =
        config_.redundancy > 1 ? 1 : std::max<size_t>(1, policy.max_attempts);
    metrics_.streaming = config_.streaming;
    if (StreamingInlineLoad()) {
      if (config_.resume.has_load_base) {
        // Cross-process resume: the baseline journaled before the flow's
        // first load. Re-reading the target here would count rows a dead
        // incarnation durably landed as pre-existing and re-append them.
        load_base_rows_ = config_.resume.load_base_rows;
      } else {
        // Baseline for cross-attempt incremental restart: rows beyond this
        // count are ours, durably loaded by an earlier (failed) attempt.
        QOX_ASSIGN_OR_RETURN(load_base_rows_, flow_.target->NumRows());
      }
    }
    if (!memory_budget_.unlimited() && journal_ != nullptr) {
      // Durable before any spill write: a SIGKILL mid-spill must leave the
      // successor a pointer to the orphaned `.spill.tmp` files.
      QOX_RETURN_IF_ERROR(journal_->RecordSpillDir(spill_.dir()));
    }
    // Attempt numbering continues where dead incarnations stopped, so the
    // retry budget spans process boundaries.
    size_t attempt = config_.resume.prior_attempts + 1;
    while (true) {
      metrics_.attempts = attempt;
      current_attempt_.store(static_cast<int64_t>(attempt));
      attempt_deadline_micros_ =
          policy.attempt_deadline_micros > 0
              ? NowMicros() + policy.attempt_deadline_micros
              : 0;
      const StopWatch attempt_timer;
      // Budget accounting is per attempt: a retried attempt re-contains the
      // same rows, so carrying counts across attempts would double-charge.
      budget_state_.Reset();
      // Memory accounting likewise: a failed attempt's operators may die
      // before releasing their charges.
      memory_budget_.ResetUsage();
      const int resume_cut =
          FindResumeCut(static_cast<int>(NumOps()) + 1);
      if (journal_ != nullptr) {
        QOX_RETURN_IF_ERROR(journal_->RecordAttemptStart(
            attempt, config_.streaming, resume_cut));
      }
      const Status st =
          config_.streaming
              ? RunAttemptStreaming(static_cast<int>(attempt), resume_cut, out)
              : RunAttempt(static_cast<int>(attempt), resume_cut, out);
      // Spill runs are strictly intra-attempt temporaries: delete them on
      // every exit from an attempt, successful or not (best effort on the
      // failure path — a dangling file must not mask the attempt verdict;
      // the restart sweep catches what this misses).
      (void)spill_.RemoveAll();
      if (st.ok()) {
        // Containment counters are reported for the successful attempt only
        // (failed attempts' contained rows were rework, not output).
        metrics_.rows_skipped += budget_state_.skipped();
        metrics_.rows_quarantined += budget_state_.quarantined();
        metrics_.mem_high_water_bytes = memory_budget_.high_water();
        metrics_.dim_cache_builds = dim_cache_builds_.load();
        metrics_.dim_cache_hits = dim_cache_hits_.load();
        metrics_.columnar_batches = columnar_batches_.load();
        metrics_.columnar_rows = columnar_rows_.load();
        metrics_.spill_runs = spill_.runs_created();
        metrics_.spill_rows = spill_.rows_spilled();
        metrics_.spill_bytes = spill_.bytes_spilled();
        if (journal_ != nullptr) {
          QOX_RETURN_IF_ERROR(journal_->RecordBudget(
              attempt, budget_state_.skipped(), budget_state_.quarantined()));
          QOX_RETURN_IF_ERROR(journal_->RecordAttemptEnd(attempt, "ok"));
        }
        return Status::OK();
      }
      if (st.IsInjectedFailure()) ++metrics_.failures_injected;
      if (journal_ != nullptr) {
        // Best effort on the failure path: the attempt's verdict must not
        // be masked by a journal I/O error.
        (void)journal_->RecordAttemptEnd(attempt,
                                         StatusCodeName(st.code()));
      }
      // Only transient failures consume the retry budget; permanent errors
      // (bad schema, corrupted data, real I/O errors) fail the run at once.
      // Under ResourcePolicy::kPauseRetry, resource exhaustion (disk full
      // at a spill or write boundary) is reclassified transient: pause for
      // the backoff — modelling "wait for the operator to free space" —
      // and retry.
      const bool retryable =
          IsTransient(st) ||
          (config_.resource_policy == ResourcePolicy::kPauseRetry &&
           st.code() == StatusCode::kResourceExhausted);
      if (!retryable || attempt >= max_attempts) return st;
      ++metrics_.retries_by_cause[StatusCodeName(st.code())];
      // Lost work = rework: the part of the attempt NOT durably saved by
      // a recovery point written during it.
      metrics_.lost_work_micros += std::max<int64_t>(
          0, attempt_timer.ElapsedMicros() - durable_elapsed_micros_);
      WaitBackoff(policy, attempt, &backoff_rng_, &metrics_);
      ++attempt;
    }
  }

  RunMetrics& metrics() { return metrics_; }
  size_t rejected() const { return rejected_.load(); }

 private:
  size_t NumOps() const { return flow_.transforms.size(); }

  /// Points a pipeline at the flow's shared containment state. Every
  /// pipeline construction site — phased sequential/parallel units and
  /// streaming stages — goes through here, which is what makes both
  /// schedulers enforce identical containment semantics.
  void WireContainment(PipelineConfig* pc) {
    pc->error_policies = &config_.error_policies;
    pc->error_budget = &budget_state_;
    pc->quarantine_sink = quarantine_sink_;
    // The columnar flag rides along for the same reason: every pipeline of
    // either scheduler must agree on the execution mode.
    pc->columnar = config_.columnar;
  }

  /// Sheds one load row under ResourcePolicy::kShedToQuarantine: routes it
  /// to the dead-letter ledger (count-and-drop when none is configured)
  /// and charges the flow error budget — shedding buys availability with
  /// completeness, and the budget caps how much completeness it may spend.
  Status ShedRow(const Row& row, const Status& cause) {
    if (quarantine_sink_) {
      ContainedRow contained;
      contained.op_index = static_cast<int>(NumOps());  // the load boundary
      contained.op_name = "load";
      contained.row = row;
      contained.cause = cause;
      QOX_RETURN_IF_ERROR(quarantine_sink_(contained));
    }
    {
      std::lock_guard<std::mutex> lock(stage_mu_);
      ++metrics_.rows_shed;
    }
    return budget_state_.Charge(ErrorPolicy::kQuarantine,
                                static_cast<int>(NumOps()));
  }

  /// Latest cut strictly below `below` with a complete recovery point, or
  /// -1 (from scratch). Pass NumOps() + 1 for "the latest anywhere"; pass a
  /// cut that failed verification to find the next older fallback. The
  /// candidate cuts are the plan's (deduplicated, sorted) barrier cuts.
  int FindResumeCut(int below) const {
    if (config_.rp_store == nullptr) return -1;
    int best = -1;
    for (const size_t cut : plan_.rp_cuts()) {
      if (static_cast<int>(cut) >= below) break;
      if (config_.rp_store->Has(
              {flow_.id, CutPointId(instance_id_, cut)})) {
        best = static_cast<int>(cut);
      }
    }
    return best;
  }

  Status WriteRp(size_t cut, const std::vector<Row>& rows) {
    const StopWatch timer;
    QOX_RETURN_IF_ERROR(config_.rp_store->Save(
        {flow_.id, CutPointId(instance_id_, cut)}, cut_schemas_[cut], rows));
    metrics_.rp_write_micros += timer.ElapsedMicros();
    ++metrics_.rp_points_written;
    // Everything up to here is durable: a subsequent failure loses only
    // the work after this point.
    durable_elapsed_micros_ = NowMicros() - attempt_start_micros_;
    if (journal_ != nullptr) {
      // WAL the sealed point so a successor process can re-adopt it: a
      // fresh RecoveryPointStore starts logically empty.
      QOX_RETURN_IF_ERROR(journal_->RecordRpCommit(
          CutPointId(instance_id_, cut), cut, rows.size()));
    }
    return Status::OK();
  }

  Result<std::vector<Row>> LoadRp(size_t cut) {
    const StopWatch timer;
    QOX_ASSIGN_OR_RETURN(
        RowBatch batch,
        config_.rp_store->Load({flow_.id, CutPointId(instance_id_, cut)},
                               cut_schemas_[cut]));
    metrics_.rp_read_micros += timer.ElapsedMicros();
    ++metrics_.resumed_from_rp;
    return std::move(batch.rows());
  }

  Result<std::vector<Row>> Extract(int attempt) {
    const StopWatch timer;
    QOX_ASSIGN_OR_RETURN(const size_t total, flow_.source->NumRows());
    if (config_.injector != nullptr) {
      // Report the phase start before scanning: an empty source never
      // invokes the scan consumer, so a failure placed at extraction
      // fraction 0 would otherwise never get a chance to fire.
      const Status st = config_.injector->Check(instance_id_, attempt,
                                                /*op_index=*/-1, 0, total);
      if (!st.ok()) {
        metrics_.extract_micros += timer.ElapsedMicros();
        return st;
      }
    }
    std::vector<Row> rows;
    rows.reserve(total);
    Status scan_status = flow_.source->Scan(
        config_.batch_size, [&](RowBatch& batch) -> Status {
          if (cancelled_ != nullptr && cancelled_->load()) {
            return Status::Cancelled("extraction cancelled");
          }
          if (attempt_deadline_micros_ > 0 &&
              NowMicros() > attempt_deadline_micros_) {
            return Status::DeadlineExceeded(
                "attempt deadline expired during extraction");
          }
          if (config_.injector != nullptr) {
            QOX_RETURN_IF_ERROR(config_.injector->Check(
                instance_id_, attempt, /*op_index=*/-1,
                rows.size() + batch.num_rows(), total));
          }
          rows.insert(rows.end(), std::make_move_iterator(batch.rows().begin()),
                      std::make_move_iterator(batch.rows().end()));
          return Status::OK();
        });
    metrics_.extract_micros += timer.ElapsedMicros();
    if (!scan_status.ok()) return scan_status;
    metrics_.rows_extracted += rows.size();
    return rows;
  }

  /// Runs transform ops [begin, end) sequentially on this thread.
  Result<std::vector<Row>> RunSequentialUnit(size_t begin, size_t end,
                                             std::vector<Row> rows,
                                             int attempt) {
    std::vector<OperatorPtr> ops;
    ops.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) ops.push_back(flow_.transforms[i]());
    PipelineConfig pc;
    pc.instance_id = instance_id_;
    pc.attempt = attempt;
    pc.op_index_offset = static_cast<int>(begin);
    pc.injector = config_.injector;
    pc.expected_input_rows = rows.size();
    pc.deadline_micros = attempt_deadline_micros_;
    WireContainment(&pc);
    QOX_ASSIGN_OR_RETURN(
        std::unique_ptr<Pipeline> pipeline,
        Pipeline::Create(cut_schemas_[begin], std::move(ops), &ctx_, pc));
    // The unit owns these rows outright, so batches are handed to the
    // pipeline by move (pass-through ops then avoid deep-copying cells).
    const SchemaPtr in_schema = MakeSchemaPtr(cut_schemas_[begin]);
    RowBatch batch(in_schema);
    for (size_t i = 0; i < rows.size(); ++i) {
      batch.Append(std::move(rows[i]));
      if (batch.num_rows() >= config_.batch_size) {
        QOX_RETURN_IF_ERROR(pipeline->Push(std::move(batch)));
        batch = RowBatch(in_schema);
      }
    }
    if (!batch.empty()) QOX_RETURN_IF_ERROR(pipeline->Push(std::move(batch)));
    QOX_RETURN_IF_ERROR(pipeline->Finish());
    for (const OpStats& stats : pipeline->op_stats()) {
      metrics_.AccumulateOp(stats);
    }
    return pipeline->TakeOutput();
  }

  /// Runs transform ops [begin, end) partitioned over the pool, then merges.
  Result<std::vector<Row>> RunParallelUnit(size_t begin, size_t end,
                                           std::vector<Row> rows,
                                           int attempt) {
    const size_t num_parts = config_.parallel.partitions;
    // Distribute rows.
    std::vector<std::vector<Row>> parts(num_parts);
    for (auto& part : parts) part.reserve(rows.size() / num_parts + 1);
    if (config_.parallel.scheme == PartitionScheme::kHash) {
      QOX_ASSIGN_OR_RETURN(
          const size_t col,
          cut_schemas_[begin].FieldIndex(config_.parallel.hash_column));
      for (Row& row : rows) {
        const size_t h = row.HashColumns({col});
        parts[h % num_parts].push_back(std::move(row));
      }
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        parts[i % num_parts].push_back(std::move(rows[i]));
      }
    }
    rows.clear();

    struct PartResult {
      Status status;
      std::vector<Row> rows;
      std::vector<OpStats> op_stats;
      int64_t micros = 0;
    };
    std::vector<PartResult> results(num_parts);
    // Partition branches are CPU tasks of the substrate: they fan out under
    // the flow's deadline tag and the help-waiting BulkExecute runs queued
    // branches on this thread too, so nested fan-out cannot deadlock a
    // small shared pool.
    exec_.BulkExecute(num_parts, [&](size_t p) {
      PartResult& result = results[p];
      const StopWatch part_timer;
      std::vector<OperatorPtr> ops;
      ops.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        ops.push_back(flow_.transforms[i]());
      }
      PipelineConfig pc;
      pc.instance_id = instance_id_;
      pc.attempt = attempt;
      pc.op_index_offset = static_cast<int>(begin);
      pc.injector = config_.injector;
      pc.expected_input_rows = parts[p].size();
      pc.deadline_micros = attempt_deadline_micros_;
      WireContainment(&pc);
      Result<std::unique_ptr<Pipeline>> pipeline = Pipeline::Create(
          cut_schemas_[begin], std::move(ops), &ctx_, pc);
      if (!pipeline.ok()) {
        result.status = pipeline.status();
        return;
      }
      const SchemaPtr part_schema = MakeSchemaPtr(cut_schemas_[begin]);
      RowBatch batch(part_schema);
      Status st = Status::OK();
      for (Row& row : parts[p]) {
        batch.Append(std::move(row));
        if (batch.num_rows() >= config_.batch_size) {
          st = pipeline.value()->Push(std::move(batch));
          if (!st.ok()) break;
          batch = RowBatch(part_schema);
        }
      }
      if (st.ok() && !batch.empty()) {
        st = pipeline.value()->Push(std::move(batch));
      }
      if (st.ok()) st = pipeline.value()->Finish();
      result.status = st;
      if (st.ok()) result.rows = pipeline.value()->TakeOutput();
      result.op_stats = pipeline.value()->op_stats();
      result.micros = part_timer.ElapsedMicros();
    });
    // Injected failures win over secondary cancellations so the retry
    // machinery sees the true cause.
    Status failed = Status::OK();
    for (const PartResult& result : results) {
      if (result.status.IsInjectedFailure()) {
        failed = result.status;
        break;
      }
      if (!result.status.ok() && failed.ok()) failed = result.status;
    }
    for (const PartResult& result : results) {
      for (const OpStats& stats : result.op_stats) {
        metrics_.AccumulateOp(stats);
      }
    }
    QOX_RETURN_IF_ERROR(failed);
    ParallelUnitStats unit_stats;
    unit_stats.range_begin = begin;
    unit_stats.range_end = end;
    for (const PartResult& result : results) {
      unit_stats.partition_micros.push_back(result.micros);
      int64_t serialized = 0;
      for (const OpStats& stats : result.op_stats) {
        if (stats.kind == "delta") serialized += stats.micros;
      }
      unit_stats.serialized_micros.push_back(serialized);
    }
    // Merge branches back. Concatenation plus (by default) re-establishing
    // a global order — the non-trivial merge cost the paper warns about.
    const StopWatch merge_timer;
    std::vector<Row> merged;
    size_t total = 0;
    for (const PartResult& result : results) total += result.rows.size();
    merged.reserve(total);
    for (PartResult& result : results) {
      std::move(result.rows.begin(), result.rows.end(),
                std::back_inserter(merged));
      result.rows.clear();
    }
    if (config_.ordered_merge && !merged.empty() &&
        merged.front().num_values() > 0) {
      std::stable_sort(merged.begin(), merged.end(),
                       [](const Row& a, const Row& b) {
                         return a.value(0).Compare(b.value(0)) < 0;
                       });
    }
    unit_stats.merge_micros = merge_timer.ElapsedMicros();
    metrics_.merge_micros += unit_stats.merge_micros;
    metrics_.parallel_units.push_back(std::move(unit_stats));
    return merged;
  }

  /// Resolves the resume point: loads the newest verifiable recovery point
  /// into `*rows`, falling back past corrupted points (dropping them) to
  /// older ones. Returns the cut resumed from, or -1 for a from-scratch
  /// attempt (`*rows` untouched).
  Result<int> ResumeFromRp(int resume_cut, std::vector<Row>* rows) {
    while (resume_cut >= 0) {
      Result<std::vector<Row>> loaded =
          LoadRp(static_cast<size_t>(resume_cut));
      if (loaded.ok()) {
        *rows = loaded.TakeValue();
        return resume_cut;
      }
      if (!loaded.status().IsCorruptedData()) return loaded.status();
      ++metrics_.rp_corruption_fallbacks;
      QOX_RETURN_IF_ERROR(config_.rp_store->Drop(
          {flow_.id,
           CutPointId(instance_id_, static_cast<size_t>(resume_cut))}));
      resume_cut = FindResumeCut(resume_cut);
    }
    return -1;
  }

  /// Phased scheduler: runs the plan's sections in order, executing each
  /// section's units on materialized row vectors and persisting at the
  /// recovery-point barrier ending the section.
  Status RunAttempt(int attempt, int resume_cut, std::vector<Row>* out) {
    attempt_start_micros_ = NowMicros();
    durable_elapsed_micros_ = 0;
    std::vector<Row> rows;
    size_t current_cut = 0;
    // Resume from the newest complete recovery point. A point whose
    // checksum fails verification is dropped and resume falls back to the
    // next older complete one (ultimately from scratch) instead of failing
    // the run on its own persisted state.
    QOX_ASSIGN_OR_RETURN(const int resumed_cut,
                         ResumeFromRp(resume_cut, &rows));
    const bool resumed = resumed_cut >= 0;
    if (resumed) current_cut = static_cast<size_t>(resumed_cut);
    if (!resumed) {
      QOX_ASSIGN_OR_RETURN(rows, Extract(attempt));
      current_cut = 0;
      if (plan_.rp_after_extract()) QOX_RETURN_IF_ERROR(WriteRp(0, rows));
    }
    // Denominator for the error budget's end-of-attempt fraction check.
    const size_t attempt_input_rows = rows.size();
    // Resume cuts are always barrier cuts, i.e. section boundaries, so a
    // resumed attempt skips whole sections and never enters one mid-way.
    // The transform phase is timed exclusively: recovery-point writes have
    // their own counter so the phases are additive.
    for (const PlanSection& section : plan_.sections()) {
      if (section.end_cut <= current_cut) continue;
      const StopWatch segment_timer;
      for (const PlanUnit& unit : section.units) {
        QOX_ASSIGN_OR_RETURN(
            rows, unit.parallel
                      ? RunParallelUnit(unit.begin, unit.end, std::move(rows),
                                        attempt)
                      : RunSequentialUnit(unit.begin, unit.end,
                                          std::move(rows), attempt));
      }
      metrics_.transform_micros += segment_timer.ElapsedMicros();
      current_cut = section.end_cut;
      if (section.rp_at_end) {
        QOX_RETURN_IF_ERROR(WriteRp(current_cut, rows));
      }
    }
    // Transforms have drained: enforce the budget's fractional ceiling
    // before the output leaves the attempt (i.e. before load).
    QOX_RETURN_IF_ERROR(budget_state_.CheckFraction(attempt_input_rows));
    *out = std::move(rows);
    return Status::OK();
  }

  // ===== Streaming (pipelined) execution ==================================
  //
  // The attempt is wired as a dataflow of stages connected by bounded
  // channels (engine/streaming.h): source (extract, or recovery-point
  // replay) → transform units split exactly as RunSegment splits them →
  // recovery-point barriers → sink (inline load, or a collector when the
  // redundancy voter needs the output). Stage bodies run on their own
  // threads; they never touch metrics_ except under stage_mu_, and phase
  // counters are attributed from per-stage busy time after Join. Blocking
  // operators (inside pipelines), ordered-merge sorts, and recovery-point
  // barriers remain the only full materialization points.

  /// Appends `row` to `*acc`, flushing full batches into `out`.
  Status EmitRow(Row row, RowBatch* acc, BatchChannel* out,
                 StageStats* stats) {
    acc->Append(std::move(row));
    if (acc->num_rows() >= config_.batch_size) {
      return FlushBatch(acc, out, stats);
    }
    return Status::OK();
  }

  /// Sends `*acc`'s rows into `out` (no-op when empty) and resets it.
  Status FlushBatch(RowBatch* acc, BatchChannel* out, StageStats* stats) {
    if (acc->empty()) return Status::OK();
    RowBatch send(acc->schema_ptr());
    send.rows() = std::move(acc->rows());
    acc->Clear();
    stats->rows += send.num_rows();
    ++stats->batches;
    return out->Push(std::move(send), &stats->backpressure_micros);
  }

  /// Builds a bound pipeline over ops [begin, end) (shared by streaming
  /// transform stages; `expected_rows` feeds failure-fraction denominators).
  Result<std::unique_ptr<Pipeline>> MakePipeline(size_t begin, size_t end,
                                                 int attempt,
                                                 size_t expected_rows) {
    std::vector<OperatorPtr> ops;
    ops.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) ops.push_back(flow_.transforms[i]());
    PipelineConfig pc;
    pc.instance_id = instance_id_;
    pc.attempt = attempt;
    pc.op_index_offset = static_cast<int>(begin);
    pc.injector = config_.injector;
    pc.expected_input_rows = expected_rows;
    pc.deadline_micros = attempt_deadline_micros_;
    WireContainment(&pc);
    return Pipeline::Create(cut_schemas_[begin], std::move(ops), &ctx_, pc);
  }

  void AccumulateOpsLocked(const std::vector<OpStats>& stats) {
    std::lock_guard<std::mutex> lock(stage_mu_);
    for (const OpStats& s : stats) metrics_.AccumulateOp(s);
  }

  /// Source stage: scans the source, streaming batches into `out`.
  void SpawnExtractStage(StageSet* stages, BatchChannelPtr out, int attempt) {
    const size_t node_id = plan_.extract_node();
    stages->Spawn("extract", [this, out, attempt,
                              node_id](StageStats* stats) -> Status {
      stats->node_id = static_cast<int64_t>(node_id);
      QOX_ASSIGN_OR_RETURN(const size_t total, flow_.source->NumRows());
      if (config_.injector != nullptr) {
        QOX_RETURN_IF_ERROR(config_.injector->Check(
            instance_id_, attempt, /*op_index=*/-1, 0, total));
      }
      size_t seen = 0;
      QOX_RETURN_IF_ERROR(flow_.source->Scan(
          config_.batch_size, [&](RowBatch& batch) -> Status {
            if (cancelled_ != nullptr && cancelled_->load()) {
              return Status::Cancelled("extraction cancelled");
            }
            if (attempt_deadline_micros_ > 0 &&
                NowMicros() > attempt_deadline_micros_) {
              return Status::DeadlineExceeded(
                  "attempt deadline expired during extraction");
            }
            seen += batch.num_rows();
            if (config_.injector != nullptr) {
              QOX_RETURN_IF_ERROR(config_.injector->Check(
                  instance_id_, attempt, /*op_index=*/-1, seen, total));
            }
            RowBatch send(batch.schema_ptr());
            send.rows() = std::move(batch.rows());
            stats->rows += send.num_rows();
            ++stats->batches;
            return out->Push(std::move(send), &stats->backpressure_micros);
          }));
      stats->channel_high_water = out->stats().high_water;
      out->Close();
      return Status::OK();
    });
  }

  /// Source stage variant: replays recovery-point rows into the dataflow.
  /// Stands in for the extract node, so it reports under its plan id.
  void SpawnReplayStage(StageSet* stages, BatchChannelPtr out,
                        std::vector<Row> rows, size_t cut) {
    auto replay = std::make_shared<std::vector<Row>>(std::move(rows));
    const size_t node_id = plan_.extract_node();
    stages->Spawn(
        "replay",
        [this, out, replay, cut, node_id](StageStats* stats) -> Status {
          stats->node_id = static_cast<int64_t>(node_id);
          RowBatch acc(cut_schemas_[cut]);
          for (Row& row : *replay) {
            QOX_RETURN_IF_ERROR(EmitRow(std::move(row), &acc, out.get(), stats));
          }
          QOX_RETURN_IF_ERROR(FlushBatch(&acc, out.get(), stats));
          replay->clear();
          stats->channel_high_water = out->stats().high_water;
          out->Close();
          return Status::OK();
        });
  }

  /// Recovery-point barrier: materializes the full cut, persists it, then
  /// re-emits downstream. Returns the barrier's output channel.
  BatchChannelPtr SpawnBarrierStage(StageSet* stages, BatchChannelPtr in,
                                    size_t cut, size_t node_id) {
    BatchChannelPtr out = stages->MakeChannel(config_.channel_capacity);
    stages->Spawn(
        plan_.nodes()[node_id].label,
        [this, in, out, cut, node_id](StageStats* stats) -> Status {
          stats->node_id = static_cast<int64_t>(node_id);
          std::vector<Row> rows;
          while (true) {
            QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                                 in->Pop(&stats->stall_micros));
            if (!item.has_value()) break;
            rows.insert(rows.end(),
                        std::make_move_iterator(item->rows().begin()),
                        std::make_move_iterator(item->rows().end()));
          }
          {
            std::lock_guard<std::mutex> lock(stage_mu_);
            QOX_RETURN_IF_ERROR(WriteRp(cut, rows));
          }
          RowBatch acc(cut_schemas_[cut]);
          for (Row& row : rows) {
            QOX_RETURN_IF_ERROR(EmitRow(std::move(row), &acc, out.get(), stats));
          }
          QOX_RETURN_IF_ERROR(FlushBatch(&acc, out.get(), stats));
          stats->channel_high_water = out->stats().high_water;
          out->Close();
          return Status::OK();
        });
    return out;
  }

  /// Sequential transform stage over ops [begin, end): pops input batches,
  /// pushes them through its pipeline, and emits whatever the pipeline has
  /// produced so far — blocking operators inside simply emit nothing until
  /// Finish.
  BatchChannelPtr SpawnTransformStage(StageSet* stages, BatchChannelPtr in,
                                      size_t begin, size_t end, int attempt,
                                      size_t expected_rows, size_t node_id) {
    BatchChannelPtr out = stages->MakeChannel(config_.channel_capacity);
    stages->Spawn(plan_.nodes()[node_id].label,
                  [this, in, out, begin, end, attempt, expected_rows,
                   node_id](StageStats* stats) -> Status {
      stats->node_id = static_cast<int64_t>(node_id);
      QOX_ASSIGN_OR_RETURN(std::unique_ptr<Pipeline> pipeline,
                           MakePipeline(begin, end, attempt, expected_rows));
      RowBatch acc(cut_schemas_[end]);
      while (true) {
        QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                             in->Pop(&stats->stall_micros));
        if (!item.has_value()) break;
        QOX_RETURN_IF_ERROR(pipeline->Push(std::move(*item)));
        for (Row& row : pipeline->TakeOutput()) {
          QOX_RETURN_IF_ERROR(EmitRow(std::move(row), &acc, out.get(), stats));
        }
      }
      QOX_RETURN_IF_ERROR(pipeline->Finish());
      for (Row& row : pipeline->TakeOutput()) {
        QOX_RETURN_IF_ERROR(EmitRow(std::move(row), &acc, out.get(), stats));
      }
      QOX_RETURN_IF_ERROR(FlushBatch(&acc, out.get(), stats));
      AccumulateOpsLocked(pipeline->op_stats());
      stats->channel_high_water = out->stats().high_water;
      out->Close();
      return Status::OK();
    });
    return out;
  }

  /// Partitioned unit over ops [begin, end): a partitioner stage routes
  /// rows into per-partition channels as they arrive (no pre-split
  /// materialization), one pipeline stage per partition transforms them,
  /// and a merge stage reunifies the branches — a k-way ordered merge over
  /// per-partition sorted runs when ordered_merge is set, else a
  /// deterministic round-robin batch interleave.
  Result<BatchChannelPtr> SpawnParallelUnit(StageSet* stages,
                                            BatchChannelPtr in,
                                            const PlanUnit& unit, int attempt,
                                            size_t expected_rows) {
    const size_t begin = unit.begin;
    const size_t end = unit.end;
    const size_t num_parts = config_.parallel.partitions;
    size_t hash_col = 0;
    if (config_.parallel.scheme == PartitionScheme::kHash) {
      QOX_ASSIGN_OR_RETURN(hash_col, cut_schemas_[begin].FieldIndex(
                                         config_.parallel.hash_column));
    }
    std::vector<BatchChannelPtr> part_in;
    part_in.reserve(num_parts);
    for (size_t p = 0; p < num_parts; ++p) {
      part_in.push_back(stages->MakeChannel(config_.channel_capacity));
    }
    stages->Spawn(
        plan_.nodes()[unit.router].label,
        [this, in, part_in, begin, hash_col,
         router_id = unit.router](StageStats* stats) -> Status {
          stats->node_id = static_cast<int64_t>(router_id);
          const PartitionScheme scheme = config_.parallel.scheme;
          const size_t num_parts = part_in.size();
          std::vector<RowBatch> acc;
          acc.reserve(num_parts);
          for (size_t p = 0; p < num_parts; ++p) {
            acc.emplace_back(cut_schemas_[begin]);
          }
          size_t rr = 0;
          while (true) {
            QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                                 in->Pop(&stats->stall_micros));
            if (!item.has_value()) break;
            for (Row& row : item->rows()) {
              const size_t p = scheme == PartitionScheme::kHash
                                   ? row.HashColumns({hash_col}) % num_parts
                                   : rr++ % num_parts;
              QOX_RETURN_IF_ERROR(
                  EmitRow(std::move(row), &acc[p], part_in[p].get(), stats));
            }
          }
          size_t high_water = 0;
          for (size_t p = 0; p < num_parts; ++p) {
            QOX_RETURN_IF_ERROR(FlushBatch(&acc[p], part_in[p].get(), stats));
            high_water = std::max(high_water, part_in[p]->stats().high_water);
            part_in[p]->Close();
          }
          stats->channel_high_water = high_water;
          return Status::OK();
        });
    const bool ordered =
        config_.ordered_merge && cut_schemas_[end].num_fields() > 0;
    std::vector<BatchChannelPtr> part_out;
    part_out.reserve(num_parts);
    const size_t per_part_rows = expected_rows / num_parts + 1;
    for (size_t p = 0; p < num_parts; ++p) {
      part_out.push_back(stages->MakeChannel(config_.channel_capacity));
      stages->Spawn(
          plan_.nodes()[unit.branches[p]].label,
          [this, inp = part_in[p], outp = part_out[p], begin, end, attempt,
           per_part_rows, ordered,
           branch_id = unit.branches[p]](StageStats* stats) -> Status {
            stats->node_id = static_cast<int64_t>(branch_id);
            QOX_ASSIGN_OR_RETURN(
                std::unique_ptr<Pipeline> pipeline,
                MakePipeline(begin, end, attempt, per_part_rows));
            RowBatch acc(cut_schemas_[end]);
            // Ordered merges need each branch to emit one sorted run, so
            // the branch buffers + sorts its whole output (a blocking
            // materialization, same as the phased post-merge sort).
            std::vector<Row> run;
            auto emit = [&](std::vector<Row> produced) -> Status {
              if (ordered) {
                run.insert(run.end(),
                           std::make_move_iterator(produced.begin()),
                           std::make_move_iterator(produced.end()));
                return Status::OK();
              }
              for (Row& row : produced) {
                QOX_RETURN_IF_ERROR(
                    EmitRow(std::move(row), &acc, outp.get(), stats));
              }
              return Status::OK();
            };
            while (true) {
              QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                                   inp->Pop(&stats->stall_micros));
              if (!item.has_value()) break;
              QOX_RETURN_IF_ERROR(pipeline->Push(std::move(*item)));
              QOX_RETURN_IF_ERROR(emit(pipeline->TakeOutput()));
            }
            QOX_RETURN_IF_ERROR(pipeline->Finish());
            QOX_RETURN_IF_ERROR(emit(pipeline->TakeOutput()));
            if (ordered) {
              std::stable_sort(run.begin(), run.end(),
                               [](const Row& a, const Row& b) {
                                 return a.value(0).Compare(b.value(0)) < 0;
                               });
              for (Row& row : run) {
                QOX_RETURN_IF_ERROR(
                    EmitRow(std::move(row), &acc, outp.get(), stats));
              }
            }
            QOX_RETURN_IF_ERROR(FlushBatch(&acc, outp.get(), stats));
            AccumulateOpsLocked(pipeline->op_stats());
            stats->channel_high_water = outp->stats().high_water;
            outp->Close();
            return Status::OK();
          });
    }
    BatchChannelPtr out = stages->MakeChannel(config_.channel_capacity);
    if (ordered) {
      SpawnOrderedMerge(stages, part_out, out, end, unit.merge);
    } else {
      SpawnRoundRobinMerge(stages, part_out, out, unit.merge);
    }
    return out;
  }

  /// K-way merge over per-partition sorted runs: repeatedly emits the
  /// smallest head row by first-column order, breaking ties toward the
  /// lowest partition index — exactly the order the phased executor's
  /// stable_sort over the partition-concatenated output produces. Inputs
  /// are consumed through a PartitionFeed so waiting on one partition's
  /// next batch never head-of-line blocks the others (deadlock under
  /// partition skew otherwise).
  void SpawnOrderedMerge(StageSet* stages, std::vector<BatchChannelPtr> parts,
                         BatchChannelPtr out, size_t end_cut,
                         size_t node_id) {
    stages->Spawn(
        plan_.nodes()[node_id].label,
        [this, parts, out, end_cut, node_id](StageStats* stats) -> Status {
          stats->node_id = static_cast<int64_t>(node_id);
          struct Run {
            std::vector<Row> rows;
            size_t next = 0;
            bool open = true;
          };
          PartitionFeed feed(parts);
          std::vector<Run> runs(parts.size());
          auto refill = [&](size_t p) -> Status {
            Run& run = runs[p];
            while (run.open && run.next >= run.rows.size()) {
              QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                                   feed.Next(p, &stats->stall_micros));
              if (!item.has_value()) {
                run.open = false;
                break;
              }
              run.rows = std::move(item->rows());
              run.next = 0;
            }
            return Status::OK();
          };
          for (size_t p = 0; p < runs.size(); ++p) {
            QOX_RETURN_IF_ERROR(refill(p));
          }
          RowBatch acc(cut_schemas_[end_cut]);
          while (true) {
            int best = -1;
            for (size_t p = 0; p < runs.size(); ++p) {
              if (runs[p].next >= runs[p].rows.size()) continue;
              if (best < 0 ||
                  runs[p].rows[runs[p].next].value(0).Compare(
                      runs[best].rows[runs[best].next].value(0)) < 0) {
                best = static_cast<int>(p);
              }
            }
            if (best < 0) break;
            Run& run = runs[best];
            QOX_RETURN_IF_ERROR(EmitRow(std::move(run.rows[run.next]), &acc,
                                        out.get(), stats));
            ++run.next;
            QOX_RETURN_IF_ERROR(refill(static_cast<size_t>(best)));
          }
          QOX_RETURN_IF_ERROR(FlushBatch(&acc, out.get(), stats));
          stats->channel_high_water = out->stats().high_water;
          out->Close();
          return Status::OK();
        });
  }

  /// Unordered merge: forwards one batch per open partition per round, in
  /// partition-index order — deterministic, which the inline-load sink's
  /// cross-attempt skip logic depends on. The deterministic *emission*
  /// order is decoupled from consumption via a PartitionFeed: while the
  /// round waits for a starved partition, ready batches from the other
  /// partitions are drained into local buffers, so skewed partitioning
  /// never deadlocks the bounded dataflow.
  void SpawnRoundRobinMerge(StageSet* stages,
                            std::vector<BatchChannelPtr> parts,
                            BatchChannelPtr out, size_t node_id) {
    stages->Spawn(
        plan_.nodes()[node_id].label,
        [parts, out, node_id](StageStats* stats) -> Status {
          stats->node_id = static_cast<int64_t>(node_id);
          PartitionFeed feed(parts);
          std::vector<bool> open(parts.size(), true);
          size_t remaining = parts.size();
          while (remaining > 0) {
            for (size_t p = 0; p < parts.size(); ++p) {
              if (!open[p]) continue;
              QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                                   feed.Next(p, &stats->stall_micros));
              if (!item.has_value()) {
                open[p] = false;
                --remaining;
                continue;
              }
              stats->rows += item->num_rows();
              ++stats->batches;
              QOX_RETURN_IF_ERROR(
                  out->Push(std::move(*item), &stats->backpressure_micros));
            }
          }
          stats->channel_high_water = out->stats().high_water;
          out->Close();
          return Status::OK();
        });
  }

  /// Terminal stage, redundancy mode: materializes the dataflow output for
  /// the voter (the caller's `*out` buffer, cleared per attempt).
  void SpawnCollectStage(StageSet* stages, BatchChannelPtr in,
                         std::vector<Row>* out) {
    const size_t node_id = plan_.collect_node();
    stages->Spawn("collect", [in, out, node_id](StageStats* stats) -> Status {
      stats->node_id = static_cast<int64_t>(node_id);
      out->clear();
      while (true) {
        QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                             in->Pop(&stats->stall_micros));
        if (!item.has_value()) break;
        stats->rows += item->num_rows();
        ++stats->batches;
        out->insert(out->end(), std::make_move_iterator(item->rows().begin()),
                    std::make_move_iterator(item->rows().end()));
      }
      return Status::OK();
    });
  }

  /// Terminal stage, inline load: appends arriving batches to the target,
  /// skipping the prefix a prior attempt already made durable. Stage
  /// wiring and merges are deterministic, so rows reach the sink in the
  /// same order every attempt and the durable rows are exactly a prefix
  /// of this attempt's arrival sequence (torn writes included — the skip
  /// is recomputed from the target's row count).
  void SpawnLoadStage(StageSet* stages, BatchChannelPtr in, int attempt) {
    const size_t node_id = plan_.load_node();
    stages->Spawn("load", [this, in, attempt,
                           node_id](StageStats* stats) -> Status {
      stats->node_id = static_cast<int64_t>(node_id);
      QOX_ASSIGN_OR_RETURN(const size_t durable, flow_.target->NumRows());
      const size_t skip = durable - load_base_rows_;
      size_t seen = 0;      // rows that reached the sink this attempt
      size_t appended = 0;  // rows durably landed in the target this attempt
      RowBatch acc(cut_schemas_.back());
      auto flush = [&]() -> Status {
        if (acc.empty()) return Status::OK();
        Status st = Status::OK();
        if (config_.injector != nullptr) {
          // Streaming cannot know the final output count up front, so load
          // progress is reported with an unknown total: the injector fires
          // at_fraction > 0 load specs on the first flush after rows
          // flowed (see FailureInjector::Check; EXPERIMENTS.md notes the
          // phased-vs-streaming comparability caveat).
          st = config_.injector->Check(instance_id_, attempt,
                                       FailureSpec::kAtLoad, seen,
                                       /*rows_total=*/0);
        }
        if (st.ok()) st = flow_.target->Append(acc);
        if (st.ok()) {
          appended += acc.num_rows();
          acc.Clear();
          return Status::OK();
        }
        if (st.code() == StatusCode::kResourceExhausted &&
            config_.resource_policy == ResourcePolicy::kShedToQuarantine) {
          // Degrade instead of failing: whatever prefix of the batch the
          // target durably landed (torn writes included) stays; the
          // remainder is shed to the dead-letter ledger with provenance
          // and the stream continues.
          QOX_ASSIGN_OR_RETURN(const size_t rows_now,
                               flow_.target->NumRows());
          const size_t flow_durable = rows_now - load_base_rows_;
          const size_t landed = flow_durable > skip + appended
                                    ? flow_durable - (skip + appended)
                                    : 0;
          for (size_t i = landed; i < acc.num_rows(); ++i) {
            QOX_RETURN_IF_ERROR(ShedRow(acc.row(i), st));
          }
          appended += landed;
          acc.Clear();
          return Status::OK();
        }
        return st;
      };
      while (true) {
        QOX_ASSIGN_OR_RETURN(std::optional<RowBatch> item,
                             in->Pop(&stats->stall_micros));
        if (!item.has_value()) break;
        ++stats->batches;
        for (Row& row : item->rows()) {
          ++seen;
          if (seen <= skip) continue;  // durable from a prior attempt
          acc.Append(std::move(row));
          if (acc.num_rows() >= config_.batch_size) {
            QOX_RETURN_IF_ERROR(flush());
          }
        }
      }
      QOX_RETURN_IF_ERROR(flush());
      stats->rows = seen;
      std::lock_guard<std::mutex> lock(stage_mu_);
      metrics_.rows_loaded += seen;
      loaded_inline_ = true;
      return Status::OK();
    });
  }

  /// Charges per-stage busy time to the phase counters. Streaming stages
  /// overlap, so in this mode the phase counters are busy-time aggregates
  /// rather than exclusive wall-clock phases.
  void AttributeStagePhases(const std::vector<StageStats>& stage_stats) {
    for (const StageStats& s : stage_stats) {
      if (s.name == "extract" || s.name == "replay") {
        metrics_.extract_micros += s.busy_micros;
        if (s.name == "extract") metrics_.rows_extracted += s.rows;
      } else if (s.name.rfind("merge", 0) == 0) {
        metrics_.merge_micros += s.busy_micros;
      } else if (s.name.rfind("transform", 0) == 0 ||
                 s.name.rfind("part", 0) == 0) {
        metrics_.transform_micros += s.busy_micros;
      } else if (s.name == "load") {
        metrics_.load_micros += s.busy_micros;
      }
      // "rp.cut*" barriers: the persist cost is self-accounted by WriteRp;
      // "collect" is voter bookkeeping, not a flow phase.
    }
  }

  /// One streaming attempt: spawns a stage thread per plan node and wires
  /// a bounded channel per edge, then runs the dataflow to completion.
  /// Mirrors RunAttempt's recovery semantics (resume, corruption fallback,
  /// per-cut persistence) with stages instead of phases.
  Status RunAttemptStreaming(int attempt, int resume_cut,
                             std::vector<Row>* out) {
    attempt_start_micros_ = NowMicros();
    durable_elapsed_micros_ = 0;
    std::vector<Row> resume_rows;
    QOX_ASSIGN_OR_RETURN(const int resumed_cut,
                         ResumeFromRp(resume_cut, &resume_rows));
    size_t current_cut =
        resumed_cut >= 0 ? static_cast<size_t>(resumed_cut) : 0;
    // Failure fractions and pipeline sizing need a row-count denominator
    // before any rows flow; the source size (or the replayed cut's size)
    // is the best available estimate.
    QOX_ASSIGN_OR_RETURN(const size_t source_rows, flow_.source->NumRows());
    const size_t expected_rows =
        resumed_cut >= 0 ? resume_rows.size() : source_rows;

    StageSet stages(exec_);
    BatchChannelPtr cursor = stages.MakeChannel(config_.channel_capacity);
    if (resumed_cut >= 0) {
      SpawnReplayStage(&stages, cursor, std::move(resume_rows), current_cut);
    } else {
      SpawnExtractStage(&stages, cursor, attempt);
      if (plan_.rp_after_extract()) {
        cursor = SpawnBarrierStage(&stages, cursor, 0,
                                   plan_.rp0_barrier_node());
      }
    }
    // A resume cut is always a section boundary; skip completed sections.
    for (const PlanSection& section : plan_.sections()) {
      if (section.end_cut <= current_cut) continue;
      for (const PlanUnit& unit : section.units) {
        if (unit.parallel) {
          QOX_ASSIGN_OR_RETURN(cursor,
                               SpawnParallelUnit(&stages, cursor, unit,
                                                 attempt, expected_rows));
        } else {
          cursor = SpawnTransformStage(&stages, cursor, unit.begin, unit.end,
                                       attempt, expected_rows, unit.node);
        }
      }
      current_cut = section.end_cut;
      if (section.rp_at_end) {
        cursor = SpawnBarrierStage(&stages, cursor, current_cut,
                                   section.barrier_node);
      }
    }
    if (StreamingInlineLoad()) {
      SpawnLoadStage(&stages, cursor, attempt);
    } else {
      SpawnCollectStage(&stages, cursor, out);
    }
    std::vector<StageStats> stage_stats;
    const Status st = stages.Join(&stage_stats);
    AttributeStagePhases(stage_stats);
    for (StageStats& s : stage_stats) {
      metrics_.stage_stats.push_back(std::move(s));
    }
    QOX_RETURN_IF_ERROR(st);
    // The fractional budget check runs at the same logical point as phased
    // mode (transforms drained); with an inline-load sink the rows are
    // already durable by now — a caveat EXPERIMENTS.md documents.
    return budget_state_.CheckFraction(expected_rows);
  }

  const FlowSpec& flow_;
  const ExecutionConfig& config_;
  const ExecutionPlan& plan_;
  const std::vector<Schema>& cut_schemas_;
  /// Execution substrate + scheduling tag (flow deadline) for every task
  /// this instance submits.
  ExecContext exec_;
  const int instance_id_;
  std::atomic<bool>* cancelled_;
  OperatorContext ctx_;
  RunMetrics metrics_;
  std::atomic<size_t> rejected_{0};
  /// Shared-dimension-cache and columnar fast-path accounting, bumped by
  /// operators/pipelines across all attempts of this instance.
  std::atomic<size_t> dim_cache_builds_{0};
  std::atomic<size_t> dim_cache_hits_{0};
  std::atomic<size_t> columnar_batches_{0};
  std::atomic<size_t> columnar_rows_{0};
  std::atomic<int64_t> current_attempt_{1};
  Rng backoff_rng_;
  /// Shared containment state: charged concurrently by every pipeline of
  /// the current attempt, reset at attempt start.
  ErrorBudgetState budget_state_;
  /// Byte accountant shared by every pipeline of this instance; usage is
  /// reset at attempt start (the high-water mark spans the run).
  MemoryBudget memory_budget_;
  /// Spill-run registry for this instance (its own subdirectory, so
  /// redundant instances never collide on run names).
  SpillManager spill_;
  QuarantineSink quarantine_sink_;  ///< null when no dead_letter configured
  std::atomic<int64_t> quarantine_seq_{0};
  int64_t attempt_start_micros_ = 0;
  int64_t durable_elapsed_micros_ = 0;
  int64_t attempt_deadline_micros_ = 0;
  /// Streaming only: serializes metrics_ (and WriteRp's durable-progress
  /// bookkeeping) across stage threads.
  std::mutex stage_mu_;
  /// Streaming inline load: target row count before the first attempt.
  size_t load_base_rows_ = 0;
  bool loaded_inline_ = false;
  /// Durable lifecycle WAL; null when not journaling (or instance > 0).
  FlowJournal* journal_ = nullptr;
};

/// Loads `rows` into the target with transient-failure retry: rows already
/// durably appended are not re-appended (incremental restart). Progress is
/// re-derived from the target after each failed append, so a torn write
/// that durably landed part of a batch is not loaded twice.
Status LoadWithRetry(const FlowSpec& flow, const ExecutionConfig& config,
                     const std::vector<Row>& rows, const Schema& schema,
                     RunMetrics* metrics) {
  const StopWatch timer;
  const RetryPolicy& policy = config.retry;
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  Rng backoff_rng(policy.jitter_seed ^ 0x10adULL);
  size_t base_rows = 0;
  size_t loaded = 0;
  if (config.resume.has_load_base) {
    // Cross-process resume: the journaled pre-flow baseline. Rows beyond
    // it are a durable prefix of THIS flow's (deterministic) output,
    // landed by a dead incarnation — skip them instead of re-appending.
    base_rows = config.resume.load_base_rows;
    QOX_ASSIGN_OR_RETURN(const size_t rows_now, flow.target->NumRows());
    if (rows_now > base_rows) {
      loaded = std::min(rows.size(), rows_now - base_rows);
    }
  } else {
    QOX_ASSIGN_OR_RETURN(base_rows, flow.target->NumRows());
  }
  const size_t already_loaded = loaded;
  size_t shed = 0;  // rows diverted to the dead-letter ledger, not landed
  size_t attempt = 1;
  while (loaded < rows.size()) {
    const size_t batch_begin = loaded;
    const size_t n = std::min(config.batch_size, rows.size() - loaded);
    Status st = Status::OK();
    if (config.injector != nullptr) {
      st = config.injector->Check(/*instance=*/0, static_cast<int>(attempt),
                                  FailureSpec::kAtLoad, loaded + n,
                                  rows.size());
    }
    if (st.ok()) {
      RowBatch batch(schema);
      for (size_t i = 0; i < n; ++i) batch.Append(rows[loaded + i]);
      st = flow.target->Append(batch);
      if (st.ok()) {
        loaded += n;
        continue;
      }
    }
    if (st.IsInjectedFailure()) ++metrics->failures_injected;
    if (st.code() == StatusCode::kResourceExhausted &&
        config.resource_policy == ResourcePolicy::kShedToQuarantine) {
      // Degraded load: keep whatever prefix of the batch the target
      // durably landed, shed the remainder to the dead-letter ledger with
      // provenance, and move on. The flow error budget caps the shedding.
      QOX_ASSIGN_OR_RETURN(const size_t rows_now, flow.target->NumRows());
      if (rows_now > base_rows) {
        loaded = std::max(loaded, rows_now - base_rows);
      }
      for (size_t i = loaded; i < batch_begin + n; ++i) {
        if (config.dead_letter != nullptr) {
          QuarantineRecord record;
          record.flow_id = flow.id;
          record.op_index = static_cast<int64_t>(flow.transforms.size());
          record.op_name = "load";
          record.attempt = static_cast<int64_t>(attempt);
          record.row_index = static_cast<int64_t>(i);
          record.status_code = StatusCodeName(st.code());
          record.status_message = st.message();
          record.payload = EncodeQuarantinePayload(rows[i]);
          QOX_RETURN_IF_ERROR(config.dead_letter->Quarantine(record));
        }
        ++metrics->rows_shed;
        ++metrics->rows_quarantined;
        ++shed;
      }
      loaded = batch_begin + n;
      if (metrics->rows_skipped + metrics->rows_quarantined >
          config.error_budget.max_rows) {
        metrics->load_micros += timer.ElapsedMicros();
        return Status::ErrorBudgetExceeded(
            "error budget exhausted: " +
            std::to_string(metrics->rows_skipped +
                           metrics->rows_quarantined) +
            " rows contained (max " +
            std::to_string(config.error_budget.max_rows) +
            "), last shed at the load boundary");
      }
      continue;
    }
    // kPauseRetry reclassifies resource exhaustion as transient: back off
    // (waiting for the operator to free disk) and retry the batch.
    const bool retryable =
        IsTransient(st) ||
        (config.resource_policy == ResourcePolicy::kPauseRetry &&
         st.code() == StatusCode::kResourceExhausted);
    if (!retryable || attempt >= max_attempts) {
      metrics->load_micros += timer.ElapsedMicros();
      return st;
    }
    ++metrics->retries_by_cause[StatusCodeName(st.code())];
    // A torn write may have durably appended a prefix of the failed batch;
    // resync progress from the target so those rows are not re-loaded.
    QOX_ASSIGN_OR_RETURN(const size_t rows_now, flow.target->NumRows());
    if (rows_now > base_rows) {
      loaded = std::max(loaded, rows_now - base_rows);
    }
    WaitBackoff(policy, attempt, &backoff_rng, metrics);
    ++attempt;
  }
  metrics->load_micros += timer.ElapsedMicros();
  metrics->rows_loaded += rows.size() - already_loaded - shed;
  return Status::OK();
}

/// Builds the planner input from flow + config. Blocking flags come from
/// freshly instantiated operators, so the plan's soft barriers match the
/// chain that actually executes.
PlanInput MakePlanInput(const FlowSpec& flow, const ExecutionConfig& config) {
  PlanInput input;
  input.num_ops = flow.transforms.size();
  input.blocking.reserve(flow.transforms.size());
  for (const OperatorFactory& factory : flow.transforms) {
    input.blocking.push_back(factory ? factory()->IsBlocking() : false);
  }
  input.parallel = config.parallel;
  input.recovery_points = config.recovery_points;
  input.redundancy = config.redundancy;
  input.streaming = config.streaming;
  input.channel_capacity = config.channel_capacity;
  input.ordered_merge = config.ordered_merge;
  input.error_policies = config.error_policies;
  input.error_budget = config.error_budget;
  input.journaled = config.journal != nullptr;
  if (config.journal != nullptr) {
    input.journal_sync = config.journal->sync_policy();
  }
  input.sla_deadline_micros = config.sla.deadline_micros;
  return input;
}

/// Scheduler dispatch, redundancy 1: a single FlowRunner with retries.
Status RunSingleInstance(const FlowSpec& flow, const ExecutionConfig& config,
                         const ExecutionPlan& plan,
                         const std::vector<Schema>& cut_schemas,
                         const ExecContext& exec, std::vector<Row>* output,
                         bool* loaded_inline, RunMetrics* metrics) {
  std::atomic<bool> cancelled{false};
  FlowRunner runner(flow, config, plan, cut_schemas, exec, /*instance_id=*/0,
                    &cancelled);
  QOX_RETURN_IF_ERROR(runner.RunToOutput(output));
  *loaded_inline = runner.loaded_inline();
  *metrics = runner.metrics();
  metrics->rows_rejected = runner.rejected();
  return Status::OK();
}

/// Scheduler dispatch, n-modular redundancy: k instances race over the
/// same plan; a majority vote over the output fingerprints accepts a
/// result and cancels the stragglers.
Status RunRedundantInstances(const FlowSpec& flow,
                             const ExecutionConfig& config,
                             const ExecutionPlan& plan,
                             const std::vector<Schema>& cut_schemas,
                             const ExecContext& exec, std::vector<Row>* output,
                             RunMetrics* metrics) {
  const size_t k = config.redundancy;
  const size_t majority = k / 2 + 1;
  std::atomic<bool> cancelled{false};
  struct InstanceSlot {
    std::unique_ptr<FlowRunner> runner;
    std::vector<Row> output;
    Status status = Status::OK();
    bool done = false;
  };
  std::vector<InstanceSlot> slots(k);
  std::mutex vote_mu;
  std::condition_variable vote_cv;
  size_t done_count = 0;
  for (size_t i = 0; i < k; ++i) {
    slots[i].runner = std::make_unique<FlowRunner>(
        flow, config, plan, cut_schemas, exec, static_cast<int>(i),
        &cancelled);
  }
  // Instance drivers are long-lived and park on retries/backoff, so they
  // run as blocking tasks (expansion workers), never starving core workers
  // other flows' CPU work needs.
  TaskGroup instances(exec.pool());
  for (size_t i = 0; i < k; ++i) {
    exec.Post(
        [&, i] {
          InstanceSlot& slot = slots[i];
          slot.status = slot.runner->RunToOutput(&slot.output);
          std::lock_guard<std::mutex> lock(vote_mu);
          slot.done = true;
          ++done_count;
          vote_cv.notify_all();
        },
        &instances, /*blocking=*/true);
  }
  // Wait until a fingerprint reaches majority or all instances finished.
  int accepted_instance = -1;
  {
    std::unique_lock<std::mutex> lock(vote_mu);
    while (true) {
      std::map<size_t, std::vector<size_t>> votes;  // fingerprint -> ids
      for (size_t i = 0; i < k; ++i) {
        if (slots[i].done && slots[i].status.ok()) {
          votes[FingerprintRows(slots[i].output)].push_back(i);
        }
      }
      for (const auto& [fp, ids] : votes) {
        if (ids.size() >= majority) {
          accepted_instance = static_cast<int>(ids.front());
          break;
        }
      }
      if (accepted_instance >= 0 || done_count == k) break;
      vote_cv.wait(lock);
    }
  }
  cancelled.store(true);  // stop stragglers
  instances.Wait();
  if (accepted_instance < 0) {
    // No majority: report the first hard error, else a vote failure.
    for (const InstanceSlot& slot : slots) {
      if (!slot.status.ok() && !slot.status.IsInjectedFailure() &&
          slot.status.code() != StatusCode::kCancelled) {
        return slot.status;
      }
    }
    return Status::Internal("redundancy vote failed: no majority among " +
                            std::to_string(k) + " instances");
  }
  *output = std::move(slots[accepted_instance].output);
  *metrics = slots[accepted_instance].runner->metrics();
  metrics->rows_rejected = slots[accepted_instance].runner->rejected();
  // Failures that killed minority instances still count.
  size_t failures = 0;
  for (const InstanceSlot& slot : slots) {
    failures += slot.runner->metrics().failures_injected;
  }
  metrics->failures_injected = failures;
  return Status::OK();
}

}  // namespace

Result<std::vector<Schema>> Executor::BindChain(const FlowSpec& flow,
                                                const ExecutionConfig& config) {
  if (flow.source == nullptr) return Status::Invalid("flow has no source");
  if (flow.target == nullptr) return Status::Invalid("flow has no target");
  std::vector<Schema> schemas;
  schemas.reserve(flow.transforms.size() + 1);
  schemas.push_back(flow.source->schema());
  for (size_t i = 0; i < flow.transforms.size(); ++i) {
    const OperatorFactory& factory = flow.transforms[i];
    if (!factory) {
      return Status::Invalid("null operator factory at position " +
                             std::to_string(i));
    }
    OperatorPtr op = factory();
    QOX_ASSIGN_OR_RETURN(Schema out, op->Bind(schemas.back()));
    schemas.push_back(std::move(out));
  }
  if (schemas.back() != flow.target->schema()) {
    return Status::Invalid(
        "flow '" + flow.id + "' output schema [" + schemas.back().ToString() +
        "] does not match target schema [" + flow.target->schema().ToString() +
        "]");
  }
  // Config validation.
  if (config.parallel.partitions == 0) {
    return Status::Invalid("partitions must be >= 1");
  }
  if (config.parallel.partitions > 1 &&
      config.parallel.scheme == PartitionScheme::kHash) {
    const size_t begin =
        std::min(config.parallel.range_begin, flow.transforms.size());
    if (!schemas[begin].HasField(config.parallel.hash_column)) {
      return Status::Invalid("hash partition column '" +
                             config.parallel.hash_column +
                             "' absent at the parallel range start");
    }
  }
  for (const size_t cut : config.recovery_points) {
    if (cut > flow.transforms.size()) {
      return Status::Invalid("recovery point cut " + std::to_string(cut) +
                             " beyond chain length " +
                             std::to_string(flow.transforms.size()));
    }
  }
  if (!config.recovery_points.empty() && config.rp_store == nullptr) {
    return Status::Invalid("recovery points configured without an rp_store");
  }
  if (config.redundancy == 0) return Status::Invalid("redundancy must be >= 1");
  if (config.retry.multiplier < 1.0) {
    return Status::Invalid("retry backoff multiplier must be >= 1");
  }
  if (config.retry.jitter < 0.0 || config.retry.jitter > 1.0) {
    return Status::Invalid("retry jitter must be in [0, 1]");
  }
  if (config.retry.initial_backoff_micros < 0 ||
      config.retry.max_backoff_micros < 0 ||
      config.retry.attempt_deadline_micros < 0) {
    return Status::Invalid("retry backoff/deadline durations must be >= 0");
  }
  if (config.reject_store != nullptr &&
      config.reject_store->schema() != RejectStoreSchema()) {
    return Status::Invalid("reject_store must have RejectStoreSchema()");
  }
  if (config.error_policies.size() > flow.transforms.size()) {
    return Status::Invalid(
        "error policies cover " + std::to_string(config.error_policies.size()) +
        " ops but the chain has " + std::to_string(flow.transforms.size()));
  }
  if (config.error_budget.max_fraction < 0.0 ||
      config.error_budget.max_fraction > 1.0) {
    return Status::Invalid("error budget max_fraction must lie in [0, 1]");
  }
  return schemas;
}

Result<ExecutionPlan> Executor::LowerPlan(const FlowSpec& flow,
                                          const ExecutionConfig& config) {
  QOX_RETURN_IF_ERROR(BindChain(flow, config).status());
  return ExecutionPlan::Lower(MakePlanInput(flow, config));
}

Result<RunMetrics> Executor::Run(const FlowSpec& flow,
                                 const ExecutionConfig& original_config) {
  const StopWatch total_timer;
  ExecutionConfig config = original_config;
  if (config.memory_budget_bytes == 0) {
    // The QOX_MEM_BUDGET environment override lets any experiment or test
    // run memory-bounded without touching its config plumbing.
    config.memory_budget_bytes = MemoryBudgetFromEnv();
  }
  if (config.memory_budget_bytes > 0 && config.spill_dir.empty()) {
    config.spill_dir = std::filesystem::temp_directory_path().string() +
                       "/qox_spill_" + flow.id + "." +
                       std::to_string(::getpid());
  }
  if (config.journal != nullptr) {
    // Sweep spill directories a dead incarnation journaled: a SIGKILL
    // mid-spill leaves `.spill` / `.spill.tmp` orphans behind, and they
    // must not accumulate across supervised restarts.
    for (const std::string& dir : config.journal->state().spill_dirs) {
      QOX_RETURN_IF_ERROR(SpillManager::CleanupDir(dir).status());
    }
  }
  if (config.journal != nullptr && !config.resume.has_load_base) {
    // First incarnation of a journaled flow: seal the pre-load target row
    // count before any work, so every successor can tell durable flow
    // output apart from pre-existing target rows.
    QOX_ASSIGN_OR_RETURN(const size_t base, flow.target->NumRows());
    QOX_RETURN_IF_ERROR(config.journal->RecordLoadBase(base));
    config.resume.has_load_base = true;
    config.resume.load_base_rows = base;
  }
  const size_t rp_bytes_before =
      config.rp_store != nullptr ? config.rp_store->total_bytes_written() : 0;
  // Validate, lower to the shared ExecutionPlan IR, then dispatch the plan
  // to the per-instance schedulers (phased or streaming, per config).
  QOX_ASSIGN_OR_RETURN(const std::vector<Schema> cut_schemas,
                       BindChain(flow, config));
  QOX_ASSIGN_OR_RETURN(const ExecutionPlan plan,
                       ExecutionPlan::Lower(MakePlanInput(flow, config)));
  // Execution substrate: the caller's shared pool (FlowService) or a
  // private one sized by num_threads — the solo behavior. Either way every
  // task of this flow carries the flow's absolute deadline, so a shared
  // pool can order runnable work across flows EDF.
  std::unique_ptr<WorkerPool> owned_pool;
  WorkerPool* pool = config.worker_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<WorkerPool>(config.num_threads);
    pool = owned_pool.get();
  }
  TaskTag tag;
  tag.deadline_micros =
      config.sla.absolute_deadline_micros > 0
          ? config.sla.absolute_deadline_micros
          : (config.sla.deadline_micros > 0
                 ? NowMicros() + config.sla.deadline_micros
                 : 0);
  const ExecContext exec(pool, tag);

  RunMetrics metrics;
  std::vector<Row> accepted_output;
  bool loaded_inline = false;
  if (config.redundancy <= 1) {
    QOX_RETURN_IF_ERROR(RunSingleInstance(flow, config, plan, cut_schemas,
                                          exec, &accepted_output,
                                          &loaded_inline, &metrics));
  } else {
    QOX_RETURN_IF_ERROR(RunRedundantInstances(flow, config, plan, cut_schemas,
                                              exec, &accepted_output,
                                              &metrics));
  }
  metrics.threads = config.num_threads;
  metrics.partitions = config.parallel.partitions;
  metrics.redundancy = config.redundancy;

  if (!loaded_inline) {
    QOX_RETURN_IF_ERROR(LoadWithRetry(flow, config, accepted_output,
                                      cut_schemas.back(), &metrics));
  }
  if (flow.post_success) {
    QOX_RETURN_IF_ERROR(flow.post_success());
  }
  if (config.rp_store != nullptr) {
    QOX_RETURN_IF_ERROR(config.rp_store->DropFlow(flow.id));
  }
  if (config.journal != nullptr) {
    // The commit record is the last durability boundary: a crash anywhere
    // before it re-runs the (idempotent) tail — the durable-prefix skip
    // appends nothing and post_success hooks must tolerate re-execution.
    QOX_RETURN_IF_ERROR(config.journal->RecordFlowCommit());
    QOX_RETURN_IF_ERROR(config.journal->Compact());
  }
  metrics.total_micros = total_timer.ElapsedMicros();
  if (tag.deadline_micros > 0) {
    metrics.deadline_slack_micros = tag.deadline_micros - NowMicros();
  }
  if (config.rp_store != nullptr) {
    metrics.rp_bytes_written =
        config.rp_store->total_bytes_written() - rp_bytes_before;
  }
  return metrics;
}

}  // namespace qox
