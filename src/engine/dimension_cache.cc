#include "engine/dimension_cache.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace qox {

namespace {

constexpr uint32_t kEmptySlot = 0xffffffffu;

uint64_t HashBytes(std::string_view bytes) {
  // FNV-1a 64, matching the repo's checksum idiom.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Dimension scan granularity (mirrors the lookup build's batch size).
constexpr size_t kScanBatch = 1024;

}  // namespace

void DimensionTable::Insert(size_t r) {
  const std::string_view key = KeyAt(r);
  const uint64_t h = HashBytes(key);
  size_t slot = static_cast<size_t>(h) & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (slot_hashes_[slot] == h && KeyAt(slots_[slot]) == key) {
      return;  // first occurrence wins
    }
    slot = (slot + 1) & slot_mask_;
  }
  slots_[slot] = static_cast<uint32_t>(r);
  slot_hashes_[slot] = h;
}

Result<DimensionTablePtr> DimensionTable::Build(const DataStore& dimension,
                                                size_t key_index) {
  auto table = std::shared_ptr<DimensionTable>(new DimensionTable());
  std::unordered_set<std::string> seen;  // build-time only; rows_ stays
                                         // deduplicated (first wins)
  std::string encoded;
  QOX_RETURN_IF_ERROR(dimension.Scan(
      kScanBatch, [&](RowBatch& batch) -> Status {
        for (Row& row : batch.rows()) {
          const Value& key = row.value(key_index);
          if (key.is_null()) continue;  // unreachable by probe
          encoded.clear();
          AppendValueKeyBytes(key, &encoded);
          if (!seen.insert(encoded).second) continue;  // first wins
          const uint32_t offset =
              static_cast<uint32_t>(table->key_arena_.size());
          table->key_arena_.append(encoded);
          table->key_spans_.push_back(
              {offset,
               static_cast<uint32_t>(table->key_arena_.size()) - offset});
          table->rows_.push_back(std::move(row));
        }
        return Status::OK();
      }));
  // Load factor <= 0.5: probe chains stay short even on adversarial keys.
  const size_t capacity = NextPow2(std::max<size_t>(8, table->rows_.size() * 2));
  table->slot_mask_ = capacity - 1;
  table->slots_.assign(capacity, kEmptySlot);
  table->slot_hashes_.assign(capacity, 0);
  for (size_t r = 0; r < table->rows_.size(); ++r) table->Insert(r);
  size_t bytes = table->key_arena_.size() +
                 table->key_spans_.size() * sizeof(Span) +
                 capacity * (sizeof(uint32_t) + sizeof(uint64_t));
  for (const Row& row : table->rows_) bytes += row.ByteSize();
  table->bytes_ = bytes;
  return DimensionTablePtr(std::move(table));
}

const Row* DimensionTable::Probe(std::string_view key_bytes) const {
  const uint64_t h = HashBytes(key_bytes);
  size_t slot = static_cast<size_t>(h) & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (slot_hashes_[slot] == h && KeyAt(slots_[slot]) == key_bytes) {
      return &rows_[slots_[slot]];
    }
    slot = (slot + 1) & slot_mask_;
  }
  return nullptr;
}

const Row* DimensionTable::ProbeValue(const Value& key,
                                      std::string* scratch) const {
  if (key.is_null()) return nullptr;
  scratch->clear();
  AppendValueKeyBytes(key, scratch);
  return Probe(*scratch);
}

DimensionCache& DimensionCache::Instance() {
  static DimensionCache* cache = new DimensionCache();
  return *cache;
}

Result<DimensionCache::Acquired> DimensionCache::GetOrBuild(
    const DataStore& dimension, const std::string& version, size_t key_index) {
  if (version.empty()) {
    return Status::Invalid("dimension '" + dimension.name() +
                           "' has no content version (uncacheable)");
  }
  const std::string identity =
      dimension.name() + "#" + std::to_string(key_index);
  const std::string key = identity + "|" + version;
  std::shared_ptr<Flight> flight;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      entries_[key] = flight;
      builder = true;
      // Supersede the stale version of this dimension+key, if any.
      const auto latest = latest_.find(identity);
      if (latest != latest_.end() && latest->second != key) {
        entries_.erase(latest->second);
        retention_order_.erase(std::remove(retention_order_.begin(),
                                           retention_order_.end(),
                                           latest->second),
                               retention_order_.end());
      }
      latest_[identity] = key;
      retention_order_.push_back(key);
      while (retention_order_.size() > kMaxRetained) {
        const std::string oldest = retention_order_.front();
        retention_order_.pop_front();
        if (oldest == key) continue;  // never evict the entry being built
        entries_.erase(oldest);
      }
    }
  }
  if (builder) {
    Result<DimensionTablePtr> built = DimensionTable::Build(dimension,
                                                            key_index);
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->done = true;
      if (built.ok()) {
        flight->table = built.value();
      } else {
        flight->status = built.status();
      }
    }
    flight->cv.notify_all();
    if (!built.ok()) {
      // Failed builds are not cached: the next caller retries.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second == flight) {
        entries_.erase(it);
        retention_order_.erase(std::remove(retention_order_.begin(),
                                           retention_order_.end(), key),
                               retention_order_.end());
      }
      return built.status();
    }
    Acquired acquired;
    acquired.table = built.value();
    acquired.built = true;
    return acquired;
  }
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&] { return flight->done; });
  QOX_RETURN_IF_ERROR(flight->status);
  Acquired acquired;
  acquired.table = flight->table;
  acquired.built = false;
  return acquired;
}

DimensionTablePtr DimensionCache::TryGet(const DataStore& dimension,
                                         const std::string& version,
                                         size_t key_index) const {
  if (version.empty()) return nullptr;
  const std::string key = dimension.name() + "#" + std::to_string(key_index) +
                          "|" + version;
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    flight = it->second;
  }
  std::lock_guard<std::mutex> lock(flight->mu);
  if (!flight->done || !flight->status.ok()) return nullptr;
  return flight->table;
}

void DimensionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  latest_.clear();
  retention_order_.clear();
}

size_t DimensionCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace qox
