// Executor: runs an ETL flow under a physical execution configuration.
//
// This is the reproduction's stand-in for the ETL engines the paper
// experimented with. One FlowSpec (source -> transform chain -> target)
// can be executed under many ExecutionConfigs:
//
//   * partitioned parallelism over a bounded thread pool (Fig. 4: 1PF,
//     4PF-p, 4PF-f, 8PF-p across 1..8 CPUs),
//   * recovery points at arbitrary cut positions, persisted to disk
//     (Fig. 5 cost, Fig. 6 resume-after-failure),
//   * n-modular redundancy with majority voting (Fig. 7),
//   * any combination, plus injected system failures.
//
// Execution model. The transform chain of n operators defines cut
// positions 0..n: cut 0 is "after extraction", cut i is "after transform
// operator i". Recovery points live at cut positions. An attempt runs
// segment by segment between cuts; a recovery point at a cut durably saves
// the rows crossing it. On a TRANSIENT failure (injected system failure,
// unavailable storage, expired watchdog deadline — see IsTransient in
// common/status) the attempt aborts, the executor waits out the
// RetryPolicy's backoff, and the next attempt resumes from the latest
// complete recovery point (or from scratch); a recovery point that fails
// checksum verification is abandoned and resume falls back to the next
// older complete point. PERMANENT errors fail the run immediately without
// consuming the attempt budget. With redundancy k > 1, k identical
// instances race and a majority vote over the output accepts a result;
// instance failures kill only that instance.

#ifndef QOX_ENGINE_EXECUTOR_H_
#define QOX_ENGINE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/error_policy.h"
#include "engine/exec_context.h"
#include "engine/failure.h"
#include "engine/flow_journal.h"
#include "engine/operator.h"
#include "engine/pipeline.h"
#include "engine/plan.h"
#include "engine/retry_policy.h"
#include "engine/run_metrics.h"
#include "engine/worker_pool.h"
#include "storage/data_store.h"
#include "storage/dead_letter_store.h"
#include "storage/recovery_store.h"

namespace qox {

/// One executable flow: source, transform chain, target.
struct FlowSpec {
  std::string id;
  DataStorePtr source;
  /// Factories, not instances: every partition/redundant branch clones its
  /// own operators.
  std::vector<OperatorFactory> transforms;
  DataStorePtr target;
  /// Invoked once after a successful (voted, loaded) run — e.g., the
  /// snapshot commit of a delta flow. May be empty.
  std::function<Status()> post_success;
};

/// A flow's freshness SLA expressed as an execution deadline — the QoX
/// freshness objective made schedulable. The FlowService turns the
/// relative budget into an absolute deadline at admission; a solo Run()
/// stamps it at start. Every task of the flow (partition branches,
/// streaming stages, redundant instances) carries the absolute deadline in
/// its TaskTag, so the shared pool can order runnable work EDF.
struct FlowSla {
  /// Relative deadline budget, microseconds from admission/start. 0 = no
  /// SLA (the seed behavior: nothing is deadline-ordered).
  int64_t deadline_micros = 0;
  /// Absolute NowMicros() deadline. Normally derived from deadline_micros;
  /// a non-zero value (set by the FlowService at admission) wins.
  int64_t absolute_deadline_micros = 0;
};

struct ExecutionConfig {
  /// Worker threads available for partitioned transform work ("CPUs").
  /// With a private pool (worker_pool == nullptr) this sizes it; with a
  /// shared pool the pool's own size governs and this is an accounting
  /// echo only.
  size_t num_threads = 1;
  /// Shared executor substrate to run on (engine/worker_pool.h). Null (the
  /// default) = Run() creates a private pool of num_threads core workers —
  /// the solo behavior. The FlowService points every admitted flow at one
  /// shared pool.
  WorkerPool* worker_pool = nullptr;
  /// Freshness SLA / deadline of this flow (see FlowSla).
  FlowSla sla;
  size_t batch_size = kDefaultBatchSize;
  ParallelSpec parallel;
  /// Cut positions carrying recovery points (0 = after extraction,
  /// i = after transform op i, n = before load).
  std::vector<size_t> recovery_points;
  RecoveryPointStorePtr rp_store;  ///< required when recovery_points set
  /// n-modular redundancy degree. 1 = none; k >= 2 runs k instances and
  /// majority-votes their outputs.
  size_t redundancy = 1;
  FailureInjector* injector = nullptr;
  /// Retry behavior on transient failures: attempt budget, exponential
  /// backoff with jitter, per-attempt watchdog deadline. Permanent errors
  /// (see IsTransient in common/status) fail fast regardless. Redundant
  /// instances get a single attempt: redundancy replaces recovery.
  RetryPolicy retry;
  /// Re-establish a global order after merging partitioned branches (sort
  /// by first column). This is the "merging back the partitioned data is
  /// not cheap" cost of Sec. 2.2 and is on by default.
  bool ordered_merge = true;
  /// Optional audit sink: rows rejected by quality operators (NULL
  /// filters, unresolved lookups) are appended here with provenance
  /// (flow id, instance, attempt, serialized row) — the auditability
  /// mechanism of the QoX suite. Must have RejectStoreSchema(). Retried
  /// attempts re-log their rejects (each record names its attempt).
  DataStorePtr reject_store;
  /// Streaming (pipelined) execution: extract, transform units, and load
  /// run as concurrent stages connected by bounded Channel<RowBatch> edges
  /// (DESIGN.md "Streaming dataflow"), so batches flow end to end without
  /// full materialization except at blocking operators and recovery-point
  /// cuts. With redundancy == 1 the load runs inline as the dataflow sink
  /// (a failed load consumes a flow attempt and the next attempt skips
  /// rows already durable in the target). Output and metrics semantics
  /// match phased mode; phase timings become per-stage busy-time
  /// aggregates (stages overlap, so they no longer sum to total).
  bool streaming = false;
  /// Bounded capacity, in batches, of every streaming channel (the
  /// backpressure window between adjacent stages). Values < 1 act as 1.
  size_t channel_capacity = 8;
  /// Row-level containment policy per transform op (by global index).
  /// Empty, or shorter than the chain, means kFailFast for the uncovered
  /// ops — the historical all-or-nothing behaviour. Both schedulers
  /// enforce identical semantics (containment lives in the shared
  /// Pipeline).
  std::vector<ErrorPolicy> error_policies;
  /// Flow-level ceiling on contained rows. Exceeding it aborts the run
  /// with the PERMANENT status kErrorBudgetExceeded (no retry attempts are
  /// consumed: re-running re-contains the identical rows). max_rows is
  /// checked online; max_fraction once per attempt after the transforms
  /// drain. Accounting resets at every attempt start.
  ErrorBudget error_budget;
  /// Dead-letter ledger receiving kQuarantine rows with provenance
  /// (storage/dead_letter_store.h). Null = quarantined rows are counted
  /// and dropped (degraded to kSkip semantics, without replayability).
  /// Retried attempts re-quarantine their rows (each record names its
  /// attempt); consumers dedupe via CanonicalLedger.
  DeadLetterStorePtr dead_letter;
  /// Durable write-ahead flow journal (engine/flow_journal.h). When set,
  /// the executor records attempt/RP-commit/budget/flow-commit lifecycle
  /// events so a supervisor can resume the flow in a new process after a
  /// SIGKILL. Null = no journaling (the seed behavior). With redundancy,
  /// only instance 0 journals.
  FlowJournalPtr journal;
  /// Cross-process resume state, reconstructed from the journal by
  /// FlowSupervisor (engine/supervisor.h): prior attempts consumed by dead
  /// incarnations (the retry budget spans processes) and the target-row
  /// baseline for the durable-prefix load skip. Default = fresh run.
  FlowResume resume;
  /// Per-flow byte budget for blocking-operator working sets
  /// (engine/memory_budget.h). 0 = unlimited, unless the QOX_MEM_BUDGET
  /// environment variable overrides it at Run(). When finite, sort /
  /// group / lookup spill to checksummed files under `spill_dir` instead
  /// of growing, and results stay byte-identical to the unbudgeted run.
  size_t memory_budget_bytes = 0;
  /// How the flow degrades when a write boundary reports
  /// kResourceExhausted (disk full, dead-letter cap): fail fast, treat it
  /// as transient and retry with backoff, or shed the affected load rows
  /// to the dead-letter ledger and continue.
  ResourcePolicy resource_policy = ResourcePolicy::kFailFlow;
  /// Directory for spill runs. Empty = a per-flow-instance directory
  /// under the system temp dir. Recorded in the flow journal so a
  /// supervisor restart deletes a dead incarnation's leftovers.
  std::string spill_dir;
  /// Test hook: fault injected before every physical spill write/finalize
  /// (the disk-pressure analogue of FailureInjector, which covers store
  /// boundaries but not operator-internal spill I/O). May be empty.
  std::function<Status()> spill_write_fault;
  /// Columnar batch fast path (engine/pipeline.h): contiguous runs of
  /// columnar-capable transform ops execute on ColumnBatches with
  /// vectorized kernels; the row path remains for everything else. Output
  /// is byte-identical with the flag off (the default, the seed behavior);
  /// both schedulers honor it (the fast path lives in the shared
  /// Pipeline).
  bool columnar = false;
};

/// Schema of the reject/audit store:
/// flow_id:string!, instance:int64!, attempt:int64!, rejected_row:string!.
Schema RejectStoreSchema();

class Executor {
 public:
  /// Runs the flow to completion (including retries / voting). On success
  /// the target contains the flow output and metrics describe the run.
  /// Internally: validate (BindChain), lower to an ExecutionPlan, then
  /// dispatch the plan to the phased or streaming scheduler.
  static Result<RunMetrics> Run(const FlowSpec& flow,
                                const ExecutionConfig& config);

  /// Validates a flow + config without executing: binds the whole chain,
  /// checks partition/recovery configuration. Returns the schema at every
  /// cut position (size = transforms + 1).
  static Result<std::vector<Schema>> BindChain(const FlowSpec& flow,
                                               const ExecutionConfig& config);

  /// Validates and lowers the flow + config into the ExecutionPlan the
  /// schedulers (and plan dumps / tests) consume. Blocking flags are
  /// derived from the bound operators, so the plan's soft barriers match
  /// what actually executes.
  static Result<ExecutionPlan> LowerPlan(const FlowSpec& flow,
                                         const ExecutionConfig& config);

 private:
  class Impl;
};

/// Returns the multiset fingerprint of a row collection (order-insensitive
/// hash). Used by the redundancy voter and by output-equivalence tests.
size_t FingerprintRows(const std::vector<Row>& rows);

}  // namespace qox

#endif  // QOX_ENGINE_EXECUTOR_H_
