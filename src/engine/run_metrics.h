// RunMetrics: everything measured about one execution of an ETL flow.
//
// These are the raw quantitative measures the QoX framework consumes: the
// paper's "lower level metrics [that] are functional parameters of the
// system; e.g., time window, execution time, recoverability time, ...,
// number of failures, latency of data updates" (Sec. 2.3).

#ifndef QOX_ENGINE_RUN_METRICS_H_
#define QOX_ENGINE_RUN_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qox {

/// Per-operator accounting collected by the pipeline.
struct OpStats {
  std::string name;
  std::string kind;  ///< operator kind ("filter", "delta", ...)
  size_t rows_in = 0;
  size_t rows_out = 0;
  /// Rows this op errored on that were contained (skipped or quarantined)
  /// instead of aborting the attempt (see engine/error_policy.h).
  size_t rows_contained = 0;
  int64_t micros = 0;

  /// Merges another instance's stats (partitioned execution sums clones).
  void Merge(const OpStats& other) {
    rows_in += other.rows_in;
    rows_out += other.rows_out;
    rows_contained += other.rows_contained;
    micros += other.micros;
  }
};

/// Timing breakdown of one partitioned (parallel) execution unit: the ops
/// range it covered and each partition clone's measured duration. When the
/// executor runs with one worker thread these durations are clean CPU
/// times, which the benchmark harness schedules onto an N-CPU virtual
/// machine (the multi-core hardware substitution documented in DESIGN.md).
struct ParallelUnitStats {
  size_t range_begin = 0;
  size_t range_end = 0;
  std::vector<int64_t> partition_micros;
  /// Per partition: the share of partition_micros spent inside operators
  /// that serialize across partitions through shared state (the Δ's
  /// snapshot-store critical section). The virtual scheduler treats this
  /// share as sequential work — with real concurrency those sections
  /// contend on the snapshot mutex.
  std::vector<int64_t> serialized_micros;
  int64_t merge_micros = 0;
};

/// Accounting of one stage of a streaming (pipelined) execution: a thread
/// running extract, a transform pipeline, a partition branch, a merge, a
/// recovery-point barrier, or the load, connected to its neighbors by
/// bounded channels. busy + stall + backpressure ≈ the stage's wall time;
/// the stall/backpressure split shows which neighbor was the bottleneck.
struct StageStats {
  std::string name;                ///< "extract", "transform[0,3)", "load", ...
  /// Id of the ExecutionPlan node this stage executed (see engine/plan.h),
  /// or -1 when the stage predates plan lowering. The recovery-point
  /// replay source reports under the extract node's id.
  int64_t node_id = -1;
  int64_t busy_micros = 0;         ///< actually processing rows
  int64_t stall_micros = 0;        ///< blocked popping an empty input channel
  int64_t backpressure_micros = 0; ///< blocked pushing a full output channel
  /// Time the stage task sat queued on the shared worker pool before a
  /// worker picked it up (scheduling wait, charged to the owning flow and
  /// plan node — never to the worker thread that happened to run it).
  int64_t queue_wait_us = 0;
  /// Slack against the owning flow's deadline when the stage finished
  /// (deadline − finish time; negative = the stage completed late). 0 when
  /// the flow carries no deadline.
  int64_t deadline_slack_us = 0;
  size_t batches = 0;              ///< batches this stage emitted
  size_t rows = 0;                 ///< rows this stage emitted
  /// High-water mark of the stage's output channel (0 for sink stages).
  size_t channel_high_water = 0;
};

/// Per-shard accounting of a sharded CDC ingestion run
/// (engine/cdc_coordinator.h): how far each shard worker got through the
/// stream window and what it cost to keep it there. `lag_events` is the
/// bounded-staleness headline — updates routed to the shard that are NOT
/// yet durable in the warehouse (0 for a healthy shard after a converged
/// run; the shard's whole backlog when it died and the coordinator
/// degraded around it).
struct ShardStats {
  size_t shard = 0;
  /// Update events of the window owned by this shard (key-hash routing).
  size_t events_routed = 0;
  /// Events of slices whose shard output is durably applied.
  size_t events_applied = 0;
  /// events_routed - events_applied: the shard's staleness in updates.
  size_t lag_events = 0;
  /// Post-transform rows durably staged by the shard's workers.
  size_t rows_staged = 0;
  /// Staged rows merged into the warehouse WAL.
  size_t rows_applied = 0;
  /// Supervised worker children forked for this shard (this process).
  size_t incarnations = 0;
  /// Worker children that died abnormally and were restarted.
  size_t crashes = 0;
  /// Worker lease acquisitions that displaced a stale lease.
  size_t lease_takeovers = 0;
  /// The shard exhausted its incarnation budget; the coordinator stopped
  /// scheduling it and kept loading the healthy shards.
  bool dead = false;
};

/// Metrics of one flow run (possibly spanning several attempts when
/// failures were injected).
struct RunMetrics {
  // --- wall-clock phases (microseconds) -----------------------------------
  int64_t total_micros = 0;      ///< end-to-end, including restarts
  int64_t extract_micros = 0;    ///< extraction across all attempts
  int64_t transform_micros = 0;  ///< transformation across all attempts
  int64_t load_micros = 0;       ///< warehouse load across all attempts
  int64_t rp_write_micros = 0;   ///< writing recovery points
  int64_t rp_read_micros = 0;    ///< reading recovery points on resume
  int64_t merge_micros = 0;      ///< merging partitioned branches back
  int64_t lost_work_micros = 0;  ///< work discarded due to failures
  int64_t backoff_micros = 0;    ///< waited between attempts (RetryPolicy)
  /// Multi-flow service attribution (engine/flow_service.h): time the flow
  /// waited in the admission queue before its driver started, and its
  /// slack against the freshness-SLA deadline at completion (deadline −
  /// finish; negative = missed). Both 0 for solo runs without an SLA.
  int64_t queue_wait_micros = 0;
  int64_t deadline_slack_micros = 0;

  // --- volumes -------------------------------------------------------------
  size_t rows_extracted = 0;
  size_t rows_loaded = 0;
  size_t rows_rejected = 0;  ///< filtered/unresolved rows routed aside
  /// Row-level containment (engine/error_policy.h), counted on the
  /// successful attempt only: rows dropped under ErrorPolicy::kSkip and
  /// rows routed to the dead-letter store under ErrorPolicy::kQuarantine.
  size_t rows_skipped = 0;
  size_t rows_quarantined = 0;
  size_t rp_bytes_written = 0;
  size_t rp_points_written = 0;

  // --- resource pressure ----------------------------------------------------
  /// Peak bytes charged to the flow's MemoryBudget. Operators only charge
  /// when a finite budget is enforced, so unbudgeted runs report 0.
  size_t mem_high_water_bytes = 0;
  size_t spill_runs = 0;   ///< spill files written by blocking operators
  size_t spill_rows = 0;   ///< rows round-tripped through spill files
  size_t spill_bytes = 0;  ///< bytes written to spill files
  /// Rows shed to the dead-letter ledger at the load boundary under
  /// ResourcePolicy::kShedToQuarantine (subset of rows_quarantined).
  size_t rows_shed = 0;

  // --- shared caches & columnar fast path ----------------------------------
  /// Lookup dimension tables this run built itself vs. took ready-made from
  /// the process-wide DimensionCache (engine/dimension_cache.h). Concurrent
  /// flows against the same dimension snapshot should sum to one build.
  size_t dim_cache_builds = 0;
  size_t dim_cache_hits = 0;
  /// Batches that entered the pipeline's columnar fast path and the live
  /// rows they carried (0 when ExecutionConfig::columnar is off or no op
  /// run qualified).
  size_t columnar_batches = 0;
  size_t columnar_rows = 0;

  // --- reliability ---------------------------------------------------------
  size_t attempts = 0;          ///< 1 when no failure occurred
  size_t failures_injected = 0; ///< failures that interrupted an attempt
  size_t resumed_from_rp = 0;   ///< attempts that resumed from a recovery point
  /// Recovery points found corrupted on resume (checksum mismatch) and
  /// abandoned in favor of an older point or a from-scratch restart.
  size_t rp_corruption_fallbacks = 0;
  /// Retries taken, keyed by failure cause (StatusCodeName of the status
  /// that interrupted the attempt: "injected_failure", "unavailable",
  /// "deadline_exceeded"). Sums to total retries across all phases.
  std::map<std::string, size_t> retries_by_cause;

  /// Total retries across causes (attempts beyond the first, load retries
  /// included).
  size_t TotalRetries() const;

  // --- configuration echo (for reports) ------------------------------------
  size_t threads = 1;
  size_t partitions = 1;
  size_t redundancy = 1;
  bool streaming = false;  ///< ran in streaming (pipelined) mode

  std::vector<OpStats> op_stats;
  /// One entry per executed parallel unit (across attempts).
  std::vector<ParallelUnitStats> parallel_units;
  /// Streaming mode only: one entry per dataflow stage (across attempts).
  std::vector<StageStats> stage_stats;
  /// Sharded CDC ingestion only: one entry per shard worker, in shard
  /// order (empty for ordinary flow runs).
  std::vector<ShardStats> shard_stats;

  /// Adds an operator's stats, merging by name.
  void AccumulateOp(const OpStats& stats);

  /// Human-readable one-line summary.
  std::string Summary() const;
};

}  // namespace qox

#endif  // QOX_ENGINE_RUN_METRICS_H_
