#include "engine/run_metrics.h"

#include <sstream>

namespace qox {

size_t RunMetrics::TotalRetries() const {
  size_t total = 0;
  for (const auto& [cause, count] : retries_by_cause) total += count;
  return total;
}

void RunMetrics::AccumulateOp(const OpStats& stats) {
  for (OpStats& existing : op_stats) {
    if (existing.name == stats.name) {
      existing.Merge(stats);
      return;
    }
  }
  op_stats.push_back(stats);
}

std::string RunMetrics::Summary() const {
  std::ostringstream oss;
  oss << "total=" << total_micros / 1000.0 << "ms"
      << " extract=" << extract_micros / 1000.0 << "ms"
      << " transform=" << transform_micros / 1000.0 << "ms"
      << " load=" << load_micros / 1000.0 << "ms";
  if (rp_points_written > 0) {
    oss << " rp_write=" << rp_write_micros / 1000.0 << "ms (" << rp_bytes_written
        << "B, " << rp_points_written << " points)";
  }
  if (merge_micros > 0) oss << " merge=" << merge_micros / 1000.0 << "ms";
  oss << " rows_in=" << rows_extracted << " rows_out=" << rows_loaded
      << " rejected=" << rows_rejected << " attempts=" << attempts;
  if (rows_skipped > 0) oss << " skipped=" << rows_skipped;
  if (rows_quarantined > 0) oss << " quarantined=" << rows_quarantined;
  if (rows_shed > 0) oss << " shed=" << rows_shed;
  if (spill_runs > 0) {
    oss << " spill=" << spill_runs << " runs/" << spill_rows << " rows/"
        << spill_bytes << "B";
  }
  if (mem_high_water_bytes > 0) {
    oss << " mem_hw=" << mem_high_water_bytes << "B";
  }
  if (dim_cache_builds + dim_cache_hits > 0) {
    oss << " dim_cache=" << dim_cache_builds << " builds/" << dim_cache_hits
        << " hits";
  }
  if (columnar_batches > 0) {
    oss << " columnar=" << columnar_batches << " batches/" << columnar_rows
        << " rows";
  }
  if (failures_injected > 0) {
    oss << " failures=" << failures_injected
        << " resumed_from_rp=" << resumed_from_rp
        << " lost=" << lost_work_micros / 1000.0 << "ms";
  }
  if (!retries_by_cause.empty()) {
    oss << " retries={";
    bool first = true;
    for (const auto& [cause, count] : retries_by_cause) {
      if (!first) oss << ",";
      oss << cause << ":" << count;
      first = false;
    }
    oss << "}";
    if (backoff_micros > 0) oss << " backoff=" << backoff_micros / 1000.0 << "ms";
  }
  if (rp_corruption_fallbacks > 0) {
    oss << " rp_corruption_fallbacks=" << rp_corruption_fallbacks;
  }
  if (!shard_stats.empty()) {
    size_t lag = 0;
    size_t dead = 0;
    size_t crashes = 0;
    for (const ShardStats& shard : shard_stats) {
      lag += shard.lag_events;
      if (shard.dead) ++dead;
      crashes += shard.crashes;
    }
    oss << " shards=" << shard_stats.size() << " shard_lag=" << lag
        << " shard_crashes=" << crashes;
    if (dead > 0) oss << " shards_dead=" << dead;
  }
  if (streaming && !stage_stats.empty()) {
    int64_t stall = 0;
    int64_t backpressure = 0;
    for (const StageStats& stage : stage_stats) {
      stall += stage.stall_micros;
      backpressure += stage.backpressure_micros;
    }
    oss << " stages=" << stage_stats.size()
        << " stall=" << stall / 1000.0 << "ms"
        << " backpressure=" << backpressure / 1000.0 << "ms";
  }
  oss << " [threads=" << threads << " partitions=" << partitions
      << " redundancy=" << redundancy << (streaming ? " streaming" : "")
      << "]";
  return oss.str();
}

}  // namespace qox
