#include "engine/pipeline.h"

#include "common/clock.h"

namespace qox {

Result<std::unique_ptr<Pipeline>> Pipeline::Create(
    const Schema& input_schema, std::vector<OperatorPtr> ops,
    OperatorContext* ctx, const PipelineConfig& config) {
  std::vector<Schema> schemas;
  schemas.reserve(ops.size() + 1);
  schemas.push_back(input_schema);
  for (const OperatorPtr& op : ops) {
    QOX_ASSIGN_OR_RETURN(Schema out, op->Bind(schemas.back()));
    schemas.push_back(std::move(out));
  }
  auto pipeline = std::unique_ptr<Pipeline>(
      new Pipeline(std::move(ops), std::move(schemas), ctx, config));
  for (const OperatorPtr& op : pipeline->ops_) {
    QOX_RETURN_IF_ERROR(op->Open(ctx));
  }
  // Columnar capability is queried after Open: it may depend on execution
  // state (a lookup that spilled its build side is row-only).
  pipeline->columnar_ok_.assign(pipeline->ops_.size(), false);
  if (config.columnar) {
    for (size_t i = 0; i < pipeline->ops_.size(); ++i) {
      pipeline->columnar_ok_[i] = !pipeline->ops_[i]->IsBlocking() &&
                                  pipeline->ops_[i]->CanPushColumnar();
    }
  }
  return pipeline;
}

Pipeline::Pipeline(std::vector<OperatorPtr> ops, std::vector<Schema> schemas,
                   OperatorContext* ctx, const PipelineConfig& config)
    : ops_(std::move(ops)),
      schemas_(std::move(schemas)),
      ctx_(ctx),
      config_(config) {
  op_stats_.resize(ops_.size());
  rows_entered_.resize(ops_.size(), 0);
  for (size_t i = 0; i < ops_.size(); ++i) {
    op_stats_[i].name = ops_[i]->name();
    op_stats_[i].kind = ops_[i]->kind();
  }
  schema_ptrs_.reserve(schemas_.size());
  for (const Schema& s : schemas_) schema_ptrs_.push_back(MakeSchemaPtr(s));
}

Status Pipeline::CheckInterrupts(size_t op_ordinal,
                                 size_t rows_about_to_enter) {
  if (ctx_ != nullptr && ctx_->IsCancelled()) {
    return Status::Cancelled("pipeline cancelled");
  }
  if (config_.deadline_micros > 0 && NowMicros() > config_.deadline_micros) {
    return Status::DeadlineExceeded(
        "attempt deadline expired at transform op " +
        std::to_string(config_.op_index_offset +
                       static_cast<int>(op_ordinal)));
  }
  if (config_.injector != nullptr) {
    QOX_RETURN_IF_ERROR(config_.injector->Check(
        config_.instance_id, config_.attempt,
        config_.op_index_offset + static_cast<int>(op_ordinal),
        rows_about_to_enter, config_.expected_input_rows));
  }
  return Status::OK();
}

ErrorPolicy Pipeline::PolicyFor(size_t op_ordinal) const {
  if (config_.error_policies == nullptr) return ErrorPolicy::kFailFast;
  const size_t global =
      static_cast<size_t>(config_.op_index_offset) + op_ordinal;
  if (global >= config_.error_policies->size()) return ErrorPolicy::kFailFast;
  return (*config_.error_policies)[global];
}

Status Pipeline::Contain(size_t op_ordinal, const Row& row,
                         const Status& cause) {
  const ErrorPolicy policy = PolicyFor(op_ordinal);
  ++op_stats_[op_ordinal].rows_contained;
  if (policy == ErrorPolicy::kQuarantine && config_.quarantine_sink) {
    ContainedRow contained;
    contained.op_index =
        config_.op_index_offset + static_cast<int>(op_ordinal);
    contained.op_name = ops_[op_ordinal]->name();
    contained.row = row;
    contained.cause = cause;
    QOX_RETURN_IF_ERROR(config_.quarantine_sink(contained));
  }
  if (config_.error_budget != nullptr) {
    return config_.error_budget->Charge(
        policy, config_.op_index_offset + static_cast<int>(op_ordinal));
  }
  return Status::OK();
}

Status Pipeline::ApplyOp(size_t op_ordinal, const RowBatch& input,
                         bool input_owned, RowBatch* out) {
  // Ownership is only exploited under kFailFast: the containable-replay
  // path below must re-read the input row by row.
  const bool move_input =
      input_owned && PolicyFor(op_ordinal) == ErrorPolicy::kFailFast;
  const size_t rows_in = input.num_rows();
  const StopWatch timer;
  Status st =
      move_input
          ? ops_[op_ordinal]->Push(std::move(const_cast<RowBatch&>(input)),
                                   out)
          : ops_[op_ordinal]->Push(input, out);
  if (!st.ok() && IsRowContainable(st) &&
      PolicyFor(op_ordinal) != ErrorPolicy::kFailFast) {
    // A containable batch failure is replayed row by row so only the
    // failing rows are contained. Safe because the failed Push's output
    // batch is discarded here (nothing reached downstream) and operators
    // that report row-scoped errors are stateless per the Push contract
    // (blocking operators never row-error).
    *out = RowBatch(schema_ptrs_[op_ordinal + 1]);
    st = Status::OK();
    RowBatch one(schema_ptrs_[op_ordinal]);
    for (const Row& row : input.rows()) {
      one.Clear();
      one.Append(row);
      RowBatch row_out(schema_ptrs_[op_ordinal + 1]);
      const Status row_st = ops_[op_ordinal]->Push(one, &row_out);
      if (row_st.ok()) {
        for (Row& emitted : row_out.rows()) out->Append(std::move(emitted));
      } else if (IsRowContainable(row_st)) {
        QOX_RETURN_IF_ERROR(Contain(op_ordinal, row, row_st));
      } else {
        st = row_st;
        break;
      }
    }
  }
  op_stats_[op_ordinal].micros += timer.ElapsedMicros();
  op_stats_[op_ordinal].rows_in += rows_in;
  QOX_RETURN_IF_ERROR(st);
  op_stats_[op_ordinal].rows_out += out->num_rows();
  return Status::OK();
}

Status Pipeline::RunColumnar(size_t begin, size_t end, ColumnBatch* batch) {
  if (ctx_ != nullptr) {
    if (ctx_->columnar_batches != nullptr) {
      ctx_->columnar_batches->fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx_->columnar_rows != nullptr) {
      ctx_->columnar_rows->fetch_add(batch->num_rows(),
                                     std::memory_order_relaxed);
    }
  }
  for (size_t i = begin; i < end; ++i) {
    if (batch->num_rows() == 0) return Status::OK();
    rows_entered_[i] += batch->num_rows();
    QOX_RETURN_IF_ERROR(CheckInterrupts(i, rows_entered_[i]));
    const size_t rows_in = batch->num_rows();
    ColumnarPushContext cctx;
    cctx.contain = PolicyFor(i) != ErrorPolicy::kFailFast;
    const StopWatch timer;
    const Status st = ops_[i]->PushColumnar(batch, &cctx);
    op_stats_[i].micros += timer.ElapsedMicros();
    op_stats_[i].rows_in += rows_in;
    QOX_RETURN_IF_ERROR(st);
    for (auto& contained : cctx.contained) {
      QOX_RETURN_IF_ERROR(Contain(i, contained.first, contained.second));
    }
    if (batch->num_columns() != schema_ptrs_[i + 1]->num_fields()) {
      return Status::Internal(
          "columnar push of '" + ops_[i]->name() + "' produced " +
          std::to_string(batch->num_columns()) + " columns, schema expects " +
          std::to_string(schema_ptrs_[i + 1]->num_fields()));
    }
    batch->set_schema(schema_ptrs_[i + 1]);
    op_stats_[i].rows_out += batch->num_rows();
  }
  return Status::OK();
}

Status Pipeline::PushFrom(size_t from, const RowBatch& batch,
                          bool batch_owned) {
  if (from >= ops_.size()) {
    output_.insert(output_.end(), batch.rows().begin(), batch.rows().end());
    return Status::OK();
  }
  // `current` points at the caller's batch until the first operator emits;
  // afterwards it owns the intermediate batch (avoids a deep copy of the
  // input on every push). `current_owned` tracks whether the chain may
  // consume *current via the move-aware Push overload.
  const RowBatch* current = &batch;
  bool current_owned = batch_owned;
  RowBatch owned;
  for (size_t i = from; i < ops_.size(); ++i) {
    // Poison screening: rows the injector marks poisonous at this op are
    // contained (or, under kFailFast, abort the attempt) before entering.
    if (config_.injector != nullptr && config_.injector->HasPoison()) {
      const int global_op = config_.op_index_offset + static_cast<int>(i);
      bool any_poisoned = false;
      for (const Row& row : current->rows()) {
        if (!config_.injector->CheckRow(global_op, row).ok()) {
          any_poisoned = true;
          break;
        }
      }
      if (any_poisoned) {
        RowBatch kept(schema_ptrs_[i]);
        kept.Reserve(current->num_rows());
        for (const Row& row : current->rows()) {
          const Status row_st = config_.injector->CheckRow(global_op, row);
          if (row_st.ok()) {
            kept.Append(row);
            continue;
          }
          if (PolicyFor(i) == ErrorPolicy::kFailFast) return row_st;
          QOX_RETURN_IF_ERROR(Contain(i, row, row_st));
        }
        if (kept.empty()) return Status::OK();  // whole batch contained
        owned = std::move(kept);
        current = &owned;
        current_owned = true;
      }
    }
    // Columnar fast path: execute the maximal capable run starting here on
    // a column batch. Skipped while poison is armed (per-op row screening
    // above must keep seeing row batches) and when the batch is not
    // type-pure (FromRowBatch declines; the row path is always correct).
    if (columnar_ok_[i] &&
        (config_.injector == nullptr || !config_.injector->HasPoison())) {
      size_t end = i + 1;
      while (end < ops_.size() && columnar_ok_[end]) ++end;
      std::optional<ColumnBatch> cb =
          ColumnBatch::FromRowBatch(*current, schema_ptrs_[i]);
      if (cb.has_value()) {
        QOX_RETURN_IF_ERROR(RunColumnar(i, end, &*cb));
        if (cb->num_rows() == 0) return Status::OK();  // fully filtered
        if (end >= ops_.size()) {
          RowBatch rows = cb->ToRowBatch();
          output_.insert(output_.end(),
                         std::make_move_iterator(rows.rows().begin()),
                         std::make_move_iterator(rows.rows().end()));
          return Status::OK();
        }
        owned = cb->ToRowBatch();
        current = &owned;
        current_owned = true;
        i = end - 1;  // loop increment moves to the first row-mode op
        continue;
      }
    }
    rows_entered_[i] += current->num_rows();
    QOX_RETURN_IF_ERROR(CheckInterrupts(i, rows_entered_[i]));
    RowBatch out(schema_ptrs_[i + 1]);
    QOX_RETURN_IF_ERROR(ApplyOp(i, *current, current_owned, &out));
    if (out.empty()) return Status::OK();  // blocked or fully filtered
    owned = std::move(out);
    current = &owned;
    current_owned = true;
  }
  output_.insert(output_.end(), current->rows().begin(),
                 current->rows().end());
  return Status::OK();
}

Status Pipeline::Push(const RowBatch& batch) {
  return PushFrom(0, batch, /*batch_owned=*/false);
}

Status Pipeline::Push(RowBatch&& batch) {
  RowBatch owned = std::move(batch);
  return PushFrom(0, owned, /*batch_owned=*/true);
}

Status Pipeline::Finish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    QOX_RETURN_IF_ERROR(CheckInterrupts(i, rows_entered_[i]));
    RowBatch out(schema_ptrs_[i + 1]);
    const StopWatch timer;
    const Status st = ops_[i]->Finish(&out);
    op_stats_[i].micros += timer.ElapsedMicros();
    QOX_RETURN_IF_ERROR(st);
    op_stats_[i].rows_out += out.num_rows();
    if (!out.empty()) {
      QOX_RETURN_IF_ERROR(PushFrom(i + 1, out, /*batch_owned=*/true));
    }
  }
  return Status::OK();
}

std::vector<Row> Pipeline::TakeOutput() {
  std::vector<Row> out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace qox
