#include "engine/pipeline.h"

#include "common/clock.h"

namespace qox {

Result<std::unique_ptr<Pipeline>> Pipeline::Create(
    const Schema& input_schema, std::vector<OperatorPtr> ops,
    OperatorContext* ctx, const PipelineConfig& config) {
  std::vector<Schema> schemas;
  schemas.reserve(ops.size() + 1);
  schemas.push_back(input_schema);
  for (const OperatorPtr& op : ops) {
    QOX_ASSIGN_OR_RETURN(Schema out, op->Bind(schemas.back()));
    schemas.push_back(std::move(out));
  }
  auto pipeline = std::unique_ptr<Pipeline>(
      new Pipeline(std::move(ops), std::move(schemas), ctx, config));
  for (const OperatorPtr& op : pipeline->ops_) {
    QOX_RETURN_IF_ERROR(op->Open(ctx));
  }
  return pipeline;
}

Pipeline::Pipeline(std::vector<OperatorPtr> ops, std::vector<Schema> schemas,
                   OperatorContext* ctx, const PipelineConfig& config)
    : ops_(std::move(ops)),
      schemas_(std::move(schemas)),
      ctx_(ctx),
      config_(config) {
  op_stats_.resize(ops_.size());
  rows_entered_.resize(ops_.size(), 0);
  for (size_t i = 0; i < ops_.size(); ++i) {
    op_stats_[i].name = ops_[i]->name();
    op_stats_[i].kind = ops_[i]->kind();
  }
}

Status Pipeline::CheckInterrupts(size_t op_ordinal,
                                 size_t rows_about_to_enter) {
  if (ctx_ != nullptr && ctx_->IsCancelled()) {
    return Status::Cancelled("pipeline cancelled");
  }
  if (config_.deadline_micros > 0 && NowMicros() > config_.deadline_micros) {
    return Status::DeadlineExceeded(
        "attempt deadline expired at transform op " +
        std::to_string(config_.op_index_offset +
                       static_cast<int>(op_ordinal)));
  }
  if (config_.injector != nullptr) {
    QOX_RETURN_IF_ERROR(config_.injector->Check(
        config_.instance_id, config_.attempt,
        config_.op_index_offset + static_cast<int>(op_ordinal),
        rows_about_to_enter, config_.expected_input_rows));
  }
  return Status::OK();
}

Status Pipeline::PushFrom(size_t from, const RowBatch& batch) {
  if (from >= ops_.size()) {
    output_.insert(output_.end(), batch.rows().begin(), batch.rows().end());
    return Status::OK();
  }
  // `current` points at the caller's batch until the first operator emits;
  // afterwards it owns the intermediate batch (avoids a deep copy of the
  // input on every push).
  const RowBatch* current = &batch;
  RowBatch owned;
  for (size_t i = from; i < ops_.size(); ++i) {
    rows_entered_[i] += current->num_rows();
    QOX_RETURN_IF_ERROR(CheckInterrupts(i, rows_entered_[i]));
    RowBatch out(schemas_[i + 1]);
    const StopWatch timer;
    const Status st = ops_[i]->Push(*current, &out);
    op_stats_[i].micros += timer.ElapsedMicros();
    op_stats_[i].rows_in += current->num_rows();
    QOX_RETURN_IF_ERROR(st);
    op_stats_[i].rows_out += out.num_rows();
    if (out.empty()) return Status::OK();  // blocked or fully filtered
    owned = std::move(out);
    current = &owned;
  }
  output_.insert(output_.end(), current->rows().begin(),
                 current->rows().end());
  return Status::OK();
}

Status Pipeline::Push(const RowBatch& batch) { return PushFrom(0, batch); }

Status Pipeline::Finish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    QOX_RETURN_IF_ERROR(CheckInterrupts(i, rows_entered_[i]));
    RowBatch out(schemas_[i + 1]);
    const StopWatch timer;
    const Status st = ops_[i]->Finish(&out);
    op_stats_[i].micros += timer.ElapsedMicros();
    QOX_RETURN_IF_ERROR(st);
    op_stats_[i].rows_out += out.num_rows();
    if (!out.empty()) {
      QOX_RETURN_IF_ERROR(PushFrom(i + 1, out));
    }
  }
  return Status::OK();
}

std::vector<Row> Pipeline::TakeOutput() {
  std::vector<Row> out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace qox
