#include "engine/plan.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace qox {

const char* PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kExtract:
      return "extract";
    case PlanNodeKind::kTransform:
      return "transform";
    case PlanNodeKind::kPartitionRouter:
      return "partition_router";
    case PlanNodeKind::kPartitionBranch:
      return "partition_branch";
    case PlanNodeKind::kMerge:
      return "merge";
    case PlanNodeKind::kRpBarrier:
      return "rp_barrier";
    case PlanNodeKind::kCollect:
      return "collect";
    case PlanNodeKind::kReplicaGroup:
      return "replica_group";
    case PlanNodeKind::kLoad:
      return "load";
  }
  return "unknown";
}

Result<PlanNodeKind> ParsePlanNodeKind(const std::string& name) {
  static constexpr PlanNodeKind kAll[] = {
      PlanNodeKind::kExtract,        PlanNodeKind::kTransform,
      PlanNodeKind::kPartitionRouter, PlanNodeKind::kPartitionBranch,
      PlanNodeKind::kMerge,          PlanNodeKind::kRpBarrier,
      PlanNodeKind::kCollect,        PlanNodeKind::kReplicaGroup,
      PlanNodeKind::kLoad};
  for (const PlanNodeKind kind : kAll) {
    if (name == PlanNodeKindName(kind)) return kind;
  }
  return Status::Invalid("unknown plan node kind '" + name + "'");
}

bool ExecutionPlan::rp_at(size_t cut) const {
  return std::binary_search(rp_cuts_.begin(), rp_cuts_.end(), cut);
}

size_t ExecutionPlan::NodeForOp(size_t op_index) const {
  if (op_index >= input_.num_ops) return kNoNode;
  for (const PlanNode& node : nodes_) {
    const bool runs_ops = node.kind == PlanNodeKind::kTransform ||
                          node.kind == PlanNodeKind::kPartitionBranch;
    if (!runs_ops || node.partition != 0) continue;
    if (node.begin <= op_index && op_index < node.end) return node.id;
  }
  return kNoNode;
}

ErrorPolicy ExecutionPlan::PolicyForOp(size_t op_index) const {
  if (op_index >= input_.error_policies.size()) return ErrorPolicy::kFailFast;
  return input_.error_policies[op_index];
}

size_t ExecutionPlan::AddNode(PlanNodeKind kind, std::string label,
                              size_t begin, size_t end, size_t partition,
                              size_t section) {
  PlanNode node;
  node.id = nodes_.size();
  node.kind = kind;
  node.label = std::move(label);
  node.begin = begin;
  node.end = end;
  node.partition = partition;
  node.section = section;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void ExecutionPlan::Connect(size_t from, size_t to) {
  PlanEdge edge;
  edge.from = from;
  edge.to = to;
  edge.capacity = std::max<size_t>(1, input_.channel_capacity);
  edges_.push_back(edge);
  nodes_[from].outputs.push_back(to);
  nodes_[to].inputs.push_back(from);
}

namespace {

std::string OpRange(size_t begin, size_t end) {
  return "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
}

}  // namespace

Result<ExecutionPlan> ExecutionPlan::Lower(const PlanInput& input) {
  const size_t n = input.num_ops;
  if (input.parallel.partitions == 0) {
    return Status::Invalid("partitions must be >= 1");
  }
  if (input.redundancy == 0) {
    return Status::Invalid("redundancy must be >= 1");
  }
  if (!input.blocking.empty() && input.blocking.size() != n) {
    return Status::Invalid("blocking flags cover " +
                           std::to_string(input.blocking.size()) +
                           " ops but the chain has " + std::to_string(n));
  }
  for (const size_t cut : input.recovery_points) {
    if (cut > n) {
      return Status::Invalid("recovery point cut " + std::to_string(cut) +
                             " beyond chain length " + std::to_string(n));
    }
  }
  if (input.error_policies.size() > n) {
    return Status::Invalid("error policies cover " +
                           std::to_string(input.error_policies.size()) +
                           " ops but the chain has " + std::to_string(n));
  }
  if (input.error_budget.max_fraction < 0.0 ||
      input.error_budget.max_fraction > 1.0) {
    return Status::Invalid("error budget max_fraction must lie in [0, 1]");
  }

  ExecutionPlan plan;
  plan.input_ = input;
  plan.rp_cuts_ = input.recovery_points;
  std::sort(plan.rp_cuts_.begin(), plan.rp_cuts_.end());
  plan.rp_cuts_.erase(
      std::unique(plan.rp_cuts_.begin(), plan.rp_cuts_.end()),
      plan.rp_cuts_.end());
  plan.rp_after_extract_ = plan.rp_at(0);

  // ---- Stage graph: extract -> [rp0] -> sections -> sink ----------------
  plan.extract_node_ =
      plan.AddNode(PlanNodeKind::kExtract, "extract", 0, 0, 0, kNoSection);
  size_t cursor = plan.extract_node_;
  if (plan.rp_after_extract_) {
    plan.rp0_barrier_node_ =
        plan.AddNode(PlanNodeKind::kRpBarrier, "rp.cut0", 0, 0, 0, kNoSection);
    plan.Connect(cursor, plan.rp0_barrier_node_);
    cursor = plan.rp0_barrier_node_;
  }

  const bool parallel_on = input.parallel.partitions > 1;
  const size_t rb = input.parallel.range_begin;
  const size_t re = std::min(input.parallel.range_end, n);

  // Section bounds: cut 0, every interior recovery-point cut, and the chain
  // end. A recovery point exactly at cut n does not open an extra section —
  // it marks the last section's rp_at_end.
  std::vector<size_t> bounds{0};
  for (const size_t cut : plan.rp_cuts_) {
    if (cut > 0 && cut < n) bounds.push_back(cut);
  }
  if (n > 0) bounds.push_back(n);

  for (size_t s = 0; s + 1 < bounds.size(); ++s) {
    PlanSection section;
    section.begin_cut = bounds[s];
    section.end_cut = bounds[s + 1];
    const size_t sec_index = plan.sections_.size();
    // Split the section into maximal sequential / partitioned units at the
    // parallel range's edges.
    size_t pos = section.begin_cut;
    while (pos < section.end_cut) {
      PlanUnit unit;
      if (parallel_on && pos >= rb && pos < re) {
        const size_t next = std::min(section.end_cut, re);
        unit.parallel = true;
        unit.begin = pos;
        unit.end = next;
        const std::string range = OpRange(pos, next);
        unit.router = plan.AddNode(PlanNodeKind::kPartitionRouter,
                                   "partition" + range, pos, next, 0,
                                   sec_index);
        plan.Connect(cursor, unit.router);
        for (size_t p = 0; p < input.parallel.partitions; ++p) {
          const size_t branch = plan.AddNode(
              PlanNodeKind::kPartitionBranch,
              "part" + std::to_string(p) + range, pos, next, p, sec_index);
          plan.Connect(unit.router, branch);
          unit.branches.push_back(branch);
        }
        unit.merge = plan.AddNode(PlanNodeKind::kMerge, "merge" + range, pos,
                                  next, 0, sec_index);
        for (const size_t branch : unit.branches) {
          plan.Connect(branch, unit.merge);
        }
        cursor = unit.merge;
        pos = next;
      } else {
        const size_t next = (parallel_on && pos < rb)
                                ? std::min(section.end_cut, rb)
                                : section.end_cut;
        unit.parallel = false;
        unit.begin = pos;
        unit.end = next;
        unit.node =
            plan.AddNode(PlanNodeKind::kTransform, "transform" +
                         OpRange(pos, next), pos, next, 0, sec_index);
        plan.Connect(cursor, unit.node);
        cursor = unit.node;
        pos = next;
      }
      section.units.push_back(std::move(unit));
    }
    section.rp_at_end = plan.rp_at(section.end_cut);
    section.barrier_node = kNoNode;
    if (section.rp_at_end) {
      section.barrier_node = plan.AddNode(
          PlanNodeKind::kRpBarrier,
          "rp.cut" + std::to_string(section.end_cut), section.end_cut,
          section.end_cut, 0, sec_index);
      plan.Connect(cursor, section.barrier_node);
      cursor = section.barrier_node;
    }
    plan.sections_.push_back(std::move(section));
  }

  if (input.redundancy > 1) {
    plan.collect_node_ =
        plan.AddNode(PlanNodeKind::kCollect, "collect", n, n, 0, kNoSection);
    plan.Connect(cursor, plan.collect_node_);
    plan.replica_group_node_ = plan.AddNode(
        PlanNodeKind::kReplicaGroup,
        "vote(" + std::to_string(input.redundancy) + ")", n, n,
        input.redundancy, kNoSection);
    plan.Connect(plan.collect_node_, plan.replica_group_node_);
    plan.load_node_ =
        plan.AddNode(PlanNodeKind::kLoad, "load", n, n, 0, kNoSection);
    plan.Connect(plan.replica_group_node_, plan.load_node_);
  } else {
    plan.load_node_ =
        plan.AddNode(PlanNodeKind::kLoad, "load", n, n, 0, kNoSection);
    plan.Connect(cursor, plan.load_node_);
  }

  // ---- Streaming-overlap cost structure ---------------------------------
  // Hard barriers (recovery points) plus soft barriers (blocking ops) plus
  // the chain end; borders additionally include cut 0 and the parallel
  // range's clamped edges. Between consecutive borders lies one CostChunk.
  std::set<size_t> barriers(plan.rp_cuts_.begin(), plan.rp_cuts_.end());
  for (size_t i = 0; i < n && i < input.blocking.size(); ++i) {
    if (input.blocking[i]) barriers.insert(i + 1);
  }
  barriers.insert(n);
  std::set<size_t> borders(barriers.begin(), barriers.end());
  borders.insert(0);
  const size_t crb = parallel_on ? std::min(rb, n) : 0;
  const size_t cre = parallel_on ? re : 0;
  if (parallel_on && crb < cre) {
    borders.insert(crb);
    borders.insert(cre);
  }
  plan.channel_borders_.assign(borders.begin(), borders.end());
  const std::vector<size_t> border_list(borders.begin(), borders.end());
  for (size_t k = 0; k + 1 < border_list.size(); ++k) {
    CostChunk chunk;
    chunk.begin = border_list[k];
    chunk.end = border_list[k + 1];
    chunk.parallel = parallel_on && crb < cre && chunk.begin >= crb &&
                     chunk.end <= cre;
    chunk.drains_at_end = barriers.count(chunk.end) > 0;
    plan.cost_chunks_.push_back(chunk);
  }

  return plan;
}

namespace {

const char* DotShape(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kExtract:
      return "ellipse";
    case PlanNodeKind::kTransform:
    case PlanNodeKind::kPartitionBranch:
      return "box";
    case PlanNodeKind::kPartitionRouter:
      return "invtrapezium";
    case PlanNodeKind::kMerge:
      return "trapezium";
    case PlanNodeKind::kRpBarrier:
      return "box3d";
    case PlanNodeKind::kCollect:
      return "ellipse";
    case PlanNodeKind::kReplicaGroup:
      return "doubleoctagon";
    case PlanNodeKind::kLoad:
      return "house";
  }
  return "box";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ExecutionPlan::ToDot() const {
  std::ostringstream oss;
  oss << "digraph execution_plan {\n";
  oss << "  rankdir=LR;\n";
  oss << "  node [fontname=\"Helvetica\"];\n";
  // Section clusters first, then the out-of-section nodes.
  for (size_t s = 0; s < sections_.size(); ++s) {
    oss << "  subgraph cluster_section" << s << " {\n";
    oss << "    label=\"section [" << sections_[s].begin_cut << ","
        << sections_[s].end_cut << ")\";\n";
    oss << "    style=dashed;\n";
    for (const PlanNode& node : nodes_) {
      if (node.section == s) oss << "    n" << node.id << ";\n";
    }
    oss << "  }\n";
  }
  for (const PlanNode& node : nodes_) {
    oss << "  n" << node.id << " [label=\"" << node.label << "\\n#"
        << node.id;
    // Containment policies render on the nodes that enforce them.
    if (node.kind == PlanNodeKind::kTransform ||
        node.kind == PlanNodeKind::kPartitionBranch) {
      for (size_t op = node.begin; op < node.end; ++op) {
        const ErrorPolicy policy = PolicyForOp(op);
        if (policy == ErrorPolicy::kFailFast) continue;
        oss << "\\nop" << op << ":" << ErrorPolicyName(policy);
      }
    }
    oss << "\" shape=" << DotShape(node.kind);
    if (node.kind == PlanNodeKind::kRpBarrier) {
      oss << " style=filled fillcolor=lightgrey";
    }
    oss << "];\n";
  }
  if (!input_.error_budget.unlimited()) {
    oss << "  label=\"error_budget: max_rows="
        << (input_.error_budget.max_rows == static_cast<size_t>(-1)
                ? std::string("inf")
                : std::to_string(input_.error_budget.max_rows))
        << " max_fraction=" << input_.error_budget.max_fraction << "\";\n";
  }
  for (const PlanEdge& edge : edges_) {
    oss << "  n" << edge.from << " -> n" << edge.to << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string ExecutionPlan::ToJson() const {
  std::ostringstream oss;
  oss << "{\"num_ops\":" << input_.num_ops << ",\"streaming\":"
      << (input_.streaming ? "true" : "false") << ",\"redundancy\":"
      << input_.redundancy << ",\"channel_capacity\":"
      << input_.channel_capacity;
  if (!input_.error_policies.empty()) {
    oss << ",\"error_policies\":[";
    for (size_t i = 0; i < input_.error_policies.size(); ++i) {
      if (i > 0) oss << ",";
      oss << "\"" << ErrorPolicyName(input_.error_policies[i]) << "\"";
    }
    oss << "]";
  }
  if (!input_.error_budget.unlimited()) {
    oss << ",\"error_budget\":{\"max_rows\":";
    if (input_.error_budget.max_rows == static_cast<size_t>(-1)) {
      oss << -1;
    } else {
      oss << input_.error_budget.max_rows;
    }
    oss << ",\"max_fraction\":" << input_.error_budget.max_fraction << "}";
  }
  oss << ",\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanNode& node = nodes_[i];
    if (i > 0) oss << ",";
    oss << "{\"id\":" << node.id << ",\"kind\":\""
        << PlanNodeKindName(node.kind) << "\",\"label\":\""
        << JsonEscape(node.label) << "\",\"begin\":" << node.begin
        << ",\"end\":" << node.end << ",\"partition\":" << node.partition
        << ",\"section\":"
        << (node.section == kNoSection
                ? std::string("-1")
                : std::to_string(node.section))
        << "}";
  }
  oss << "],\"edges\":[";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) oss << ",";
    oss << "{\"from\":" << edges_[i].from << ",\"to\":" << edges_[i].to
        << ",\"capacity\":" << edges_[i].capacity << "}";
  }
  oss << "],\"sections\":[";
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (i > 0) oss << ",";
    oss << "{\"begin\":" << sections_[i].begin_cut << ",\"end\":"
        << sections_[i].end_cut << ",\"rp_at_end\":"
        << (sections_[i].rp_at_end ? "true" : "false") << "}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace qox
