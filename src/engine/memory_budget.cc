#include "engine/memory_budget.h"

#include <cstdlib>

namespace qox {

Result<size_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return Status::Invalid("empty byte size");
  size_t multiplier = 1;
  std::string digits = text;
  const char suffix = digits.back();
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1024;
  } else if (suffix == 'm' || suffix == 'M') {
    multiplier = 1024 * 1024;
  } else if (suffix == 'g' || suffix == 'G') {
    multiplier = 1024 * 1024 * 1024;
  }
  if (multiplier != 1) digits.pop_back();
  if (digits.empty()) return Status::Invalid("malformed byte size: " + text);
  size_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return Status::Invalid("malformed byte size: " + text);
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value * multiplier;
}

size_t MemoryBudgetFromEnv() {
  const char* raw = std::getenv("QOX_MEM_BUDGET");
  if (raw == nullptr || raw[0] == '\0') return 0;
  const Result<size_t> parsed = ParseByteSize(raw);
  return parsed.ok() ? parsed.value() : 0;
}

}  // namespace qox
