#include "engine/thread_pool.h"

#include <algorithm>

namespace qox {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

namespace {
/// The pool (if any) whose WorkerLoop owns the calling thread.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

bool ThreadPool::InWorkerThread() const {
  return current_worker_pool == this;
}

Status ThreadPool::Wait() {
  if (InWorkerThread()) {
    // A worker waiting for the pool's own queue to drain waits for itself:
    // with every worker doing so the pool deadlocks. Refuse loudly instead.
    return Status::FailedPrecondition(
        "ThreadPool::Wait() called from inside a pool task: a worker cannot "
        "wait for its own pool (deadlock); restructure the task to not "
        "block on sibling tasks");
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace qox
