#include "engine/flow_journal.h"

#include <cstdlib>

namespace qox {

namespace {

size_t ParseSize(const std::string& s) {
  return static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 10));
}

int64_t ParseInt(const std::string& s) {
  return static_cast<int64_t>(std::strtoll(s.c_str(), nullptr, 10));
}

}  // namespace

void FlowJournal::Apply(const JournalRecord& record, FlowJournalState* state) {
  const std::vector<std::string>& f = record.fields;
  if (record.type == "load_base" && f.size() >= 1) {
    state->has_load_base = true;
    state->load_base_rows = ParseSize(f[0]);
  } else if (record.type == "attempt_start" && f.size() >= 1) {
    ++state->attempts_started;
  } else if (record.type == "rp_commit" && f.size() >= 3) {
    FlowJournalState::RpCommit rp;
    rp.point_id = f[0];
    rp.cut = ParseSize(f[1]);
    rp.rows = ParseSize(f[2]);
    state->rp_commits[rp.point_id] = rp;
  } else if (record.type == "budget" && f.size() >= 3) {
    state->budget_skipped = ParseSize(f[1]);
    state->budget_quarantined = ParseSize(f[2]);
  } else if (record.type == "attempt_end" && f.size() >= 2) {
    ++state->attempts_finished;
    state->last_attempt_status = f[1];
  } else if (record.type == "flow_commit") {
    state->committed = true;
  } else if (record.type == "replay_start" && f.size() >= 4) {
    FlowJournalState::ReplayGroup group;
    group.op_index = ParseInt(f[1]);
    group.rows = ParseSize(f[2]);
    group.target_base = ParseSize(f[3]);
    group.done = false;
    state->replay[f[0]] = group;
  } else if (record.type == "replay_end" && f.size() >= 1) {
    state->replay[f[0]].done = true;
  } else if (record.type == "spill_dir" && f.size() >= 1) {
    bool known = false;
    for (const std::string& dir : state->spill_dirs) {
      if (dir == f[0]) {
        known = true;
        break;
      }
    }
    if (!known) state->spill_dirs.push_back(f[0]);
  }
  // Unknown record types: skipped (newer writers, older readers).
}

Result<FlowJournalPtr> FlowJournal::Open(const std::string& dir,
                                         const std::string& flow_id,
                                         JournalSync sync) {
  QOX_ASSIGN_OR_RETURN(
      std::unique_ptr<JournalFile> file,
      JournalFile::Open(dir + "/" + flow_id + ".journal", sync));
  auto journal = FlowJournalPtr(new FlowJournal(std::move(file)));
  for (const JournalRecord& record : journal->journal_->records()) {
    Apply(record, &journal->state_);
  }
  return journal;
}

FlowJournalState FlowJournal::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

Status FlowJournal::AppendAndApply(const std::string& type,
                                   const std::vector<std::string>& fields,
                                   bool commit) {
  std::lock_guard<std::mutex> lock(mu_);
  QOX_RETURN_IF_ERROR(journal_->Append(type, fields, commit));
  JournalRecord record;
  record.type = type;
  record.fields = fields;
  Apply(record, &state_);
  return Status::OK();
}

Status FlowJournal::RecordLoadBase(size_t rows) {
  return AppendAndApply("load_base", {std::to_string(rows)}, /*commit=*/true);
}

Status FlowJournal::RecordAttemptStart(size_t attempt, bool streaming,
                                       int resume_cut) {
  // Durable before any work: a crash mid-attempt must still show the
  // attempt as consumed, or the retry budget would reset on every death.
  return AppendAndApply("attempt_start",
                        {std::to_string(attempt),
                         streaming ? "streaming" : "phased",
                         std::to_string(resume_cut)},
                        /*commit=*/true);
}

Status FlowJournal::RecordRpCommit(const std::string& point_id, size_t cut,
                                   size_t rows) {
  return AppendAndApply(
      "rp_commit",
      {point_id, std::to_string(cut), std::to_string(rows)},
      /*commit=*/true);
}

Status FlowJournal::RecordBudget(size_t attempt, size_t skipped,
                                 size_t quarantined) {
  return AppendAndApply("budget",
                        {std::to_string(attempt), std::to_string(skipped),
                         std::to_string(quarantined)},
                        /*commit=*/false);
}

Status FlowJournal::RecordAttemptEnd(size_t attempt,
                                     const std::string& status_code) {
  return AppendAndApply("attempt_end",
                        {std::to_string(attempt), status_code},
                        /*commit=*/false);
}

Status FlowJournal::RecordFlowCommit() {
  return AppendAndApply("flow_commit", {}, /*commit=*/true);
}

Status FlowJournal::RecordReplayStart(const std::string& key, int64_t op_index,
                                      size_t rows, size_t target_base) {
  return AppendAndApply("replay_start",
                        {key, std::to_string(op_index), std::to_string(rows),
                         std::to_string(target_base)},
                        /*commit=*/true);
}

Status FlowJournal::RecordReplayEnd(const std::string& key) {
  return AppendAndApply("replay_end", {key}, /*commit=*/true);
}

Status FlowJournal::RecordSpillDir(const std::string& dir) {
  // Durable before the first spill write: a SIGKILL mid-spill must leave
  // behind the pointer the sweeping successor needs.
  return AppendAndApply("spill_dir", {dir}, /*commit=*/true);
}

Status FlowJournal::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalRecord> keep;
  auto add = [&keep](const std::string& type,
                     std::vector<std::string> fields) {
    JournalRecord record;
    record.type = type;
    record.fields = std::move(fields);
    keep.push_back(std::move(record));
  };
  if (state_.has_load_base) {
    add("load_base", {std::to_string(state_.load_base_rows)});
  }
  if (state_.committed) {
    add("flow_commit", {});
  } else {
    // Not committed: the attempt history and RP commits are still live
    // resume state and must survive the rotation.
    for (size_t i = 0; i < state_.attempts_started; ++i) {
      add("attempt_start", {std::to_string(i + 1), "phased", "-1"});
    }
    for (const auto& [point_id, rp] : state_.rp_commits) {
      add("rp_commit", {point_id, std::to_string(rp.cut),
                        std::to_string(rp.rows)});
    }
    // Spill dirs may still hold a dead incarnation's orphans until a
    // restart sweeps them; after a commit the attempt-end cleanup already
    // emptied them, so the pointer can be dropped.
    for (const std::string& dir : state_.spill_dirs) {
      add("spill_dir", {dir});
    }
  }
  for (const auto& [key, group] : state_.replay) {
    add("replay_start",
        {key, std::to_string(group.op_index), std::to_string(group.rows),
         std::to_string(group.target_base)});
    if (group.done) add("replay_end", {key});
  }
  return journal_->Rewrite(keep);
}

FlowResume ResumeFromJournal(const FlowJournalState& state) {
  FlowResume resume;
  resume.prior_attempts = state.attempts_started;
  resume.has_load_base = state.has_load_base;
  resume.load_base_rows = state.load_base_rows;
  return resume;
}

Result<size_t> AdoptJournaledRecoveryPoints(const FlowJournalState& state,
                                            const std::string& flow_id,
                                            RecoveryPointStore* store) {
  size_t adopted = 0;
  for (const auto& [point_id, rp] : state.rp_commits) {
    QOX_ASSIGN_OR_RETURN(const bool ok,
                         store->Adopt({flow_id, point_id}));
    if (ok) ++adopted;
  }
  return adopted;
}

}  // namespace qox
