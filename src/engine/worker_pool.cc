#include "engine/worker_pool.h"

#include <algorithm>
#include <chrono>

namespace qox {

namespace {

constexpr size_t kExternalIndex = static_cast<size_t>(-1);

/// Identity of the pool task (if any) executing on the calling thread.
/// `depth` counts nested execution — a helping wait runs tasks inside a
/// task — so quiescence checks can exclude the caller's own in-flight
/// frames.
thread_local const WorkerPool* tl_pool = nullptr;
thread_local size_t tl_worker_index = kExternalIndex;
thread_local int tl_depth = 0;

/// How long a helping wait parks between help attempts when no CPU task is
/// runnable (the awaited tasks are executing elsewhere). Bounded polling —
/// a completion notification also wakes the waiter early.
constexpr std::chrono::microseconds kHelpParkSlice(200);

}  // namespace

// ===== TaskGroup ==========================================================

void TaskGroup::Add() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_;
}

void TaskGroup::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) cv_.notify_all();
}

bool TaskGroup::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_ == 0;
}

void TaskGroup::Wait() {
  const bool helper = pool_ != nullptr && pool_->InWorkerThread();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return;
      if (!helper) {
        cv_.wait(lock, [this] { return pending_ == 0; });
        return;
      }
    }
    // Core worker: execute queued CPU tasks here instead of starving them
    // (the awaited tasks may be sitting in this very worker's deque).
    if (!pool_->TryHelpOne()) {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return;
      cv_.wait_for(lock, kHelpParkSlice);
    }
  }
}

// ===== WorkerPool =========================================================

WorkerPool::WorkerPool(size_t num_workers) {
  const size_t n = std::max<size_t>(1, num_workers);
  local_.resize(n);
  core_workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core_workers_.emplace_back([this, i] { CoreWorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  blocking_cv_.notify_all();
  for (std::thread& t : core_workers_) t.join();
  // Draining blocking tasks may post more blocking work, which can grow
  // expansion_workers_ while this destructor runs — join from snapshots
  // under mu_ until the vector stops growing instead of iterating it raw.
  size_t joined = 0;
  while (true) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (joined == expansion_workers_.size()) break;
      t = std::move(expansion_workers_[joined]);
    }
    t.join();
    ++joined;
  }
}

bool WorkerPool::InWorkerThread() const {
  return tl_pool == this && tl_worker_index != kExternalIndex;
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkerPool::Post(std::function<void()> task, const TaskTag& tag,
                      TaskGroup* group) {
  // The group learns about the task before it is runnable, so a group can
  // never observe "done" between post and start.
  if (group != nullptr) group->Add();
  bool spawn_expansion = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.fn = std::move(task);
    t.tag = tag;
    t.group = group;
    t.seq = next_seq_++;
    if (tag.blocking) {
      blocking_queue_.push_back(std::move(t));
      // Every queued blocking task must be guaranteed a thread (the
      // liveness contract streaming stages rely on), so spawn whenever the
      // supply of parked workers plus workers still starting up cannot
      // cover the queue depth. Counting parked workers is safe: an idle
      // worker never exits while a blocking task is queued.
      spawn_expansion =
          blocking_queue_.size() > idle_expansion_ + starting_expansion_;
      if (spawn_expansion) {
        ++starting_expansion_;
        ++stats_.expansion_threads;
        expansion_workers_.emplace_back([this] { ExpansionWorkerLoop(); });
      }
    } else {
      if (tl_pool == this && tl_worker_index != kExternalIndex) {
        // Child task of a core worker: own deque, newest-first for the
        // owner (cache affinity), oldest-first for thieves.
        local_[tl_worker_index].push_back(std::move(t));
      } else {
        injection_.push(std::move(t));
      }
      ++queued_cpu_;
    }
  }
  if (tag.blocking) {
    blocking_cv_.notify_one();
  } else {
    work_cv_.notify_one();
  }
}

bool WorkerPool::TryTakeTask(size_t worker_index, Task* out) {
  // Caller holds mu_.
  if (queued_cpu_ == 0) return false;
  if (worker_index != kExternalIndex && !local_[worker_index].empty()) {
    *out = std::move(local_[worker_index].back());
    local_[worker_index].pop_back();
    --queued_cpu_;
    return true;
  }
  if (!injection_.empty()) {
    // priority_queue::top is const; the pop-after-move is safe because the
    // moved-from Task is only destroyed.
    *out = std::move(const_cast<Task&>(injection_.top()));
    injection_.pop();
    --queued_cpu_;
    return true;
  }
  for (size_t v = 0; v < local_.size(); ++v) {
    if (v == worker_index || local_[v].empty()) continue;
    *out = std::move(local_[v].front());
    local_[v].pop_front();
    --queued_cpu_;
    ++stats_.steals;
    return true;
  }
  return false;
}

void WorkerPool::RunTask(Task task) {
  const WorkerPool* prev_pool = tl_pool;
  tl_pool = this;
  ++tl_depth;
  task.fn();
  --tl_depth;
  tl_pool = prev_pool;
  FinishTask(task);
}

void WorkerPool::FinishTask(const Task& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    if (task.tag.blocking) --blocking_in_flight_;
    if (queued_cpu_ == 0 && blocking_queue_.empty()) {
      idle_cv_.notify_all();
      if (shutdown_ && running_ == 0) {
        // Fully quiescent under shutdown: wake every parked worker so it
        // observes its exit condition. (Workers park during the drain —
        // their wait predicates only fire on runnable work or on this
        // final quiescence, not on shutdown_ alone.)
        work_cv_.notify_all();
        blocking_cv_.notify_all();
      }
    }
  }
  if (task.group != nullptr) task.group->Finish();
}

bool WorkerPool::TryHelpOne() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t index = tl_pool == this ? tl_worker_index : kExternalIndex;
    if (!TryTakeTask(index, &task)) return false;
    ++running_;
    ++stats_.tasks_helped;
  }
  RunTask(std::move(task));
  return true;
}

Status WorkerPool::WaitIdle() {
  const bool helper = InWorkerThread();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A thread inside `self` pool frames must not wait for its own
      // completion — idle means "nothing outstanding but the caller".
      const size_t self = tl_pool == this ? static_cast<size_t>(tl_depth) : 0;
      if (queued_cpu_ == 0 && blocking_queue_.empty() && running_ <= self) {
        return Status::OK();
      }
      if (!helper) {
        idle_cv_.wait(lock);
        continue;
      }
    }
    if (!TryHelpOne()) {
      std::unique_lock<std::mutex> lock(mu_);
      const size_t self = tl_pool == this ? static_cast<size_t>(tl_depth) : 0;
      if (queued_cpu_ == 0 && blocking_queue_.empty() && running_ <= self) {
        return Status::OK();
      }
      idle_cv_.wait_for(lock, kHelpParkSlice);
    }
  }
}

void WorkerPool::CoreWorkerLoop(size_t worker_index) {
  tl_pool = this;
  tl_worker_index = worker_index;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wake on runnable CPU work, or once a shutdown drain has fully
      // quiesced (waking on shutdown_ alone would busy-spin here while
      // the last in-flight tasks finish).
      work_cv_.wait(lock, [this] {
        return queued_cpu_ > 0 ||
               (shutdown_ && blocking_queue_.empty() && running_ == 0);
      });
      if (!TryTakeTask(worker_index, &task)) {
        // Drained: exit only once nothing can produce more work — a
        // running task may still post, and a queued blocking task may
        // post CPU work once an expansion worker runs it.
        if (shutdown_ && queued_cpu_ == 0 && blocking_queue_.empty() &&
            running_ == 0) {
          return;
        }
        continue;
      }
      ++running_;
      ++stats_.tasks_run;
    }
    RunTask(std::move(task));
  }
}

void WorkerPool::ExpansionWorkerLoop() {
  tl_pool = this;
  tl_worker_index = kExternalIndex;  // expansion workers are not core
  bool starting = true;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (starting) {
        // Now visible to Post's supply count as a parked worker.
        --starting_expansion_;
        starting = false;
      }
      ++idle_expansion_;
      // Wake on queued blocking work, or once a shutdown drain has fully
      // quiesced (not on shutdown_ alone — that would busy-spin during
      // the drain).
      blocking_cv_.wait(lock, [this] {
        return !blocking_queue_.empty() ||
               (shutdown_ && queued_cpu_ == 0 && running_ == 0);
      });
      --idle_expansion_;
      if (blocking_queue_.empty()) {
        if (shutdown_ && queued_cpu_ == 0 && running_ == 0) return;
        continue;
      }
      task = std::move(blocking_queue_.front());
      blocking_queue_.pop_front();
      ++running_;
      ++blocking_in_flight_;
      ++stats_.blocking_run;
      stats_.expansion_peak =
          std::max(stats_.expansion_peak, blocking_in_flight_);
    }
    RunTask(std::move(task));
  }
}

}  // namespace qox
