// ReplayQuarantine: re-runs dead-lettered rows through a repaired flow.
//
// The point of quarantining (rather than skipping) a failing row is that
// the engagement can repair the flow — fix the lookup table, widen the
// domain check — and then recover exactly the rows the original run could
// not process, without re-extracting or re-transforming anything that
// already loaded. Each dead-letter record carries the failing row *as it
// entered the failing operator*, so replay only runs the suffix of the
// transform chain from that operator onward and appends the result to the
// flow target. After a successful replay the target holds the union of the
// original (quarantining) load and the recovered rows — exactly the
// clean-run output when the repair is complete.
//
// Records are deduplicated on (op_index, payload) before replay: retried
// attempts and redundant instances legitimately re-quarantine the same
// rows, and loading a recovered row twice would corrupt the warehouse.

#ifndef QOX_ENGINE_QUARANTINE_H_
#define QOX_ENGINE_QUARANTINE_H_

#include <cstddef>

#include "engine/executor.h"
#include "storage/dead_letter_store.h"

namespace qox {

struct ReplayStats {
  /// Ledger records read (before deduplication).
  size_t records_read = 0;
  /// Duplicate records collapsed by the (op_index, payload) dedup.
  size_t deduplicated = 0;
  /// Distinct quarantined rows pushed through the repaired suffix.
  size_t replayed = 0;
  /// Output rows appended to the flow target (quality operators in the
  /// suffix may legitimately emit fewer rows than went in).
  size_t rows_loaded = 0;
  /// Rows the suffix rejected into the OperatorContext reject path.
  size_t rows_rejected = 0;
  /// Journaled mode only: groups skipped because a previous process
  /// incarnation already applied them (the durable dedup), and rows of a
  /// torn group found already durable in the target and not re-appended.
  size_t groups_already_applied = 0;
  size_t rows_already_durable = 0;
};

/// Replays every record of `dead_letter` through `flow`'s transform suffix
/// and appends the recovered rows to `flow.target`. The flow is expected to
/// be repaired: any row error during replay fails fast (nothing is
/// re-quarantined — a replay that still fails means the repair is not
/// done, and the ledger still holds the rows). Replay is deterministic:
/// groups run in ascending op_index and rows within a group in canonical
/// (sorted payload) order. `config` is used for validation and batch
/// sizing only; retries, redundancy and injectors do not apply.
///
/// `journal` (optional) makes replay idempotent ACROSS PROCESS RESTARTS:
/// each group's dedup key and pre-append target baseline are journaled
/// around its load, so a rerun after a mid-replay kill skips fully
/// applied groups and appends only the missing suffix of a torn one
/// (replay determinism is what makes the durable prefix identifiable).
/// Without a journal the dedup state is in-memory only — idempotent within
/// one call, but a restart mid-replay could double-apply a suffix.
Result<ReplayStats> ReplayQuarantine(const FlowSpec& flow,
                                     const ExecutionConfig& config,
                                     const DeadLetterStore& dead_letter,
                                     FlowJournal* journal = nullptr);

}  // namespace qox

#endif  // QOX_ENGINE_QUARANTINE_H_
