#include "engine/exec_context.h"

namespace qox {

void ExecContext::Post(std::function<void()> fn, TaskGroup* group,
                       bool blocking) const {
  if (pool_ == nullptr) {
    fn();
    if (group != nullptr) {
      // Inline fallback: the task is already complete; the group must still
      // observe a balanced Add/Finish pair.
      group->Add();
      group->Finish();
    }
    return;
  }
  TaskTag tag = tag_;
  tag.blocking = blocking;
  pool_->Post(std::move(fn), tag, group);
}

void ExecContext::Dispatch(std::function<void()> fn) const {
  if (pool_ == nullptr || pool_->InWorkerThread()) {
    fn();
    return;
  }
  TaskTag tag = tag_;
  tag.blocking = false;
  pool_->Post(std::move(fn), tag, nullptr);
}

void ExecContext::BulkExecute(size_t n,
                              const std::function<void(size_t)>& fn) const {
  if (n == 0) return;
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskTag tag = tag_;
  tag.blocking = false;
  TaskGroup group(pool_);
  for (size_t i = 0; i < n; ++i) {
    pool_->Post([&fn, i] { fn(i); }, tag, &group);
  }
  group.Wait();
}

}  // namespace qox
