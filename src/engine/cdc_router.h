// ShardRouter: the partitioning plan of a sharded CDC ingestion run.
//
// The router owns the two deterministic decompositions the coordinator and
// its shard workers must agree on across process incarnations:
//
//   * TIME: the stream window is cut into fixed-size slices of
//     `slice_events` consecutive offsets — the micro-batches the
//     coordinator applies to the warehouse one at a time (each slice is
//     the unit of the exactly-once watermark).
//   * KEY: within a slice, each of `shards` workers extracts only the
//     events whose key hashes to it (CdcShardOf), so one key's updates
//     always flow through one worker and per-key version order survives
//     the merge.
//
// Both cuts are pure functions of (stream spec, topology), so a restarted
// coordinator re-derives the identical plan from its journaled meta record
// — no partition state needs to be persisted.

#ifndef QOX_ENGINE_CDC_ROUTER_H_
#define QOX_ENGINE_CDC_ROUTER_H_

#include <cstddef>
#include <utility>

#include "storage/cdc_source.h"

namespace qox {

/// The sharding shape of one CDC run.
struct CdcTopology {
  /// Parallel shard workers the stream is key-partitioned across.
  size_t shards = 2;
  /// Events per time slice (the coordinator's apply granularity). The last
  /// slice may be shorter.
  size_t slice_events = 64;
};

class ShardRouter {
 public:
  ShardRouter(CdcSourcePtr source, CdcTopology topology);

  const CdcTopology& topology() const { return topology_; }
  const CdcSourcePtr& source() const { return source_; }

  /// Slices covering the source's window (ceil division; >= 1 slice even
  /// for an empty window so an empty stream still commits).
  size_t num_slices() const;

  /// Offset window [begin, end) of slice `slice`.
  std::pair<size_t, size_t> SliceRange(size_t slice) const;

  /// The extract source of worker `shard` for slice `slice`.
  DataStorePtr ShardSlice(size_t shard, size_t slice) const;

  /// Events of offset window [begin, end) owned by `shard` — the lag /
  /// staleness attribution unit (how many updates a dead shard is behind).
  size_t CountShardEvents(size_t shard, size_t begin, size_t end) const;

 private:
  const CdcSourcePtr source_;
  CdcTopology topology_;
};

}  // namespace qox

#endif  // QOX_ENGINE_CDC_ROUTER_H_
