#include "graph/flow_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace qox {

Status FlowGraph::AddNode(GraphNode node) {
  if (node.id.empty()) return Status::Invalid("node id must be non-empty");
  if (HasNode(node.id)) {
    return Status::AlreadyExists("node '" + node.id + "' already exists");
  }
  node_index_.emplace(node.id, nodes_.size());
  succ_.emplace(node.id, std::vector<std::string>{});
  pred_.emplace(node.id, std::vector<std::string>{});
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status FlowGraph::AddDataStore(std::string id, std::string role) {
  return AddNode({std::move(id), NodeKind::kDataStore, std::move(role)});
}

Status FlowGraph::AddOperation(std::string id, std::string op_kind) {
  return AddNode({std::move(id), NodeKind::kOperation, std::move(op_kind)});
}

Status FlowGraph::AddEdge(const std::string& from, const std::string& to) {
  if (!HasNode(from)) return Status::NotFound("no node '" + from + "'");
  if (!HasNode(to)) return Status::NotFound("no node '" + to + "'");
  if (from == to) return Status::Invalid("self-edge on '" + from + "'");
  for (const GraphEdge& edge : edges_) {
    if (edge.from == from && edge.to == to) {
      return Status::AlreadyExists("edge " + from + " -> " + to +
                                   " already exists");
    }
  }
  edges_.push_back({from, to});
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  return Status::OK();
}

bool FlowGraph::HasNode(const std::string& id) const {
  return node_index_.find(id) != node_index_.end();
}

Result<GraphNode> FlowGraph::GetNode(const std::string& id) const {
  const auto it = node_index_.find(id);
  if (it == node_index_.end()) return Status::NotFound("no node '" + id + "'");
  return nodes_[it->second];
}

std::vector<std::string> FlowGraph::Predecessors(const std::string& id) const {
  const auto it = pred_.find(id);
  return it == pred_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> FlowGraph::Successors(const std::string& id) const {
  const auto it = succ_.find(id);
  return it == succ_.end() ? std::vector<std::string>{} : it->second;
}

size_t FlowGraph::InDegree(const std::string& id) const {
  return Predecessors(id).size();
}

size_t FlowGraph::OutDegree(const std::string& id) const {
  return Successors(id).size();
}

Result<std::vector<std::string>> FlowGraph::TopologicalOrder() const {
  std::unordered_map<std::string, size_t> in_degree;
  for (const GraphNode& node : nodes_) {
    in_degree[node.id] = InDegree(node.id);
  }
  std::deque<std::string> ready;
  for (const GraphNode& node : nodes_) {
    if (in_degree[node.id] == 0) ready.push_back(node.id);
  }
  std::vector<std::string> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::string id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& next : Successors(id)) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::Invalid("graph contains a cycle");
  }
  return order;
}

Status FlowGraph::Validate() const {
  QOX_RETURN_IF_ERROR(TopologicalOrder().status());
  for (const GraphNode& node : nodes_) {
    if (node.kind != NodeKind::kOperation) continue;
    if (InDegree(node.id) == 0) {
      return Status::Invalid("operation '" + node.id + "' has no input");
    }
    if (OutDegree(node.id) == 0) {
      return Status::Invalid("operation '" + node.id + "' has no output");
    }
  }
  return Status::OK();
}

Result<size_t> FlowGraph::LongestPathLength() const {
  QOX_ASSIGN_OR_RETURN(const std::vector<std::string> order,
                       TopologicalOrder());
  std::unordered_map<std::string, size_t> dist;
  size_t best = 0;
  for (const std::string& id : order) {
    const size_t d = dist[id];  // 0 for sources
    for (const std::string& next : Successors(id)) {
      dist[next] = std::max(dist[next], d + 1);
      best = std::max(best, dist[next]);
    }
  }
  return best;
}

std::string FlowGraph::ToDot() const {
  std::ostringstream oss;
  oss << "digraph flow {\n  rankdir=LR;\n";
  for (const GraphNode& node : nodes_) {
    oss << "  \"" << node.id << "\" [shape="
        << (node.kind == NodeKind::kDataStore ? "cylinder" : "box")
        << ", label=\"" << node.id;
    if (!node.label.empty()) oss << "\\n(" << node.label << ")";
    oss << "\"];\n";
  }
  for (const GraphEdge& edge : edges_) {
    oss << "  \"" << edge.from << "\" -> \"" << edge.to << "\";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace qox
