#include "graph/graph_metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace qox {

std::string MaintainabilityMetrics::ToString() const {
  std::ostringstream oss;
  oss << "size=" << size << " length=" << length << " coupling=" << coupling
      << " complexity=" << complexity << " modularity=" << modularity
      << " vulnerability=" << vulnerability_index << " score=" << score;
  return oss.str();
}

Result<MaintainabilityMetrics> ComputeMaintainability(const FlowGraph& graph) {
  QOX_RETURN_IF_ERROR(graph.TopologicalOrder().status());
  MaintainabilityMetrics m;
  m.size = graph.num_nodes();
  if (m.size == 0) {
    m.modularity = 1.0;
    m.score = 1.0;
    return m;
  }
  QOX_ASSIGN_OR_RETURN(m.length, graph.LongestPathLength());

  size_t degree_sum = 0;
  size_t straight_ops = 0;
  size_t op_count = 0;
  for (const GraphNode& node : graph.nodes()) {
    const size_t in = graph.InDegree(node.id);
    const size_t out = graph.OutDegree(node.id);
    degree_sum += in + out;
    NodeVulnerability v;
    v.node_id = node.id;
    v.in_degree = in;
    v.out_degree = out;
    v.score = in * out;
    m.vulnerable_nodes.push_back(std::move(v));
    if (node.kind == NodeKind::kOperation) {
      ++op_count;
      if (in <= 1 && out <= 1) ++straight_ops;
    }
  }
  m.coupling = static_cast<double>(degree_sum) / static_cast<double>(m.size);
  m.complexity = static_cast<double>(graph.num_edges()) /
                 static_cast<double>(m.size);
  m.modularity = op_count == 0 ? 1.0
                               : static_cast<double>(straight_ops) /
                                     static_cast<double>(op_count);
  std::sort(m.vulnerable_nodes.begin(), m.vulnerable_nodes.end(),
            [](const NodeVulnerability& a, const NodeVulnerability& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node_id < b.node_id;
            });
  m.vulnerability_index =
      m.vulnerable_nodes.empty() ? 0 : m.vulnerable_nodes.front().score;

  // Composite score: each component mapped to (0, 1], geometric-mean
  // combined so one very bad dimension dominates. Baselines: a node's
  // "ideal" coupling in a straight pipeline is 2 (one in, one out);
  // complexity ~1; vulnerability 1; size/length discount grows slowly
  // (log) since bigger flows are inherently harder to maintain.
  const double coupling_term = std::min(1.0, 2.0 / std::max(1e-9, m.coupling));
  const double complexity_term =
      std::min(1.0, 1.0 / std::max(1e-9, m.complexity));
  const double vulnerability_term =
      1.0 / (1.0 + std::log1p(static_cast<double>(m.vulnerability_index)));
  const double size_term =
      1.0 / (1.0 + 0.1 * std::log1p(static_cast<double>(m.size)));
  const double modularity_term = 0.25 + 0.75 * m.modularity;
  m.score = std::pow(coupling_term * complexity_term * vulnerability_term *
                         size_term * modularity_term,
                     1.0 / 5.0);
  return m;
}

}  // namespace qox
