// FlowGraph: an ETL workflow as a directed acyclic graph.
//
// "An ETL workflow can be represented as a directed graph; its nodes are
// the data stores and ETL operations of the workflow" (Sec. 3.5). The
// graph is the substrate for the maintainability metrics of ref [16]
// (size, length, modularity, coupling, complexity, vulnerability) and for
// the soft-goal-driven design analysis in qox_core.

#ifndef QOX_GRAPH_FLOW_GRAPH_H_
#define QOX_GRAPH_FLOW_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace qox {

enum class NodeKind {
  kDataStore,  ///< source, landing, warehouse table, view
  kOperation,  ///< transformation operator
};

struct GraphNode {
  std::string id;
  NodeKind kind = NodeKind::kOperation;
  /// Operator kind for operations ("filter", "lookup", ...), store role for
  /// data stores ("source", "target", "view", "staging").
  std::string label;
};

struct GraphEdge {
  std::string from;
  std::string to;
};

class FlowGraph {
 public:
  /// Adds a node; error on duplicate id.
  Status AddNode(GraphNode node);
  Status AddDataStore(std::string id, std::string role);
  Status AddOperation(std::string id, std::string op_kind);

  /// Adds a directed edge; both endpoints must exist.
  Status AddEdge(const std::string& from, const std::string& to);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  bool HasNode(const std::string& id) const;
  Result<GraphNode> GetNode(const std::string& id) const;

  /// Ids of nodes with an edge into `id` (dependencies).
  std::vector<std::string> Predecessors(const std::string& id) const;
  /// Ids of nodes fed by `id` (dependents).
  std::vector<std::string> Successors(const std::string& id) const;

  size_t InDegree(const std::string& id) const;
  size_t OutDegree(const std::string& id) const;

  /// Topological order; error when the graph has a cycle.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// Checks DAG-ness and that operations are internally connected
  /// (every operation has at least one predecessor and one successor).
  Status Validate() const;

  /// Length of the longest path, in edges.
  Result<size_t> LongestPathLength() const;

  /// Graphviz dot rendering (for documentation and debugging).
  std::string ToDot() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::unordered_map<std::string, size_t> node_index_;
  std::unordered_map<std::string, std::vector<std::string>> succ_;
  std::unordered_map<std::string, std::vector<std::string>> pred_;
};

}  // namespace qox

#endif  // QOX_GRAPH_FLOW_GRAPH_H_
