// Maintainability metrics over ETL workflow graphs.
//
// Sec. 2.2 of the paper: "Typical metrics for the maintainability of a
// flow are its size, length, modularity (cohesion), coupling, and
// complexity [16]", and Sec. 3.5 identifies the Δ transformation as a
// "vulnerable" node because many nodes depend on it and it depends on
// many. This module computes those measures from a FlowGraph. Definitions
// (adapted from Vassiliadis et al., "Blueprints and Measures for ETL
// Workflows", ER 2005):
//
//   size          |V|: nodes in the workflow graph
//   length        longest source-to-sink path (edges)
//   coupling      mean node degree (in + out), the wiring density a
//                 maintainer must trace per node
//   complexity    |E| / |V|: >1 signals heavy cross-wiring
//   modularity    fraction of operation nodes with in-degree <= 1 and
//                 out-degree <= 1 (straight-line, cohesive pipeline steps)
//   vulnerability per node: in-degree * out-degree (how much of the flow a
//                 change to this node can break); the index is the maximum
//
// A composite maintainability score in [0, 1] (1 = most maintainable)
// combines the normalized measures; the QoX cost model consumes it.

#ifndef QOX_GRAPH_GRAPH_METRICS_H_
#define QOX_GRAPH_GRAPH_METRICS_H_

#include <string>
#include <vector>

#include "graph/flow_graph.h"

namespace qox {

struct NodeVulnerability {
  std::string node_id;
  size_t in_degree = 0;
  size_t out_degree = 0;
  /// in * out: nodes that many depend on AND that depend on many.
  size_t score = 0;
};

struct MaintainabilityMetrics {
  size_t size = 0;
  size_t length = 0;
  double coupling = 0.0;
  double complexity = 0.0;
  double modularity = 0.0;
  size_t vulnerability_index = 0;
  /// Nodes ranked by vulnerability score, descending (ties by id).
  std::vector<NodeVulnerability> vulnerable_nodes;
  /// Composite [0, 1], higher is more maintainable.
  double score = 0.0;

  std::string ToString() const;
};

/// Computes all maintainability measures. Fails when the graph is not a
/// valid DAG.
Result<MaintainabilityMetrics> ComputeMaintainability(const FlowGraph& graph);

}  // namespace qox

#endif  // QOX_GRAPH_GRAPH_METRICS_H_
