#include "storage/snapshot_store.h"

namespace qox {

Result<Row> SnapshotStore::ExtractKey(const Row& row) const {
  Row key;
  for (const size_t c : key_columns_) {
    if (c >= row.num_values()) {
      return Status::Invalid("key column index " + std::to_string(c) +
                             " out of range for row with " +
                             std::to_string(row.num_values()) + " values");
    }
    key.Append(row.value(c));
  }
  return key;
}

Result<DeltaResult> SnapshotStore::ComputeDelta(
    const std::vector<Row>& fresh) const {
  // De-duplicate fresh rows by key, keeping the last occurrence.
  std::unordered_map<Row, Row, RowHash> deduped;
  deduped.reserve(fresh.size());
  std::vector<Row> order;  // keys in first-seen order, for determinism
  order.reserve(fresh.size());
  for (const Row& row : fresh) {
    QOX_ASSIGN_OR_RETURN(Row key, ExtractKey(row));
    const auto it = deduped.find(key);
    if (it == deduped.end()) {
      order.push_back(key);
      deduped.emplace(std::move(key), row);
    } else {
      it->second = row;
    }
  }
  DeltaResult result;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Row& key : order) {
    const Row& row = deduped.at(key);
    const auto it = snapshot_.find(key);
    if (it == snapshot_.end()) {
      result.inserts.push_back(row);
    } else if (!(it->second == row)) {
      result.updates.push_back(row);
    } else {
      ++result.unchanged;
    }
  }
  return result;
}

Status SnapshotStore::Commit(const std::vector<Row>& fresh) {
  std::unordered_map<Row, Row, RowHash> next;
  next.reserve(fresh.size());
  for (const Row& row : fresh) {
    QOX_ASSIGN_OR_RETURN(Row key, ExtractKey(row));
    next[std::move(key)] = row;
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = std::move(next);
  return Status::OK();
}

size_t SnapshotStore::snapshot_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_.size();
}

Status SnapshotStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_.clear();
  return Status::OK();
}

}  // namespace qox
