#include "storage/flat_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crash_point.h"
#include "common/strings.h"

namespace qox {
namespace {

/// EINTR-safe full write, with the errno mapped to the status taxonomy
/// (ENOSPC → kResourceExhausted, so ResourcePolicy can degrade; anything
/// else → kIoError, permanent).
Status WriteAllBytes(int fd, const std::string& data,
                     const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        return Status::ResourceExhausted("write to '" + path +
                                         "' failed: no space left on device");
      }
      return Status::IoError("write to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<FlatFile>> FlatFile::Open(std::string name,
                                                 Schema schema,
                                                 std::string path,
                                                 bool sync_every_append) {
  auto file = std::shared_ptr<FlatFile>(
      new FlatFile(std::move(name), std::move(schema), std::move(path),
                   sync_every_append));
  if (!std::filesystem::exists(file->path_)) {
    QOX_RETURN_IF_ERROR(file->WriteHeader());
  }
  return file;
}

Status FlatFile::WriteHeader() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return Status::IoError("cannot create file '" + path_ + "'");
  std::vector<std::string> names;
  names.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) names.push_back(f.name);
  out << CsvEncodeLine(names) << "\n";
  out.flush();
  if (!out) return Status::IoError("cannot write header to '" + path_ + "'");
  out.close();
  if (out.fail()) {
    return Status::IoError("close after writing header to '" + path_ +
                           "' failed");
  }
  return Status::OK();
}

Result<size_t> FlatFile::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot open file '" + path_ + "'");
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines == 0 ? 0 : lines - 1;  // minus header
}

Status FlatFile::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (batch_size == 0) return Status::Invalid("batch_size must be > 0");
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot open file '" + path_ + "'");
  std::string line;
  if (!std::getline(in, line)) return Status::OK();  // empty file: no header
  RowBatch batch(schema_);
  batch.Reserve(batch_size);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> cells = CsvDecodeLine(line);
    if (cells.size() != schema_.num_fields()) {
      return Status::Invalid("file '" + path_ + "' line " +
                             std::to_string(line_no) + ": expected " +
                             std::to_string(schema_.num_fields()) +
                             " cells, got " + std::to_string(cells.size()));
    }
    Row row;
    for (size_t i = 0; i < cells.size(); ++i) {
      QOX_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(cells[i], schema_.field(i).type));
      row.Append(std::move(v));
    }
    batch.Append(std::move(row));
    if (batch.num_rows() >= batch_size) {
      QOX_RETURN_IF_ERROR(consumer(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) QOX_RETURN_IF_ERROR(consumer(batch));
  return Status::OK();
}

Status FlatFile::Append(const RowBatch& batch) {
  if (batch.schema() != schema_) {
    return Status::Invalid("append to '" + name_ + "': schema mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  QOX_CRASH_POINT("flat.append");
  // fd-based writes so every byte, the fsync, and the close are actually
  // checked — an ofstream append used to swallow short writes and never
  // synced despite sync_every_append.
  const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path_ + "' for append: " +
                           std::strerror(errno));
  }
  // Two blobs split at the historical mid-batch row boundary, keeping the
  // torn-batch crash site: a kill between them leaves a durable prefix of
  // the batch — the case the executor's durable-prefix resync must absorb.
  const size_t half_rows = (batch.num_rows() + 1) / 2;
  std::string first_half;
  std::string second_half;
  size_t written = 0;
  for (const Row& row : batch.rows()) {
    std::vector<std::string> cells;
    cells.reserve(row.num_values());
    for (const Value& v : row.values()) cells.push_back(v.ToString());
    std::string& blob = written < half_rows ? first_half : second_half;
    blob += CsvEncodeLine(cells);
    blob += '\n';
    ++written;
  }
  Status st = WriteAllBytes(fd, first_half, path_);
  if (st.ok() && !batch.empty()) QOX_CRASH_POINT("flat.mid_append");
  if (st.ok()) st = WriteAllBytes(fd, second_half, path_);
  if (st.ok() && sync_every_append_ && ::fsync(fd) != 0) {
    st = Status::IoError("fsync of '" + path_ +
                         "' failed: " + std::strerror(errno));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::IoError("close of '" + path_ +
                         "' failed: " + std::strerror(errno));
  }
  QOX_RETURN_IF_ERROR(st);
  QOX_CRASH_POINT("flat.appended");
  bytes_written_ += first_half.size() + second_half.size();
  return Status::OK();
}

Status FlatFile::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteHeader();
}

size_t FlatFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace qox
