#include "storage/flat_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crash_point.h"
#include "common/strings.h"

namespace qox {

Result<std::shared_ptr<FlatFile>> FlatFile::Open(std::string name,
                                                 Schema schema,
                                                 std::string path,
                                                 bool sync_every_append) {
  auto file = std::shared_ptr<FlatFile>(
      new FlatFile(std::move(name), std::move(schema), std::move(path),
                   sync_every_append));
  if (!std::filesystem::exists(file->path_)) {
    QOX_RETURN_IF_ERROR(file->WriteHeader());
  }
  return file;
}

Status FlatFile::WriteHeader() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return Status::IoError("cannot create file '" + path_ + "'");
  std::vector<std::string> names;
  names.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) names.push_back(f.name);
  out << CsvEncodeLine(names) << "\n";
  if (!out) return Status::IoError("cannot write header to '" + path_ + "'");
  return Status::OK();
}

Result<size_t> FlatFile::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot open file '" + path_ + "'");
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines == 0 ? 0 : lines - 1;  // minus header
}

Status FlatFile::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (batch_size == 0) return Status::Invalid("batch_size must be > 0");
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_);
  if (!in) return Status::IoError("cannot open file '" + path_ + "'");
  std::string line;
  if (!std::getline(in, line)) return Status::OK();  // empty file: no header
  RowBatch batch(schema_);
  batch.Reserve(batch_size);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> cells = CsvDecodeLine(line);
    if (cells.size() != schema_.num_fields()) {
      return Status::Invalid("file '" + path_ + "' line " +
                             std::to_string(line_no) + ": expected " +
                             std::to_string(schema_.num_fields()) +
                             " cells, got " + std::to_string(cells.size()));
    }
    Row row;
    for (size_t i = 0; i < cells.size(); ++i) {
      QOX_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(cells[i], schema_.field(i).type));
      row.Append(std::move(v));
    }
    batch.Append(std::move(row));
    if (batch.num_rows() >= batch_size) {
      QOX_RETURN_IF_ERROR(consumer(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) QOX_RETURN_IF_ERROR(consumer(batch));
  return Status::OK();
}

Status FlatFile::Append(const RowBatch& batch) {
  if (batch.schema() != schema_) {
    return Status::Invalid("append to '" + name_ + "': schema mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  QOX_CRASH_POINT("flat.append");
  std::ofstream out(path_, std::ios::app);
  if (!out) return Status::IoError("cannot open '" + path_ + "' for append");
  size_t bytes = 0;
  size_t written = 0;
  for (const Row& row : batch.rows()) {
    std::vector<std::string> cells;
    cells.reserve(row.num_values());
    for (const Value& v : row.values()) cells.push_back(v.ToString());
    const std::string line = CsvEncodeLine(cells);
    out << line << "\n";
    bytes += line.size() + 1;
    if (++written == (batch.num_rows() + 1) / 2) {
      // The torn-batch crash site: flush the first half so a kill here
      // leaves a durable prefix of the batch at a row boundary — the case
      // the executor's durable-prefix resync must absorb.
      out.flush();
      QOX_CRASH_POINT("flat.mid_append");
    }
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path_ + "' failed");
  QOX_CRASH_POINT("flat.appended");
  bytes_written_ += bytes;
  return Status::OK();
}

Status FlatFile::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteHeader();
}

size_t FlatFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace qox
