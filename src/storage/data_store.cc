#include "storage/data_store.h"

namespace qox {

Result<RowBatch> DataStore::ReadAll() const {
  RowBatch all(schema());
  const Status st = Scan(kDefaultBatchSize, [&](RowBatch& batch) {
    for (Row& row : batch.rows()) all.Append(std::move(row));
    return Status::OK();
  });
  if (!st.ok()) return st;
  return all;
}

}  // namespace qox
