#include "storage/spill_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/crash_point.h"
#include "common/strings.h"
#include "storage/recovery_store.h"  // Fnv1a64

namespace qox {
namespace {

constexpr size_t kFlushBytes = 256 * 1024;

bool IsSpillArtifact(const std::string& name) {
  const auto ends_with = [&name](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  return ends_with(".spill") || ends_with(".spill.tmp");
}

/// EINTR-safe full write of `data` to `fd`.
Status WriteAll(int fd, const std::string& data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        return Status::ResourceExhausted("spill write to '" + path +
                                         "' failed: no space left on device");
      }
      return Status::IoError("spill write to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SpillWriter
// ---------------------------------------------------------------------------

SpillWriter::SpillWriter(SpillManager* manager, std::string final_path,
                         Schema schema)
    : manager_(manager),
      final_path_(std::move(final_path)),
      tmp_path_(final_path_ + ".tmp"),
      schema_(std::move(schema)) {}

SpillWriter::~SpillWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status SpillWriter::Append(const Row& row) {
  if (finalized_) {
    return Status::FailedPrecondition("append to finalized spill run '" +
                                      final_path_ + "'");
  }
  std::vector<std::string> cells;
  cells.reserve(row.num_values());
  for (const Value& v : row.values()) cells.push_back(v.ToString());
  const std::string payload = CsvEncodeLine(cells);
  buffer_ += payload;
  buffer_ += ',';
  buffer_ += std::to_string(Fnv1a64(payload.data(), payload.size()));
  buffer_ += '\n';
  ++rows_;
  if (buffer_.size() >= kFlushBytes) QOX_RETURN_IF_ERROR(Flush());
  return Status::OK();
}

Status SpillWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  QOX_RETURN_IF_ERROR(manager_->CheckWriteFault());
  if (fd_ < 0) {
    fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
      return Status::IoError("cannot create spill run '" + tmp_path_ +
                             "': " + std::strerror(errno));
    }
  }
  QOX_CRASH_POINT("spill.write");
  QOX_RETURN_IF_ERROR(WriteAll(fd_, buffer_, tmp_path_));
  bytes_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Result<SpillFile> SpillWriter::Finalize() {
  QOX_RETURN_IF_ERROR(Flush());
  // An all-empty run still finalizes (readers see zero rows), so callers
  // need no special casing; make sure the fd exists for the fsync.
  if (fd_ < 0) {
    fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
      return Status::IoError("cannot create spill run '" + tmp_path_ +
                             "': " + std::strerror(errno));
    }
  }
  QOX_RETURN_IF_ERROR(manager_->CheckWriteFault());
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync of spill run '" + tmp_path_ +
                           "' failed: " + std::strerror(errno));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError("close of spill run '" + tmp_path_ +
                           "' failed: " + std::strerror(errno));
  }
  fd_ = -1;
  QOX_CRASH_POINT("spill.finalize");
  std::error_code ec;
  std::filesystem::rename(tmp_path_, final_path_, ec);
  if (ec) {
    return Status::IoError("cannot publish spill run '" + final_path_ +
                           "': " + ec.message());
  }
  finalized_ = true;
  manager_->Rename(tmp_path_, final_path_);
  manager_->Account(rows_, bytes_);
  SpillFile file;
  file.path = final_path_;
  file.schema = schema_;
  file.rows = rows_;
  file.bytes = bytes_;
  return file;
}

// ---------------------------------------------------------------------------
// SpillReader
// ---------------------------------------------------------------------------

SpillReader::SpillReader(const SpillFile& file) : file_(file) {
  in_.open(file.path);
  opened_ok_ = static_cast<bool>(in_);
}

Result<std::optional<Row>> SpillReader::Next() {
  if (!opened_ok_) {
    return Status::IoError("cannot open spill run '" + file_.path + "'");
  }
  std::string line;
  if (!std::getline(in_, line)) return std::optional<Row>();
  ++line_no_;
  const size_t comma = line.rfind(',');
  if (comma == std::string::npos) {
    return Status::CorruptedData("spill run '" + file_.path + "' line " +
                                 std::to_string(line_no_) +
                                 ": missing checksum");
  }
  const std::string payload = line.substr(0, comma);
  const uint64_t expected =
      std::strtoull(line.c_str() + comma + 1, nullptr, 10);
  if (Fnv1a64(payload.data(), payload.size()) != expected) {
    return Status::CorruptedData("spill run '" + file_.path + "' line " +
                                 std::to_string(line_no_) +
                                 " failed checksum verification");
  }
  const std::vector<std::string> cells = CsvDecodeLine(payload);
  if (cells.size() != file_.schema.num_fields()) {
    return Status::CorruptedData(
        "spill run '" + file_.path + "' line " + std::to_string(line_no_) +
        ": expected " + std::to_string(file_.schema.num_fields()) +
        " cells, got " + std::to_string(cells.size()));
  }
  Row row;
  for (size_t i = 0; i < cells.size(); ++i) {
    QOX_ASSIGN_OR_RETURN(Value v,
                         Value::Parse(cells[i], file_.schema.field(i).type));
    row.Append(std::move(v));
  }
  return std::optional<Row>(std::move(row));
}

// ---------------------------------------------------------------------------
// SpillManager
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SpillWriter>> SpillManager::CreateRun(
    const std::string& tag, const Schema& schema) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dir_created_) {
      std::error_code ec;
      std::filesystem::create_directories(dir_, ec);
      if (ec) {
        return Status::IoError("cannot create spill directory '" + dir_ +
                               "': " + ec.message());
      }
      dir_created_ = true;
    }
  }
  const size_t id = next_id_.fetch_add(1);
  const std::string path =
      dir_ + "/" + tag + "." + std::to_string(id) + ".spill";
  auto writer =
      std::unique_ptr<SpillWriter>(new SpillWriter(this, path, schema));
  Register(writer->tmp_path_);
  runs_.fetch_add(1);
  return writer;
}

void SpillManager::Register(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.push_back(path);
}

void SpillManager::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::string& path : files_) {
    if (path == from) {
      path = to;
      return;
    }
  }
  files_.push_back(to);
}

Status SpillManager::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& path : files_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // absent (already removed) is fine
  }
  files_.clear();
  return Status::OK();
}

Result<size_t> SpillManager::CleanupDir(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec) || ec) return size_t{0};
  size_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    if (IsSpillArtifact(entry.path().filename().string())) {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace qox
