#include "storage/cdc_source.h"

#include <cmath>

#include "common/row.h"
#include "common/schema.h"

namespace qox {

namespace {

/// SplitMix64 finalizer: the stream's whole content hangs off this mix, so
/// it must scramble consecutive offsets into independent-looking draws.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr size_t kNumCategories = 8;

}  // namespace

Schema CdcSchema() {
  return Schema({{"key", DataType::kInt64, false},
                 {"version", DataType::kInt64, false},
                 {"amount", DataType::kDouble, true},
                 {"category", DataType::kString, false}});
}

size_t CdcShardOf(int64_t key, size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<size_t>(Mix(static_cast<uint64_t>(key) ^
                                 0x5bf03635f0a5a6d3ULL) %
                             shards);
}

CdcSource::CdcSource(CdcStreamSpec spec, std::string name)
    : spec_(spec), name_(std::move(name)), schema_(CdcSchema()) {}

Row CdcSource::EventAt(size_t offset) const {
  const uint64_t h = Mix(spec_.seed ^ (0x9e3779b97f4a7c15ULL *
                                       static_cast<uint64_t>(offset + 1)));
  const int64_t key =
      static_cast<int64_t>(h % (spec_.num_keys == 0 ? 1 : spec_.num_keys));
  const uint64_t h2 = Mix(h ^ 0xd1b54a32d192ed03ULL);
  const bool null_amount =
      static_cast<double>(h2 % 10000) < spec_.null_amount_fraction * 10000.0;
  Row row;
  row.Append(Value::Int64(key));
  row.Append(Value::Int64(static_cast<int64_t>(offset + 1)));
  row.Append(null_amount
                 ? Value::Null()
                 : Value::Double(static_cast<double>(h2 % 100000) / 100.0));
  row.Append(Value::String(
      "c" + std::to_string(Mix(h2 ^ 0x8cb92ba72f3d8dd7ULL) % kNumCategories)));
  return row;
}

Result<size_t> CdcSource::NumRows() const { return spec_.total_events; }

Status CdcSource::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (batch_size == 0) return Status::Invalid("batch_size must be > 0");
  RowBatch batch(schema_);
  batch.Reserve(batch_size);
  for (size_t i = 0; i < spec_.total_events; ++i) {
    batch.Append(EventAt(i));
    if (batch.num_rows() >= batch_size) {
      QOX_RETURN_IF_ERROR(consumer(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) QOX_RETURN_IF_ERROR(consumer(batch));
  return Status::OK();
}

Status CdcSource::Append(const RowBatch&) {
  return Status::Invalid("CdcSource '" + name_ + "' is read-only");
}

Status CdcSource::Truncate() {
  return Status::Invalid("CdcSource '" + name_ + "' is read-only");
}

std::string CdcSource::ContentVersion() const {
  return "cdc:" + std::to_string(spec_.seed) + ":" +
         std::to_string(spec_.num_keys) + ":" +
         std::to_string(spec_.total_events);
}

CdcShardView::CdcShardView(CdcSourcePtr source, size_t shard, size_t shards,
                           size_t begin, size_t end)
    : source_(std::move(source)),
      shard_(shard),
      shards_(shards == 0 ? 1 : shards),
      begin_(begin),
      end_(end),
      name_(source_->name() + ".s" + std::to_string(shard) + "[" +
            std::to_string(begin) + "," + std::to_string(end) + ")") {}

const Schema& CdcShardView::schema() const { return source_->schema(); }

Result<size_t> CdcShardView::NumRows() const {
  size_t count = 0;
  for (size_t i = begin_; i < end_; ++i) {
    const Row row = source_->EventAt(i);
    if (CdcShardOf(row.value(0).int64_value(), shards_) == shard_) ++count;
  }
  return count;
}

Status CdcShardView::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (batch_size == 0) return Status::Invalid("batch_size must be > 0");
  RowBatch batch(source_->schema());
  batch.Reserve(batch_size);
  for (size_t i = begin_; i < end_; ++i) {
    Row row = source_->EventAt(i);
    if (CdcShardOf(row.value(0).int64_value(), shards_) != shard_) continue;
    batch.Append(std::move(row));
    if (batch.num_rows() >= batch_size) {
      QOX_RETURN_IF_ERROR(consumer(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) QOX_RETURN_IF_ERROR(consumer(batch));
  return Status::OK();
}

Status CdcShardView::Append(const RowBatch&) {
  return Status::Invalid("CdcShardView '" + name_ + "' is read-only");
}

Status CdcShardView::Truncate() {
  return Status::Invalid("CdcShardView '" + name_ + "' is read-only");
}

std::string CdcShardView::ContentVersion() const {
  return source_->ContentVersion() + ":s" + std::to_string(shard_) + "/" +
         std::to_string(shards_) + ":" + std::to_string(begin_) + "-" +
         std::to_string(end_);
}

}  // namespace qox
