#include "storage/dead_letter_store.h"

#include <algorithm>
#include <set>

#include "common/crash_point.h"
#include "common/strings.h"
#include "storage/mem_table.h"
#include "storage/recovery_store.h"

namespace qox {
namespace {

/// The checksummed serialization of a record: every field, in schema
/// order, CSV-encoded into one line.
std::string ChecksumInput(const QuarantineRecord& r) {
  return CsvEncodeLine({r.flow_id, std::to_string(r.node_id),
                        std::to_string(r.op_index), r.op_name,
                        std::to_string(r.instance), std::to_string(r.attempt),
                        std::to_string(r.row_index), r.status_code,
                        r.status_message, r.payload});
}

int64_t ChecksumOf(const QuarantineRecord& r) {
  const std::string input = ChecksumInput(r);
  return static_cast<int64_t>(Fnv1a64(input.data(), input.size()));
}

/// Bytes a record counts against the ledger cap: its checksummed
/// serialization (stable across backends, unlike on-disk size).
size_t RecordBytes(const QuarantineRecord& r) {
  return ChecksumInput(r).size();
}

/// The ledger row for a record, checksum column included.
Row EncodeRecordRow(const QuarantineRecord& record) {
  Row row;
  row.Append(Value::String(record.flow_id));
  row.Append(Value::Int64(record.node_id));
  row.Append(Value::Int64(record.op_index));
  row.Append(Value::String(record.op_name));
  row.Append(Value::Int64(record.instance));
  row.Append(Value::Int64(record.attempt));
  row.Append(Value::Int64(record.row_index));
  row.Append(Value::String(record.status_code));
  row.Append(Value::String(record.status_message));
  row.Append(Value::String(record.payload));
  row.Append(Value::Int64(ChecksumOf(record)));
  return row;
}

/// Decodes and checksum-verifies a whole ledger batch.
Result<std::vector<QuarantineRecord>> DecodeLedger(const RowBatch& all) {
  std::vector<QuarantineRecord> records;
  records.reserve(all.num_rows());
  for (size_t i = 0; i < all.num_rows(); ++i) {
    const Row& row = all.row(i);
    if (row.num_values() != DeadLetterStoreSchema().num_fields()) {
      return Status::CorruptedData("dead-letter record " + std::to_string(i) +
                                   " has wrong arity");
    }
    QuarantineRecord r;
    r.flow_id = row.value(0).string_value();
    r.node_id = row.value(1).int64_value();
    r.op_index = row.value(2).int64_value();
    r.op_name = row.value(3).string_value();
    r.instance = row.value(4).int64_value();
    r.attempt = row.value(5).int64_value();
    r.row_index = row.value(6).int64_value();
    r.status_code = row.value(7).string_value();
    r.status_message = row.value(8).string_value();
    r.payload = row.value(9).string_value();
    if (row.value(10).int64_value() != ChecksumOf(r)) {
      return Status::CorruptedData(
          "dead-letter record " + std::to_string(i) + " (op '" + r.op_name +
          "') failed checksum verification");
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace

const char* DeadLetterOverflowPolicyName(DeadLetterOverflowPolicy policy) {
  switch (policy) {
    case DeadLetterOverflowPolicy::kEvictOldest:
      return "evict_oldest";
    case DeadLetterOverflowPolicy::kAbort:
      return "abort";
  }
  return "unknown";
}

Schema DeadLetterStoreSchema() {
  return Schema({{"flow_id", DataType::kString, false},
                 {"node_id", DataType::kInt64, false},
                 {"op_index", DataType::kInt64, false},
                 {"op_name", DataType::kString, false},
                 {"instance", DataType::kInt64, false},
                 {"attempt", DataType::kInt64, false},
                 {"row_index", DataType::kInt64, false},
                 {"status_code", DataType::kString, false},
                 {"status_message", DataType::kString, false},
                 {"payload", DataType::kString, false},
                 {"checksum", DataType::kInt64, false}});
}

std::string EncodeQuarantinePayload(const Row& row) {
  std::vector<std::string> cells;
  cells.reserve(row.num_values());
  for (const Value& value : row.values()) cells.push_back(value.ToString());
  return CsvEncodeLine(cells);
}

Result<Row> DecodeQuarantinePayload(const std::string& payload,
                                    const Schema& schema) {
  const std::vector<std::string> cells = CsvDecodeLine(payload);
  if (cells.size() != schema.num_fields()) {
    return Status::CorruptedData(
        "quarantine payload has " + std::to_string(cells.size()) +
        " cells, schema expects " + std::to_string(schema.num_fields()));
  }
  Row row;
  for (size_t i = 0; i < cells.size(); ++i) {
    QOX_ASSIGN_OR_RETURN(Value value,
                         Value::Parse(cells[i], schema.field(i).type));
    row.Append(std::move(value));
  }
  return row;
}

std::vector<std::string> CanonicalLedger(
    const std::vector<QuarantineRecord>& records) {
  std::set<std::string> lines;
  for (const QuarantineRecord& r : records) {
    lines.insert(CsvEncodeLine({std::to_string(r.op_index), r.op_name,
                                r.status_code, r.payload}));
  }
  return std::vector<std::string>(lines.begin(), lines.end());
}

Result<std::shared_ptr<DeadLetterStore>> DeadLetterStore::Wrap(
    DataStorePtr inner) {
  return Wrap(std::move(inner), DeadLetterCap{});
}

Result<std::shared_ptr<DeadLetterStore>> DeadLetterStore::Wrap(
    DataStorePtr inner, DeadLetterCap cap) {
  if (inner == nullptr) {
    return Status::Invalid("DeadLetterStore requires a non-null inner store");
  }
  if (inner->schema() != DeadLetterStoreSchema()) {
    return Status::Invalid("dead-letter inner store '" + inner->name() +
                           "' does not carry DeadLetterStoreSchema()");
  }
  return std::shared_ptr<DeadLetterStore>(
      new DeadLetterStore(std::move(inner), cap));
}

std::shared_ptr<DeadLetterStore> DeadLetterStore::InMemory(
    const std::string& name) {
  return InMemory(name, DeadLetterCap{});
}

std::shared_ptr<DeadLetterStore> DeadLetterStore::InMemory(
    const std::string& name, DeadLetterCap cap) {
  return std::shared_ptr<DeadLetterStore>(new DeadLetterStore(
      std::make_shared<MemTable>(name, DeadLetterStoreSchema()), cap));
}

Status DeadLetterStore::Quarantine(const QuarantineRecord& record) {
  RowBatch batch(DeadLetterStoreSchema());
  batch.Append(EncodeRecordRow(record));
  std::lock_guard<std::mutex> lock(mu_);
  if (cap_.max_bytes > 0) {
    if (!bytes_initialized_) {
      // Pre-existing ledger contents count against the cap.
      QOX_ASSIGN_OR_RETURN(RowBatch all, inner_->ReadAll());
      QOX_ASSIGN_OR_RETURN(std::vector<QuarantineRecord> existing,
                           DecodeLedger(all));
      bytes_used_ = 0;
      for (const QuarantineRecord& r : existing) bytes_used_ += RecordBytes(r);
      bytes_initialized_ = true;
    }
    const size_t incoming = RecordBytes(record);
    if (bytes_used_ + incoming > cap_.max_bytes) {
      if (cap_.policy == DeadLetterOverflowPolicy::kAbort) {
        return Status::ResourceExhausted(
            "dead-letter ledger '" + inner_->name() + "' full: " +
            std::to_string(bytes_used_) + " + " + std::to_string(incoming) +
            " bytes exceeds cap of " + std::to_string(cap_.max_bytes));
      }
      QOX_RETURN_IF_ERROR(EvictForLocked(incoming));
    }
    bytes_used_ += incoming;
  }
  QOX_CRASH_POINT("dlq.quarantine");
  return inner_->Append(batch);
}

Status DeadLetterStore::EvictForLocked(size_t incoming_bytes) {
  if (incoming_bytes > cap_.max_bytes) {
    return Status::ResourceExhausted(
        "dead-letter record of " + std::to_string(incoming_bytes) +
        " bytes cannot fit cap of " + std::to_string(cap_.max_bytes) +
        " even with an empty ledger");
  }
  QOX_ASSIGN_OR_RETURN(RowBatch all, inner_->ReadAll());
  QOX_ASSIGN_OR_RETURN(std::vector<QuarantineRecord> records,
                       DecodeLedger(all));
  size_t total = 0;
  for (const QuarantineRecord& r : records) total += RecordBytes(r);
  // Evict whole attempt-groups, oldest first, until the new record fits.
  // A half-evicted attempt would make that attempt's replay silently
  // partial, which is worse than losing the attempt outright.
  while (!records.empty() && total + incoming_bytes > cap_.max_bytes) {
    int64_t oldest = records.front().attempt;
    for (const QuarantineRecord& r : records) {
      if (r.attempt < oldest) oldest = r.attempt;
    }
    std::vector<QuarantineRecord> keep;
    keep.reserve(records.size());
    for (QuarantineRecord& r : records) {
      if (r.attempt == oldest) {
        total -= RecordBytes(r);
      } else {
        keep.push_back(std::move(r));
      }
    }
    records = std::move(keep);
    ++groups_evicted_;
  }
  RowBatch survivors(DeadLetterStoreSchema());
  survivors.Reserve(records.size());
  for (const QuarantineRecord& r : records) {
    survivors.Append(EncodeRecordRow(r));
  }
  QOX_RETURN_IF_ERROR(inner_->Truncate());
  if (!survivors.empty()) {
    QOX_RETURN_IF_ERROR(inner_->Append(survivors));
  }
  bytes_used_ = total;
  return Status::OK();
}

size_t DeadLetterStore::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

size_t DeadLetterStore::groups_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_evicted_;
}

Result<std::vector<QuarantineRecord>> DeadLetterStore::ReadAll() const {
  RowBatch all(DeadLetterStoreSchema());
  {
    std::lock_guard<std::mutex> lock(mu_);
    QOX_ASSIGN_OR_RETURN(all, inner_->ReadAll());
  }
  return DecodeLedger(all);
}

Result<size_t> DeadLetterStore::NumRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_->NumRows();
}

}  // namespace qox
