// Workload generators: synthetic equivalents of the paper's enterprise data.
//
// The paper's Fig. 3 workflow reads:
//   S1 SALES_TRAN   — relational table of sales transactions
//   S2 SALES_STAFF  — log-sniffer file dumps about sales staff
//   S3 CUSTWEB_CS   — streaming clickstream from the web portal
//   L1 STORE_DT     — store-site lookup dimension
//   L2 PRODUCT      — product lookup dimension
//
// The real data is proprietary, so we generate deterministic synthetic data
// with the properties the experiments depend on: configurable volume, NULL
// fraction (drives Flt_NN selectivity), dirty-code fraction (drives lookup
// rejections), Zipf-skewed key popularity, and event timestamps (drives
// freshness). All generation is seeded and reproducible.

#ifndef QOX_STORAGE_GENERATORS_H_
#define QOX_STORAGE_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"

namespace qox {

/// Shared knobs for all generators.
struct WorkloadConfig {
  uint64_t seed = 42;

  // Dimension cardinalities.
  size_t num_stores = 200;
  size_t num_products = 2000;
  size_t num_customers = 20000;
  size_t num_reps = 500;

  /// Fraction of S1 rows whose `amount` or `store_code` is NULL
  /// (rejected by the Flt_NN filter of Fig. 3).
  double null_fraction = 0.08;

  /// Fraction of S1 rows whose store/product code does not resolve in the
  /// lookup dimensions (verification failures).
  double dirty_code_fraction = 0.01;

  /// Zipf skew of product popularity (0 = uniform).
  double product_skew = 0.8;

  /// Event-time window the generated rows span, in simulated micros.
  int64_t time_start_micros = 0;
  int64_t time_span_micros = 24LL * 3600 * 1000 * 1000;  // one day
};

// ---------------------------------------------------------------------------
// Schemas (exact column layout of each store in the reproduction).
// ---------------------------------------------------------------------------

/// S1 SALES_TRAN: tran_id!, store_code, product_code, customer_id,
/// sales_rep_id, quantity, amount, event_time.
Schema SalesTranSchema();

/// S2 SALES_STAFF: rep_id!, rep_name, status, branch, working_hours,
/// event_time.
Schema SalesStaffSchema();

/// S3 CUSTWEB_CS: session_id!, customer_id, url, action, event_time.
Schema ClickstreamSchema();

/// L1 STORE_DT: store_code!, store_key!, region, city.
Schema StoreDimSchema();

/// L2 PRODUCT: product_code!, product_key!, category, list_price.
Schema ProductDimSchema();

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

/// Generates `n` S1 sales transactions. Transaction ids are sequential
/// starting at `first_tran_id` so successive runs produce disjoint ids.
std::vector<Row> GenerateSalesTransactions(const WorkloadConfig& config,
                                           size_t n, int64_t first_tran_id,
                                           Rng* rng);

/// Generates `n` S2 staff-log records. Roughly `update_fraction` of them
/// reuse rep ids from [0, num_reps) with changed attributes — these become
/// updates in the Δ comparison; the rest are new reps.
std::vector<Row> GenerateStaffLogs(const WorkloadConfig& config, size_t n,
                                   double update_fraction, Rng* rng);

/// Generates `n` S3 clickstream events with arrival order by event_time
/// (streaming sources deliver in time order).
std::vector<Row> GenerateClickstream(const WorkloadConfig& config, size_t n,
                                     Rng* rng);

/// Generates the full L1 store dimension (config.num_stores rows).
std::vector<Row> GenerateStoreDim(const WorkloadConfig& config, Rng* rng);

/// Generates the full L2 product dimension (config.num_products rows).
std::vector<Row> GenerateProductDim(const WorkloadConfig& config, Rng* rng);

/// Produces the next run's landing from a previous landing: keeps most rows
/// unchanged, mutates `update_fraction` of them (non-key columns), and adds
/// `num_inserts` new rows — the input shape the Δ operator exists for.
/// `key_column` identifies the business key; `mutable_column` must be a
/// numeric column to perturb.
Result<std::vector<Row>> MutateForNextRun(const std::vector<Row>& previous,
                                          size_t key_column,
                                          size_t mutable_column,
                                          double update_fraction,
                                          size_t num_inserts,
                                          const Schema& schema, Rng* rng);

}  // namespace qox

#endif  // QOX_STORAGE_GENERATORS_H_
