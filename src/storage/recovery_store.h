// RecoveryPointStore: durable storage for recovery points (the paper's SP1,
// SP2 of Fig. 3 and the RP configurations of Figs. 5–8).
//
// A recovery point is a persistent copy of the rows that have crossed a
// given position in the flow, written to a real file so its I/O cost is
// genuine. On failure, the executor resumes from the most recent complete
// recovery point instead of restarting the flow from scratch.

#ifndef QOX_STORAGE_RECOVERY_STORE_H_
#define QOX_STORAGE_RECOVERY_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace qox {

/// Identifies one recovery point within one flow run.
struct RecoveryPointId {
  std::string flow_id;   ///< e.g. "sales_bottom_flow"
  std::string point_id;  ///< e.g. "SP1" — position in the flow

  bool operator==(const RecoveryPointId& other) const {
    return flow_id == other.flow_id && point_id == other.point_id;
  }
};

/// Saved state plus bookkeeping.
struct RecoveryPointInfo {
  RecoveryPointId id;
  size_t num_rows = 0;
  size_t bytes = 0;
  /// FNV-1a 64 content checksum over the serialized row bytes; written to
  /// the commit marker and verified on Load.
  uint64_t checksum = 0;
  bool complete = false;  ///< set only after all rows + commit marker landed
};

/// FNV-1a 64-bit, the content checksum recovery points are sealed with.
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0);

class RecoveryPointStore {
 public:
  /// `dir` is created if absent; existing recovery files in it are ignored
  /// until re-registered (a fresh store starts logically empty).
  static Result<std::shared_ptr<RecoveryPointStore>> Open(std::string dir);

  /// Durably saves `rows` (with their schema) as recovery point `id`,
  /// replacing any previous save. The point becomes visible/complete only
  /// after the data file and commit marker (row count + content checksum)
  /// are fully written, so a crash mid-save leaves the previous state
  /// recoverable.
  Status Save(const RecoveryPointId& id, const Schema& schema,
              const std::vector<Row>& rows);

  /// True if a complete recovery point exists.
  bool Has(const RecoveryPointId& id) const;

  /// Re-registers a point persisted by an earlier process incarnation by
  /// reading its on-disk commit marker (a fresh store starts logically
  /// empty, so cross-process resume must adopt explicitly). Returns true
  /// when the point was adopted. A missing, zero-length, truncated, or
  /// unparseable marker — what a crash between the data rename and the
  /// marker seal leaves behind — is treated exactly like a checksum
  /// mismatch: the point is simply not adopted (false), so resume falls
  /// back to an older point instead of erroring. A marker that lies about
  /// the data bytes is still caught by Load's checksum verification.
  Result<bool> Adopt(const RecoveryPointId& id);

  /// Loads a complete recovery point. NotFound if absent or incomplete;
  /// kCorruptedData if the on-disk bytes no longer match the checksum
  /// sealed into the commit marker (bit rot, torn overwrite, tampering) —
  /// the caller must fall back to an older point or recompute.
  Result<RowBatch> Load(const RecoveryPointId& id, const Schema& schema) const;

  /// Drops one recovery point (e.g., after the flow commits downstream).
  Status Drop(const RecoveryPointId& id);

  /// Drops every recovery point of a flow (after a successful run).
  Status DropFlow(const std::string& flow_id);

  /// Info for all currently complete points (diagnostics/tests).
  std::vector<RecoveryPointInfo> List() const;

  /// Total bytes ever written through Save (I/O accounting for Fig. 5).
  size_t total_bytes_written() const { return total_bytes_written_.load(); }

  const std::string& dir() const { return dir_; }

 private:
  explicit RecoveryPointStore(std::string dir) : dir_(std::move(dir)) {}

  std::string DataPath(const RecoveryPointId& id) const;
  std::string MarkerPath(const RecoveryPointId& id) const;

  const std::string dir_;
  mutable std::mutex mu_;
  // key = flow_id + '\0' + point_id
  std::unordered_map<std::string, RecoveryPointInfo> points_;
  std::atomic<size_t> total_bytes_written_{0};
};

using RecoveryPointStorePtr = std::shared_ptr<RecoveryPointStore>;

}  // namespace qox

#endif  // QOX_STORAGE_RECOVERY_STORE_H_
