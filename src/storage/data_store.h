// DataStore: the abstract source/target of ETL flows.
//
// The paper's workflow (Fig. 3) reads from relational tables (S1), file
// dumps (S2), and a streaming web source (S3), lands data in a staging area,
// and loads warehouse tables (DW1..DW3). All of these are DataStores here:
// an ordered collection of rows with a fixed schema that can be scanned in
// batches and appended to.

#ifndef QOX_STORAGE_DATA_STORE_H_
#define QOX_STORAGE_DATA_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"

namespace qox {

class DataStore {
 public:
  virtual ~DataStore() = default;

  /// Stable identifier of this store ("SALES_TRAN", "DW1", ...).
  virtual const std::string& name() const = 0;

  virtual const Schema& schema() const = 0;

  /// Number of rows currently stored.
  virtual Result<size_t> NumRows() const = 0;

  /// Streams the contents in batches of at most `batch_size` rows to the
  /// consumer. The consumer may return a non-OK status to abort the scan
  /// (propagated to the caller). Each batch is handed over mutably: the
  /// consumer may move rows out of it (the store never re-reads a batch
  /// after the consumer returns), which keeps the extract path copy-free.
  virtual Status Scan(size_t batch_size,
                      const std::function<Status(RowBatch&)>& consumer)
      const = 0;

  /// Appends a batch. The batch schema must equal the store schema.
  virtual Status Append(const RowBatch& batch) = 0;

  /// Removes all rows.
  virtual Status Truncate() = 0;

  /// Identity of the store's current contents, for cross-flow sharing of
  /// lookup builds (engine/dimension_cache.h): stable while the contents
  /// are unchanged, different after any mutation, and unique across store
  /// instances within the process. The empty default marks the store
  /// uncacheable (every flow builds its own lookup table, the seed
  /// behaviour).
  virtual std::string ContentVersion() const { return ""; }

  /// Convenience: reads the whole store into a single batch.
  Result<RowBatch> ReadAll() const;
};

using DataStorePtr = std::shared_ptr<DataStore>;

}  // namespace qox

#endif  // QOX_STORAGE_DATA_STORE_H_
