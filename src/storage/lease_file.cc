#include "storage/lease_file.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/strings.h"

namespace qox {

namespace {

/// True when `pid` names a process that exists right now (signal 0 probes
/// existence; EPERM still means "exists").
bool PidAlive(pid_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

}  // namespace

Result<pid_t> LeaseFile::HolderPid(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("no lease at '" + path + "'");
  long long pid = 0;
  if (!(in >> pid) || pid <= 0) {
    return Status::NotFound("lease at '" + path + "' is unreadable");
  }
  return static_cast<pid_t>(pid);
}

Result<std::unique_ptr<LeaseFile>> LeaseFile::Acquire(std::string path,
                                                      std::string owner) {
  bool took_over = false;
  const Result<pid_t> holder = HolderPid(path);
  if (holder.ok()) {
    const pid_t pid = holder.value();
    if (pid != ::getpid() && PidAlive(pid)) {
      return Status::FailedPrecondition(
          "lease '" + path + "' held by live process " + std::to_string(pid));
    }
    // Holder is this process (re-acquire) or dead (stale): take over.
    took_over = pid != ::getpid();
  }
  // Publish atomically so a reader never sees a half-written lease.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot create lease '" + tmp + "'");
    out << ::getpid() << " " << owner << "\n";
    out.flush();
    if (!out) return Status::IoError("cannot write lease '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot publish lease '" + path +
                           "': " + ec.message());
  }
  return std::unique_ptr<LeaseFile>(
      new LeaseFile(std::move(path), took_over));
}

Status LeaseFile::Release() {
  if (released_) return Status::OK();
  released_ = true;
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  if (ec) {
    return Status::IoError("cannot release lease '" + path_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

LeaseFile::~LeaseFile() { (void)Release(); }

}  // namespace qox
