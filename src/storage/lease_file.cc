#include "storage/lease_file.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/strings.h"

namespace qox {

namespace {

/// True when `pid` names a process that exists right now (signal 0 probes
/// existence; EPERM still means "exists").
bool PidAlive(pid_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

/// Milliseconds since the lease file was last written; -1 when unreadable.
int64_t LeaseAgeMs(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return -1;
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  return std::chrono::duration_cast<std::chrono::milliseconds>(age).count();
}

/// Atomically writes "<pid> <owner>" to `path` via tmp + rename.
Status PublishLease(const std::string& path, const std::string& owner) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot create lease '" + tmp + "'");
    out << ::getpid() << " " << owner << "\n";
    out.flush();
    if (!out) return Status::IoError("cannot write lease '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot publish lease '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace

Result<pid_t> LeaseFile::HolderPid(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("no lease at '" + path + "'");
  long long pid = 0;
  if (!(in >> pid) || pid <= 0) {
    return Status::NotFound("lease at '" + path + "' is unreadable");
  }
  return static_cast<pid_t>(pid);
}

int64_t LeaseFile::TimeoutMs() {
  const char* env = std::getenv("QOX_LEASE_TIMEOUT_MS");
  if (env == nullptr) return 0;
  const long long parsed = std::strtoll(env, nullptr, 10);
  return parsed > 0 ? static_cast<int64_t>(parsed) : 0;
}

Result<std::unique_ptr<LeaseFile>> LeaseFile::Acquire(std::string path,
                                                      std::string owner) {
  bool took_over = false;
  const Result<pid_t> holder = HolderPid(path);
  if (holder.ok()) {
    const pid_t pid = holder.value();
    if (pid != ::getpid() && PidAlive(pid)) {
      // A live holder still loses the lease when it stopped refreshing it
      // for longer than the configured timeout — the hung-holder case pid
      // liveness cannot see.
      const int64_t timeout_ms = TimeoutMs();
      const int64_t age_ms = timeout_ms > 0 ? LeaseAgeMs(path) : -1;
      if (timeout_ms <= 0 || age_ms < timeout_ms) {
        return Status::FailedPrecondition(
            "lease '" + path + "' held by live process " +
            std::to_string(pid));
      }
    }
    // Holder is this process (re-acquire), dead, or timed out: take over.
    took_over = pid != ::getpid();
  }
  // Publish atomically so a reader never sees a half-written lease.
  QOX_RETURN_IF_ERROR(PublishLease(path, owner));
  return std::unique_ptr<LeaseFile>(
      new LeaseFile(std::move(path), std::move(owner), took_over));
}

Status LeaseFile::Heartbeat() {
  if (released_) {
    return Status::FailedPrecondition("heartbeat on released lease '" +
                                      path_ + "'");
  }
  // A timeout-based takeover rewrites the file behind our back. Blindly
  // republishing would silently reclaim the lease from the usurper and
  // leave two live holders, neither aware of the other — the displaced
  // holder must stop instead.
  const Result<pid_t> holder = HolderPid(path_);
  if (holder.ok() && holder.value() != ::getpid() &&
      PidAlive(holder.value())) {
    return Status::FailedPrecondition(
        "lease '" + path_ + "' was taken over by live process " +
        std::to_string(holder.value()));
  }
  return PublishLease(path_, owner_);
}

Status LeaseFile::Release() {
  if (released_) return Status::OK();
  released_ = true;
  // Same displacement guard as Heartbeat: a displaced holder must not
  // delete the usurper's lease on its way out.
  const Result<pid_t> holder = HolderPid(path_);
  if (holder.ok() && holder.value() != ::getpid()) return Status::OK();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  if (ec) {
    return Status::IoError("cannot release lease '" + path_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

LeaseFile::~LeaseFile() { (void)Release(); }

}  // namespace qox
