// CdcSource: a deterministic change-data-capture update stream.
//
// Models the continuous update feed of a near-real-time warehouse (the
// DOD-ETL shape referenced by the ROADMAP's distributed mode): an
// unbounded sequence of update events, each assigning a new value to one
// business key. The stream here is synthetic and fully determined by a
// seed — event i is computed O(1) from (seed, i), so the stream is
// offset-addressable: any process incarnation can re-derive any window of
// it without coordination, which is what makes killed shard workers
// trivially replayable.
//
// Versions are GLOBAL sequence numbers (event i carries version i+1).
// Because a key's events appear at increasing offsets, per-key versions
// are strictly monotone — the invariant the warehouse's last-writer-wins
// fold and the coordinator's exactly-once accounting both lean on.
//
// CdcShardView restricts the stream to one hash shard over an offset
// window; it is the extract source of a shard worker's flow. Sharding is
// BY KEY (CdcShardOf), so one key's whole history lives on one shard and
// per-key version order survives the shard merge.

#ifndef QOX_STORAGE_CDC_SOURCE_H_
#define QOX_STORAGE_CDC_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/data_store.h"

namespace qox {

/// Everything that determines the stream's contents.
struct CdcStreamSpec {
  uint64_t seed = 1;
  /// Distinct business keys; events hash onto them (hot keys repeat).
  size_t num_keys = 64;
  /// Window length materialized by this source (the stream is conceptually
  /// unbounded; a source instance exposes a finite prefix).
  size_t total_events = 1024;
  /// Fraction of events whose amount is NULL (food for the NotNull filter
  /// in front of the warehouse — the data-quality leg of the flow).
  double null_amount_fraction = 0.125;
};

/// Schema of a CDC event:
/// key:int64!, version:int64!, amount:double, category:string!.
Schema CdcSchema();

/// Hash shard owning `key` among `shards` workers. Deliberately NOT
/// `key % shards`: a mixed hash keeps shard load balanced under skewed or
/// clustered key draws.
size_t CdcShardOf(int64_t key, size_t shards);

class CdcSource : public DataStore {
 public:
  explicit CdcSource(CdcStreamSpec spec, std::string name = "cdc");

  const CdcStreamSpec& spec() const { return spec_; }

  /// The event at stream offset `offset` (< total_events), derived O(1)
  /// from the seed. Deterministic across processes and calls.
  Row EventAt(size_t offset) const;

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<size_t> NumRows() const override;
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  /// The stream is a source, not a sink.
  Status Append(const RowBatch& batch) override;
  Status Truncate() override;
  std::string ContentVersion() const override;

 private:
  const CdcStreamSpec spec_;
  const std::string name_;
  const Schema schema_;
};

using CdcSourcePtr = std::shared_ptr<const CdcSource>;

/// One shard's slice of the stream: events in offset window [begin, end)
/// whose key hashes to `shard` of `shards`. Read-only; this is what a
/// shard worker's extract scans.
class CdcShardView : public DataStore {
 public:
  CdcShardView(CdcSourcePtr source, size_t shard, size_t shards,
               size_t begin, size_t end);

  size_t shard() const { return shard_; }
  size_t begin() const { return begin_; }
  size_t end() const { return end_; }

  const std::string& name() const override { return name_; }
  const Schema& schema() const override;
  /// Events of the window owned by this shard (O(window) recount).
  Result<size_t> NumRows() const override;
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  Status Append(const RowBatch& batch) override;
  Status Truncate() override;
  std::string ContentVersion() const override;

 private:
  const CdcSourcePtr source_;
  const size_t shard_;
  const size_t shards_;
  const size_t begin_;
  const size_t end_;
  const std::string name_;
};

}  // namespace qox

#endif  // QOX_STORAGE_CDC_SOURCE_H_
