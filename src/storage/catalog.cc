#include "storage/catalog.h"

#include <algorithm>

namespace qox {

Status Catalog::Register(DataStorePtr store) {
  if (store == nullptr) return Status::Invalid("cannot register null store");
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = stores_.emplace(store->name(), store);
  if (!inserted) {
    return Status::AlreadyExists("store '" + store->name() +
                                 "' already registered");
  }
  return Status::OK();
}

Result<DataStorePtr> Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stores_.find(name);
  if (it == stores_.end()) {
    return Status::NotFound("no store named '" + name + "'");
  }
  return it->second;
}

bool Catalog::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_.find(name) != stores_.end();
}

std::vector<std::string> Catalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, store] : stores_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace qox
