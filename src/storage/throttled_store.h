// ThrottledStore: a DataStore decorator modelling a bandwidth-limited
// source channel.
//
// The paper's sources are remote operational systems reached over "network
// channels used between the source sites and the transformation area"
// (Sec. 3.2); extraction time there is dominated by the channel, which is
// why extraction dominates Fig. 4 and why parallelizing it buys nothing.
// ThrottledStore reproduces that: scans deliver no faster than
// `bytes_per_second` (writes are not throttled; targets are local).

#ifndef QOX_STORAGE_THROTTLED_STORE_H_
#define QOX_STORAGE_THROTTLED_STORE_H_

#include <memory>

#include "storage/data_store.h"

namespace qox {

class ThrottledStore : public DataStore {
 public:
  /// Wraps `inner`; scans are paced to `bytes_per_second` of row payload.
  ThrottledStore(DataStorePtr inner, double bytes_per_second)
      : inner_(std::move(inner)), bytes_per_second_(bytes_per_second) {}

  const std::string& name() const override { return inner_->name(); }
  const Schema& schema() const override { return inner_->schema(); }
  Result<size_t> NumRows() const override { return inner_->NumRows(); }
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  Status Append(const RowBatch& batch) override {
    return inner_->Append(batch);
  }
  Status Truncate() override { return inner_->Truncate(); }

  const DataStorePtr& inner() const { return inner_; }

 private:
  const DataStorePtr inner_;
  const double bytes_per_second_;
};

}  // namespace qox

#endif  // QOX_STORAGE_THROTTLED_STORE_H_
