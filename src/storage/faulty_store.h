// FaultyStore: a DataStore decorator that injects storage-level I/O faults.
//
// The engine's FailureInjector models system failures striking the
// executor; FaultyStore models the other half of the paper's failure
// taxonomy — faults in the storage layer itself (a dropped connection
// mid-scan, a throttled backend rejecting an append, a torn write that
// persists only a prefix of a batch). Wrapping a source, target, or staging
// store in a FaultyStore exercises the retry/backoff and incremental-load
// machinery end to end without touching the wrapped store's semantics.
//
// Faults are classified through common/status: transient faults surface as
// kUnavailable (retry may succeed), permanent faults as kIoError (the
// executor fails fast). All randomness flows from the explicitly seeded
// Rng, so every fault schedule is reproducible.

#ifndef QOX_STORAGE_FAULTY_STORE_H_
#define QOX_STORAGE_FAULTY_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "storage/data_store.h"

namespace qox {

/// Disk-pressure fault classes injectable at the append boundary,
/// modelling how real write paths die. Each maps to the status the
/// corresponding syscall failure would surface:
///   kEnospc     write(2) → ENOSPC      → kResourceExhausted (policy-driven)
///   kEio        write(2) → EIO         → kIoError (permanent)
///   kShortWrite torn page / power cut  → prefix persists + kUnavailable
///   kFsyncFail  fsync(2) error         → kIoError (data loss indeterminate:
///               after a failed fsync the durable state is unknowable, so
///               retrying the append blindly would risk duplication)
enum class DiskFaultKind {
  kNone = 0,
  kEnospc,
  kEio,
  kShortWrite,
  kFsyncFail,
};

const char* DiskFaultKindName(DiskFaultKind kind);

/// When and how the wrapped store misbehaves.
struct FaultPlan {
  /// Probability that any one scanned batch delivery fails (checked before
  /// the batch reaches the consumer).
  double scan_fault_probability = 0.0;
  /// Probability that any one Append call fails.
  double append_fault_probability = 0.0;
  /// Deterministic mode: the Nth Scan call (1-based) fails before
  /// delivering its first batch. 0 disables.
  int scan_fail_on_call = 0;
  /// Deterministic mode: the Nth Append call (1-based) fails. 0 disables.
  int append_fail_on_call = 0;
  /// Permanent faults surface as kIoError (not retryable); transient
  /// faults (the default) as kUnavailable.
  bool permanent = false;
  /// Torn writes: a failing Append durably persists a prefix of the batch
  /// to the inner store before reporting the fault, modelling a partial
  /// write. Callers must re-derive durable progress (e.g. from NumRows())
  /// instead of assuming append atomicity.
  bool torn_writes = false;
  /// Fraction of the failing batch the torn write persists, in [0, 1].
  /// The default persists floor(n/2) rows (the historical behaviour). Any
  /// negative value samples the fraction uniformly per fault from the
  /// store's seeded Rng, so arbitrary durable prefixes are exercised while
  /// staying reproducible.
  double torn_fraction = 0.5;
  /// Disk-pressure fault class for append faults. kNone keeps the
  /// classic permanent/transient behaviour above; any other kind
  /// overrides `permanent`/`torn_writes` with that kind's own semantics
  /// (see DiskFaultKind).
  DiskFaultKind disk_fault = DiskFaultKind::kNone;
};

class FaultyStore : public DataStore {
 public:
  /// Wraps `inner`; fault decisions are drawn from an Rng seeded with
  /// `seed` so schedules are reproducible.
  FaultyStore(DataStorePtr inner, FaultPlan plan, uint64_t seed)
      : inner_(std::move(inner)), plan_(plan), rng_(seed) {}

  const std::string& name() const override { return inner_->name(); }
  const Schema& schema() const override { return inner_->schema(); }
  Result<size_t> NumRows() const override { return inner_->NumRows(); }
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  Status Append(const RowBatch& batch) override;
  Status Truncate() override { return inner_->Truncate(); }

  const DataStorePtr& inner() const { return inner_; }

  /// Faults injected on the scan / append path so far.
  size_t scan_faults_injected() const { return scan_faults_.load(); }
  size_t append_faults_injected() const { return append_faults_.load(); }

 private:
  Status MakeFault(const std::string& operation) const;

  const DataStorePtr inner_;
  const FaultPlan plan_;
  mutable std::mutex mu_;  // guards rng_ and call counters
  mutable Rng rng_;
  mutable int scan_calls_ = 0;
  int append_calls_ = 0;
  mutable std::atomic<size_t> scan_faults_{0};
  std::atomic<size_t> append_faults_{0};
};

}  // namespace qox

#endif  // QOX_STORAGE_FAULTY_STORE_H_
