#include "storage/mem_table.h"

namespace qox {

Result<size_t> MemTable::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

Status MemTable::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (batch_size == 0) return Status::Invalid("batch_size must be > 0");
  // Copy under the lock, stream outside it, so a slow consumer does not
  // block writers. ETL scans read a landed snapshot, so this matches the
  // semantics the flows need. The snapshot is ours alone, so batches hand
  // their rows to the consumer by move.
  std::vector<Row> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = rows_;
  }
  RowBatch batch(schema_);
  batch.Reserve(batch_size);
  for (Row& row : snapshot) {
    batch.Append(std::move(row));
    if (batch.num_rows() >= batch_size) {
      QOX_RETURN_IF_ERROR(consumer(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) QOX_RETURN_IF_ERROR(consumer(batch));
  return Status::OK();
}

Status MemTable::Append(const RowBatch& batch) {
  if (batch.schema() != schema_) {
    return Status::Invalid("append to '" + name_ + "': schema mismatch (" +
                           batch.schema().ToString() + " vs " +
                           schema_.ToString() + ")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  rows_.insert(rows_.end(), batch.rows().begin(), batch.rows().end());
  mutations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MemTable::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  mutations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::string MemTable::ContentVersion() const {
  return "mem:" + std::to_string(instance_id_) + ":" +
         std::to_string(mutations_.load(std::memory_order_relaxed));
}

std::atomic<uint64_t> MemTable::next_instance_id_{1};

}  // namespace qox
