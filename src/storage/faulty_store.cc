#include "storage/faulty_store.h"

namespace qox {

const char* DiskFaultKindName(DiskFaultKind kind) {
  switch (kind) {
    case DiskFaultKind::kNone:
      return "none";
    case DiskFaultKind::kEnospc:
      return "enospc";
    case DiskFaultKind::kEio:
      return "eio";
    case DiskFaultKind::kShortWrite:
      return "short_write";
    case DiskFaultKind::kFsyncFail:
      return "fsync_fail";
  }
  return "unknown";
}

Status FaultyStore::MakeFault(const std::string& operation) const {
  const std::string suffix =
      " during " + operation + " on '" + inner_->name() + "'";
  switch (plan_.disk_fault) {
    case DiskFaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC" + suffix +
                                       ": no space left on device");
    case DiskFaultKind::kEio:
      return Status::IoError("injected EIO" + suffix);
    case DiskFaultKind::kShortWrite:
      return Status::Unavailable("injected short write" + suffix +
                                 ": prefix persisted, remainder lost");
    case DiskFaultKind::kFsyncFail:
      return Status::IoError("injected fsync failure" + suffix +
                             ": durability of prior writes unknown");
    case DiskFaultKind::kNone:
      break;
  }
  const std::string msg = "injected " +
                          std::string(plan_.permanent ? "permanent" : "transient") +
                          " storage fault" + suffix;
  if (plan_.permanent) return Status::IoError(msg);
  return Status::Unavailable(msg);
}

Status FaultyStore::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++scan_calls_;
    if (plan_.scan_fail_on_call > 0 && scan_calls_ == plan_.scan_fail_on_call) {
      scan_faults_.fetch_add(1);
      return MakeFault("scan");
    }
  }
  return inner_->Scan(batch_size, [&](RowBatch& batch) -> Status {
    if (plan_.scan_fault_probability > 0.0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (rng_.Bernoulli(plan_.scan_fault_probability)) {
        scan_faults_.fetch_add(1);
        return MakeFault("scan");
      }
    }
    return consumer(batch);
  });
}

Status FaultyStore::Append(const RowBatch& batch) {
  bool fault = false;
  double torn_fraction = plan_.torn_fraction;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++append_calls_;
    if (plan_.append_fail_on_call > 0 &&
        append_calls_ == plan_.append_fail_on_call) {
      fault = true;
    } else if (plan_.append_fault_probability > 0.0 &&
               rng_.Bernoulli(plan_.append_fault_probability)) {
      fault = true;
    }
    if (fault && torn_fraction < 0.0) torn_fraction = rng_.NextDouble();
  }
  if (!fault) return inner_->Append(batch);
  append_faults_.fetch_add(1);
  // kShortWrite durably lands a prefix (torn-write mechanics) regardless
  // of the torn_writes flag — that IS the fault being modelled.
  const bool tear = plan_.disk_fault == DiskFaultKind::kShortWrite
                        ? true
                        : (plan_.disk_fault == DiskFaultKind::kNone &&
                           plan_.torn_writes);
  if (tear && batch.num_rows() > 1) {
    // Persist a prefix of the batch before failing: the partial write a
    // crashed appender leaves behind.
    if (torn_fraction > 1.0) torn_fraction = 1.0;
    const size_t torn_rows = static_cast<size_t>(
        static_cast<double>(batch.num_rows()) * torn_fraction);
    RowBatch torn(batch.schema());
    for (size_t i = 0; i < torn_rows && i < batch.num_rows(); ++i) {
      torn.Append(batch.row(i));
    }
    if (!torn.empty()) QOX_RETURN_IF_ERROR(inner_->Append(torn));
  }
  return MakeFault("append");
}

}  // namespace qox
