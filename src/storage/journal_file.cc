#include "storage/journal_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/crash_point.h"
#include "common/strings.h"
#include "storage/recovery_store.h"  // Fnv1a64

namespace qox {

namespace {

/// The checksummed body: `seq,type,field...`.
std::string RecordBody(uint64_t seq, const std::string& type,
                       const std::vector<std::string>& fields) {
  std::vector<std::string> cells;
  cells.reserve(fields.size() + 2);
  cells.push_back(std::to_string(seq));
  cells.push_back(type);
  for (const std::string& f : fields) cells.push_back(f);
  return CsvEncodeLine(cells);
}

std::string RecordLine(uint64_t seq, const std::string& type,
                       const std::vector<std::string>& fields) {
  const std::string body = RecordBody(seq, type, fields);
  return body + "," + std::to_string(Fnv1a64(body.data(), body.size())) + "\n";
}

/// Parses one full line (without its newline). Returns false when the line
/// is not a valid next record — the torn-tail signal.
bool ParseRecord(const std::string& line, uint64_t expected_seq,
                 JournalRecord* out) {
  // The checksum is the last CSV cell; everything before it is the body.
  const size_t comma = line.rfind(',');
  if (comma == std::string::npos || comma + 1 >= line.size()) return false;
  const std::string body = line.substr(0, comma);
  char* end = nullptr;
  const unsigned long long stored =
      std::strtoull(line.c_str() + comma + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (Fnv1a64(body.data(), body.size()) != stored) return false;
  const std::vector<std::string> cells = CsvDecodeLine(body);
  if (cells.size() < 2) return false;
  char* seq_end = nullptr;
  const unsigned long long seq = std::strtoull(cells[0].c_str(), &seq_end, 10);
  if (seq_end == nullptr || *seq_end != '\0' || seq != expected_seq) {
    return false;
  }
  out->seq = seq;
  out->type = cells[1];
  out->fields.assign(cells.begin() + 2, cells.end());
  return true;
}

Status SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IoError("fsync '" + path + "': " + std::strerror(errno));
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so a freshly created or renamed
/// entry survives a crash of the whole machine, not just the process.
void SyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

const char* JournalSyncName(JournalSync sync) {
  switch (sync) {
    case JournalSync::kNone:
      return "none";
    case JournalSync::kCommit:
      return "commit";
    case JournalSync::kAlways:
      return "always";
  }
  return "unknown";
}

Result<JournalSync> ParseJournalSync(const std::string& name) {
  if (name == "none") return JournalSync::kNone;
  if (name == "commit") return JournalSync::kCommit;
  if (name == "always") return JournalSync::kAlways;
  return Status::Invalid("unknown journal sync policy '" + name + "'");
}

Result<std::unique_ptr<JournalFile>> JournalFile::Open(std::string path,
                                                       JournalSync sync) {
  auto journal =
      std::unique_ptr<JournalFile>(new JournalFile(std::move(path), sync));
  // Recover the valid record prefix: scan whole lines front to back, stop
  // at the first line that is torn, corrupt, or out of sequence.
  size_t valid_bytes = 0;
  {
    std::ifstream in(journal->path_, std::ios::binary);
    if (in) {
      std::string line;
      while (std::getline(in, line)) {
        if (in.eof() && !line.empty()) break;  // no newline: torn final line
        JournalRecord record;
        if (!ParseRecord(line, journal->next_seq_, &record)) break;
        valid_bytes += line.size() + 1;
        journal->records_.push_back(std::move(record));
        ++journal->next_seq_;
      }
    }
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(journal->path_, ec);
  if (!ec && size > valid_bytes) {
    journal->truncated_bytes_ = static_cast<size_t>(size) - valid_bytes;
    std::filesystem::resize_file(journal->path_, valid_bytes, ec);
    if (ec) {
      return Status::IoError("cannot truncate torn tail of '" +
                             journal->path_ + "': " + ec.message());
    }
  }
  QOX_RETURN_IF_ERROR(journal->OpenFd());
  return journal;
}

Status JournalFile::OpenFd() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open journal '" + path_ +
                           "': " + std::strerror(errno));
  }
  SyncParentDir(path_);
  return Status::OK();
}

JournalFile::~JournalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalFile::AppendLineLocked(const std::string& line, bool sync_now) {
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to journal '" + path_ +
                             "': " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (sync_now) {
    QOX_RETURN_IF_ERROR(SyncFd(fd_, path_));
    ++syncs_;
  }
  return Status::OK();
}

Status JournalFile::Append(const std::string& type,
                           const std::vector<std::string>& fields,
                           bool commit) {
  std::lock_guard<std::mutex> lock(mu_);
  QOX_CRASH_POINT("journal.append");
  const std::string line = RecordLine(next_seq_, type, fields);
  const bool sync_now = sync_ == JournalSync::kAlways ||
                        (sync_ == JournalSync::kCommit && commit);
  QOX_RETURN_IF_ERROR(AppendLineLocked(line, sync_now));
  JournalRecord record;
  record.seq = next_seq_;
  record.type = type;
  record.fields = fields;
  records_.push_back(std::move(record));
  ++next_seq_;
  QOX_CRASH_POINT("journal.appended");
  return Status::OK();
}

void JournalFile::SetWriteFault(std::function<Status()> fault) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_ = std::move(fault);
}

Status JournalFile::Rewrite(const std::vector<JournalRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp_path = path_ + ".tmp";
  // A rotation that fails at ANY step below must leave no trace: the old
  // segment (and the in-memory record list mirroring it) stays the
  // journal, and the half-written temp file is removed so a later
  // successful rotation — or an unrelated directory sweep — never sees it.
  const auto abort_rotation = [&tmp_path](Status status) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    return status;
  };
  {
    if (write_fault_) {
      const Status injected = write_fault_();
      if (!injected.ok()) return abort_rotation(injected);
    }
    const int tmp_fd = ::open(tmp_path.c_str(),
                              O_WRONLY | O_TRUNC | O_CREAT | O_CLOEXEC, 0644);
    if (tmp_fd < 0) {
      return abort_rotation(Status::IoError("cannot create '" + tmp_path +
                                            "': " + std::strerror(errno)));
    }
    uint64_t seq = 1;
    for (const JournalRecord& record : records) {
      const std::string line = RecordLine(seq, record.type, record.fields);
      size_t written = 0;
      while (written < line.size()) {
        const ssize_t n =
            ::write(tmp_fd, line.data() + written, line.size() - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          ::close(tmp_fd);
          return abort_rotation(Status::IoError(
              "write to '" + tmp_path + "': " + std::strerror(errno)));
        }
        written += static_cast<size_t>(n);
      }
      ++seq;
    }
    Status sync_status;
    if (write_fault_) sync_status = write_fault_();
    if (sync_status.ok()) sync_status = SyncFd(tmp_fd, tmp_path);
    ::close(tmp_fd);
    if (!sync_status.ok()) return abort_rotation(sync_status);
    ++syncs_;
  }
  QOX_CRASH_POINT("journal.rotate");
  std::error_code ec;
  std::filesystem::rename(tmp_path, path_, ec);
  if (ec) {
    return abort_rotation(Status::IoError("cannot rotate journal '" + path_ +
                                          "': " + ec.message()));
  }
  SyncParentDir(path_);
  // The append fd still points at the replaced inode; reopen on the new
  // segment so subsequent appends land in the rotated file.
  if (fd_ >= 0) ::close(fd_);
  QOX_RETURN_IF_ERROR(OpenFd());
  records_.clear();
  records_.reserve(records.size());
  uint64_t seq = 1;
  for (const JournalRecord& record : records) {
    JournalRecord copy = record;
    copy.seq = seq++;
    records_.push_back(std::move(copy));
  }
  next_seq_ = seq;
  QOX_CRASH_POINT("journal.rotated");
  return Status::OK();
}

size_t JournalFile::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

}  // namespace qox
