// SpillManager: checksummed, crash-safe spill files for memory-bounded
// operators.
//
// When a blocking operator's working set is refused by the flow's
// MemoryBudget, it writes the overflow to a spill run under this manager
// instead of growing. Spill runs reuse the JournalFile durability
// discipline (storage/journal_file.h): every record line carries an FNV-1a
// checksum verified on read-back, writes go to a `.spill.tmp` file that is
// fsync'd and atomically renamed to `.spill` at finalize, so a reader only
// ever sees complete runs and a SIGKILL mid-spill leaves at most a
// `.spill.tmp` orphan. Orphans cannot corrupt results — spill runs are
// strictly intra-attempt temporaries — but they can leak disk, so the
// manager supports RemoveAll() at attempt end and CleanupDir() on
// supervised restart (the flow journal records the spill directory so a
// successor process knows where a dead incarnation spilled).
//
// Record format, one row per line:  payload,checksum  where payload is the
// row's cells CSV-encoded (the FlatFile value encoding) and checksum is
// the FNV-1a 64 hash of the payload, in decimal.

#ifndef QOX_STORAGE_SPILL_MANAGER_H_
#define QOX_STORAGE_SPILL_MANAGER_H_

#include <atomic>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"

namespace qox {

class SpillManager;

/// A finalized (durable, immutable) spill run.
struct SpillFile {
  std::string path;
  Schema schema;
  size_t rows = 0;
  size_t bytes = 0;
};

/// Streams a finalized run back in write order, verifying every record's
/// checksum (kCorruptedData on the first mismatch).
class SpillReader {
 public:
  explicit SpillReader(const SpillFile& file);

  /// The next row, std::nullopt at end of run.
  Result<std::optional<Row>> Next();

 private:
  const SpillFile file_;
  std::ifstream in_;
  size_t line_no_ = 0;
  bool opened_ok_ = false;
};

/// Accumulates one spill run. Append buffers rows and flushes to the
/// `.spill.tmp` file in large writes; Finalize flushes, fsyncs, and
/// atomically renames the run into place. A writer dropped without
/// Finalize leaves only the tmp file (removed by RemoveAll/CleanupDir).
class SpillWriter {
 public:
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Append(const Row& row);
  Result<SpillFile> Finalize();

  size_t rows() const { return rows_; }

 private:
  friend class SpillManager;
  SpillWriter(SpillManager* manager, std::string final_path, Schema schema);

  Status Flush();

  SpillManager* const manager_;
  const std::string final_path_;
  const std::string tmp_path_;
  const Schema schema_;
  int fd_ = -1;
  std::string buffer_;
  size_t rows_ = 0;
  size_t bytes_ = 0;
  bool finalized_ = false;
};

/// One manager per flow instance; hands out uniquely named runs under its
/// directory and tracks them for cleanup. Thread-safe: partition branches
/// and streaming stages spill concurrently.
class SpillManager {
 public:
  explicit SpillManager(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Installs a fault hook invoked before every physical spill write and
  /// finalize — the injection point for disk-pressure chaos (ENOSPC on
  /// the spill path). A non-OK return aborts the write with that status.
  void SetWriteFault(std::function<Status()> hook) {
    write_fault_ = std::move(hook);
  }

  /// Opens a new run named after `tag` (made unique by a counter). Creates
  /// the spill directory on first use.
  Result<std::unique_ptr<SpillWriter>> CreateRun(const std::string& tag,
                                                 const Schema& schema);

  /// Deletes every file this manager created (finalized and tmp). Called
  /// at attempt end — spill runs never outlive the attempt that wrote
  /// them.
  Status RemoveAll();

  /// Deletes every `.spill` / `.spill.tmp` under `dir` (a dead
  /// incarnation's leftovers, located via the flow journal's spill_dir
  /// record). Missing directory is not an error. Returns files removed.
  static Result<size_t> CleanupDir(const std::string& dir);

  // --- spill accounting (RunMetrics / bench) -------------------------------
  size_t runs_created() const { return runs_.load(); }
  size_t rows_spilled() const { return spilled_rows_.load(); }
  size_t bytes_spilled() const { return spilled_bytes_.load(); }

 private:
  friend class SpillWriter;

  Status CheckWriteFault() const {
    if (write_fault_) return write_fault_();
    return Status::OK();
  }
  void Account(size_t rows, size_t bytes) {
    spilled_rows_.fetch_add(rows);
    spilled_bytes_.fetch_add(bytes);
  }
  void Register(const std::string& path);
  void Rename(const std::string& from, const std::string& to);

  const std::string dir_;
  std::function<Status()> write_fault_;
  std::mutex mu_;  // guards files_ and dir creation
  bool dir_created_ = false;
  std::vector<std::string> files_;
  std::atomic<size_t> next_id_{0};
  std::atomic<size_t> runs_{0};
  std::atomic<size_t> spilled_rows_{0};
  std::atomic<size_t> spilled_bytes_{0};
};

}  // namespace qox

#endif  // QOX_STORAGE_SPILL_MANAGER_H_
