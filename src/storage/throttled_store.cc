#include "storage/throttled_store.h"

#include <thread>

#include "common/clock.h"

namespace qox {

Status ThrottledStore::Scan(
    size_t batch_size,
    const std::function<Status(RowBatch&)>& consumer) const {
  if (bytes_per_second_ <= 0) return inner_->Scan(batch_size, consumer);
  const int64_t start = NowMicros();
  size_t bytes_seen = 0;
  return inner_->Scan(batch_size, [&](RowBatch& batch) -> Status {
    bytes_seen += batch.ByteSize();
    // Pace delivery: this batch may not arrive before the channel could
    // have transferred its bytes.
    const int64_t earliest =
        start + static_cast<int64_t>(static_cast<double>(bytes_seen) /
                                     bytes_per_second_ * 1e6);
    const int64_t now = NowMicros();
    if (now < earliest) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(earliest - now));
    }
    return consumer(batch);
  });
}

}  // namespace qox
