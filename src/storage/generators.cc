#include "storage/generators.h"

#include <algorithm>

namespace qox {

namespace {

constexpr const char* kRegions[] = {"north", "south", "east", "west",
                                    "central"};
constexpr const char* kCities[] = {"springfield", "rivertown", "lakeside",
                                   "hillcrest", "brookfield", "fairview",
                                   "oakdale", "maplewood"};
constexpr const char* kCategories[] = {"electronics", "grocery", "apparel",
                                       "home", "sports", "toys", "garden"};
constexpr const char* kStatuses[] = {"active", "on_leave", "training",
                                     "terminated"};
constexpr const char* kActions[] = {"view", "search", "add_to_cart",
                                    "purchase", "review"};
constexpr const char* kUrls[] = {"/home", "/product", "/cart", "/checkout",
                                 "/search", "/account", "/deals"};

std::string StoreCode(size_t i) { return "ST" + std::to_string(1000 + i); }
std::string ProductCode(size_t i) { return "PR" + std::to_string(100000 + i); }

int64_t SampleEventTime(const WorkloadConfig& config, Rng* rng) {
  return config.time_start_micros +
         rng->Uniform(0, std::max<int64_t>(1, config.time_span_micros - 1));
}

}  // namespace

Schema SalesTranSchema() {
  return Schema({
      {"tran_id", DataType::kInt64, /*nullable=*/false},
      {"store_code", DataType::kString, true},
      {"product_code", DataType::kString, true},
      {"customer_id", DataType::kInt64, true},
      {"sales_rep_id", DataType::kInt64, true},
      {"quantity", DataType::kInt64, true},
      {"amount", DataType::kDouble, true},
      {"event_time", DataType::kTimestamp, false},
  });
}

Schema SalesStaffSchema() {
  return Schema({
      {"rep_id", DataType::kInt64, false},
      {"rep_name", DataType::kString, true},
      {"status", DataType::kString, true},
      {"branch", DataType::kString, true},
      {"working_hours", DataType::kInt64, true},
      {"event_time", DataType::kTimestamp, false},
  });
}

Schema ClickstreamSchema() {
  return Schema({
      {"session_id", DataType::kInt64, false},
      {"customer_id", DataType::kInt64, true},
      {"url", DataType::kString, true},
      {"action", DataType::kString, true},
      {"event_time", DataType::kTimestamp, false},
  });
}

Schema StoreDimSchema() {
  return Schema({
      {"store_code", DataType::kString, false},
      {"store_key", DataType::kInt64, false},
      {"region", DataType::kString, true},
      {"city", DataType::kString, true},
  });
}

Schema ProductDimSchema() {
  return Schema({
      {"product_code", DataType::kString, false},
      {"product_key", DataType::kInt64, false},
      {"category", DataType::kString, true},
      {"list_price", DataType::kDouble, true},
  });
}

std::vector<Row> GenerateSalesTransactions(const WorkloadConfig& config,
                                           size_t n, int64_t first_tran_id,
                                           Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.Append(Value::Int64(first_tran_id + static_cast<int64_t>(i)));
    // store_code: NULL with half the null budget, dirty with dirty budget.
    if (rng->Bernoulli(config.null_fraction / 2)) {
      row.Append(Value::Null());
    } else if (rng->Bernoulli(config.dirty_code_fraction)) {
      row.Append(Value::String("STBAD" + std::to_string(rng->Uniform(0, 999))));
    } else {
      row.Append(Value::String(
          StoreCode(static_cast<size_t>(rng->Uniform(
              0, static_cast<int64_t>(config.num_stores) - 1)))));
    }
    // product_code: Zipf-popular products; occasionally dirty.
    if (rng->Bernoulli(config.dirty_code_fraction)) {
      row.Append(Value::String("PRBAD" + std::to_string(rng->Uniform(0, 999))));
    } else {
      row.Append(Value::String(
          ProductCode(rng->Zipf(config.num_products, config.product_skew))));
    }
    row.Append(Value::Int64(rng->Uniform(
        0, static_cast<int64_t>(config.num_customers) - 1)));
    row.Append(
        Value::Int64(rng->Uniform(0, static_cast<int64_t>(config.num_reps) - 1)));
    row.Append(Value::Int64(rng->Uniform(1, 12)));
    // amount: NULL with the other half of the null budget.
    if (rng->Bernoulli(config.null_fraction / 2)) {
      row.Append(Value::Null());
    } else {
      row.Append(Value::Double(
          static_cast<double>(rng->Uniform(100, 99999)) / 100.0));
    }
    row.Append(Value::Timestamp(SampleEventTime(config, rng)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> GenerateStaffLogs(const WorkloadConfig& config, size_t n,
                                   double update_fraction, Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool is_update = rng->Bernoulli(update_fraction);
    const int64_t rep_id =
        is_update
            ? rng->Uniform(0, static_cast<int64_t>(config.num_reps) - 1)
            : static_cast<int64_t>(config.num_reps) + rng->Uniform(0, 99999);
    Row row;
    row.Append(Value::Int64(rep_id));
    row.Append(Value::String("rep_" + std::to_string(rep_id)));
    row.Append(Value::String(
        kStatuses[rng->Uniform(0, std::size(kStatuses) - 1)]));
    row.Append(Value::String("branch_" + std::to_string(rng->Uniform(0, 49))));
    row.Append(Value::Int64(rng->Uniform(10, 60)));
    row.Append(Value::Timestamp(SampleEventTime(config, rng)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> GenerateClickstream(const WorkloadConfig& config, size_t n,
                                     Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.Append(Value::Int64(rng->Uniform(0, 1'000'000'000)));
    // ~10% anonymous sessions (NULL customer).
    if (rng->Bernoulli(0.10)) {
      row.Append(Value::Null());
    } else {
      row.Append(Value::Int64(rng->Uniform(
          0, static_cast<int64_t>(config.num_customers) - 1)));
    }
    row.Append(Value::String(kUrls[rng->Uniform(0, std::size(kUrls) - 1)]));
    row.Append(
        Value::String(kActions[rng->Uniform(0, std::size(kActions) - 1)]));
    row.Append(Value::Timestamp(SampleEventTime(config, rng)));
    rows.push_back(std::move(row));
  }
  // Streaming sources deliver in event-time order.
  const size_t time_col = 4;
  std::sort(rows.begin(), rows.end(), [time_col](const Row& a, const Row& b) {
    return a.value(time_col).Compare(b.value(time_col)) < 0;
  });
  return rows;
}

std::vector<Row> GenerateStoreDim(const WorkloadConfig& config, Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(config.num_stores);
  for (size_t i = 0; i < config.num_stores; ++i) {
    Row row;
    row.Append(Value::String(StoreCode(i)));
    row.Append(Value::Int64(static_cast<int64_t>(10000 + i)));
    row.Append(
        Value::String(kRegions[rng->Uniform(0, std::size(kRegions) - 1)]));
    row.Append(Value::String(kCities[rng->Uniform(0, std::size(kCities) - 1)]));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> GenerateProductDim(const WorkloadConfig& config, Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(config.num_products);
  for (size_t i = 0; i < config.num_products; ++i) {
    Row row;
    row.Append(Value::String(ProductCode(i)));
    row.Append(Value::Int64(static_cast<int64_t>(500000 + i)));
    row.Append(Value::String(
        kCategories[rng->Uniform(0, std::size(kCategories) - 1)]));
    row.Append(Value::Double(
        static_cast<double>(rng->Uniform(99, 49999)) / 100.0));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> MutateForNextRun(const std::vector<Row>& previous,
                                          size_t key_column,
                                          size_t mutable_column,
                                          double update_fraction,
                                          size_t num_inserts,
                                          const Schema& schema, Rng* rng) {
  if (key_column >= schema.num_fields() ||
      mutable_column >= schema.num_fields()) {
    return Status::Invalid("column index out of range");
  }
  if (schema.field(mutable_column).type != DataType::kInt64 &&
      schema.field(mutable_column).type != DataType::kDouble) {
    return Status::Invalid("mutable column must be numeric");
  }
  std::vector<Row> next = previous;
  int64_t max_key = 0;
  for (const Row& row : next) {
    if (row.value(key_column).type() == DataType::kInt64) {
      max_key = std::max(max_key, row.value(key_column).int64_value());
    }
  }
  for (Row& row : next) {
    if (!rng->Bernoulli(update_fraction)) continue;
    const Value& old = row.value(mutable_column);
    if (schema.field(mutable_column).type == DataType::kInt64) {
      const int64_t base = old.is_null() ? 0 : old.int64_value();
      row.Set(mutable_column, Value::Int64(base + rng->Uniform(1, 10)));
    } else {
      const double base = old.is_null() ? 0.0 : old.double_value();
      row.Set(mutable_column, Value::Double(base + 1.0 + rng->NextDouble()));
    }
  }
  // Inserts: clone a random template row and give it a fresh key.
  for (size_t i = 0; i < num_inserts; ++i) {
    Row row = previous.empty()
                  ? Row(std::vector<Value>(schema.num_fields(), Value::Null()))
                  : previous[static_cast<size_t>(rng->Uniform(
                        0, static_cast<int64_t>(previous.size()) - 1))];
    row.Set(key_column, Value::Int64(max_key + 1 + static_cast<int64_t>(i)));
    next.push_back(std::move(row));
  }
  return next;
}

}  // namespace qox
