// JournalFile: a durable, checksummed, append-only record log — the
// storage substrate of the engine's FlowJournal (engine/flow_journal.h).
//
// One journal is one text segment of line-framed records. Each line is a
// CSV record `seq,type,field...,checksum` where `seq` increases by one per
// record and `checksum` is the FNV-1a 64 hash of everything before it. On
// Open the segment is scanned front to back; the first line that is torn
// (no terminating newline), fails its checksum, or breaks the sequence is
// treated as the torn tail of an interrupted append: the file is truncated
// back to the last valid record boundary and the valid prefix becomes the
// recovered record list. Appends write the full line with a single
// write(2) and fsync according to the segment's sync policy, so a SIGKILL
// at any instant loses at most the in-flight record. Rewrite() compacts
// the segment by writing a replacement to a temp file, fsyncing it, and
// atomically renaming it over the log (the crash-safe segment rotation).

#ifndef QOX_STORAGE_JOURNAL_FILE_H_
#define QOX_STORAGE_JOURNAL_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace qox {

/// When appends reach the platter. kAlways fsyncs every record, kCommit
/// only records appended with commit=true (attempt starts, RP commits,
/// flow commits — the records resume correctness depends on), kNone never
/// (the OS flushes eventually; a crash may lose a valid-looking suffix,
/// which recovery handles like any torn tail).
enum class JournalSync {
  kNone,
  kCommit,
  kAlways,
};

/// Canonical lowercase name ("none", "commit", "always").
const char* JournalSyncName(JournalSync sync);

/// Parses a sync-policy name. Error for unknown names.
Result<JournalSync> ParseJournalSync(const std::string& name);

/// One recovered or appended record.
struct JournalRecord {
  uint64_t seq = 0;
  std::string type;
  std::vector<std::string> fields;
};

class JournalFile {
 public:
  /// Opens (creating if absent) the segment at `path`, recovers the valid
  /// record prefix, and truncates any torn tail in place.
  static Result<std::unique_ptr<JournalFile>> Open(std::string path,
                                                   JournalSync sync);

  ~JournalFile();
  JournalFile(const JournalFile&) = delete;
  JournalFile& operator=(const JournalFile&) = delete;

  /// Appends one record (next sequence number assigned internally) with a
  /// single write; fsyncs per the sync policy (`commit` marks the record
  /// as a commit record under JournalSync::kCommit).
  Status Append(const std::string& type, const std::vector<std::string>& fields,
                bool commit = false);

  /// Atomically replaces the whole segment with `records` (re-sequenced
  /// from 1): write temp file, fsync, rename over the log. A crash before
  /// the rename leaves the old segment intact; after it, the new one. A
  /// FAILED rotation (disk full, failed fsync, failed rename) likewise
  /// leaves the old segment and the in-memory record list untouched,
  /// removes its half-written temp file, and keeps the journal appendable.
  Status Rewrite(const std::vector<JournalRecord>& records);

  /// Test hook: fault injected before rotation I/O (once before the temp
  /// segment is written, once before its fsync) — the disk-pressure
  /// analogue of FaultyStore's enospc/fsync_fail kinds for the rotation
  /// path, which store-boundary injection cannot reach. A non-OK return
  /// aborts the rotation as if the write/fsync itself had failed. May be
  /// empty.
  void SetWriteFault(std::function<Status()> fault);

  /// Everything currently in the segment, in order (recovered + appended).
  const std::vector<JournalRecord>& records() const { return records_; }

  /// Bytes of torn tail discarded by Open (0 for a clean segment).
  size_t truncated_bytes() const { return truncated_bytes_; }

  JournalSync sync_policy() const { return sync_; }
  const std::string& path() const { return path_; }

  /// fsync calls issued so far (journal-overhead accounting for the cost
  /// model's restart term and the abl_crash_recovery bench).
  size_t syncs() const;

 private:
  JournalFile(std::string path, JournalSync sync)
      : path_(std::move(path)), sync_(sync) {}

  Status OpenFd();
  Status AppendLineLocked(const std::string& line, bool sync_now);

  const std::string path_;
  const JournalSync sync_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  std::vector<JournalRecord> records_;
  size_t truncated_bytes_ = 0;
  size_t syncs_ = 0;
  std::function<Status()> write_fault_;
};

}  // namespace qox

#endif  // QOX_STORAGE_JOURNAL_FILE_H_
