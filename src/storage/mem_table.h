// MemTable: an in-memory, thread-safe DataStore.
//
// Used for relational sources, the staging area, and warehouse tables in
// tests and benchmarks. Appends and scans are serialized by a mutex; a scan
// takes a consistent snapshot of the row count at its start.

#ifndef QOX_STORAGE_MEM_TABLE_H_
#define QOX_STORAGE_MEM_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/data_store.h"

namespace qox {

class MemTable : public DataStore {
 public:
  MemTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<size_t> NumRows() const override;
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  Status Append(const RowBatch& batch) override;
  Status Truncate() override;
  std::string ContentVersion() const override;

 private:
  const std::string name_;
  const Schema schema_;
  /// Process-unique instance id + per-instance mutation counter: versions
  /// never collide across tables that happen to share a name (test
  /// scenarios recreate dimensions freely).
  const uint64_t instance_id_ = next_instance_id_.fetch_add(1);
  std::atomic<uint64_t> mutations_{0};
  static std::atomic<uint64_t> next_instance_id_;
  mutable std::mutex mu_;
  std::vector<Row> rows_;
};

}  // namespace qox

#endif  // QOX_STORAGE_MEM_TABLE_H_
