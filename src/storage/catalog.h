// Catalog: named registry of the data stores a flow reads and writes.

#ifndef QOX_STORAGE_CATALOG_H_
#define QOX_STORAGE_CATALOG_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/data_store.h"

namespace qox {

class Catalog {
 public:
  /// Registers a store under its own name. Error on duplicates.
  Status Register(DataStorePtr store);

  /// Looks up a store by name.
  Result<DataStorePtr> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Names of all registered stores, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, DataStorePtr> stores_;
};

}  // namespace qox

#endif  // QOX_STORAGE_CATALOG_H_
