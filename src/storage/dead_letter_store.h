// DeadLetterStore: a checksummed quarantine ledger over any DataStore.
//
// When an operator errors on an individual row under ErrorPolicy::
// kQuarantine, the executor wraps the row with provenance — which plan
// node and operator rejected it, on which instance/attempt, and why — and
// appends it here instead of aborting the flow (the "error table" /
// "reject link" of commercial ETL tools). Each record carries an FNV-1a
// checksum over all of its fields, verified on read like recovery points:
// a quarantine ledger that silently rots would make the later replay
// silently wrong, which is worse than failing loudly.
//
// The payload column holds the failing row CSV-encoded *as it entered the
// failing operator* (all upstream transforms applied), so ReplayQuarantine
// (engine/quarantine.h) can re-run just the suffix of a repaired flow over
// it without re-extracting anything.

#ifndef QOX_STORAGE_DEAD_LETTER_STORE_H_
#define QOX_STORAGE_DEAD_LETTER_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/data_store.h"

namespace qox {

/// One quarantined row plus its provenance.
struct QuarantineRecord {
  std::string flow_id;
  /// ExecutionPlan node id of the failing operator (-1 when unknown).
  int64_t node_id = -1;
  /// Global index of the failing operator in the transform chain.
  int64_t op_index = 0;
  std::string op_name;
  /// Redundant-instance id (0 for non-redundant runs).
  int64_t instance = 0;
  /// 1-based attempt during which the row was quarantined.
  int64_t attempt = 1;
  /// Containment sequence number within the run (diagnostic only; differs
  /// across executors and attempts — cross-mode comparisons must use
  /// CanonicalLedger instead).
  int64_t row_index = 0;
  /// StatusCodeName of the row error ("invalid_argument", "not_found").
  std::string status_code;
  std::string status_message;
  /// The failing row, CSV-encoded against the failing op's input schema.
  std::string payload;
};

/// Schema of the underlying ledger store (one column per QuarantineRecord
/// field plus the trailing int64 checksum).
Schema DeadLetterStoreSchema();

/// CSV-encodes a row for the payload column.
std::string EncodeQuarantinePayload(const Row& row);

/// Decodes a payload back into a row of `schema` (the failing op's input
/// schema). Errors when the arity or any cell fails to parse.
Result<Row> DecodeQuarantinePayload(const std::string& payload,
                                    const Schema& schema);

/// The canonical, mode-independent view of a ledger: one line per distinct
/// (op_index, op_name, status_code, payload), sorted. Attempt, instance and
/// row_index legitimately differ between the phased and streaming executors
/// and across retries (a retried attempt re-quarantines the same rows), so
/// ledger equality and replay deduplication are defined over this
/// projection.
std::vector<std::string> CanonicalLedger(
    const std::vector<QuarantineRecord>& records);

/// What a capped ledger does when an incoming record would push it past
/// its byte budget. The quarantine ledger is itself a resource: without a
/// cap, a pathological flow (every row failing) turns row containment into
/// disk exhaustion — the exact failure the quarantine was containing.
enum class DeadLetterOverflowPolicy {
  /// Evict whole oldest attempt-groups (all records sharing the smallest
  /// attempt number) until the new record fits. Keeps the most recent
  /// evidence; a replay over an evicted group is knowingly incomplete.
  kEvictOldest = 0,
  /// Refuse the append with kResourceExhausted. The flow then degrades per
  /// its ResourcePolicy (fail / pause / shed), never the ledger silently.
  kAbort,
};

const char* DeadLetterOverflowPolicyName(DeadLetterOverflowPolicy policy);

/// Byte budget for the ledger. max_bytes == 0 means uncapped.
struct DeadLetterCap {
  size_t max_bytes = 0;
  DeadLetterOverflowPolicy policy = DeadLetterOverflowPolicy::kAbort;
};

class DeadLetterStore {
 public:
  /// Wraps `inner`, which must carry DeadLetterStoreSchema(). Append-path
  /// calls are serialized internally: partition branches and streaming
  /// stages quarantine concurrently.
  static Result<std::shared_ptr<DeadLetterStore>> Wrap(DataStorePtr inner);

  /// Wraps `inner` with a byte cap. Pre-existing ledger contents count
  /// against the cap (sized lazily on the first Quarantine).
  static Result<std::shared_ptr<DeadLetterStore>> Wrap(DataStorePtr inner,
                                                       DeadLetterCap cap);

  /// A fresh in-memory ledger (MemTable-backed), for tests and defaults.
  static std::shared_ptr<DeadLetterStore> InMemory(const std::string& name);

  /// A fresh capped in-memory ledger.
  static std::shared_ptr<DeadLetterStore> InMemory(const std::string& name,
                                                   DeadLetterCap cap);

  /// Checksums and appends one record.
  Status Quarantine(const QuarantineRecord& record);

  /// Reads the whole ledger, verifying every record's checksum. Returns
  /// kCorruptedData naming the first record that fails verification.
  Result<std::vector<QuarantineRecord>> ReadAll() const;

  Result<size_t> NumRecords() const;

  const DataStorePtr& inner() const { return inner_; }

  /// Ledger bytes currently counted against the cap (serialized record
  /// sizes, not on-disk size). 0 until the first capped Quarantine sizes
  /// the pre-existing contents.
  size_t bytes_used() const;

  /// Attempt-groups evicted by DeadLetterOverflowPolicy::kEvictOldest.
  size_t groups_evicted() const;

 private:
  DeadLetterStore(DataStorePtr inner, DeadLetterCap cap)
      : inner_(std::move(inner)), cap_(cap) {}

  /// Frees room for `incoming_bytes` by evicting whole oldest
  /// attempt-groups and rewriting the inner store. Caller holds mu_.
  Status EvictForLocked(size_t incoming_bytes);

  const DataStorePtr inner_;
  const DeadLetterCap cap_;
  mutable std::mutex mu_;
  bool bytes_initialized_ = false;  // guarded by mu_
  size_t bytes_used_ = 0;          // guarded by mu_
  size_t groups_evicted_ = 0;      // guarded by mu_
};

using DeadLetterStorePtr = std::shared_ptr<DeadLetterStore>;

}  // namespace qox

#endif  // QOX_STORAGE_DEAD_LETTER_STORE_H_
