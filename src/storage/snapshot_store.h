// SnapshotStore: previous-landing snapshot used by the Δ (delta)
// transformation of the paper's Fig. 3.
//
// The bottom flow lands source data and compares it "against the previous
// landing (snapshot table) for identifying the changed tuples". The
// SnapshotStore keeps the previous landing keyed by the business key and
// classifies a fresh landing into inserts and updates; committing the fresh
// landing makes it the snapshot for the next run.
//
// The snapshot lives entirely in memory — there are no file writes here,
// so the disk-write audit (checked write/fsync/close returns) that covers
// flat_file / recovery_store / the spill path does not apply.

#ifndef QOX_STORAGE_SNAPSHOT_STORE_H_
#define QOX_STORAGE_SNAPSHOT_STORE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace qox {

/// Classification of a fresh landing against the previous snapshot.
struct DeltaResult {
  /// Rows whose key was absent from the snapshot.
  std::vector<Row> inserts;
  /// Rows whose key was present but whose non-key columns changed.
  std::vector<Row> updates;
  /// Count of rows identical to the snapshot (dropped by the Δ operator).
  size_t unchanged = 0;
};

class SnapshotStore {
 public:
  /// `key_columns` are positional indexes of the business key within the
  /// landed schema.
  SnapshotStore(std::string name, Schema schema,
                std::vector<size_t> key_columns)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Classifies `fresh` against the current snapshot. Duplicate keys within
  /// `fresh` keep the last occurrence (standard landing semantics).
  Result<DeltaResult> ComputeDelta(const std::vector<Row>& fresh) const;

  /// Replaces the snapshot with `fresh` (called after a successful load).
  Status Commit(const std::vector<Row>& fresh);

  size_t snapshot_size() const;

  Status Clear();

 private:
  struct KeyOf;
  Result<Row> ExtractKey(const Row& row) const;

  const std::string name_;
  const Schema schema_;
  const std::vector<size_t> key_columns_;
  mutable std::mutex mu_;
  std::unordered_map<Row, Row, RowHash> snapshot_;  // key row -> full row
};

}  // namespace qox

#endif  // QOX_STORAGE_SNAPSHOT_STORE_H_
