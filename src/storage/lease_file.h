// LeaseFile: single-writer ownership of a flow's scratch directory.
//
// A supervisor takes the lease before touching the journal so two
// supervisors cannot re-execute the same flow concurrently (double
// supervision would double-apply the durable-prefix skip math). The lease
// is a small file naming the holder pid; acquisition fails while that pid
// is alive and takes over silently when it is dead — the stale lease a
// SIGKILLed supervisor necessarily leaves behind. Forked child workers do
// not touch the lease: it is keyed to the supervising process.
//
// Pid liveness cannot see a HUNG holder (alive but wedged), so takeover is
// optionally time-bounded: when QOX_LEASE_TIMEOUT_MS is set to a positive
// value, a lease whose file has not been refreshed (written or
// Heartbeat()ed) for that long is treated as stale even if its holder pid
// still exists. Unset or 0 keeps the pid-only behavior. Long-running
// holders under a timeout must Heartbeat() more often than the timeout.

#ifndef QOX_STORAGE_LEASE_FILE_H_
#define QOX_STORAGE_LEASE_FILE_H_

#include <sys/types.h>

#include <memory>
#include <string>

#include "common/status.h"

namespace qox {

class LeaseFile {
 public:
  /// Acquires the lease at `path` for the calling process. Returns
  /// kFailedPrecondition naming the holder when another live process holds
  /// it; silently takes over a stale lease (holder pid no longer exists,
  /// or — with QOX_LEASE_TIMEOUT_MS set — not refreshed within the
  /// timeout). `owner` is a diagnostic tag written next to the pid.
  static Result<std::unique_ptr<LeaseFile>> Acquire(std::string path,
                                                    std::string owner);

  /// Releases on destruction (best effort — a killed holder releases by
  /// dying, which is what makes takeover safe).
  ~LeaseFile();
  LeaseFile(const LeaseFile&) = delete;
  LeaseFile& operator=(const LeaseFile&) = delete;

  /// Explicitly releases (removes) the lease file. A lease the holder has
  /// lost to a takeover is NOT removed (it belongs to the usurper now);
  /// that is still a successful release of this handle.
  Status Release();

  /// Refreshes the lease file so a QOX_LEASE_TIMEOUT_MS-based takeover
  /// does not steal it from a live, non-wedged holder. Rewrites the lease
  /// in place (same atomic publish as Acquire) — unless the file now
  /// names a DIFFERENT live process (a takeover already happened), in
  /// which case kFailedPrecondition tells the displaced holder to stop
  /// rather than reclaim the lease from the usurper.
  Status Heartbeat();

  /// The stale-takeover timeout read from QOX_LEASE_TIMEOUT_MS, in
  /// milliseconds; 0 = pid-liveness only (the default).
  static int64_t TimeoutMs();

  /// True when acquisition displaced a stale lease left by a dead holder.
  bool took_over() const { return took_over_; }

  const std::string& path() const { return path_; }

  /// Reads the holder pid of the lease at `path`; NotFound when no lease
  /// exists or it is unreadable. Diagnostic.
  static Result<pid_t> HolderPid(const std::string& path);

 private:
  LeaseFile(std::string path, std::string owner, bool took_over)
      : path_(std::move(path)), owner_(std::move(owner)),
        took_over_(took_over) {}

  const std::string path_;
  const std::string owner_;
  const bool took_over_;
  bool released_ = false;
};

}  // namespace qox

#endif  // QOX_STORAGE_LEASE_FILE_H_
