// FlatFile: a CSV-file-backed DataStore.
//
// Models the paper's file sources (S2 log-sniffer dumps), landing
// tables/files in the staging area, and the "store first to a flat file,
// later populate a table" practice of Sec. 3.2. Appends perform real disk
// I/O so recovery-point and landing costs measured by the benchmarks are
// genuine.

#ifndef QOX_STORAGE_FLAT_FILE_H_
#define QOX_STORAGE_FLAT_FILE_H_

#include <mutex>
#include <string>

#include "storage/data_store.h"

namespace qox {

class FlatFile : public DataStore {
 public:
  /// Creates a store backed by `path`. The file is created (with a header
  /// line) if it does not exist. `sync_every_append` forces an fflush after
  /// every batch, modelling durable landing writes.
  static Result<std::shared_ptr<FlatFile>> Open(std::string name,
                                                Schema schema,
                                                std::string path,
                                                bool sync_every_append = true);

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  const std::string& path() const { return path_; }
  Result<size_t> NumRows() const override;
  Status Scan(size_t batch_size,
              const std::function<Status(RowBatch&)>& consumer) const override;
  Status Append(const RowBatch& batch) override;
  Status Truncate() override;

  /// Total bytes appended through this handle (I/O accounting).
  size_t bytes_written() const;

 private:
  FlatFile(std::string name, Schema schema, std::string path, bool sync)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        path_(std::move(path)),
        sync_every_append_(sync) {}

  Status WriteHeader();

  const std::string name_;
  const Schema schema_;
  const std::string path_;
  const bool sync_every_append_;
  mutable std::mutex mu_;
  size_t bytes_written_ = 0;
};

}  // namespace qox

#endif  // QOX_STORAGE_FLAT_FILE_H_
