#include "storage/recovery_store.h"

#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace qox {

namespace {
std::string KeyOf(const RecoveryPointId& id) {
  return id.flow_id + '\0' + id.point_id;
}

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-')
               ? c
               : '_';
  }
  return out;
}
}  // namespace

Result<std::shared_ptr<RecoveryPointStore>> RecoveryPointStore::Open(
    std::string dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create recovery dir '" + dir +
                           "': " + ec.message());
  }
  return std::shared_ptr<RecoveryPointStore>(
      new RecoveryPointStore(std::move(dir)));
}

std::string RecoveryPointStore::DataPath(const RecoveryPointId& id) const {
  return dir_ + "/" + SanitizeForFilename(id.flow_id) + "." +
         SanitizeForFilename(id.point_id) + ".rp.csv";
}

Status RecoveryPointStore::Save(const RecoveryPointId& id,
                                const Schema& schema,
                                const std::vector<Row>& rows) {
  const std::string path = DataPath(id);
  const std::string tmp_path = path + ".tmp";
  size_t bytes = 0;
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return Status::IoError("cannot create '" + tmp_path + "'");
    for (const Row& row : rows) {
      std::vector<std::string> cells;
      cells.reserve(row.num_values());
      for (const Value& v : row.values()) cells.push_back(v.ToString());
      const std::string line = CsvEncodeLine(cells);
      out << line << "\n";
      bytes += line.size() + 1;
    }
    out.flush();
    if (!out) return Status::IoError("write to '" + tmp_path + "' failed");
  }
  // Atomic publish: rename tmp over the data file, then record completeness.
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::IoError("cannot publish recovery point '" + path +
                           "': " + ec.message());
  }
  (void)schema;  // schema travels with the flow; file stores values only
  total_bytes_written_.fetch_add(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryPointInfo& info = points_[KeyOf(id)];
  info.id = id;
  info.num_rows = rows.size();
  info.bytes = bytes;
  info.complete = true;
  return Status::OK();
}

bool RecoveryPointStore::Has(const RecoveryPointId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(KeyOf(id));
  return it != points_.end() && it->second.complete;
}

Result<RowBatch> RecoveryPointStore::Load(const RecoveryPointId& id,
                                          const Schema& schema) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(KeyOf(id));
    if (it == points_.end() || !it->second.complete) {
      return Status::NotFound("no complete recovery point '" + id.point_id +
                              "' for flow '" + id.flow_id + "'");
    }
  }
  std::ifstream in(DataPath(id));
  if (!in) return Status::IoError("cannot open '" + DataPath(id) + "'");
  RowBatch batch(schema);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = CsvDecodeLine(line);
    if (cells.size() != schema.num_fields()) {
      return Status::Internal("recovery point '" + DataPath(id) +
                              "' row width mismatch");
    }
    Row row;
    for (size_t i = 0; i < cells.size(); ++i) {
      QOX_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(cells[i], schema.field(i).type));
      row.Append(std::move(v));
    }
    batch.Append(std::move(row));
  }
  return batch;
}

Status RecoveryPointStore::Drop(const RecoveryPointId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(KeyOf(id));
  std::error_code ec;
  std::filesystem::remove(DataPath(id), ec);
  return Status::OK();
}

Status RecoveryPointStore::DropFlow(const std::string& flow_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second.id.flow_id == flow_id) {
      std::error_code ec;
      std::filesystem::remove(DataPath(it->second.id), ec);
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::vector<RecoveryPointInfo> RecoveryPointStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecoveryPointInfo> out;
  out.reserve(points_.size());
  for (const auto& [key, info] : points_) {
    if (info.complete) out.push_back(info);
  }
  return out;
}

}  // namespace qox
