#include "storage/recovery_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crash_point.h"
#include "common/strings.h"

namespace qox {

namespace {
std::string KeyOf(const RecoveryPointId& id) {
  return id.flow_id + '\0' + id.point_id;
}

/// fsync the file at `path` so a following rename publishes durable bytes,
/// not page-cache contents a power cut could drop.
Status SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  Status st = Status::OK();
  if (::fsync(fd) != 0) {
    st = Status::IoError("fsync of '" + path +
                         "' failed: " + std::strerror(errno));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::IoError("close of '" + path +
                         "' failed: " + std::strerror(errno));
  }
  return st;
}

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-')
               ? c
               : '_';
  }
  return out;
}
}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  uint64_t hash = seed != 0 ? seed : 0xcbf29ce484222325ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<std::shared_ptr<RecoveryPointStore>> RecoveryPointStore::Open(
    std::string dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create recovery dir '" + dir +
                           "': " + ec.message());
  }
  return std::shared_ptr<RecoveryPointStore>(
      new RecoveryPointStore(std::move(dir)));
}

std::string RecoveryPointStore::DataPath(const RecoveryPointId& id) const {
  return dir_ + "/" + SanitizeForFilename(id.flow_id) + "." +
         SanitizeForFilename(id.point_id) + ".rp.csv";
}

std::string RecoveryPointStore::MarkerPath(const RecoveryPointId& id) const {
  return DataPath(id) + ".commit";
}

Status RecoveryPointStore::Save(const RecoveryPointId& id,
                                const Schema& schema,
                                const std::vector<Row>& rows) {
  const std::string path = DataPath(id);
  const std::string tmp_path = path + ".tmp";
  size_t bytes = 0;
  uint64_t checksum = 0;
  bool first_line = true;
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return Status::IoError("cannot create '" + tmp_path + "'");
    for (const Row& row : rows) {
      std::vector<std::string> cells;
      cells.reserve(row.num_values());
      for (const Value& v : row.values()) cells.push_back(v.ToString());
      const std::string line = CsvEncodeLine(cells);
      out << line << "\n";
      bytes += line.size() + 1;
      checksum = Fnv1a64(line.data(), line.size(),
                         first_line ? 0 : checksum);
      first_line = false;
    }
    out.flush();
    if (!out) return Status::IoError("write to '" + tmp_path + "' failed");
    out.close();
    if (out.fail()) {
      return Status::IoError("close of '" + tmp_path + "' failed");
    }
  }
  // The rename below is only an atomic publish if the tmp bytes are
  // already durable; without this fsync a crash could leave a complete-
  // looking name pointing at torn page-cache contents.
  QOX_RETURN_IF_ERROR(SyncPath(tmp_path));
  // Atomic publish: rename tmp over the data file, seal the commit marker
  // (row count + content checksum), then record completeness.
  QOX_CRASH_POINT("rp.publish");
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::IoError("cannot publish recovery point '" + path +
                           "': " + ec.message());
  }
  QOX_CRASH_POINT("rp.published");
  {
    const std::string marker_tmp = MarkerPath(id) + ".tmp";
    std::ofstream marker(marker_tmp, std::ios::trunc);
    if (!marker) return Status::IoError("cannot create '" + marker_tmp + "'");
    marker << rows.size() << " " << checksum << "\n";
    marker.flush();
    if (!marker) {
      return Status::IoError("write to '" + marker_tmp + "' failed");
    }
    marker.close();
    if (marker.fail()) {
      return Status::IoError("close of '" + marker_tmp + "' failed");
    }
    QOX_RETURN_IF_ERROR(SyncPath(marker_tmp));
    std::filesystem::rename(marker_tmp, MarkerPath(id), ec);
    if (ec) {
      return Status::IoError("cannot seal recovery point '" + path +
                             "': " + ec.message());
    }
  }
  QOX_CRASH_POINT("rp.sealed");
  (void)schema;  // schema travels with the flow; file stores values only
  total_bytes_written_.fetch_add(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryPointInfo& info = points_[KeyOf(id)];
  info.id = id;
  info.num_rows = rows.size();
  info.bytes = bytes;
  info.checksum = checksum;
  info.complete = true;
  return Status::OK();
}

Result<bool> RecoveryPointStore::Adopt(const RecoveryPointId& id) {
  std::ifstream marker(MarkerPath(id));
  if (!marker) return false;  // never sealed (crash before the marker)
  size_t rows = 0;
  uint64_t checksum = 0;
  if (!(marker >> rows >> checksum)) {
    // Zero-length or truncated marker: the seal itself was torn. Same
    // verdict as a checksum mismatch — fall back, don't error.
    return false;
  }
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(DataPath(id), ec);
  if (ec) return false;  // marker without data: nothing to resume from
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryPointInfo& info = points_[KeyOf(id)];
  info.id = id;
  info.num_rows = rows;
  info.bytes = static_cast<size_t>(bytes);
  info.checksum = checksum;
  info.complete = true;
  return true;
}

bool RecoveryPointStore::Has(const RecoveryPointId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(KeyOf(id));
  return it != points_.end() && it->second.complete;
}

Result<RowBatch> RecoveryPointStore::Load(const RecoveryPointId& id,
                                          const Schema& schema) const {
  uint64_t expected_checksum = 0;
  size_t expected_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(KeyOf(id));
    if (it == points_.end() || !it->second.complete) {
      return Status::NotFound("no complete recovery point '" + id.point_id +
                              "' for flow '" + id.flow_id + "'");
    }
    expected_checksum = it->second.checksum;
    expected_rows = it->second.num_rows;
  }
  std::ifstream in(DataPath(id));
  if (!in) return Status::IoError("cannot open '" + DataPath(id) + "'");
  // Verify the content checksum sealed into the commit marker BEFORE
  // parsing: corrupted bytes must surface as kCorruptedData (fall back to
  // an older point), never as a parse error mistaken for a bug.
  std::vector<std::string> lines;
  uint64_t checksum = 0;
  bool first_line = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    checksum = Fnv1a64(line.data(), line.size(), first_line ? 0 : checksum);
    first_line = false;
    lines.push_back(std::move(line));
  }
  if (checksum != expected_checksum || lines.size() != expected_rows) {
    return Status::CorruptedData(
        "recovery point '" + DataPath(id) + "' failed verification (" +
        std::to_string(lines.size()) + "/" + std::to_string(expected_rows) +
        " rows, checksum " + std::to_string(checksum) + " != sealed " +
        std::to_string(expected_checksum) + ")");
  }
  RowBatch batch(schema);
  for (const std::string& stored : lines) {
    const std::vector<std::string> cells = CsvDecodeLine(stored);
    if (cells.size() != schema.num_fields()) {
      return Status::CorruptedData("recovery point '" + DataPath(id) +
                                   "' row width mismatch");
    }
    Row row;
    for (size_t i = 0; i < cells.size(); ++i) {
      QOX_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(cells[i], schema.field(i).type));
      row.Append(std::move(v));
    }
    batch.Append(std::move(row));
  }
  return batch;
}

Status RecoveryPointStore::Drop(const RecoveryPointId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(KeyOf(id));
  std::error_code ec;
  std::filesystem::remove(DataPath(id), ec);
  std::filesystem::remove(MarkerPath(id), ec);
  return Status::OK();
}

Status RecoveryPointStore::DropFlow(const std::string& flow_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second.id.flow_id == flow_id) {
      std::error_code ec;
      std::filesystem::remove(DataPath(it->second.id), ec);
      std::filesystem::remove(MarkerPath(it->second.id), ec);
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::vector<RecoveryPointInfo> RecoveryPointStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecoveryPointInfo> out;
  out.reserve(points_.size());
  for (const auto& [key, info] : points_) {
    if (info.complete) out.push_back(info);
  }
  return out;
}

}  // namespace qox
