// Rng: deterministic pseudo-random numbers for workload generation and
// failure sampling.
//
// All randomness in the library flows from explicitly seeded Rng instances,
// so every test, example, and benchmark run is reproducible. The generator
// is SplitMix64 — tiny, fast, and statistically adequate for workload
// synthesis (this is not cryptography).

#ifndef QOX_COMMON_RNG_H_
#define QOX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qox {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (used to sample
  /// times-to-failure from an MTBF).
  double Exponential(double mean);

  /// Zipf-distributed rank in [0, n) with skew parameter s (s=0 is uniform).
  /// Used for skewed key popularity in generated workloads.
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
  // Lazily built CDF cache for Zipf (rebuilt when (n, s) changes).
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace qox

#endif  // QOX_COMMON_RNG_H_
