// Wall-clock helpers and a stopwatch for run-metric timing.

#ifndef QOX_COMMON_CLOCK_H_
#define QOX_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace qox {

/// Monotonic now, in microseconds (arbitrary epoch; only deltas matter).
int64_t NowMicros();

/// A simple monotonic stopwatch. Starts running on construction.
class StopWatch {
 public:
  StopWatch() : start_(NowMicros()) {}

  void Restart() { start_ = NowMicros(); }

  /// Microseconds since construction or last Restart().
  int64_t ElapsedMicros() const { return NowMicros() - start_; }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

/// A virtual clock for freshness simulations: experiments that reason about
/// "loads per day" compress a simulated day into measured execution, so
/// event timestamps and load completion times live on this clock rather
/// than the wall clock.
class SimClock {
 public:
  explicit SimClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t now_micros() const { return now_; }
  void AdvanceMicros(int64_t delta) { now_ += delta; }
  void SetMicros(int64_t t) { now_ = t; }

 private:
  int64_t now_;
};

/// Common time unit conversions.
inline constexpr int64_t kMicrosPerMilli = 1000;
inline constexpr int64_t kMicrosPerSecond = 1000 * 1000;
inline constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr int64_t kMicrosPerDay = 24 * kMicrosPerHour;

}  // namespace qox

#endif  // QOX_COMMON_CLOCK_H_
