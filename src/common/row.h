// Row and RowBatch: the unit of data flowing between ETL operators.
//
// The engine is vectorized at batch granularity: operators exchange
// RowBatches (a shared schema plus a vector of rows) rather than single
// rows, which keeps per-row virtual-call overhead out of the hot path and
// mirrors the batch/pipeline model of the ETL engines the paper measured.

#ifndef QOX_COMMON_ROW_H_
#define QOX_COMMON_ROW_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace qox {

/// One tuple: a vector of Values positionally aligned with a Schema.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  void Set(size_t i, Value v) { values_[i] = std::move(v); }

  /// Lexicographic comparison over all cells (Value total order).
  int Compare(const Row& other) const;
  bool operator==(const Row& other) const { return Compare(other) == 0; }
  bool operator<(const Row& other) const { return Compare(other) < 0; }

  /// Combined hash of all cells.
  size_t Hash() const;

  /// Hash of a subset of columns (key columns for lookup/group/partition).
  size_t HashColumns(const std::vector<size_t>& columns) const;

  /// Approximate in-memory footprint (sum of cell sizes).
  size_t ByteSize() const;

  /// "(v1, v2, ...)" for debugging.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct RowHash {
  size_t operator()(const Row& r) const { return r.Hash(); }
};

/// An immutable schema handle shared between batches. All batches flowing
/// through one pipeline cut point the same Schema instance, so building a
/// batch never copies the field list (the old hot-path cost this replaces).
using SchemaPtr = std::shared_ptr<const Schema>;

/// Wraps a schema value into a shared handle (one allocation, then free to
/// propagate across every batch built from it).
inline SchemaPtr MakeSchemaPtr(Schema schema) {
  return std::make_shared<const Schema>(std::move(schema));
}

/// A batch of rows sharing one schema. The schema is held by shared
/// pointer: copying or constructing a batch bumps a refcount instead of
/// deep-copying the Schema (field vector + name index).
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(Schema schema)
      : schema_(MakeSchemaPtr(std::move(schema))) {}
  RowBatch(Schema schema, std::vector<Row> rows)
      : schema_(MakeSchemaPtr(std::move(schema))), rows_(std::move(rows)) {}
  explicit RowBatch(SchemaPtr schema) : schema_(std::move(schema)) {}
  RowBatch(SchemaPtr schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const {
    static const Schema kEmpty;
    return schema_ == nullptr ? kEmpty : *schema_;
  }
  /// The shared handle itself, for propagating to derived batches.
  const SchemaPtr& schema_ptr() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Row& row(size_t i) const { return rows_[i]; }
  Row& row(size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }

  void Append(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Validates that every row has exactly one value per schema column and
  /// that non-nullable columns carry no NULLs.
  Status Validate() const;

  /// Total approximate byte size of all rows (cost model / RP sizing).
  /// The shared schema is deliberately excluded, as before the refactor.
  size_t ByteSize() const;

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
};

/// The engine's default number of rows per batch.
inline constexpr size_t kDefaultBatchSize = 1024;

}  // namespace qox

#endif  // QOX_COMMON_ROW_H_
