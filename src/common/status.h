// Status and Result<T>: exception-free error handling for the qox library.
//
// Every fallible operation in the library returns either a Status (no
// payload) or a Result<T> (payload on success). The style follows
// absl::Status / arrow::Result: statuses carry a machine-readable code and
// a human-readable message, and must be checked by the caller.

#ifndef QOX_COMMON_STATUS_H_
#define QOX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace qox {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
  /// An injected (simulated) system failure: network, power, resource, ...
  /// Used by the failure-injection machinery; the executor treats it as a
  /// recoverable interruption rather than a bug.
  kInjectedFailure,
  kCancelled,
  /// A transient storage/service fault: the operation may succeed if
  /// retried (dropped connection, throttled backend, torn write). The
  /// retry machinery treats it like an injected failure.
  kUnavailable,
  /// A per-attempt watchdog deadline expired; the attempt was aborted and
  /// may be retried.
  kDeadlineExceeded,
  /// Persisted data failed integrity verification (checksum mismatch).
  /// Retrying the same read cannot help; the caller must fall back to an
  /// older copy or recompute.
  kCorruptedData,
  /// The flow's row-level error budget was exhausted: more rows were
  /// skipped/quarantined than the configured ceiling allows. Permanent —
  /// re-running the identical flow re-quarantines the identical rows, so
  /// the executor must not burn retry attempts on it.
  kErrorBudgetExceeded,
  /// A finite resource ran out: disk full (ENOSPC), a storage quota, or a
  /// ledger/byte cap. Not transient by default — immediately retrying the
  /// identical write hits the identical full disk — but unlike kIoError
  /// the condition is expected to clear with time or operator action, so
  /// the engine's ResourcePolicy may reclassify it (pause-and-retry) or
  /// degrade around it (shed-to-quarantine) instead of failing the flow.
  kResourceExhausted,
};

/// Returns the canonical lowercase name of a status code ("ok", "io_error").
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome with no payload.
///
/// Statuses are cheap to copy in the OK case (empty message). Use the
/// factory functions (Status::OK(), Status::Invalid(...), ...) rather than
/// the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status InjectedFailure(std::string msg) {
    return Status(StatusCode::kInjectedFailure, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status CorruptedData(std::string msg) {
    return Status(StatusCode::kCorruptedData, std::move(msg));
  }
  static Status ErrorBudgetExceeded(std::string msg) {
    return Status(StatusCode::kErrorBudgetExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True if this status is an injected simulated failure (the recoverable
  /// interruption class used by the failure-injection experiments).
  bool IsInjectedFailure() const {
    return code_ == StatusCode::kInjectedFailure;
  }

  /// True if persisted data failed integrity verification.
  bool IsCorruptedData() const { return code_ == StatusCode::kCorruptedData; }

  /// "OK" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Transient-vs-permanent classification for the retry machinery. Transient
/// failures (injected system failures, unavailable storage, expired attempt
/// deadlines) are worth retrying — possibly after a backoff. Everything
/// else (bad input, permanent I/O errors, corrupted data, cancellation) is
/// permanent: retrying the identical operation cannot succeed, so the
/// executor fails fast instead of burning its attempt budget.
bool IsTransient(StatusCode code);
bool IsTransient(const Status& status);

/// A value-or-error outcome. Holds a T on success, a non-OK Status on error.
///
/// Typical use:
///   Result<Schema> r = ParseSchema(text);
///   if (!r.ok()) return r.status();
///   const Schema& s = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error). Constructing a
  /// Result from an OK status is a programming error and is converted to an
  /// internal error so it cannot masquerade as success.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Status of the outcome; Status::OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// The held value. Precondition: ok().
  const T& value() const& { return std::get<T>(state_); }
  T& value() & { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  /// Moves the value out. Precondition: ok().
  T TakeValue() { return std::get<T>(std::move(state_)); }

  /// Returns the value, or `fallback` when in error state.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace qox

/// Propagates a non-OK Status from an expression to the caller.
#define QOX_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::qox::Status _qox_status = (expr);             \
    if (!_qox_status.ok()) return _qox_status;      \
  } while (false)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the status to the caller.
#define QOX_ASSIGN_OR_RETURN(lhs, expr)            \
  QOX_ASSIGN_OR_RETURN_IMPL(                       \
      QOX_STATUS_CONCAT(_qox_result_, __LINE__), lhs, expr)

#define QOX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).TakeValue()

#define QOX_STATUS_CONCAT_IMPL(a, b) a##b
#define QOX_STATUS_CONCAT(a, b) QOX_STATUS_CONCAT_IMPL(a, b)

#endif  // QOX_COMMON_STATUS_H_
