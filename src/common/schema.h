// Schema: ordered, named, typed columns of a row stream or data store.

#ifndef QOX_COMMON_SCHEMA_H_
#define QOX_COMMON_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace qox {

/// One column: a name and a declared type. `nullable` documents whether the
/// column may carry NULLs (the Flt_NN operator of the paper's Fig. 3 filters
/// rows whose non-nullable columns are NULL).
struct Field {
  std::string name;
  DataType type = DataType::kString;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered collection of fields with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);
  Schema(std::initializer_list<Field> fields)
      : Schema(std::vector<Field>(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name, or error when absent.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True when a column with this name exists.
  bool HasField(const std::string& name) const;

  /// Returns a schema extended with one more column appended at the end.
  /// Error if the name already exists.
  Result<Schema> AddField(const Field& field) const;

  /// Returns a schema with the named column removed.
  Result<Schema> RemoveField(const std::string& name) const;

  /// Returns a schema with the named column renamed.
  Result<Schema> RenameField(const std::string& from,
                             const std::string& to) const;

  /// Returns a schema keeping only the named columns, in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "name:type, name:type, ..." — used in plan dumps and error messages.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace qox

#endif  // QOX_COMMON_SCHEMA_H_
