#include "common/status.h"

namespace qox {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInjectedFailure:
      return "injected_failure";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCorruptedData:
      return "corrupted_data";
    case StatusCode::kErrorBudgetExceeded:
      return "error_budget_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

bool IsTransient(StatusCode code) {
  return code == StatusCode::kInjectedFailure ||
         code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

bool IsTransient(const Status& status) { return IsTransient(status.code()); }

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace qox
