#include "common/strings.h"

#include <cstdio>

namespace qox {

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string CsvEscape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvEncodeLine(const std::vector<std::string>& cells) {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(cells[i]);
  }
  return out;
}

std::vector<std::string> CsvDecodeLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace qox
