#include "common/column_batch.h"

#include <cctype>

namespace qox {

namespace {

// Tag bytes group types exactly as Value::Hash does: int64 and timestamp
// share a group (equal hash, equal compare), doubles are separate.
enum : char {
  kTagBool = 1,
  kTagI64 = 2,   // int64 + timestamp
  kTagF64 = 3,
  kTagStr = 4,
};

void AppendI64(int64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

void AppendF64(double v, std::string* out) {
  if (v == 0.0) v = 0.0;  // fold -0.0 (hashes and compares equal to +0.0)
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

}  // namespace

void AppendValueKeyBytes(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kBool:
      out->push_back(kTagBool);
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      out->push_back(kTagI64);
      AppendI64(v.int64_value(), out);
      break;
    case DataType::kDouble:
      out->push_back(kTagF64);
      AppendF64(v.double_value(), out);
      break;
    case DataType::kString:
      out->push_back(kTagStr);
      out->append(v.string_value());
      break;
    case DataType::kNull:
      break;  // precondition violation; encode nothing
  }
}

void Column::Reserve(size_t n) {
  validity_.reserve((n + 63) / 64);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      i64_.reserve(n);
      break;
    case DataType::kDouble:
      f64_.reserve(n);
      break;
    case DataType::kBool:
      b8_.reserve(n);
      break;
    case DataType::kString:
      offsets_.reserve(n + 1);
      break;
    case DataType::kNull:
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(i64_[i]);
    case DataType::kTimestamp:
      return Value::Timestamp(i64_[i]);
    case DataType::kDouble:
      return Value::Double(f64_[i]);
    case DataType::kBool:
      return Value::Bool(b8_[i] != 0);
    case DataType::kString:
      return Value::String(std::string(StringAt(i)));
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

bool Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return true;
  }
  if (v.type() != type_) return false;
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.int64_value());
      return true;
    case DataType::kTimestamp:
      AppendInt64(v.timestamp_micros());
      return true;
    case DataType::kDouble:
      AppendDouble(v.double_value());
      return true;
    case DataType::kBool:
      AppendBool(v.bool_value());
      return true;
    case DataType::kString:
      AppendString(v.string_value());
      return true;
    case DataType::kNull:
      return false;
  }
  return false;
}

void Column::AppendKeyBytes(size_t i, std::string* out) const {
  switch (type_) {
    case DataType::kBool:
      out->push_back(kTagBool);
      out->push_back(b8_[i] != 0 ? 1 : 0);
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      out->push_back(kTagI64);
      AppendI64(i64_[i], out);
      break;
    case DataType::kDouble:
      out->push_back(kTagF64);
      AppendF64(f64_[i], out);
      break;
    case DataType::kString: {
      out->push_back(kTagStr);
      const std::string_view s = StringAt(i);
      out->append(s.data(), s.size());
      break;
    }
    case DataType::kNull:
      break;
  }
}

void Column::UpperInPlaceAscii() {
  for (char& c : arena_) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
}

size_t Column::ByteSize() const {
  return validity_.size() * sizeof(uint64_t) + i64_.size() * sizeof(int64_t) +
         f64_.size() * sizeof(double) + b8_.size() +
         offsets_.size() * sizeof(uint32_t) + arena_.size();
}

std::optional<ColumnBatch> ColumnBatch::FromRowBatch(const RowBatch& rows,
                                                     SchemaPtr schema) {
  const Schema& s = rows.schema();
  ColumnBatch batch;
  batch.schema_ = schema != nullptr ? std::move(schema) : rows.schema_ptr();
  if (batch.schema_ == nullptr) return std::nullopt;
  const size_t n_cols = s.num_fields();
  const size_t n_rows = rows.num_rows();
  for (size_t r = 0; r < n_rows; ++r) {
    if (rows.row(r).num_values() != n_cols) return std::nullopt;
  }
  batch.columns_.reserve(n_cols);
  // Column-major with the type switch hoisted out of the row loop: each
  // column fills as one tight typed loop (inline null/type tests per cell)
  // instead of a per-cell AppendValue dispatch. Purity semantics are
  // unchanged — any runtime/declared type mismatch still yields nullopt.
  for (size_t c = 0; c < n_cols; ++c) {
    Column col(s.field(c).type);
    col.Reserve(n_rows);
    switch (col.type()) {
      case DataType::kInt64:
        for (size_t r = 0; r < n_rows; ++r) {
          const Value& v = rows.row(r).value(c);
          if (v.is_null()) {
            col.AppendNull();
          } else if (v.is_int64()) {
            col.AppendInt64(v.int64_value());
          } else {
            return std::nullopt;
          }
        }
        break;
      case DataType::kTimestamp:
        for (size_t r = 0; r < n_rows; ++r) {
          const Value& v = rows.row(r).value(c);
          if (v.is_null()) {
            col.AppendNull();
          } else if (v.is_timestamp()) {
            col.AppendInt64(v.timestamp_micros());
          } else {
            return std::nullopt;
          }
        }
        break;
      case DataType::kDouble:
        for (size_t r = 0; r < n_rows; ++r) {
          const Value& v = rows.row(r).value(c);
          if (v.is_null()) {
            col.AppendNull();
          } else if (v.is_double()) {
            col.AppendDouble(v.double_value());
          } else {
            return std::nullopt;
          }
        }
        break;
      case DataType::kBool:
        for (size_t r = 0; r < n_rows; ++r) {
          const Value& v = rows.row(r).value(c);
          if (v.is_null()) {
            col.AppendNull();
          } else if (v.is_bool()) {
            col.AppendBool(v.bool_value());
          } else {
            return std::nullopt;
          }
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < n_rows; ++r) {
          const Value& v = rows.row(r).value(c);
          if (v.is_null()) {
            col.AppendNull();
          } else if (v.is_string()) {
            col.AppendString(v.string_value());
          } else {
            return std::nullopt;
          }
        }
        break;
      case DataType::kNull:
        for (size_t r = 0; r < n_rows; ++r) {
          if (!rows.row(r).value(c).is_null()) return std::nullopt;
          col.AppendNull();
        }
        break;
    }
    batch.columns_.push_back(std::move(col));
  }
  batch.num_physical_rows_ = n_rows;
  batch.selection_.resize(n_rows);
  for (size_t r = 0; r < n_rows; ++r) {
    batch.selection_[r] = static_cast<uint32_t>(r);
  }
  return batch;
}

Row ColumnBatch::RowAt(size_t physical_row) const {
  std::vector<Value> cells;
  cells.reserve(columns_.size());
  for (const Column& col : columns_) {
    cells.push_back(col.ValueAt(physical_row));
  }
  return Row(std::move(cells));
}

RowBatch ColumnBatch::ToRowBatch() const {
  const size_t n = selection_.size();
  const size_t n_cols = columns_.size();
  // Column-major materialization: rows start as all-NULL cell vectors
  // (monostate Values are trivial to construct), then each column fills its
  // slot across all selected rows in one typed loop. Invalid entries keep
  // the default NULL, matching ValueAt's row-major boxing exactly.
  std::vector<Row> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.emplace_back(std::vector<Value>(n_cols));
  for (size_t c = 0; c < n_cols; ++c) {
    const Column& col = columns_[c];
    const bool nulls = col.has_nulls();
    switch (col.type()) {
      case DataType::kInt64: {
        const int64_t* data = col.i64_data();
        if (!nulls) {
          for (size_t i = 0; i < n; ++i) {
            out[i].value(c) = Value::Int64(data[selection_[i]]);
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = selection_[i];
          if (col.IsValid(r)) out[i].value(c) = Value::Int64(data[r]);
        }
        break;
      }
      case DataType::kTimestamp: {
        const int64_t* data = col.i64_data();
        if (!nulls) {
          for (size_t i = 0; i < n; ++i) {
            out[i].value(c) = Value::Timestamp(data[selection_[i]]);
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = selection_[i];
          if (col.IsValid(r)) out[i].value(c) = Value::Timestamp(data[r]);
        }
        break;
      }
      case DataType::kDouble: {
        const double* data = col.f64_data();
        if (!nulls) {
          for (size_t i = 0; i < n; ++i) {
            out[i].value(c) = Value::Double(data[selection_[i]]);
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = selection_[i];
          if (col.IsValid(r)) out[i].value(c) = Value::Double(data[r]);
        }
        break;
      }
      case DataType::kBool: {
        const uint8_t* data = col.b8_data();
        if (!nulls) {
          for (size_t i = 0; i < n; ++i) {
            out[i].value(c) = Value::Bool(data[selection_[i]] != 0);
          }
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = selection_[i];
          if (col.IsValid(r)) out[i].value(c) = Value::Bool(data[r] != 0);
        }
        break;
      }
      case DataType::kString:
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = selection_[i];
          if (nulls && !col.IsValid(r)) continue;
          out[i].value(c) = Value::String(std::string(col.StringAt(r)));
        }
        break;
      case DataType::kNull:
        break;  // cells already NULL
    }
  }
  return RowBatch(schema_, std::move(out));
}

size_t ColumnBatch::ByteSize() const {
  size_t total = selection_.size() * sizeof(uint32_t);
  for (const Column& col : columns_) total += col.ByteSize();
  return total;
}

}  // namespace qox
