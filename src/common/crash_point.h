// Crash-point injection: named process-kill hooks at durability boundaries.
//
// A crash point is a named call site placed where a process death would be
// most revealing — immediately before or after a journal append, a
// recovery-point rename, a warehouse append. When armed, reaching the
// site's configured hit count kills the process with SIGKILL (no atexit
// handlers, no flushes — the honest `kill -9`). Disarmed sites cost one
// relaxed atomic load.
//
// Arming:
//   * programmatically, ArmCrashPoints("rp.sealed,flat.mid_append:3") —
//     fire "rp.sealed" on its first hit and "flat.mid_append" on its third;
//   * via the QOX_CRASH_AT environment variable with the same syntax, read
//     once on first hit (so a supervisor's child can be armed from outside
//     without code changes).
//
// The hit counters are process-wide and survive re-arming only via
// ArmCrashPoints (which resets them), so a forked child starts with the
// parent's counters — arm in the child (e.g. FlowSupervisor's child_setup)
// for per-incarnation schedules.

#ifndef QOX_COMMON_CRASH_POINT_H_
#define QOX_COMMON_CRASH_POINT_H_

#include <string>

namespace qox {

/// Reports that execution reached crash point `name`. Kills the process
/// (SIGKILL) if the point is armed and this hit reaches its configured
/// count; otherwise returns immediately.
void CrashPointHit(const char* name);

/// Arms crash points from a spec: comma-separated `name` or `name:k`
/// entries (fire on the k-th hit, 1-based; bare name means k = 1). An
/// empty spec disarms everything and clears hit counters.
void ArmCrashPoints(const std::string& spec);

/// True when any crash point is armed (diagnostics).
bool CrashPointsArmed();

}  // namespace qox

/// The call-site macro: zero-cost-ish when nothing is armed.
#define QOX_CRASH_POINT(name) ::qox::CrashPointHit(name)

#endif  // QOX_COMMON_CRASH_POINT_H_
