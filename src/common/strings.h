// Small string utilities: CSV encoding/decoding, join/split, formatting.

#ifndef QOX_COMMON_STRINGS_H_
#define QOX_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace qox {

/// Splits on a delimiter; preserves empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(const std::string& text, char delim);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Encodes one CSV cell: quotes when the cell contains comma, quote, or
/// newline; doubles embedded quotes (RFC 4180).
std::string CsvEscape(const std::string& cell);

/// Encodes a full CSV line (no trailing newline).
std::string CsvEncodeLine(const std::vector<std::string>& cells);

/// Decodes one CSV line into cells (RFC 4180 quoting). Malformed trailing
/// quotes are tolerated by treating the rest of the line as literal.
std::vector<std::string> CsvDecodeLine(const std::string& line);

/// printf-style double formatting with fixed decimals ("12.35").
std::string FormatDouble(double v, int decimals);

}  // namespace qox

#endif  // QOX_COMMON_STRINGS_H_
