// Value: the dynamically-typed cell of a Row.
//
// ETL flows move rows whose columns hold one of a small set of primitive
// types (or NULL). Value is a tagged union over those types with total
// ordering, hashing, and string formatting, so operators (filters, sorts,
// lookups, group-bys) can be written generically.

#ifndef QOX_COMMON_VALUE_H_
#define QOX_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace qox {

/// The primitive column types supported by the engine.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  /// Microseconds since the UNIX epoch. Stored as int64 but kept a distinct
  /// type so freshness computations and formatting can recognize event times.
  kTimestamp,
};

/// Canonical lowercase name of a data type ("int64", "timestamp", ...).
const char* DataTypeName(DataType type);

/// A single dynamically-typed cell value.
///
/// Values are small, copyable, and totally ordered. NULL sorts before every
/// non-NULL value; values of different types order by type tag (this gives a
/// deterministic total order for sort/group operators even on heterogeneous
/// data, mirroring what real ETL engines do).
class Value {
 public:
  /// Constructs NULL.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Timestamp(int64_t micros) {
    Value val{Repr(micros)};
    val.is_timestamp_ = true;
    return val;
  }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }

  /// Cheap inline type tests for per-cell hot paths (columnar conversion):
  /// one variant-index read instead of the out-of-line type() dispatch.
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int64() const {
    return std::holds_alternative<int64_t>(repr_) && !is_timestamp_;
  }
  bool is_timestamp() const {
    return std::holds_alternative<int64_t>(repr_) && is_timestamp_;
  }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(repr_);
  }

  /// Typed accessors. Preconditions: the value holds the requested type.
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int64_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }
  int64_t timestamp_micros() const { return std::get<int64_t>(repr_); }

  /// Numeric view: int64/double/bool/timestamp as double. Error for others.
  Result<double> AsDouble() const;

  /// Total order over all values (NULL first, then by type tag, then value).
  /// Returns <0, 0, >0 like strcmp.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash compatible with operator== (used by lookup/group operators).
  size_t Hash() const;

  /// Human/CSV representation. NULL renders as the empty string.
  std::string ToString() const;

  /// Parses a CSV cell back into a Value of the requested type. The empty
  /// string parses as NULL for every type.
  static Result<Value> Parse(const std::string& text, DataType type);

  /// Approximate in-memory footprint in bytes (used by the cost model to
  /// size recovery-point I/O).
  size_t ByteSize() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
  bool is_timestamp_ = false;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace qox

#endif  // QOX_COMMON_VALUE_H_
