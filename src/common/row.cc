#include "common/row.h"

#include <sstream>

namespace qox {

int Row::Compare(const Row& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

namespace {
// Boost-style hash combiner.
size_t CombineHash(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

size_t Row::Hash() const {
  size_t seed = values_.size();
  for (const Value& v : values_) seed = CombineHash(seed, v.Hash());
  return seed;
}

size_t Row::HashColumns(const std::vector<size_t>& columns) const {
  size_t seed = columns.size();
  for (const size_t c : columns) seed = CombineHash(seed, values_[c].Hash());
  return seed;
}

size_t Row::ByteSize() const {
  size_t total = 0;
  for (const Value& v : values_) total += v.ByteSize();
  return total;
}

std::string Row::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << values_[i];
  }
  oss << ")";
  return oss.str();
}

Status RowBatch::Validate() const {
  const Schema& s = schema();
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    if (row.num_values() != s.num_fields()) {
      return Status::Invalid("row " + std::to_string(r) + " has " +
                             std::to_string(row.num_values()) +
                             " values; schema expects " +
                             std::to_string(s.num_fields()));
    }
    for (size_t c = 0; c < s.num_fields(); ++c) {
      if (!s.field(c).nullable && row.value(c).is_null()) {
        return Status::Invalid("row " + std::to_string(r) +
                               " has NULL in non-nullable column '" +
                               s.field(c).name + "'");
      }
    }
  }
  return Status::OK();
}

size_t RowBatch::ByteSize() const {
  size_t total = 0;
  for (const Row& r : rows_) total += r.ByteSize();
  return total;
}

}  // namespace qox
