#include "common/schema.h"

#include <sstream>

namespace qox {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.find(name) != index_.end();
}

Result<Schema> Schema::AddField(const Field& field) const {
  if (HasField(field.name)) {
    return Status::AlreadyExists("column '" + field.name + "' already exists");
  }
  std::vector<Field> fields = fields_;
  fields.push_back(field);
  return Schema(std::move(fields));
}

Result<Schema> Schema::RemoveField(const std::string& name) const {
  QOX_ASSIGN_OR_RETURN(const size_t idx, FieldIndex(name));
  std::vector<Field> fields = fields_;
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(idx));
  return Schema(std::move(fields));
}

Result<Schema> Schema::RenameField(const std::string& from,
                                   const std::string& to) const {
  QOX_ASSIGN_OR_RETURN(const size_t idx, FieldIndex(from));
  if (HasField(to) && to != from) {
    return Status::AlreadyExists("column '" + to + "' already exists");
  }
  std::vector<Field> fields = fields_;
  fields[idx].name = to;
  return Schema(std::move(fields));
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const std::string& name : names) {
    QOX_ASSIGN_OR_RETURN(const size_t idx, FieldIndex(name));
    fields.push_back(fields_[idx]);
  }
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << fields_[i].name << ":" << DataTypeName(fields_[i].type);
    if (!fields_[i].nullable) oss << "!";
  }
  return oss.str();
}

}  // namespace qox
