#include "common/crash_point.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>

#include <unistd.h>

#include "common/strings.h"

namespace qox {
namespace {

struct CrashState {
  std::mutex mu;
  bool env_consulted = false;
  /// point name -> hits remaining before it fires.
  std::map<std::string, long> remaining;
};

CrashState& State() {
  static CrashState* state = new CrashState();
  return *state;
}

/// Fast path: skip the mutex entirely while nothing is armed.
std::atomic<bool>& ArmedFlag() {
  static std::atomic<bool> armed{false};
  return armed;
}

void ArmLocked(CrashState& state, const std::string& spec) {
  state.remaining.clear();
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    std::string name = entry;
    long count = 1;
    if (colon != std::string::npos && colon + 1 < entry.size()) {
      const long parsed = std::strtol(entry.c_str() + colon + 1, nullptr, 10);
      if (parsed > 0) {
        name = entry.substr(0, colon);
        count = parsed;
      }
    }
    state.remaining[name] = count;
  }
  ArmedFlag().store(!state.remaining.empty(), std::memory_order_release);
}

/// Reads QOX_CRASH_AT exactly once per process, unless ArmCrashPoints got
/// there first (programmatic arming overrides the environment).
void ConsultEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    CrashState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.env_consulted) return;
    state.env_consulted = true;
    const char* env = std::getenv("QOX_CRASH_AT");
    if (env != nullptr && env[0] != '\0') ArmLocked(state, env);
  });
}

[[noreturn]] void Die() {
  // SIGKILL cannot be caught: no destructors, no flushes, no atexit — the
  // same death a `kill -9` from outside would cause. _exit is the
  // (unreachable in practice) fallback.
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);
}

}  // namespace

void CrashPointHit(const char* name) {
  ConsultEnvOnce();
  if (!ArmedFlag().load(std::memory_order_acquire)) return;
  CrashState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.remaining.find(name);
  if (it == state.remaining.end()) return;
  if (--it->second > 0) return;
  Die();
}

void ArmCrashPoints(const std::string& spec) {
  CrashState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.env_consulted = true;
  ArmLocked(state, spec);
}

bool CrashPointsArmed() {
  return ArmedFlag().load(std::memory_order_acquire);
}

}  // namespace qox
