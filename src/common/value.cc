#include "common/value.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace qox {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

DataType Value::type() const {
  if (std::holds_alternative<std::monostate>(repr_)) return DataType::kNull;
  if (std::holds_alternative<bool>(repr_)) return DataType::kBool;
  if (std::holds_alternative<int64_t>(repr_)) {
    return is_timestamp_ ? DataType::kTimestamp : DataType::kInt64;
  }
  if (std::holds_alternative<double>(repr_)) return DataType::kDouble;
  return DataType::kString;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(repr_));
    case DataType::kDouble:
      return double_value();
    default:
      return Status::Invalid("value of type " +
                             std::string(DataTypeName(type())) +
                             " has no numeric view");
  }
}

namespace {

// Rank used for cross-type ordering. NULL < bool < numeric < string.
// int64, double, and timestamp share a rank and compare numerically, so
// mixed numeric columns still order sensibly.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kTimestamp:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int rank = TypeRank(type());
  const int other_rank = TypeRank(other.type());
  if (rank != other_rank) return rank < other_rank ? -1 : 1;
  switch (rank) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes.
    case 1:
      return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    case 2: {
      // Exact path when both are integral; double path otherwise.
      const bool self_int = std::holds_alternative<int64_t>(repr_);
      const bool other_int = std::holds_alternative<int64_t>(other.repr_);
      if (self_int && other_int) {
        const int64_t a = std::get<int64_t>(repr_);
        const int64_t b = std::get<int64_t>(other.repr_);
        if (a < b) return -1;
        if (a > b) return 1;
        return 0;
      }
      return CompareDouble(AsDouble().value(), other.AsDouble().value());
    }
    default:
      return string_value().compare(other.string_value());
  }
}

size_t Value::Hash() const {
  // Mix the type rank so values that can never compare equal rarely collide,
  // but keep int64/double/timestamp hashing numeric-compatible is NOT
  // required: equality across numeric types uses Compare, and hash users
  // (lookup, group) always hash columns of a single declared type.
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return std::hash<bool>{}(bool_value()) ^ 0x1;
    case DataType::kInt64:
    case DataType::kTimestamp:
      return std::hash<int64_t>{}(std::get<int64_t>(repr_)) ^ 0x2;
    case DataType::kDouble:
      return std::hash<double>{}(double_value()) ^ 0x2;
    case DataType::kString:
      return std::hash<std::string>{}(string_value()) ^ 0x4;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
    case DataType::kTimestamp:
      return std::to_string(std::get<int64_t>(repr_));
    case DataType::kDouble: {
      std::ostringstream oss;
      oss.precision(15);
      oss << double_value();
      return oss.str();
    }
    case DataType::kString:
      return string_value();
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      if (text == "true" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "0") return Value::Bool(false);
      return Status::Invalid("cannot parse bool from '" + text + "'");
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::Invalid("cannot parse int64 from '" + text + "'");
      }
      return type == DataType::kTimestamp ? Value::Timestamp(v)
                                          : Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::Invalid("cannot parse double from '" + text + "'");
      }
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(text);
  }
  return Status::Invalid("unknown data type");
}

size_t Value::ByteSize() const {
  switch (type()) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return string_value().size() + 8;
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace qox
