#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace qox {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

}  // namespace qox
