// ColumnBatch: the columnar twin of RowBatch for the transform fast path.
//
// A ColumnBatch stores one contiguous typed array per schema column
// (int64/timestamp, double, bool, arena-backed strings) plus a validity
// bitmap, and a selection vector of live physical rows. Vectorized kernels
// (filter evaluation, function application, hash-probe, surrogate-key
// assignment) iterate flat arrays instead of boxed `Value` variants; rows
// dropped by filters or contained by error policies simply leave the
// selection vector, so quarantine/skip semantics are identical to the row
// path. Batches convert to/from RowBatch at segment boundaries: conversion
// succeeds only when every cell's runtime type matches the declared column
// type (or is NULL), which is precisely the invariant the kernels exploit —
// a batch that violates it falls back to the row path unchanged.

#ifndef QOX_COMMON_COLUMN_BATCH_H_
#define QOX_COMMON_COLUMN_BATCH_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/value.h"

namespace qox {

/// Appends the probe-key encoding of `v` to `*out`: a type-group tag byte
/// followed by the raw payload. The encoding is equality-compatible with
/// the engine's hash-lookup semantics (Value::Hash + Value::Compare as used
/// by unordered_map): int64 and timestamp share one tag (they hash and
/// compare identically), doubles get their own tag (a numeric int64 probe
/// against a double build key misses under Value::Hash, and vice versa),
/// and -0.0 is canonicalized to +0.0 (they hash and compare equal).
/// Precondition: !v.is_null() (NULL keys never probe).
void AppendValueKeyBytes(const Value& v, std::string* out);

/// One typed column: contiguous values plus a validity bitmap. Entries for
/// rows outside the owning batch's selection vector are physically present
/// but semantically dead (kernels may write arbitrary typed values there).
class Column {
 public:
  explicit Column(DataType type) : type_(type) {
    // String offsets carry size_+1 boundaries; seed the leading 0 so entry
    // i always spans [offsets_[i], offsets_[i+1]).
    if (type_ == DataType::kString) offsets_.push_back(0);
  }

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  bool IsValid(size_t i) const {
    return (validity_[i >> 6] >> (i & 63)) & 1;
  }

  /// True when no entry is NULL — lets bulk readers skip the per-entry
  /// bitmap test (NULLs only ever enter via AppendNull).
  bool has_nulls() const { return null_count_ > 0; }

  /// Typed reads. Preconditions: IsValid(i) and the matching type.
  int64_t Int64At(size_t i) const { return i64_[i]; }  // int64 + timestamp
  double DoubleAt(size_t i) const { return f64_[i]; }
  bool BoolAt(size_t i) const { return b8_[i] != 0; }
  std::string_view StringAt(size_t i) const {
    return std::string_view(arena_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  /// Raw array access for kernels (valid for the matching type only).
  const int64_t* i64_data() const { return i64_.data(); }
  const double* f64_data() const { return f64_.data(); }
  const uint8_t* b8_data() const { return b8_.data(); }

  void AppendNull() {
    Grow(false);
    ++null_count_;
    switch (type_) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        i64_.push_back(0);
        break;
      case DataType::kDouble:
        f64_.push_back(0.0);
        break;
      case DataType::kBool:
        b8_.push_back(0);
        break;
      case DataType::kString:
        offsets_.push_back(static_cast<uint32_t>(arena_.size()));
        break;
      case DataType::kNull:
        break;
    }
    ++size_;
  }
  void AppendInt64(int64_t v) {
    Grow(true);
    i64_.push_back(v);
    ++size_;
  }
  void AppendDouble(double v) {
    Grow(true);
    f64_.push_back(v);
    ++size_;
  }
  void AppendBool(bool v) {
    Grow(true);
    b8_.push_back(v ? 1 : 0);
    ++size_;
  }
  void AppendString(std::string_view v) {
    Grow(true);
    arena_.append(v.data(), v.size());
    offsets_.push_back(static_cast<uint32_t>(arena_.size()));
    ++size_;
  }

  void Reserve(size_t n);

  /// Boxes entry `i` back into a Value (timestamp flag reconstructed from
  /// the declared column type).
  Value ValueAt(size_t i) const;

  /// Appends a boxed cell. Returns false (column unchanged) when the
  /// value's runtime type does not match the declared column type.
  bool AppendValue(const Value& v);

  /// Appends the probe-key encoding of entry `i` (same bytes as
  /// AppendValueKeyBytes on the boxed value). Precondition: IsValid(i).
  void AppendKeyBytes(size_t i, std::string* out) const;

  /// In-place ASCII uppercasing of every string payload (kUpper kernel;
  /// lengths are unchanged so offsets stay valid). String columns only.
  void UpperInPlaceAscii();

  /// Approximate heap footprint of the column's arrays.
  size_t ByteSize() const;

 private:
  void Grow(bool valid) {
    if ((size_ & 63) == 0) validity_.push_back(0);
    if (valid) validity_[size_ >> 6] |= uint64_t{1} << (size_ & 63);
  }

  DataType type_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> validity_;  // bit i set = row i non-NULL
  std::vector<int64_t> i64_;        // kInt64 + kTimestamp payloads
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::string arena_;               // concatenated string payloads
  std::vector<uint32_t> offsets_;   // size_+1 boundaries into arena_
};

/// A columnar batch: one Column per schema field plus a selection vector of
/// live physical row indices (ascending — row order is preserved through
/// every kernel, so output order matches the row path exactly).
class ColumnBatch {
 public:
  /// Converts a row batch. Returns nullopt when any cell's runtime type
  /// differs from its declared column type (the caller then keeps the row
  /// path — semantics are preserved by not converting). `schema` overrides
  /// the batch's own handle when provided (lets the pipeline share one
  /// Schema allocation per cut).
  static std::optional<ColumnBatch> FromRowBatch(const RowBatch& rows,
                                                 SchemaPtr schema = nullptr);

  /// Materializes the selected rows, in selection order.
  RowBatch ToRowBatch() const;

  /// Boxes one physical row (all columns). Used to route rejected or
  /// contained rows to sinks that speak rows.
  Row RowAt(size_t physical_row) const;

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }
  /// The pipeline re-points the schema after each op reshapes the columns.
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_physical_rows() const { return num_physical_rows_; }
  /// Live rows (selection size) — the columnar analogue of num_rows().
  size_t num_rows() const { return selection_.size(); }

  Column& column(size_t c) { return columns_[c]; }
  const Column& column(size_t c) const { return columns_[c]; }

  const std::vector<uint32_t>& selection() const { return selection_; }
  void SetSelection(std::vector<uint32_t> selection) {
    selection_ = std::move(selection);
  }

  /// Column reshaping for schema-changing kernels.
  void AppendColumn(Column column) { columns_.push_back(std::move(column)); }
  void EraseColumn(size_t c) {
    columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(c));
  }
  void ReplaceColumn(size_t c, Column column) {
    columns_[c] = std::move(column);
  }

  /// Approximate heap footprint across all columns.
  size_t ByteSize() const;

 private:
  SchemaPtr schema_;
  std::vector<Column> columns_;
  std::vector<uint32_t> selection_;
  size_t num_physical_rows_ = 0;
};

}  // namespace qox

#endif  // QOX_COMMON_COLUMN_BATCH_H_
