file(REMOVE_RECURSE
  "CMakeFiles/abl_optimizer.dir/abl_optimizer.cc.o"
  "CMakeFiles/abl_optimizer.dir/abl_optimizer.cc.o.d"
  "abl_optimizer"
  "abl_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
