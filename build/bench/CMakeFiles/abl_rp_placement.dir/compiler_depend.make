# Empty compiler generated dependencies file for abl_rp_placement.
# This may be replaced when dependencies are built.
