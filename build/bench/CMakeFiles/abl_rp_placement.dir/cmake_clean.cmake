file(REMOVE_RECURSE
  "CMakeFiles/abl_rp_placement.dir/abl_rp_placement.cc.o"
  "CMakeFiles/abl_rp_placement.dir/abl_rp_placement.cc.o.d"
  "abl_rp_placement"
  "abl_rp_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
