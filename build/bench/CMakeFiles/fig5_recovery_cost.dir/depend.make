# Empty dependencies file for fig5_recovery_cost.
# This may be replaced when dependencies are built.
