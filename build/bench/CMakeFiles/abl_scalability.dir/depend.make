# Empty dependencies file for abl_scalability.
# This may be replaced when dependencies are built.
