# Empty dependencies file for fig8_freshness.
# This may be replaced when dependencies are built.
