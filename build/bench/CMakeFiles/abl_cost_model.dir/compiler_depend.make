# Empty compiler generated dependencies file for abl_cost_model.
# This may be replaced when dependencies are built.
