file(REMOVE_RECURSE
  "CMakeFiles/abl_cost_model.dir/abl_cost_model.cc.o"
  "CMakeFiles/abl_cost_model.dir/abl_cost_model.cc.o.d"
  "abl_cost_model"
  "abl_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
