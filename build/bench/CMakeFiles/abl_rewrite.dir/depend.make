# Empty dependencies file for abl_rewrite.
# This may be replaced when dependencies are built.
