file(REMOVE_RECURSE
  "CMakeFiles/abl_rewrite.dir/abl_rewrite.cc.o"
  "CMakeFiles/abl_rewrite.dir/abl_rewrite.cc.o.d"
  "abl_rewrite"
  "abl_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
