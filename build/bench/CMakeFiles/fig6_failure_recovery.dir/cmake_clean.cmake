file(REMOVE_RECURSE
  "CMakeFiles/fig6_failure_recovery.dir/fig6_failure_recovery.cc.o"
  "CMakeFiles/fig6_failure_recovery.dir/fig6_failure_recovery.cc.o.d"
  "fig6_failure_recovery"
  "fig6_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
