# Empty compiler generated dependencies file for fig7_nmr_vs_rp.
# This may be replaced when dependencies are built.
