
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_nmr_vs_rp.cc" "bench/CMakeFiles/fig7_nmr_vs_rp.dir/fig7_nmr_vs_rp.cc.o" "gcc" "bench/CMakeFiles/fig7_nmr_vs_rp.dir/fig7_nmr_vs_rp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/qox_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qox_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
