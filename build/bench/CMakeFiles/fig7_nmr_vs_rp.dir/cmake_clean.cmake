file(REMOVE_RECURSE
  "CMakeFiles/fig7_nmr_vs_rp.dir/fig7_nmr_vs_rp.cc.o"
  "CMakeFiles/fig7_nmr_vs_rp.dir/fig7_nmr_vs_rp.cc.o.d"
  "fig7_nmr_vs_rp"
  "fig7_nmr_vs_rp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nmr_vs_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
