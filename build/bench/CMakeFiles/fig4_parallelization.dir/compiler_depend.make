# Empty compiler generated dependencies file for fig4_parallelization.
# This may be replaced when dependencies are built.
