file(REMOVE_RECURSE
  "CMakeFiles/fig4_parallelization.dir/fig4_parallelization.cc.o"
  "CMakeFiles/fig4_parallelization.dir/fig4_parallelization.cc.o.d"
  "fig4_parallelization"
  "fig4_parallelization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_parallelization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
