file(REMOVE_RECURSE
  "CMakeFiles/sales_dw.dir/sales_dw.cpp.o"
  "CMakeFiles/sales_dw.dir/sales_dw.cpp.o.d"
  "sales_dw"
  "sales_dw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_dw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
