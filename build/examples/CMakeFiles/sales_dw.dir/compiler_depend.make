# Empty compiler generated dependencies file for sales_dw.
# This may be replaced when dependencies are built.
