# Empty dependencies file for streaming_freshness.
# This may be replaced when dependencies are built.
