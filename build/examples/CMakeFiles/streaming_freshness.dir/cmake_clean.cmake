file(REMOVE_RECURSE
  "CMakeFiles/streaming_freshness.dir/streaming_freshness.cpp.o"
  "CMakeFiles/streaming_freshness.dir/streaming_freshness.cpp.o.d"
  "streaming_freshness"
  "streaming_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
