file(REMOVE_RECURSE
  "CMakeFiles/nightly_window.dir/nightly_window.cpp.o"
  "CMakeFiles/nightly_window.dir/nightly_window.cpp.o.d"
  "nightly_window"
  "nightly_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nightly_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
