# Empty dependencies file for nightly_window.
# This may be replaced when dependencies are built.
