# Empty dependencies file for tradeoff_advisor.
# This may be replaced when dependencies are built.
