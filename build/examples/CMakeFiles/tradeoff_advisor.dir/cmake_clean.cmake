file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_advisor.dir/tradeoff_advisor.cpp.o"
  "CMakeFiles/tradeoff_advisor.dir/tradeoff_advisor.cpp.o.d"
  "tradeoff_advisor"
  "tradeoff_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
