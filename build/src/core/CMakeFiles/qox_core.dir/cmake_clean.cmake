file(REMOVE_RECURSE
  "CMakeFiles/qox_core.dir/cost_model.cc.o"
  "CMakeFiles/qox_core.dir/cost_model.cc.o.d"
  "CMakeFiles/qox_core.dir/design.cc.o"
  "CMakeFiles/qox_core.dir/design.cc.o.d"
  "CMakeFiles/qox_core.dir/metrics.cc.o"
  "CMakeFiles/qox_core.dir/metrics.cc.o.d"
  "CMakeFiles/qox_core.dir/micro_batch.cc.o"
  "CMakeFiles/qox_core.dir/micro_batch.cc.o.d"
  "CMakeFiles/qox_core.dir/optimizer.cc.o"
  "CMakeFiles/qox_core.dir/optimizer.cc.o.d"
  "CMakeFiles/qox_core.dir/plan_io.cc.o"
  "CMakeFiles/qox_core.dir/plan_io.cc.o.d"
  "CMakeFiles/qox_core.dir/qox_report.cc.o"
  "CMakeFiles/qox_core.dir/qox_report.cc.o.d"
  "CMakeFiles/qox_core.dir/quality_features.cc.o"
  "CMakeFiles/qox_core.dir/quality_features.cc.o.d"
  "CMakeFiles/qox_core.dir/requirements.cc.o"
  "CMakeFiles/qox_core.dir/requirements.cc.o.d"
  "CMakeFiles/qox_core.dir/rewrites.cc.o"
  "CMakeFiles/qox_core.dir/rewrites.cc.o.d"
  "CMakeFiles/qox_core.dir/sales_workflow.cc.o"
  "CMakeFiles/qox_core.dir/sales_workflow.cc.o.d"
  "CMakeFiles/qox_core.dir/schedule.cc.o"
  "CMakeFiles/qox_core.dir/schedule.cc.o.d"
  "CMakeFiles/qox_core.dir/softgoal.cc.o"
  "CMakeFiles/qox_core.dir/softgoal.cc.o.d"
  "CMakeFiles/qox_core.dir/translate.cc.o"
  "CMakeFiles/qox_core.dir/translate.cc.o.d"
  "libqox_core.a"
  "libqox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
