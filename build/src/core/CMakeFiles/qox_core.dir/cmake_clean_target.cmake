file(REMOVE_RECURSE
  "libqox_core.a"
)
