# Empty compiler generated dependencies file for qox_core.
# This may be replaced when dependencies are built.
