
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/qox_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/design.cc" "src/core/CMakeFiles/qox_core.dir/design.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/design.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/qox_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/micro_batch.cc" "src/core/CMakeFiles/qox_core.dir/micro_batch.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/micro_batch.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/qox_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/plan_io.cc" "src/core/CMakeFiles/qox_core.dir/plan_io.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/plan_io.cc.o.d"
  "/root/repo/src/core/qox_report.cc" "src/core/CMakeFiles/qox_core.dir/qox_report.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/qox_report.cc.o.d"
  "/root/repo/src/core/quality_features.cc" "src/core/CMakeFiles/qox_core.dir/quality_features.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/quality_features.cc.o.d"
  "/root/repo/src/core/requirements.cc" "src/core/CMakeFiles/qox_core.dir/requirements.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/requirements.cc.o.d"
  "/root/repo/src/core/rewrites.cc" "src/core/CMakeFiles/qox_core.dir/rewrites.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/rewrites.cc.o.d"
  "/root/repo/src/core/sales_workflow.cc" "src/core/CMakeFiles/qox_core.dir/sales_workflow.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/sales_workflow.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/qox_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/softgoal.cc" "src/core/CMakeFiles/qox_core.dir/softgoal.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/softgoal.cc.o.d"
  "/root/repo/src/core/translate.cc" "src/core/CMakeFiles/qox_core.dir/translate.cc.o" "gcc" "src/core/CMakeFiles/qox_core.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/qox_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qox_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
