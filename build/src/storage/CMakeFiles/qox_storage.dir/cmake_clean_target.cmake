file(REMOVE_RECURSE
  "libqox_storage.a"
)
