# Empty dependencies file for qox_storage.
# This may be replaced when dependencies are built.
