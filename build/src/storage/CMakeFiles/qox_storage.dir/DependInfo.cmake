
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/qox_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/data_store.cc" "src/storage/CMakeFiles/qox_storage.dir/data_store.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/data_store.cc.o.d"
  "/root/repo/src/storage/flat_file.cc" "src/storage/CMakeFiles/qox_storage.dir/flat_file.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/flat_file.cc.o.d"
  "/root/repo/src/storage/generators.cc" "src/storage/CMakeFiles/qox_storage.dir/generators.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/generators.cc.o.d"
  "/root/repo/src/storage/mem_table.cc" "src/storage/CMakeFiles/qox_storage.dir/mem_table.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/mem_table.cc.o.d"
  "/root/repo/src/storage/recovery_store.cc" "src/storage/CMakeFiles/qox_storage.dir/recovery_store.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/recovery_store.cc.o.d"
  "/root/repo/src/storage/snapshot_store.cc" "src/storage/CMakeFiles/qox_storage.dir/snapshot_store.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/snapshot_store.cc.o.d"
  "/root/repo/src/storage/throttled_store.cc" "src/storage/CMakeFiles/qox_storage.dir/throttled_store.cc.o" "gcc" "src/storage/CMakeFiles/qox_storage.dir/throttled_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
