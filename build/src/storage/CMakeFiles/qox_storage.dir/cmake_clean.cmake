file(REMOVE_RECURSE
  "CMakeFiles/qox_storage.dir/catalog.cc.o"
  "CMakeFiles/qox_storage.dir/catalog.cc.o.d"
  "CMakeFiles/qox_storage.dir/data_store.cc.o"
  "CMakeFiles/qox_storage.dir/data_store.cc.o.d"
  "CMakeFiles/qox_storage.dir/flat_file.cc.o"
  "CMakeFiles/qox_storage.dir/flat_file.cc.o.d"
  "CMakeFiles/qox_storage.dir/generators.cc.o"
  "CMakeFiles/qox_storage.dir/generators.cc.o.d"
  "CMakeFiles/qox_storage.dir/mem_table.cc.o"
  "CMakeFiles/qox_storage.dir/mem_table.cc.o.d"
  "CMakeFiles/qox_storage.dir/recovery_store.cc.o"
  "CMakeFiles/qox_storage.dir/recovery_store.cc.o.d"
  "CMakeFiles/qox_storage.dir/snapshot_store.cc.o"
  "CMakeFiles/qox_storage.dir/snapshot_store.cc.o.d"
  "CMakeFiles/qox_storage.dir/throttled_store.cc.o"
  "CMakeFiles/qox_storage.dir/throttled_store.cc.o.d"
  "libqox_storage.a"
  "libqox_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qox_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
