file(REMOVE_RECURSE
  "CMakeFiles/qox_common.dir/clock.cc.o"
  "CMakeFiles/qox_common.dir/clock.cc.o.d"
  "CMakeFiles/qox_common.dir/rng.cc.o"
  "CMakeFiles/qox_common.dir/rng.cc.o.d"
  "CMakeFiles/qox_common.dir/row.cc.o"
  "CMakeFiles/qox_common.dir/row.cc.o.d"
  "CMakeFiles/qox_common.dir/schema.cc.o"
  "CMakeFiles/qox_common.dir/schema.cc.o.d"
  "CMakeFiles/qox_common.dir/status.cc.o"
  "CMakeFiles/qox_common.dir/status.cc.o.d"
  "CMakeFiles/qox_common.dir/strings.cc.o"
  "CMakeFiles/qox_common.dir/strings.cc.o.d"
  "CMakeFiles/qox_common.dir/value.cc.o"
  "CMakeFiles/qox_common.dir/value.cc.o.d"
  "libqox_common.a"
  "libqox_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qox_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
