file(REMOVE_RECURSE
  "libqox_common.a"
)
