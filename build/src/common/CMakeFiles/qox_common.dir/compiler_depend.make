# Empty compiler generated dependencies file for qox_common.
# This may be replaced when dependencies are built.
