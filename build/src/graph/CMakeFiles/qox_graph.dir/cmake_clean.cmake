file(REMOVE_RECURSE
  "CMakeFiles/qox_graph.dir/flow_graph.cc.o"
  "CMakeFiles/qox_graph.dir/flow_graph.cc.o.d"
  "CMakeFiles/qox_graph.dir/graph_metrics.cc.o"
  "CMakeFiles/qox_graph.dir/graph_metrics.cc.o.d"
  "libqox_graph.a"
  "libqox_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qox_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
