# Empty compiler generated dependencies file for qox_graph.
# This may be replaced when dependencies are built.
