file(REMOVE_RECURSE
  "libqox_graph.a"
)
