file(REMOVE_RECURSE
  "CMakeFiles/qox_engine.dir/executor.cc.o"
  "CMakeFiles/qox_engine.dir/executor.cc.o.d"
  "CMakeFiles/qox_engine.dir/failure.cc.o"
  "CMakeFiles/qox_engine.dir/failure.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/delta_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/delta_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/filter_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/filter_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/function_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/function_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/group_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/group_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/lookup_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/lookup_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/sort_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/sort_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/ops/surrogate_key_op.cc.o"
  "CMakeFiles/qox_engine.dir/ops/surrogate_key_op.cc.o.d"
  "CMakeFiles/qox_engine.dir/pipeline.cc.o"
  "CMakeFiles/qox_engine.dir/pipeline.cc.o.d"
  "CMakeFiles/qox_engine.dir/run_metrics.cc.o"
  "CMakeFiles/qox_engine.dir/run_metrics.cc.o.d"
  "CMakeFiles/qox_engine.dir/thread_pool.cc.o"
  "CMakeFiles/qox_engine.dir/thread_pool.cc.o.d"
  "libqox_engine.a"
  "libqox_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qox_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
