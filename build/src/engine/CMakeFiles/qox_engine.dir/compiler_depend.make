# Empty compiler generated dependencies file for qox_engine.
# This may be replaced when dependencies are built.
