
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/qox_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/failure.cc" "src/engine/CMakeFiles/qox_engine.dir/failure.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/failure.cc.o.d"
  "/root/repo/src/engine/ops/delta_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/delta_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/delta_op.cc.o.d"
  "/root/repo/src/engine/ops/filter_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/filter_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/filter_op.cc.o.d"
  "/root/repo/src/engine/ops/function_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/function_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/function_op.cc.o.d"
  "/root/repo/src/engine/ops/group_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/group_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/group_op.cc.o.d"
  "/root/repo/src/engine/ops/lookup_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/lookup_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/lookup_op.cc.o.d"
  "/root/repo/src/engine/ops/sort_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/sort_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/sort_op.cc.o.d"
  "/root/repo/src/engine/ops/surrogate_key_op.cc" "src/engine/CMakeFiles/qox_engine.dir/ops/surrogate_key_op.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/ops/surrogate_key_op.cc.o.d"
  "/root/repo/src/engine/pipeline.cc" "src/engine/CMakeFiles/qox_engine.dir/pipeline.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/pipeline.cc.o.d"
  "/root/repo/src/engine/run_metrics.cc" "src/engine/CMakeFiles/qox_engine.dir/run_metrics.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/run_metrics.cc.o.d"
  "/root/repo/src/engine/thread_pool.cc" "src/engine/CMakeFiles/qox_engine.dir/thread_pool.cc.o" "gcc" "src/engine/CMakeFiles/qox_engine.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qox_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
