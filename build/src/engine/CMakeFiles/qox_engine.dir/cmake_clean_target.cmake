file(REMOVE_RECURSE
  "libqox_engine.a"
)
