# Empty dependencies file for engine_run_metrics_test.
# This may be replaced when dependencies are built.
