file(REMOVE_RECURSE
  "CMakeFiles/engine_failure_test.dir/engine_failure_test.cc.o"
  "CMakeFiles/engine_failure_test.dir/engine_failure_test.cc.o.d"
  "engine_failure_test"
  "engine_failure_test.pdb"
  "engine_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
