# Empty compiler generated dependencies file for engine_failure_test.
# This may be replaced when dependencies are built.
