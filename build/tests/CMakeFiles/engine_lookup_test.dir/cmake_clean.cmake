file(REMOVE_RECURSE
  "CMakeFiles/engine_lookup_test.dir/engine_lookup_test.cc.o"
  "CMakeFiles/engine_lookup_test.dir/engine_lookup_test.cc.o.d"
  "engine_lookup_test"
  "engine_lookup_test.pdb"
  "engine_lookup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_lookup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
