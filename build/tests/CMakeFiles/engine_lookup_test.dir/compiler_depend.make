# Empty compiler generated dependencies file for engine_lookup_test.
# This may be replaced when dependencies are built.
