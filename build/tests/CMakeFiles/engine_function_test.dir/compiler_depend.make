# Empty compiler generated dependencies file for engine_function_test.
# This may be replaced when dependencies are built.
