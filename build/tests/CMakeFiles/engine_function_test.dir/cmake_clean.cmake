file(REMOVE_RECURSE
  "CMakeFiles/engine_function_test.dir/engine_function_test.cc.o"
  "CMakeFiles/engine_function_test.dir/engine_function_test.cc.o.d"
  "engine_function_test"
  "engine_function_test.pdb"
  "engine_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
