file(REMOVE_RECURSE
  "CMakeFiles/storage_throttled_test.dir/storage_throttled_test.cc.o"
  "CMakeFiles/storage_throttled_test.dir/storage_throttled_test.cc.o.d"
  "storage_throttled_test"
  "storage_throttled_test.pdb"
  "storage_throttled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_throttled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
