# Empty dependencies file for storage_throttled_test.
# This may be replaced when dependencies are built.
