# Empty compiler generated dependencies file for storage_recovery_store_test.
# This may be replaced when dependencies are built.
