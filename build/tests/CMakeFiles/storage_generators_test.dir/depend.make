# Empty dependencies file for storage_generators_test.
# This may be replaced when dependencies are built.
