file(REMOVE_RECURSE
  "CMakeFiles/storage_generators_test.dir/storage_generators_test.cc.o"
  "CMakeFiles/storage_generators_test.dir/storage_generators_test.cc.o.d"
  "storage_generators_test"
  "storage_generators_test.pdb"
  "storage_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
