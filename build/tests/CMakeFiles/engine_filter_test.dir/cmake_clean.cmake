file(REMOVE_RECURSE
  "CMakeFiles/engine_filter_test.dir/engine_filter_test.cc.o"
  "CMakeFiles/engine_filter_test.dir/engine_filter_test.cc.o.d"
  "engine_filter_test"
  "engine_filter_test.pdb"
  "engine_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
