# Empty compiler generated dependencies file for engine_filter_test.
# This may be replaced when dependencies are built.
