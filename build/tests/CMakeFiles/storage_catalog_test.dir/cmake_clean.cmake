file(REMOVE_RECURSE
  "CMakeFiles/storage_catalog_test.dir/storage_catalog_test.cc.o"
  "CMakeFiles/storage_catalog_test.dir/storage_catalog_test.cc.o.d"
  "storage_catalog_test"
  "storage_catalog_test.pdb"
  "storage_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
