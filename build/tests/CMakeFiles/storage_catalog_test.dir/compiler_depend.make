# Empty compiler generated dependencies file for storage_catalog_test.
# This may be replaced when dependencies are built.
