# Empty dependencies file for storage_mem_table_test.
# This may be replaced when dependencies are built.
