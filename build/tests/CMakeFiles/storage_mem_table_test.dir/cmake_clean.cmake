file(REMOVE_RECURSE
  "CMakeFiles/storage_mem_table_test.dir/storage_mem_table_test.cc.o"
  "CMakeFiles/storage_mem_table_test.dir/storage_mem_table_test.cc.o.d"
  "storage_mem_table_test"
  "storage_mem_table_test.pdb"
  "storage_mem_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_mem_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
