file(REMOVE_RECURSE
  "CMakeFiles/core_translate_test.dir/core_translate_test.cc.o"
  "CMakeFiles/core_translate_test.dir/core_translate_test.cc.o.d"
  "core_translate_test"
  "core_translate_test.pdb"
  "core_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
