# Empty dependencies file for core_translate_test.
# This may be replaced when dependencies are built.
