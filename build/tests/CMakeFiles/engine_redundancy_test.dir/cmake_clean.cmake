file(REMOVE_RECURSE
  "CMakeFiles/engine_redundancy_test.dir/engine_redundancy_test.cc.o"
  "CMakeFiles/engine_redundancy_test.dir/engine_redundancy_test.cc.o.d"
  "engine_redundancy_test"
  "engine_redundancy_test.pdb"
  "engine_redundancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_redundancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
