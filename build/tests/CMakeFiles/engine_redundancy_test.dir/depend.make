# Empty dependencies file for engine_redundancy_test.
# This may be replaced when dependencies are built.
