# Empty compiler generated dependencies file for engine_audit_test.
# This may be replaced when dependencies are built.
