file(REMOVE_RECURSE
  "CMakeFiles/engine_audit_test.dir/engine_audit_test.cc.o"
  "CMakeFiles/engine_audit_test.dir/engine_audit_test.cc.o.d"
  "engine_audit_test"
  "engine_audit_test.pdb"
  "engine_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
