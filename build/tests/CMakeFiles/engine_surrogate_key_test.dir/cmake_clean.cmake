file(REMOVE_RECURSE
  "CMakeFiles/engine_surrogate_key_test.dir/engine_surrogate_key_test.cc.o"
  "CMakeFiles/engine_surrogate_key_test.dir/engine_surrogate_key_test.cc.o.d"
  "engine_surrogate_key_test"
  "engine_surrogate_key_test.pdb"
  "engine_surrogate_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_surrogate_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
