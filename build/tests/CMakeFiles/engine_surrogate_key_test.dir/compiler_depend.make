# Empty compiler generated dependencies file for engine_surrogate_key_test.
# This may be replaced when dependencies are built.
