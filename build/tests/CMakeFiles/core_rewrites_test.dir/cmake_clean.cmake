file(REMOVE_RECURSE
  "CMakeFiles/core_rewrites_test.dir/core_rewrites_test.cc.o"
  "CMakeFiles/core_rewrites_test.dir/core_rewrites_test.cc.o.d"
  "core_rewrites_test"
  "core_rewrites_test.pdb"
  "core_rewrites_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rewrites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
