# Empty dependencies file for core_rewrites_test.
# This may be replaced when dependencies are built.
