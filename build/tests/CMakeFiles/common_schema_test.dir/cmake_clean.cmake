file(REMOVE_RECURSE
  "CMakeFiles/common_schema_test.dir/common_schema_test.cc.o"
  "CMakeFiles/common_schema_test.dir/common_schema_test.cc.o.d"
  "common_schema_test"
  "common_schema_test.pdb"
  "common_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
