# Empty compiler generated dependencies file for core_softgoal_test.
# This may be replaced when dependencies are built.
