file(REMOVE_RECURSE
  "CMakeFiles/core_softgoal_test.dir/core_softgoal_test.cc.o"
  "CMakeFiles/core_softgoal_test.dir/core_softgoal_test.cc.o.d"
  "core_softgoal_test"
  "core_softgoal_test.pdb"
  "core_softgoal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_softgoal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
