# Empty dependencies file for engine_delta_test.
# This may be replaced when dependencies are built.
