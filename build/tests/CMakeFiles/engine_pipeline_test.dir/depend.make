# Empty dependencies file for engine_pipeline_test.
# This may be replaced when dependencies are built.
