file(REMOVE_RECURSE
  "CMakeFiles/engine_pipeline_test.dir/engine_pipeline_test.cc.o"
  "CMakeFiles/engine_pipeline_test.dir/engine_pipeline_test.cc.o.d"
  "engine_pipeline_test"
  "engine_pipeline_test.pdb"
  "engine_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
