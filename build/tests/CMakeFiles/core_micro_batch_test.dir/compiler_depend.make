# Empty compiler generated dependencies file for core_micro_batch_test.
# This may be replaced when dependencies are built.
