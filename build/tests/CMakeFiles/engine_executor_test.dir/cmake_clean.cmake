file(REMOVE_RECURSE
  "CMakeFiles/engine_executor_test.dir/engine_executor_test.cc.o"
  "CMakeFiles/engine_executor_test.dir/engine_executor_test.cc.o.d"
  "engine_executor_test"
  "engine_executor_test.pdb"
  "engine_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
