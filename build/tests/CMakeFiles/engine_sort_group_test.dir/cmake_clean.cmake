file(REMOVE_RECURSE
  "CMakeFiles/engine_sort_group_test.dir/engine_sort_group_test.cc.o"
  "CMakeFiles/engine_sort_group_test.dir/engine_sort_group_test.cc.o.d"
  "engine_sort_group_test"
  "engine_sort_group_test.pdb"
  "engine_sort_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_sort_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
