# Empty compiler generated dependencies file for engine_sort_group_test.
# This may be replaced when dependencies are built.
