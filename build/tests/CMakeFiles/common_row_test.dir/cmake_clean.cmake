file(REMOVE_RECURSE
  "CMakeFiles/common_row_test.dir/common_row_test.cc.o"
  "CMakeFiles/common_row_test.dir/common_row_test.cc.o.d"
  "common_row_test"
  "common_row_test.pdb"
  "common_row_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_row_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
