# Empty dependencies file for common_row_test.
# This may be replaced when dependencies are built.
