# Empty dependencies file for storage_flat_file_test.
# This may be replaced when dependencies are built.
