file(REMOVE_RECURSE
  "CMakeFiles/storage_flat_file_test.dir/storage_flat_file_test.cc.o"
  "CMakeFiles/storage_flat_file_test.dir/storage_flat_file_test.cc.o.d"
  "storage_flat_file_test"
  "storage_flat_file_test.pdb"
  "storage_flat_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_flat_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
