# Empty compiler generated dependencies file for core_sales_workflow_test.
# This may be replaced when dependencies are built.
