file(REMOVE_RECURSE
  "CMakeFiles/core_sales_workflow_test.dir/core_sales_workflow_test.cc.o"
  "CMakeFiles/core_sales_workflow_test.dir/core_sales_workflow_test.cc.o.d"
  "core_sales_workflow_test"
  "core_sales_workflow_test.pdb"
  "core_sales_workflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sales_workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
