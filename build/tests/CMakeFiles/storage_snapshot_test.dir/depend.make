# Empty dependencies file for storage_snapshot_test.
# This may be replaced when dependencies are built.
