file(REMOVE_RECURSE
  "CMakeFiles/storage_snapshot_test.dir/storage_snapshot_test.cc.o"
  "CMakeFiles/storage_snapshot_test.dir/storage_snapshot_test.cc.o.d"
  "storage_snapshot_test"
  "storage_snapshot_test.pdb"
  "storage_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
