// Ablation — cost-model fidelity: predicted versus measured execution time
// across eight physical configurations of the Fig. 3 bottom flow.
//
// The model is ordinal by design (DESIGN.md): the success criterion is
// that it RANKS configurations the way measurements rank them, with
// absolute errors as a secondary diagnostic. The table reports per-config
// predicted/measured times and the number of pairwise rank inversions.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench_util.h"
#include "core/cost_model.h"
#include "core/sales_workflow.h"

namespace qox {
namespace {

constexpr double kRows = 40000;

SalesScenario* Scenario() {
  static SalesScenario* const scenario = [] {
    SalesScenarioConfig config;
    config.s1_rows = static_cast<size_t>(kRows);
    config.s2_rows = 1000;
    config.s3_rows = 1000;
    return SalesScenario::Create(config).TakeValue().release();
  }();
  return scenario;
}

RecoveryPointStorePtr RpStore() {
  static const RecoveryPointStorePtr store =
      RecoveryPointStore::Open("/tmp/qox_bench_ablcm").value();
  return store;
}

struct Config {
  const char* name;
  size_t partitions;
  size_t range_begin;
  std::vector<size_t> rps;
};

const std::vector<Config>& Configs() {
  static const auto* const configs = new std::vector<Config>{
      {"1F", 1, 0, {}},
      {"1F+RP{0}", 1, 0, {0}},
      {"1F+RP{0,1}", 1, 0, {0, 1}},
      {"1F+RP{all}", 1, 0, {0, 1, 2, 3, 4, 5, 6, 7}},
      {"2PF-p", 2, 1, {}},
      {"4PF-p", 4, 1, {}},
      {"4PF-p+RP{0}", 4, 1, {0}},
      {"8PF-p", 8, 1, {}},
  };
  return *configs;
}

struct Row_ {
  std::string name;
  double predicted_s = 0.0;
  double measured_s = 0.0;
};
std::map<int, Row_>& Rows() {
  static auto* const rows = new std::map<int, Row_>();
  return *rows;
}

constexpr size_t kCpus = 4;

void BM_AblCostModel(benchmark::State& state) {
  const int idx = static_cast<int>(state.range(0));
  SalesScenario* scenario = Scenario();
  const Config& config = Configs()[static_cast<size_t>(idx)];

  static const CostModel* const model = [&] {
    // Calibrate from a warm probe: the first run pays cold-start costs
    // that later configuration runs do not.
    CostModelParams params;
    RunMetrics best_probe;
    bool have = false;
    for (int repeat = 0; repeat < 3; ++repeat) {
      (void)scenario->ResetWarehouse();
      Result<RunMetrics> probe = Executor::Run(
          scenario->bottom_flow().ToFlowSpec(), ExecutionConfig{});
      if (!probe.ok()) break;
      if (!have ||
          probe.value().total_micros < best_probe.total_micros) {
        best_probe = std::move(probe).TakeValue();
        have = true;
      }
    }
    if (have) {
      params = CostModel::Calibrate(CostModelParams{}, best_probe,
                                    scenario->bottom_flow(), kRows);
    }
    return new CostModel(params);
  }();

  Row_ row;
  row.name = config.name;
  for (auto _ : state) {
    PhysicalDesign design;
    design.flow = scenario->bottom_flow();
    design.threads = kCpus;
    design.parallel.partitions = config.partitions;
    design.parallel.range_begin = config.range_begin;
    design.recovery_points = config.rps;
    row.predicted_s = model->EstimatePhases(design, kRows).total_s;

    int64_t best = 0;
    for (int repeat = 0; repeat < 3; ++repeat) {
      if (!scenario->ResetWarehouse().ok()) {
        state.SkipWithError("reset failed");
        return;
      }
      ExecutionConfig exec;
      exec.num_threads = 1;
      exec.parallel = design.parallel;
      exec.recovery_points = config.rps;
      exec.rp_store = config.rps.empty() ? nullptr : RpStore();
      const Result<RunMetrics> metrics =
          Executor::Run(scenario->bottom_flow().ToFlowSpec(), exec);
      if (!metrics.ok()) {
        state.SkipWithError(metrics.status().ToString().c_str());
        return;
      }
      const int64_t t = bench::SimulatedWallMicros(metrics.value(), kCpus);
      if (repeat == 0 || t < best) best = t;
    }
    row.measured_s = static_cast<double>(best) / 1e6;
    state.SetIterationTime(row.measured_s);
  }
  Rows()[idx] = row;
}

BENCHMARK(BM_AblCostModel)
    ->DenseRange(0, 7)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintFigure() {
  bench::Table table({"config", "predicted_s", "measured_s", "rel_err"});
  for (const auto& [idx, row] : Rows()) {
    const double err =
        std::fabs(row.predicted_s - row.measured_s) /
        std::max(1e-9, row.measured_s);
    table.AddRow({row.name, bench::Seconds(row.predicted_s, 3),
                  bench::Seconds(row.measured_s, 3),
                  bench::Seconds(err * 100.0, 1) + "%"});
  }
  // Pairwise rank agreement.
  size_t inversions = 0;
  size_t pairs = 0;
  for (const auto& [i, a] : Rows()) {
    for (const auto& [j, b] : Rows()) {
      if (i >= j) continue;
      ++pairs;
      const bool pred_less = a.predicted_s < b.predicted_s;
      const bool meas_less = a.measured_s < b.measured_s;
      if (pred_less != meas_less) ++inversions;
    }
  }
  table.Print("Ablation: cost-model fidelity (predicted vs measured, " +
              std::to_string(kCpus) + " CPUs) — rank inversions: " +
              std::to_string(inversions) + "/" + std::to_string(pairs));
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  qox::PrintFigure();
  return 0;
}
