// Shared benchmark scaffolding.
//
// HARDWARE SUBSTITUTION (see DESIGN.md §2): the paper's experiments ran on
// multi-CPU servers; this reproduction executes every configuration FOR
// REAL on a single worker thread (clean, interference-free CPU timings for
// every phase, partition, and instance), then computes the wall-clock time
// the same run would take on an N-CPU machine by list-scheduling the
// measured task durations onto N virtual processors. Extraction and merge
// remain sequential (single source channel / single merge point), exactly
// as in the engines the paper measured.

#ifndef QOX_BENCH_BENCH_UTIL_H_
#define QOX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/run_metrics.h"

namespace qox {
namespace bench {

/// Greedy list scheduling of task durations onto `n_cpus` identical
/// virtual processors; returns the makespan. `release[i]` (optional) is
/// the earliest start of task i.
inline int64_t Makespan(const std::vector<int64_t>& tasks, size_t n_cpus,
                        const std::vector<int64_t>* release = nullptr) {
  if (tasks.empty()) return 0;
  n_cpus = std::max<size_t>(1, n_cpus);
  std::vector<int64_t> cpu_free(n_cpus, 0);
  int64_t makespan = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto it = std::min_element(cpu_free.begin(), cpu_free.end());
    const int64_t ready = release != nullptr ? (*release)[i] : 0;
    const int64_t start = std::max(*it, ready);
    *it = start + tasks[i];
    makespan = std::max(makespan, *it);
  }
  return makespan;
}

/// The transform time a measured run would take on `n_cpus`: sequential
/// transform work as measured, each parallel unit replaced by the makespan
/// of its partition durations, merges sequential.
inline int64_t SimulatedTransformMicros(const RunMetrics& m, size_t n_cpus) {
  int64_t parallel_measured = 0;
  int64_t parallel_sim = 0;
  for (const ParallelUnitStats& unit : m.parallel_units) {
    for (const int64_t t : unit.partition_micros) parallel_measured += t;
    parallel_measured += unit.merge_micros;
    // Partition work splits into a truly parallel share and a share that
    // serializes across partitions through shared state (e.g. the Δ's
    // snapshot critical section): the former is scheduled onto the CPUs,
    // the latter is a global critical path.
    std::vector<int64_t> parallel_parts = unit.partition_micros;
    int64_t serialized = 0;
    for (size_t p = 0; p < parallel_parts.size(); ++p) {
      const int64_t s = p < unit.serialized_micros.size()
                            ? unit.serialized_micros[p]
                            : 0;
      serialized += s;
      parallel_parts[p] = std::max<int64_t>(0, parallel_parts[p] - s);
    }
    parallel_sim += Makespan(parallel_parts, n_cpus) + serialized;
    parallel_sim += unit.merge_micros;  // merging back is sequential
  }
  const int64_t sequential =
      std::max<int64_t>(0, m.transform_micros - parallel_measured);
  return sequential + parallel_sim;
}

/// Full simulated wall time of a measured run on `n_cpus`.
inline int64_t SimulatedWallMicros(const RunMetrics& m, size_t n_cpus) {
  return m.extract_micros + SimulatedTransformMicros(m, n_cpus) +
         m.rp_write_micros + m.rp_read_micros + m.load_micros;
}

/// Memory/cache-interference coefficient of the virtual machine: each
/// additional co-running instance slows every instance's CPU work by this
/// fraction (bandwidth and last-level-cache sharing). A simulation
/// parameter like the source-channel bandwidth; documented in DESIGN.md.
inline constexpr double kNmrInterferencePerInstance = 0.06;

/// n-modular redundancy on the virtual machine: k copies of the measured
/// base run race. Extraction serializes through the shared source channel
/// (instance i's data is available at (i+1) * extract); transform work is
/// CPU, inflated by the interference of k co-running instances, and
/// schedules onto the n_cpus; the flow completes when the majority of
/// instances agree, then loads once.
inline int64_t SimulatedNmrMicros(const RunMetrics& base, size_t k,
                                  size_t n_cpus) {
  const int64_t extract = base.extract_micros;
  // Per-instance CPU work: each redundant instance is single-threaded and
  // contends with its k-1 siblings for memory bandwidth.
  const double interference =
      1.0 + kNmrInterferencePerInstance * static_cast<double>(k - 1);
  const int64_t work = static_cast<int64_t>(
      static_cast<double>(SimulatedTransformMicros(base, 1)) * interference);
  std::vector<int64_t> tasks(k, work);
  std::vector<int64_t> release(k);
  for (size_t i = 0; i < k; ++i) {
    release[i] = static_cast<int64_t>(i + 1) * extract;
  }
  // Completion time of each instance under greedy scheduling; majority.
  std::vector<int64_t> cpu_free(std::max<size_t>(1, n_cpus), 0);
  std::vector<int64_t> completion(k);
  for (size_t i = 0; i < k; ++i) {
    auto it = std::min_element(cpu_free.begin(), cpu_free.end());
    const int64_t start = std::max(*it, release[i]);
    *it = start + tasks[i];
    completion[i] = *it;
  }
  std::sort(completion.begin(), completion.end());
  const size_t majority = k / 2;  // 0-based index of the (k/2+1)-th finisher
  return completion[majority] + base.load_micros;
}

/// Fixed-width plain-text table, printed to stdout (the benches regenerate
/// the paper's figures as tables; EXPERIMENTS.md captures them).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(const std::string& title) const {
    std::cout << "\n=== " << title << " ===\n";
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::cout << (c == 0 ? "" : "  ");
        std::cout.width(static_cast<std::streamsize>(widths[c]));
        std::cout << std::left << row[c];
      }
      std::cout << "\n";
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    std::cout.flush();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(int64_t micros, int decimals = 1) {
  std::ostringstream oss;
  oss.precision(decimals);
  oss << std::fixed << static_cast<double>(micros) / 1000.0;
  return oss.str();
}

inline std::string Seconds(double s, int decimals = 2) {
  std::ostringstream oss;
  oss.precision(decimals);
  oss << std::fixed << s;
  return oss.str();
}

}  // namespace bench
}  // namespace qox

#endif  // QOX_BENCH_BENCH_UTIL_H_
