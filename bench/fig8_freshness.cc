// Figure 8 — "Freshness of data vs frequency of ETL execution":
// mean source-event-to-warehouse latency of a day's data volume when the
// day is processed in 1..96 loads, under five design configurations:
// 2 parallel flows without recovery (w/o RP, 2PF), triple modular
// redundancy (TMR), few recovery points (RP+), many recovery points
// (RP++), and the plain single flow (w/o RP, 1F).
//
// Paper findings this bench reproduces:
//   * more frequent, smaller loads improve freshness for every config,
//   * configurations separate by their per-batch overhead: at high load
//     frequency the parallel flow is freshest, recovery-point-heavy
//     configurations are stalest, and TMR sits in between,
//   * freshness = load period / 2 + per-batch execution time.
//
// Window scaling: the paper's premise is that "the uninterrupted ETL
// execution nearly fits in the available time window". The operational
// window here is therefore set to 4x the measured full-volume execution
// time of the plain flow, so the frequency sweep covers the same regime
// (at the highest frequencies the per-batch overhead, not the waiting
// period, dominates freshness — which is where the configurations
// separate).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "core/sales_workflow.h"

namespace qox {
namespace {

constexpr size_t kDailyRows = 48000;
constexpr size_t kCpus = 4;

SalesScenario* Scenario() {
  static SalesScenario* const scenario = [] {
    SalesScenarioConfig config;
    config.s1_rows = 16;  // replaced per cell with the batch under test
    config.s2_rows = 500;
    config.s3_rows = 500;
    return SalesScenario::Create(config).TakeValue().release();
  }();
  return scenario;
}

RecoveryPointStorePtr RpStore() {
  static const RecoveryPointStorePtr store =
      RecoveryPointStore::Open("/tmp/qox_bench_fig8_rp").value();
  return store;
}

const char* kConfigNames[] = {"w/o RP, 2PF", "TMR", "RP+", "RP++",
                              "w/o RP, 1F"};
const size_t kLoadsPerDay[] = {1, 2, 4, 8, 16, 32, 64, 96};

/// Operational window (seconds): 4x the measured full-volume execution of
/// the plain flow (see the header comment).
double WindowSeconds();

ExecutionConfig MakeConfig(int config_idx) {
  ExecutionConfig config;
  config.num_threads = 1;
  switch (config_idx) {
    case 0:  // 2 parallel flows, no recovery
      config.parallel.partitions = 2;
      config.parallel.range_begin = 1;
      break;
    case 1:  // TMR: measured as 1F, simulated as 3 racing instances
      break;
    case 2:  // RP+: one recovery point after extraction
      config.recovery_points = {0};
      config.rp_store = RpStore();
      break;
    case 3:  // RP++: recovery points at extraction, Δ, function, pre-load
      config.recovery_points = {0, 1, 5, 7};
      config.rp_store = RpStore();
      break;
    case 4:  // plain single flow
      break;
    default:
      break;
  }
  return config;
}

struct Cell {
  double freshness_s = 0.0;
  double exec_s = 0.0;
};
std::map<std::pair<int, int>, Cell>& Cells() {
  static auto* const cells = new std::map<std::pair<int, int>, Cell>();
  return *cells;
}

void BM_Fig8(benchmark::State& state) {
  const int config_idx = static_cast<int>(state.range(0));
  const int loads_idx = static_cast<int>(state.range(1));
  const size_t loads = kLoadsPerDay[loads_idx];
  const size_t batch_rows = kDailyRows / loads;
  SalesScenario* scenario = Scenario();
  Cell cell;
  for (auto _ : state) {
    int64_t best_exec = 0;
    for (int repeat = 0; repeat < 2; ++repeat) {
      // Stage exactly one batch of the day's data in S1.
      if (!scenario->ResetWarehouse().ok() ||
          !scenario->s1()->Truncate().ok() ||
          !scenario->AppendS1Batch(batch_rows).ok()) {
        state.SkipWithError("staging failed");
        return;
      }
      const Result<RunMetrics> metrics = Executor::Run(
          scenario->bottom_flow().ToFlowSpec(), MakeConfig(config_idx));
      if (!metrics.ok()) {
        state.SkipWithError(metrics.status().ToString().c_str());
        return;
      }
      const int64_t exec_micros =
          config_idx == 1
              ? bench::SimulatedNmrMicros(metrics.value(), 3, kCpus)
              : bench::SimulatedWallMicros(metrics.value(), kCpus);
      if (repeat == 0 || exec_micros < best_exec) best_exec = exec_micros;
    }
    cell.exec_s = static_cast<double>(best_exec) / 1e6;
    const double period_s = WindowSeconds() / static_cast<double>(loads);
    cell.freshness_s = period_s / 2.0 + cell.exec_s;
    state.SetIterationTime(cell.exec_s);
  }
  Cells()[{config_idx, loads_idx}] = cell;
  state.counters["freshness_s"] = cell.freshness_s;
  state.SetLabel(std::string(kConfigNames[config_idx]) + " @" +
                 std::to_string(loads) + "/day");
}

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5, 6, 7}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

double WindowSeconds() {
  static const double window = [] {
    SalesScenario* scenario = Scenario();
    double best = 1.0;
    for (int repeat = 0; repeat < 2; ++repeat) {
      if (!scenario->ResetWarehouse().ok() ||
          !scenario->s1()->Truncate().ok() ||
          !scenario->AppendS1Batch(kDailyRows).ok()) {
        break;
      }
      ExecutionConfig exec;
      exec.num_threads = 1;
      const Result<RunMetrics> metrics =
          Executor::Run(scenario->bottom_flow().ToFlowSpec(), exec);
      if (!metrics.ok()) break;
      const double t = static_cast<double>(bench::SimulatedWallMicros(
                           metrics.value(), kCpus)) /
                       1e6;
      if (repeat == 0 || t < best) best = t;
    }
    return 4.0 * best;
  }();
  return window;
}

void PrintFigure() {
  bench::Table table(
      {"config", "loads/window", "batch_rows", "exec_s", "freshness_s"});
  for (const auto& [key, cell] : Cells()) {
    const size_t loads = kLoadsPerDay[key.second];
    table.AddRow({kConfigNames[key.first], std::to_string(loads),
                  std::to_string(kDailyRows / loads),
                  bench::Seconds(cell.exec_s, 3),
                  bench::Seconds(cell.freshness_s, 3)});
  }
  table.Print(
      "Figure 8: Freshness of data vs frequency of ETL execution "
      "(window = " +
      bench::Seconds(WindowSeconds(), 2) +
      "s; latency = period/2 + batch execution)");
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  qox::PrintFigure();
  return 0;
}
