// Ablation — fault tolerance: storage-fault probability x retry policy,
// and row-error containment policy x poison rate.
//
// Question 1: as transient storage faults become more frequent, what do the
// retry knobs (attempt budget, backoff) and recovery points buy, and what
// do they cost? Every cell runs the same flow with the source wrapped in a
// FaultyStore injecting per-batch transient scan faults, and reports the
// observed attempts, per-run retries, backoff wait, recovery (lost work +
// RP read) time, and end-to-end wall time.
//
// Question 2: as the fraction of poisoned rows grows, what does each
// containment policy (fail-fast / skip / quarantine, with and without an
// error budget) cost, and does the cost model's data-quality term track
// the measured quarantine volume and budget aborts? Emits one BENCH JSON
// line (prefix "{\"bench\":\"abl_quarantine\"") with measured and
// predicted values per cell.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cost_model.h"
#include "core/design.h"
#include "engine/executor.h"
#include "engine/ops/filter_op.h"
#include "engine/ops/function_op.h"
#include "engine/ops/sort_op.h"
#include "storage/dead_letter_store.h"
#include "storage/faulty_store.h"
#include "storage/mem_table.h"

namespace qox {
namespace {

constexpr size_t kRows = 20000;
constexpr char kRpDir[] = "/tmp/qox_bench_ablft_rp";

Schema SourceSchema() {
  return Schema({{"id", DataType::kInt64, false},
                 {"category", DataType::kString, true},
                 {"amount", DataType::kDouble, true}});
}

DataStorePtr BaseSource() {
  static const DataStorePtr source = [] {
    auto table = std::make_shared<MemTable>("src", SourceSchema());
    RowBatch batch(SourceSchema());
    const char* categories[] = {"a", "b", "c"};
    for (size_t i = 0; i < kRows; ++i) {
      batch.Append(Row({Value::Int64(static_cast<int64_t>(i)),
                        Value::String(categories[i % 3]),
                        Value::Double(static_cast<double>(i % 100))}));
    }
    (void)table->Append(batch);
    return table;
  }();
  return source;
}

FlowSpec MakeFlow(DataStorePtr source, DataStorePtr target) {
  FlowSpec spec;
  spec.id = "ablft_flow";
  spec.source = std::move(source);
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FilterOp>(
        "flt", std::vector<Predicate>{Predicate::NotNull("amount")});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FunctionOp>(
        "fn", std::vector<ColumnTransform>{
                  ColumnTransform::Scale("scaled", "amount", 2.0)});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<SortOp>("sort",
                                    std::vector<SortKey>{{"id", false}});
  });
  spec.target = std::move(target);
  return spec;
}

Schema TargetSchema() {
  FunctionOp fn("fn", {ColumnTransform::Scale("scaled", "amount", 2.0)});
  return fn.Bind(SourceSchema()).value();
}

struct PolicyCase {
  std::string name;
  RetryPolicy retry;
  bool with_rp = false;
};

std::vector<PolicyCase> Policies() {
  std::vector<PolicyCase> cases;
  {
    PolicyCase c;
    c.name = "immediate x8";
    cases.push_back(c);  // seed defaults: 8 attempts, no backoff
  }
  {
    PolicyCase c;
    c.name = "backoff x8";
    c.retry.initial_backoff_micros = 2000;
    c.retry.max_backoff_micros = 50000;
    c.retry.jitter = 0.5;
    cases.push_back(c);
  }
  {
    PolicyCase c;
    c.name = "backoff x8 +RP";
    c.retry.initial_backoff_micros = 2000;
    c.retry.max_backoff_micros = 50000;
    c.retry.jitter = 0.5;
    c.with_rp = true;
    cases.push_back(c);
  }
  return cases;
}

struct Row_ {
  double fault_p = 0.0;
  std::string policy;
  std::string outcome;
  size_t attempts = 0;
  size_t retries = 0;
  int64_t backoff_micros = 0;
  int64_t recovery_micros = 0;  // lost work + RP reads: time spent redoing
  int64_t total_micros = 0;
};
std::map<int, Row_>& Rows() {
  static auto* const rows = new std::map<int, Row_>();
  return *rows;
}

void BM_AblFaultTolerance(benchmark::State& state) {
  const std::vector<double> fault_ps = {0.0, 0.002, 0.01, 0.05};
  for (auto _ : state) {
    int row_idx = 0;
    uint64_t seed = 0xf417;
    for (const double fault_p : fault_ps) {
      for (const PolicyCase& policy : Policies()) {
        FaultPlan plan;
        plan.scan_fault_probability = fault_p;
        auto faulty = std::make_shared<FaultyStore>(BaseSource(), plan,
                                                    /*seed=*/seed++);
        auto target = std::make_shared<MemTable>("wh", TargetSchema());
        const FlowSpec flow = MakeFlow(faulty, target);
        ExecutionConfig config;
        config.retry = policy.retry;
        if (policy.with_rp) {
          std::filesystem::remove_all(kRpDir);
          config.recovery_points = {0};
          config.rp_store = RecoveryPointStore::Open(kRpDir).value();
        }
        Row_ row;
        row.fault_p = fault_p;
        row.policy = policy.name;
        const Result<RunMetrics> metrics = Executor::Run(flow, config);
        if (metrics.ok()) {
          const RunMetrics& m = metrics.value();
          row.outcome = "ok";
          row.attempts = m.attempts;
          row.retries = m.TotalRetries();
          row.backoff_micros = m.backoff_micros;
          row.recovery_micros = m.lost_work_micros + m.rp_read_micros;
          row.total_micros = m.total_micros;
        } else {
          row.outcome = StatusCodeName(metrics.status().code());
        }
        Rows()[row_idx++] = row;
      }
    }
    state.SetIterationTime(1e-3);
  }
}

BENCHMARK(BM_AblFaultTolerance)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --------------------------------------------------------------------------
// Quarantine ablation: containment policy x poison-row rate.
// --------------------------------------------------------------------------

/// The same flow as above, expressed as a PhysicalDesign so the cost
/// model's data-quality term can be evaluated against the measured run.
PhysicalDesign MakeDesign(ErrorPolicy policy, const ErrorBudget& budget) {
  std::vector<LogicalOp> ops;
  ops.push_back(
      MakeFilter("flt", {Predicate::NotNull("amount")}, /*selectivity=*/1.0));
  ops.push_back(MakeFunction(
      "fn", {ColumnTransform::Scale("scaled", "amount", 2.0)}));
  ops.push_back(MakeSort("sort", {{"id", false}}));
  auto target = std::make_shared<MemTable>("wh", TargetSchema());
  PhysicalDesign design;
  design.flow = LogicalFlow("ablq_flow", BaseSource(), std::move(ops),
                            std::move(target));
  // Poison strikes at op 0 (the filter), so every policy decision happens
  // at full input volume — the cleanest cell for model validation.
  design.error_policies = {policy, ErrorPolicy::kFailFast,
                           ErrorPolicy::kFailFast};
  design.error_budget = budget;
  return design;
}

struct QuarantineCell {
  double poison_rate = 0.0;
  std::string policy;
  std::string outcome;
  size_t contained = 0;
  size_t dlq_records = 0;
  int64_t total_micros = 0;
  double predicted_quarantine_volume = 0.0;
  double predicted_abort_probability = 0.0;
};
std::map<int, QuarantineCell>& QuarantineCells() {
  static auto* const cells = new std::map<int, QuarantineCell>();
  return *cells;
}

void BM_AblQuarantine(benchmark::State& state) {
  struct PolicyCell {
    std::string name;
    ErrorPolicy policy;
    ErrorBudget budget;
  };
  std::vector<PolicyCell> policies;
  policies.push_back({"fail_fast", ErrorPolicy::kFailFast, ErrorBudget{}});
  policies.push_back({"skip", ErrorPolicy::kSkip, ErrorBudget{}});
  policies.push_back({"quarantine", ErrorPolicy::kQuarantine, ErrorBudget{}});
  {
    // A budget sized to half the expected containment at the highest rate:
    // the cell that should abort, validating the model's abort-probability
    // term from the other side.
    ErrorBudget tight;
    tight.max_rows = static_cast<size_t>(kRows * 0.05 / 2);
    policies.push_back({"quarantine+budget", ErrorPolicy::kQuarantine, tight});
  }
  const std::vector<double> poison_rates = {0.001, 0.01, 0.05};

  for (auto _ : state) {
    int cell_idx = 0;
    for (const double rate : poison_rates) {
      for (const PolicyCell& policy : policies) {
        const PhysicalDesign design = MakeDesign(policy.policy, policy.budget);

        FailureInjector injector;
        const size_t poisoned = static_cast<size_t>(kRows * rate);
        for (size_t i = 0; i < poisoned; ++i) {
          // Evenly spaced poisoned ids across the key space.
          injector.AddPoison(
              {0, static_cast<int64_t>(i * (kRows / poisoned))});
        }
        auto dlq = DeadLetterStore::InMemory("dlq");
        ExecutionConfig config = design.ToExecutionConfig(nullptr, &injector);
        config.dead_letter = dlq;

        QuarantineCell cell;
        cell.poison_rate = rate;
        cell.policy = policy.name;
        const Result<RunMetrics> metrics =
            Executor::Run(design.flow.ToFlowSpec(), config);
        if (metrics.ok()) {
          cell.outcome = "ok";
          cell.contained = metrics.value().rows_skipped +
                           metrics.value().rows_quarantined;
          cell.total_micros = metrics.value().total_micros;
        } else {
          cell.outcome = StatusCodeName(metrics.status().code());
        }
        cell.dlq_records = dlq->NumRecords().value();

        CostModelParams params;
        params.row_error_rate = rate;
        const CostModel model(params);
        cell.predicted_quarantine_volume =
            model.EstimateQuarantineVolume(design, kRows);
        cell.predicted_abort_probability =
            model.EstimateBudgetAbortProbability(design, kRows);
        QuarantineCells()[cell_idx++] = cell;
      }
    }
    state.SetIterationTime(1e-3);
  }
}

BENCHMARK(BM_AblQuarantine)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintFigure() {
  bench::Table table({"fault_p", "policy", "outcome", "attempts", "retries",
                      "backoff_ms", "recovery_ms", "total_ms"});
  for (const auto& [idx, row] : Rows()) {
    table.AddRow({bench::Seconds(row.fault_p, 3), row.policy, row.outcome,
                  std::to_string(row.attempts), std::to_string(row.retries),
                  bench::Ms(row.backoff_micros), bench::Ms(row.recovery_micros),
                  bench::Ms(row.total_micros)});
  }
  table.Print(
      "Ablation: fault tolerance — per-batch transient scan-fault "
      "probability x retry policy (20k rows, faults injected by "
      "FaultyStore, RP at cut 0 where noted)");
}

void PrintQuarantineFigure() {
  bench::Table table({"poison_rate", "policy", "outcome", "contained",
                      "dlq_records", "total_ms", "pred_quarantine",
                      "pred_abort_p"});
  std::ostringstream json;
  json << "{\"bench\":\"abl_quarantine\",\"rows\":" << kRows
       << ",\"results\":[";
  bool first = true;
  for (const auto& [idx, cell] : QuarantineCells()) {
    table.AddRow({bench::Seconds(cell.poison_rate, 3), cell.policy,
                  cell.outcome, std::to_string(cell.contained),
                  std::to_string(cell.dlq_records),
                  bench::Ms(cell.total_micros),
                  bench::Seconds(cell.predicted_quarantine_volume, 1),
                  bench::Seconds(cell.predicted_abort_probability, 3)});
    if (!first) json << ",";
    first = false;
    json << "{\"poison_rate\":" << cell.poison_rate << ",\"policy\":\""
         << cell.policy << "\",\"outcome\":\"" << cell.outcome
         << "\",\"contained\":" << cell.contained
         << ",\"dlq_records\":" << cell.dlq_records
         << ",\"total_micros\":" << cell.total_micros
         << ",\"predicted_quarantine_volume\":"
         << cell.predicted_quarantine_volume
         << ",\"predicted_abort_probability\":"
         << cell.predicted_abort_probability << "}";
  }
  json << "]}";
  table.Print(
      "Ablation: row-error containment — poison-row rate x policy "
      "(20k rows, poison injected at the filter op; predicted columns "
      "from the cost model's data-quality term at row_error_rate = "
      "poison_rate)");
  std::cout << json.str() << std::endl;
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  qox::PrintFigure();
  qox::PrintQuarantineFigure();
  return 0;
}
