// Ablation — fault tolerance: storage-fault probability x retry policy.
//
// Question: as transient storage faults become more frequent, what do the
// retry knobs (attempt budget, backoff) and recovery points buy, and what
// do they cost? Every cell runs the same flow with the source wrapped in a
// FaultyStore injecting per-batch transient scan faults, and reports the
// observed attempts, per-run retries, backoff wait, recovery (lost work +
// RP read) time, and end-to-end wall time.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/executor.h"
#include "engine/ops/filter_op.h"
#include "engine/ops/function_op.h"
#include "engine/ops/sort_op.h"
#include "storage/faulty_store.h"
#include "storage/mem_table.h"

namespace qox {
namespace {

constexpr size_t kRows = 20000;
constexpr char kRpDir[] = "/tmp/qox_bench_ablft_rp";

Schema SourceSchema() {
  return Schema({{"id", DataType::kInt64, false},
                 {"category", DataType::kString, true},
                 {"amount", DataType::kDouble, true}});
}

DataStorePtr BaseSource() {
  static const DataStorePtr source = [] {
    auto table = std::make_shared<MemTable>("src", SourceSchema());
    RowBatch batch(SourceSchema());
    const char* categories[] = {"a", "b", "c"};
    for (size_t i = 0; i < kRows; ++i) {
      batch.Append(Row({Value::Int64(static_cast<int64_t>(i)),
                        Value::String(categories[i % 3]),
                        Value::Double(static_cast<double>(i % 100))}));
    }
    (void)table->Append(batch);
    return table;
  }();
  return source;
}

FlowSpec MakeFlow(DataStorePtr source, DataStorePtr target) {
  FlowSpec spec;
  spec.id = "ablft_flow";
  spec.source = std::move(source);
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FilterOp>(
        "flt", std::vector<Predicate>{Predicate::NotNull("amount")});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FunctionOp>(
        "fn", std::vector<ColumnTransform>{
                  ColumnTransform::Scale("scaled", "amount", 2.0)});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<SortOp>("sort",
                                    std::vector<SortKey>{{"id", false}});
  });
  spec.target = std::move(target);
  return spec;
}

Schema TargetSchema() {
  FunctionOp fn("fn", {ColumnTransform::Scale("scaled", "amount", 2.0)});
  return fn.Bind(SourceSchema()).value();
}

struct PolicyCase {
  std::string name;
  RetryPolicy retry;
  bool with_rp = false;
};

std::vector<PolicyCase> Policies() {
  std::vector<PolicyCase> cases;
  {
    PolicyCase c;
    c.name = "immediate x8";
    cases.push_back(c);  // seed defaults: 8 attempts, no backoff
  }
  {
    PolicyCase c;
    c.name = "backoff x8";
    c.retry.initial_backoff_micros = 2000;
    c.retry.max_backoff_micros = 50000;
    c.retry.jitter = 0.5;
    cases.push_back(c);
  }
  {
    PolicyCase c;
    c.name = "backoff x8 +RP";
    c.retry.initial_backoff_micros = 2000;
    c.retry.max_backoff_micros = 50000;
    c.retry.jitter = 0.5;
    c.with_rp = true;
    cases.push_back(c);
  }
  return cases;
}

struct Row_ {
  double fault_p = 0.0;
  std::string policy;
  std::string outcome;
  size_t attempts = 0;
  size_t retries = 0;
  int64_t backoff_micros = 0;
  int64_t recovery_micros = 0;  // lost work + RP reads: time spent redoing
  int64_t total_micros = 0;
};
std::map<int, Row_>& Rows() {
  static auto* const rows = new std::map<int, Row_>();
  return *rows;
}

void BM_AblFaultTolerance(benchmark::State& state) {
  const std::vector<double> fault_ps = {0.0, 0.002, 0.01, 0.05};
  for (auto _ : state) {
    int row_idx = 0;
    uint64_t seed = 0xf417;
    for (const double fault_p : fault_ps) {
      for (const PolicyCase& policy : Policies()) {
        FaultPlan plan;
        plan.scan_fault_probability = fault_p;
        auto faulty = std::make_shared<FaultyStore>(BaseSource(), plan,
                                                    /*seed=*/seed++);
        auto target = std::make_shared<MemTable>("wh", TargetSchema());
        const FlowSpec flow = MakeFlow(faulty, target);
        ExecutionConfig config;
        config.retry = policy.retry;
        if (policy.with_rp) {
          std::filesystem::remove_all(kRpDir);
          config.recovery_points = {0};
          config.rp_store = RecoveryPointStore::Open(kRpDir).value();
        }
        Row_ row;
        row.fault_p = fault_p;
        row.policy = policy.name;
        const Result<RunMetrics> metrics = Executor::Run(flow, config);
        if (metrics.ok()) {
          const RunMetrics& m = metrics.value();
          row.outcome = "ok";
          row.attempts = m.attempts;
          row.retries = m.TotalRetries();
          row.backoff_micros = m.backoff_micros;
          row.recovery_micros = m.lost_work_micros + m.rp_read_micros;
          row.total_micros = m.total_micros;
        } else {
          row.outcome = StatusCodeName(metrics.status().code());
        }
        Rows()[row_idx++] = row;
      }
    }
    state.SetIterationTime(1e-3);
  }
}

BENCHMARK(BM_AblFaultTolerance)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintFigure() {
  bench::Table table({"fault_p", "policy", "outcome", "attempts", "retries",
                      "backoff_ms", "recovery_ms", "total_ms"});
  for (const auto& [idx, row] : Rows()) {
    table.AddRow({bench::Seconds(row.fault_p, 3), row.policy, row.outcome,
                  std::to_string(row.attempts), std::to_string(row.retries),
                  bench::Ms(row.backoff_micros), bench::Ms(row.recovery_micros),
                  bench::Ms(row.total_micros)});
  }
  table.Print(
      "Ablation: fault tolerance — per-batch transient scan-fault "
      "probability x retry policy (20k rows, faults injected by "
      "FaultyStore, RP at cut 0 where noted)");
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  qox::PrintFigure();
  return 0;
}
