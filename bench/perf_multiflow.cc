// Multi-flow service scheduling: EDF vs FIFO under deadline pressure.
//
// Runs K identical flows through one FlowService over a shared WorkerPool:
// half "loose" (deadline far beyond any schedule) and half "tight"
// (deadline sized so the tight cohort only holds it when dispatched ahead
// of the queued loose flows), with the SUBMISSION order deliberately
// adversarial (all loose first — the order a naive FIFO queue is worst
// at). Each load point (flow count x pool size) runs twice, once per
// queue policy, and reports deadline-hit rate and p95 lateness. The
// structural claim under test: EDF promotes the tight cohort past the
// queued loose flows, so at serial load points it must hit STRICTLY more
// deadlines than FIFO — the benchmark fails otherwise, and also fails
// unless admission control demonstrably rejects an over-capacity
// submission with kResourceExhausted.
//
// Deadlines are calibrated from a measured run of the same flows THROUGH
// THE SERVICE (a no-SLA FIFO warmup load point), not from a solo
// Executor::Run — service tenancy (shared pool, live neighbour working
// sets) is part of the per-flow time the deadlines must be expressed in.
// Like perf_transform this measures real wall time and skips the
// google-benchmark harness. Results go to stdout AND BENCH_multiflow.json.
//
// Usage: perf_multiflow [--quick]   (--quick: small sweep for ctest smoke)

#include <algorithm>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "engine/flow_service.h"
#include "engine/ops/filter_op.h"
#include "engine/ops/function_op.h"
#include "engine/ops/sort_op.h"
#include "storage/mem_table.h"

namespace qox {
namespace {

/// Tight-cohort deadline for K flows (T = K/2 tight): (T + 1.7) flow
/// units. Under EDF with one slot the tights run at queue positions
/// 2..T+1 (position 1 belongs to the loose flow that grabbed the free
/// slot at submit time), so the last tight finishes around (T + 1) units
/// — inside the deadline with 0.7 units of noise headroom. Under FIFO
/// they run at positions L+1..K and all but the first blow it.
constexpr double kTightSlackFlows = 1.7;
/// Loose-cohort deadline: 3K flow units — held under any dispatch order.
constexpr double kLooseBudgetFlows = 3.0;

Schema FlowSchema() {
  return Schema({{"id", DataType::kInt64, false},
                 {"category", DataType::kString, true},
                 {"amount", DataType::kDouble, true}});
}

std::vector<Row> FlowRows(size_t n) {
  std::vector<Row> rows;
  const char* categories[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    Row row({Value::Int64(static_cast<int64_t>(i)),
             Value::String(categories[i % 3]),
             Value::Double(static_cast<double>(i % 100))});
    if (i % 8 == 7) row.Set(2, Value::Null());
    rows.push_back(std::move(row));
  }
  return rows;
}

Schema BoundSchema() {
  FunctionOp fn("fn", {ColumnTransform::Scale("scaled", "amount", 3.0)});
  return fn.Bind(FlowSchema()).value();
}

FlowSpec MakeFlow(const std::string& id, const DataStorePtr& source,
                  const DataStorePtr& target) {
  FlowSpec spec;
  spec.id = id;
  spec.source = source;
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FilterOp>(
        "flt", std::vector<Predicate>{Predicate::NotNull("amount")});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<FunctionOp>(
        "fn", std::vector<ColumnTransform>{
                  ColumnTransform::Scale("scaled", "amount", 3.0)});
  });
  spec.transforms.push_back([]() -> OperatorPtr {
    return std::make_unique<SortOp>("sort",
                                    std::vector<SortKey>{{"id", false}});
  });
  spec.target = target;
  return spec;
}

DataStorePtr MakeSource(size_t rows) {
  auto table = std::make_shared<MemTable>("src", FlowSchema());
  const Status st = table->Append(RowBatch(FlowSchema(), FlowRows(rows)));
  if (!st.ok()) std::cerr << "source build failed: " << st << "\n";
  return table;
}

/// Per-flow wall time of a flow AS A SERVICE TENANT — the unit every
/// deadline is expressed in. Runs a no-SLA FIFO load point (4 flows,
/// 1 worker, 1 slot) and divides the wall time by the flow count, so
/// dispatch overhead and neighbour working sets are priced in. The
/// first pass is a discarded warmup: the measured load points run warm,
/// and a cold-skewed unit would hand FIFO unearned hits.
int64_t CalibrationPassMicros(size_t rows);

int64_t CalibrateServiceMicros(size_t rows) {
  int64_t warm_micros = 0;
  for (int pass = 0; pass < 2; ++pass) {
    warm_micros = CalibrationPassMicros(rows);
    if (warm_micros <= 0) return 0;
  }
  return warm_micros;
}

int64_t CalibrationPassMicros(size_t rows) {
  constexpr size_t kFlows = 4;
  FlowServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_concurrent_flows = 1;
  service_config.policy = QueuePolicy::kFifo;
  FlowService service(service_config);
  std::vector<DataStorePtr> sources;
  std::vector<std::shared_ptr<MemTable>> targets;
  for (size_t i = 0; i < kFlows; ++i) {
    sources.push_back(MakeSource(rows));
    targets.push_back(std::make_shared<MemTable>("tgt", BoundSchema()));
  }
  const int64_t start = NowMicros();
  std::vector<uint64_t> tickets;
  for (size_t i = 0; i < kFlows; ++i) {
    FlowSubmission submission;
    submission.flow =
        MakeFlow("calibrate" + std::to_string(i), sources[i], targets[i]);
    const Result<uint64_t> ticket = service.Submit(std::move(submission));
    if (!ticket.ok()) {
      std::cerr << "calibration submit failed: " << ticket.status() << "\n";
      return 0;
    }
    tickets.push_back(ticket.value());
  }
  for (const uint64_t ticket : tickets) {
    const Result<RunMetrics> metrics = service.Wait(ticket);
    if (!metrics.ok()) {
      std::cerr << "calibration run failed: " << metrics.status() << "\n";
      return 0;
    }
  }
  return (NowMicros() - start) / static_cast<int64_t>(kFlows);
}

struct PolicyResult {
  size_t hits = 0;
  size_t flows = 0;
  double hit_rate = 0.0;
  int64_t p95_lateness_us = 0;
  bool ok = false;
};

/// Runs one load point under one policy: K flows — the loose half
/// submitted first, the tight half last (FIFO's worst case).
PolicyResult RunLoadPoint(QueuePolicy policy, size_t flows, size_t pool,
                          size_t rows, int64_t flow_micros) {
  PolicyResult result;
  result.flows = flows;
  FlowServiceConfig service_config;
  service_config.num_workers = pool;
  service_config.max_concurrent_flows = pool;
  service_config.policy = policy;
  FlowService service(service_config);

  std::vector<DataStorePtr> sources;
  std::vector<std::shared_ptr<MemTable>> targets;
  for (size_t i = 0; i < flows; ++i) {
    sources.push_back(MakeSource(rows));
    targets.push_back(std::make_shared<MemTable>("tgt", BoundSchema()));
  }
  const size_t tight = flows / 2;
  const int64_t tight_deadline = static_cast<int64_t>(
      (static_cast<double>(tight) + kTightSlackFlows) *
      static_cast<double>(flow_micros));
  const int64_t loose_deadline = static_cast<int64_t>(
      kLooseBudgetFlows * static_cast<double>(flows) *
      static_cast<double>(flow_micros));
  std::vector<uint64_t> tickets;
  // Submission order: the loose cohort first (indexes [tight, flows)),
  // then the tight cohort — FIFO serves the queue in exactly that order.
  for (size_t n = 0; n < flows; ++n) {
    const size_t i = (n + tight) % flows;
    const bool is_tight = i < tight;
    FlowSubmission submission;
    submission.flow = MakeFlow(
        std::string(is_tight ? "tight" : "loose") + std::to_string(i),
        sources[i], targets[i]);
    submission.config.sla.deadline_micros =
        is_tight ? tight_deadline : loose_deadline;
    submission.predicted_micros = flow_micros;
    const Result<uint64_t> ticket = service.Submit(std::move(submission));
    if (!ticket.ok()) {
      std::cerr << "submit failed: " << ticket.status() << "\n";
      return result;
    }
    tickets.push_back(ticket.value());
  }
  std::vector<int64_t> lateness;
  for (const uint64_t ticket : tickets) {
    const Result<RunMetrics> metrics = service.Wait(ticket);
    if (!metrics.ok()) {
      std::cerr << "flow failed: " << metrics.status() << "\n";
      return result;
    }
    lateness.push_back(
        std::max<int64_t>(0, -metrics.value().deadline_slack_micros));
  }
  result.hits = service.stats().deadline_hits;
  result.hit_rate =
      static_cast<double>(result.hits) / static_cast<double>(flows);
  std::sort(lateness.begin(), lateness.end());
  result.p95_lateness_us =
      lateness[std::min(lateness.size() - 1,
                        static_cast<size_t>(0.95 * lateness.size()))];
  result.ok = true;
  return result;
}

/// Admission-control demonstration: with feasibility checking on, a
/// submission whose predicted load cannot meet its deadline is rejected
/// with kResourceExhausted instead of admitted-then-missed. Admitted
/// flows park in post_success on a latch until the whole submission
/// sequence is adjudicated — their predicted load must stay outstanding,
/// and the tiny actual flows would otherwise race to completion.
bool DemonstrateAdmissionControl(std::ostringstream* json) {
  FlowServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_concurrent_flows = 4;
  service_config.admit_only_feasible = true;
  FlowService service(service_config);
  size_t rejected_resource_exhausted = 0;
  std::vector<uint64_t> admitted;
  std::mutex hold_mu;
  std::condition_variable hold_cv;
  bool released = false;
  // Each flow predicts 100s of work against a 250s deadline: the first two
  // fit the projection, the rest are over capacity and must be rejected.
  constexpr int64_t kPredicted = 100000000;
  constexpr int64_t kDeadline = 250000000;
  constexpr size_t kSubmissions = 4;
  for (size_t i = 0; i < kSubmissions; ++i) {
    FlowSubmission submission;
    auto target = std::make_shared<MemTable>("tgt", BoundSchema());
    submission.flow =
        MakeFlow("admission" + std::to_string(i), MakeSource(200), target);
    submission.flow.post_success = [&hold_mu, &hold_cv, &released]() {
      std::unique_lock<std::mutex> lock(hold_mu);
      hold_cv.wait(lock, [&released]() { return released; });
      return Status::OK();
    };
    submission.config.sla.deadline_micros = kDeadline;
    submission.predicted_micros = kPredicted;
    const Result<uint64_t> ticket = service.Submit(std::move(submission));
    if (ticket.ok()) {
      admitted.push_back(ticket.value());
    } else if (ticket.status().code() == StatusCode::kResourceExhausted) {
      ++rejected_resource_exhausted;
    }
  }
  {
    std::lock_guard<std::mutex> lock(hold_mu);
    released = true;
  }
  hold_cv.notify_all();
  for (const uint64_t ticket : admitted) {
    const Result<RunMetrics> metrics = service.Wait(ticket);
    if (!metrics.ok()) std::cerr << "admitted flow failed\n";
  }
  *json << "\"admission\":{\"submitted\":" << kSubmissions
        << ",\"admitted\":" << admitted.size()
        << ",\"rejected\":" << rejected_resource_exhausted << "}";
  return rejected_resource_exhausted > 0 && !admitted.empty();
}

struct LoadPoint {
  size_t flows;
  size_t pool;
  bool gate;  ///< serial point: EDF must strictly beat FIFO here
};

int RunBench(bool quick) {
  const size_t rows = quick ? 20000 : 60000;
  const int64_t flow_micros = CalibrateServiceMicros(rows);
  if (flow_micros <= 0) return 1;

  std::vector<LoadPoint> points;
  if (quick) {
    points = {{6, 1, true}, {8, 1, true}};
  } else {
    points = {{6, 1, true}, {10, 1, true}, {8, 2, false}, {12, 2, false}};
  }

  std::ostringstream json;
  json << "{\"bench\":\"perf_multiflow\",\"rows_per_flow\":" << rows
       << ",\"service_flow_us\":" << flow_micros
       << ",\"tight_slack_flows\":" << kTightSlackFlows
       << ",\"load_points\":[";
  int failures = 0;
  bool first = true;
  for (const LoadPoint& point : points) {
    // A gated point gets one recalibrated retry: a transient load spike
    // can shift actual flow time away from the calibrated unit mid-point,
    // which degrades BOTH policies' deadlines identically and can tie the
    // hit counts by accident rather than by scheduling merit.
    PolicyResult edf;
    PolicyResult fifo;
    bool edf_beats_fifo = false;
    int attempts = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const int64_t unit =
          attempt == 0 ? flow_micros : CalibrateServiceMicros(rows);
      if (unit <= 0) return 1;
      edf = RunLoadPoint(QueuePolicy::kEdf, point.flows, point.pool, rows,
                         unit);
      fifo = RunLoadPoint(QueuePolicy::kFifo, point.flows, point.pool, rows,
                          unit);
      if (!edf.ok || !fifo.ok) return 1;
      edf_beats_fifo = edf.hits > fifo.hits;
      ++attempts;
      if (edf_beats_fifo || !point.gate) break;
      std::cerr << "retrying load point " << point.flows << " flows x pool "
                << point.pool << " with fresh calibration (EDF " << edf.hits
                << " hits, FIFO " << fifo.hits << ")\n";
    }
    if (point.gate && !edf_beats_fifo) {
      std::cerr << "EDF did not strictly beat FIFO at serial load point "
                << point.flows << " flows x pool " << point.pool << " (EDF "
                << edf.hits << " hits, FIFO " << fifo.hits << ")\n";
      ++failures;
    }
    if (!first) json << ",";
    first = false;
    json << "{\"flows\":" << point.flows << ",\"pool\":" << point.pool
         << ",\"attempts\":" << attempts
         << ",\"edf\":{\"deadline_hits\":" << edf.hits
         << ",\"hit_rate\":" << edf.hit_rate
         << ",\"p95_lateness_us\":" << edf.p95_lateness_us
         << "},\"fifo\":{\"deadline_hits\":" << fifo.hits
         << ",\"hit_rate\":" << fifo.hit_rate
         << ",\"p95_lateness_us\":" << fifo.p95_lateness_us
         << "},\"edf_beats_fifo\":" << (edf_beats_fifo ? "true" : "false")
         << "}";
  }
  json << "],";
  if (!DemonstrateAdmissionControl(&json)) {
    std::cerr << "admission control failed to reject over-capacity load\n";
    ++failures;
  }
  json << "}";
  std::cout << json.str() << std::endl;
  std::ofstream out("BENCH_multiflow.json");
  out << json.str() << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  return qox::RunBench(quick);
}
