// Ablation — end-to-end optimizer value: for four engagement objectives,
// execute the optimizer-chosen design and the naive (paper-faithful 1F)
// design, measure QoX on both, and compare the objective scores.
//
// This is the "QoX-driven design beats one-size-fits-all" claim of the
// whole paper, evaluated with measured (not only predicted) QoX.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>

#include "bench_util.h"
#include "core/optimizer.h"
#include "core/qox_report.h"
#include "core/sales_workflow.h"

namespace qox {
namespace {

SalesScenario* Scenario() {
  static SalesScenario* const scenario = [] {
    std::filesystem::create_directories("/tmp/qox_bench_ablopt_data");
    SalesScenarioConfig config;
    config.s1_rows = 40000;
    config.s2_rows = 1000;
    config.s3_rows = 1000;
    // Remote sources: the regime in which the recovery/redundancy
    // tradeoffs of the paper actually bind (re-extraction is expensive).
    config.data_dir = "/tmp/qox_bench_ablopt_data";
    config.source_bandwidth_bytes_per_s = 8.0 * 1024 * 1024;
    return SalesScenario::Create(config).TakeValue().release();
  }();
  return scenario;
}

RecoveryPointStorePtr RpStore() {
  static const RecoveryPointStorePtr store =
      RecoveryPointStore::Open("/tmp/qox_bench_ablopt").value();
  return store;
}

struct Case {
  const char* name;
  QoxObjective objective;
  /// Environment of the engagement (failure rate, window).
  double failure_rate_per_s;
  double time_window_s;
};

std::vector<Case> Cases() {
  // The recoverability-focused engagement: references are set at the scale
  // of this flow (tens of milliseconds of rework), because preference
  // references are relative scales (requirements.h).
  QoxObjective recoverable;
  recoverable.AddConstraint(
      QoxConstraint::AtLeast(QoxMetric::kReliability, 0.99));
  recoverable.Prefer(QoxMetric::kRecoverability, 3.0, 0.3);
  recoverable.Prefer(QoxMetric::kPerformance, 1.0, 1.5);
  return {
      {"performance-first", QoxObjective::PerformanceFirst(10.0), 0.1, 60.0},
      {"recoverability", recoverable, 2.0, 60.0},
      {"freshness-first", QoxObjective::FreshnessFirst(60.0), 0.1, 60.0},
      {"maintainability", QoxObjective::MaintainabilityAware(10.0), 0.1,
       60.0},
  };
}

struct Row_ {
  std::string objective;
  std::string naive_tag;
  std::string chosen_tag;
  double naive_score = 0.0;
  double chosen_score = 0.0;
};
std::map<int, Row_>& Rows() {
  static auto* const rows = new std::map<int, Row_>();
  return *rows;
}

/// Executes a design for real — in a failure-prone environment (one
/// injected mid-flow system failure) — and scores its measured QoX vector.
/// Designs that prepared for failure (recovery points, redundancy) recover
/// cheaply; the naive design restarts from scratch.
Result<double> MeasuredScore(const PhysicalDesign& design,
                             const QoxObjective& objective,
                             const CostModel& model,
                             const WorkloadParams& workload) {
  SalesScenario* scenario = Scenario();
  QOX_RETURN_IF_ERROR(scenario->ResetWarehouse());
  FailureInjector injector;
  FailureSpec spec;
  spec.at_op = 4;
  spec.at_fraction = 0.6;
  injector.AddFailure(spec);
  ExecutionConfig exec = design.ToExecutionConfig(
      design.recovery_points.empty() ? nullptr : RpStore(), &injector);
  exec.num_threads = 1;  // 1-core host; structural choices still differ
  QOX_ASSIGN_OR_RETURN(const RunMetrics metrics,
                       Executor::Run(design.flow.ToFlowSpec(), exec));
  MeasurementContext context;
  context.time_window_s = workload.time_window_s;
  context.loads_per_day = design.loads_per_day;
  QOX_ASSIGN_OR_RETURN(const QoxVector measured,
                       MeasureQox(metrics, design, context, model));
  return objective.Evaluate(measured).score;
}

void BM_AblOptimizer(benchmark::State& state) {
  const int case_idx = static_cast<int>(state.range(0));
  SalesScenario* scenario = Scenario();
  const Case test_case = Cases()[static_cast<size_t>(case_idx)];
  WorkloadParams workload;
  workload.rows_per_run = 40000;
  workload.failure_rate_per_s = test_case.failure_rate_per_s;
  workload.time_window_s = test_case.time_window_s;

  static const CostModel* const model = [&] {
    (void)scenario->ResetWarehouse();
    const Result<RunMetrics> probe = Executor::Run(
        scenario->bottom_flow().ToFlowSpec(), ExecutionConfig{});
    CostModelParams params;
    if (probe.ok()) {
      params = CostModel::Calibrate(CostModelParams{}, probe.value(),
                                    scenario->bottom_flow(), 40000);
    }
    return new CostModel(params);
  }();

  for (auto _ : state) {
    OptimizerOptions options;
    options.threads = 4;
    options.loads_per_day_choices = {24, 96, 288};
    const QoxOptimizer optimizer(*model, options);
    const Result<OptimizationResult> optimized = optimizer.Optimize(
        scenario->bottom_flow(), test_case.objective, workload);
    if (!optimized.ok()) {
      state.SkipWithError(optimized.status().ToString().c_str());
      return;
    }
    PhysicalDesign naive;
    naive.flow = scenario->bottom_flow();
    naive.threads = 4;

    Row_ row;
    row.objective = test_case.name;
    row.naive_tag = naive.ConfigTag() + "@" +
                    std::to_string(naive.loads_per_day) + "/d";
    row.chosen_tag =
        optimized.value().best.design.ConfigTag() + "@" +
        std::to_string(optimized.value().best.design.loads_per_day) + "/d";
    const Result<double> naive_score =
        MeasuredScore(naive, test_case.objective, *model, workload);
    const Result<double> chosen_score = MeasuredScore(
        optimized.value().best.design, test_case.objective, *model,
        workload);
    if (!naive_score.ok() || !chosen_score.ok()) {
      state.SkipWithError("execution failed");
      return;
    }
    row.naive_score = naive_score.value();
    row.chosen_score = chosen_score.value();
    Rows()[case_idx] = row;
    state.SetIterationTime(1e-3);
  }
}

BENCHMARK(BM_AblOptimizer)
    ->DenseRange(0, 3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintFigure() {
  bench::Table table({"objective", "naive_design", "optimized_design",
                      "naive_score", "optimized_score"});
  for (const auto& [idx, row] : Rows()) {
    table.AddRow({row.objective, row.naive_tag, row.chosen_tag,
                  bench::Seconds(row.naive_score, 3),
                  bench::Seconds(row.chosen_score, 3)});
  }
  table.Print(
      "Ablation: optimizer-chosen design vs naive 1F design, measured "
      "objective scores (higher is better)");
}

}  // namespace
}  // namespace qox

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  qox::PrintFigure();
  return 0;
}
